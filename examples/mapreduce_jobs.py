#!/usr/bin/env python3
"""The PaaS layer driven directly: MapReduce jobs on HDFS (Figure 12).

Runs the stock jobs on real text stored in HDFS -- word count, grep, a
TeraSort-style distributed sort -- then shows the fault-tolerance
machinery: a 30% per-attempt failure rate fully masked by retries, and a
straggler node masked by speculative execution.

Run:  python examples/mapreduce_jobs.py
"""

from repro.common.tables import format_table
from repro.common.units import KiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.mapreduce import (
    FaultModel,
    JobQueue,
    JobTracker,
    grep_job,
    run_distributed_sort,
    word_count_job,
)

TEXT = """cloud services have been regarded as the significant trend
video websites become fairly popular with cloud computing and storage
the goal is to build video services on a cloud iaas environment
users can accelerate the search and find the precise videos they want
hadoop distributes application to process in other node hosts
""" * 120


def main() -> None:
    cluster = Cluster(7)
    fs = Hdfs(cluster, block_size=2 * KiB, replication=2)
    run = lambda gen: cluster.run(cluster.engine.process(gen))  # noqa: E731
    run(fs.client("node1").write_file("/corpus", TEXT.encode()))
    print(f"corpus: {len(TEXT)} bytes in "
          f"{len(fs.namenode.get_file('/corpus').blocks)} HDFS blocks\n")

    print("== FIFO job queue: word count, then grep ==")
    jq = JobQueue(JobTracker(fs))
    wc_ev = jq.submit(word_count_job(["/corpus"], num_reduces=2))
    grep_ev = jq.submit(grep_job(["/corpus"], r"video[s]?"))
    grep_res = cluster.run(until=grep_ev)
    wc_res = wc_ev.value
    top = sorted(wc_res.output.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
    print(format_table(["word", "count"], top,
                       title=f"word count: {wc_res.duration:.1f} s, "
                             f"locality {wc_res.counters.locality_rate:.0%}"))
    print(f"\n   grep 'video[s]?': {dict(grep_res.output)} "
          f"(ran after word count: {grep_res.started >= wc_res.finished})\n")

    print("== distributed sort (TotalOrderPartitioner) ==")
    lines = [w for w in TEXT.split() if w]
    run(fs.client("node2").write_file(
        "/words", ("\n".join(lines) + "\n").encode()))
    ordered, result = run(run_distributed_sort(fs, ["/words"], num_reduces=4))
    print(f"   {len(ordered)} words sorted in {result.duration:.1f} s "
          f"across {result.counters.reduce_tasks} reducers")
    print(f"   first: {ordered[:4]}  last: {ordered[-3:]}")
    assert ordered == sorted(lines)
    print()

    print("== fault tolerance: 30% of map attempts crash ==")
    jt = JobTracker(fs, fault=FaultModel(map_failure_rate=0.3))
    res = run(jt.submit(word_count_job(["/corpus"])))
    print(f"   output identical: {res.output == wc_res.output}; "
          f"{res.counters.failed_task_attempts} attempts died and were "
          f"retried; duration {res.duration:.1f} s vs {wc_res.duration:.1f} s clean\n")

    print("== speculative execution: one node 40x slower ==")
    slow = sorted(fs.datanodes)[0]
    rows = []
    for speculative in (False, True):
        jt = JobTracker(fs, speculative=speculative, slowdowns={slow: 40.0})
        res = run(jt.submit(word_count_job(["/corpus"])))
        rows.append(["on" if speculative else "off",
                     f"{res.duration:.1f}",
                     res.counters.speculative_attempts])
    print(format_table(["speculation", "duration s", "backup attempts"], rows))


if __name__ == "__main__":
    main()
