#!/usr/bin/env python3
"""Day-2 operations on the video cloud: the administrator's view.

Walks the operational features a production deployment of the paper's
stack needs: multi-tenant quotas and ACLs, a host crash with automatic VM
recovery, HDFS health checks (fsck), rebalancing after skewed writes,
graceful DataNode decommissioning, and replica-aware stream serving.

Run:  python examples/cluster_operations.py
"""

from repro.common.errors import AuthError
from repro.common.tables import format_table
from repro.common.units import GiB, Mbps, MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs, balancer, decommission, fsck, utilisations
from repro.one import MonitoringService, OpenNebula, VmTemplate
from repro.video import R_720P, ReplicaStreamer, VideoFile
from repro.virt import DiskImage


def main() -> None:
    cluster = Cluster(7)
    run = lambda gen: cluster.run(cluster.engine.process(gen))  # noqa: E731

    # ---- IaaS: tenants, quotas, a crash ------------------------------------
    print("== tenants and quotas ==")
    cloud = OpenNebula(cluster)
    for name in cluster.host_names[1:5]:
        cloud.add_host(name)
    cloud.register_image(DiskImage("ubuntu", size=2 * GiB))
    cloud.users.create("kuan", quota_vms=2, quota_memory=4 * GiB)
    tpl = VmTemplate(name="guest", vcpus=1, memory=1 * GiB, image="ubuntu")
    vms = [cloud.instantiate(tpl, owner="kuan") for _ in range(2)]
    try:
        cloud.instantiate(tpl, owner="kuan")
    except AuthError as exc:
        print(f"   third VM refused: {exc}")
    cluster.run()
    print(f"   kuan's VMs running on: {[vm.host_name for vm in vms]}\n")

    print("== host crash -> automatic recovery ==")
    victim = vms[0].host_name
    affected = cloud.fail_host(victim)
    print(f"   {victim} crashed; {len(affected)} VM(s) failed and resubmitted")
    cluster.run()
    print(f"   recovered: {[(vm.name, vm.host_name, vm.state.value) for vm in affected]}")
    mon = MonitoringService(cloud)
    run(mon.poll_once())
    print()
    print(mon.snapshot())
    print()

    # ---- PaaS: HDFS operations ------------------------------------------------
    print("== HDFS: skewed writes, fsck, balancer ==")
    fs = Hdfs(cluster, replication=1, block_size=16 * MiB)
    for i in range(8):
        run(fs.client("node1").write_synthetic(f"/v/clip{i}", 32 * MiB))
    cap = 2 * GiB
    before = utilisations(fs, cap)
    report = run(balancer(fs, capacity=cap, threshold=0.02))
    after = report.utilisations_after
    rows = [[n, f"{before[n] * 100:.1f}%", f"{after[n] * 100:.1f}%"]
            for n in sorted(before)]
    print(format_table(["datanode", "before", "after"], rows,
                       title=f"balancer: {report.moves} moves, "
                             f"{report.bytes_moved // MiB} MiB shifted"))
    print(f"\n   {fsck(fs).summary()}\n")

    print("== graceful decommission of node2 ==")
    moved = run(decommission(fs, "node2"))
    print(f"   {moved} blocks drained; {fsck(fs).summary()}\n")

    # ---- SaaS edge: replica-aware streaming --------------------------------------
    print("== replica-aware streaming ==")
    movie = VideoFile(name="m.flv", container="flv", vcodec="h264",
                      acodec="aac", duration=60.0, resolution=R_720P,
                      fps=25.0, bitrate=2 * Mbps)
    run(fs.client("node3").write_synthetic("/pub/m.flv", movie.size,
                                           replication=3))
    rs = ReplicaStreamer(fs, "/pub/m.flv")
    print(f"   replica holders: {rs.replica_holders()}")
    viewer = next(h for h in cluster.host_names
                  if h not in rs.replica_holders())
    procs = [
        cluster.engine.process(
            rs.open_session(viewer, movie, watch_plan=[(0.0, 10.0)]))
        for _ in range(4)
    ]
    done = cluster.engine.run(cluster.engine.all_of(procs))
    served = [done[p][0] for p in procs]
    print(f"   4 concurrent viewers served by: {sorted(served)}")
    print(f"   per-replica totals: {dict(rs.sessions_served)}")


if __name__ == "__main__":
    main()
