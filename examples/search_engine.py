#!/usr/bin/env python3
"""The Nutch-like search engine standalone (Figures 17-18, claim C2, E09).

Crawls a synthetic video site, builds the inverted index both sequentially
and with MapReduce over HDFS, compares build times, and runs the paper's
demo query "nobody" plus phrase / field / boolean queries.

Run:  python examples/search_engine.py
"""

from repro.common.calibration import Calibration, HadoopModel
from repro.common.tables import format_table
from repro.common.units import KiB, MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.search import (
    Document,
    Page,
    StaticSite,
    build_index_mapreduce,
    build_index_sequential,
    crawl,
    execute,
    write_crawl_segment,
)

TITLES = [
    "Nobody - Wonder Girls MV", "Nobody parody (funny)", "Cloud computing lecture",
    "Cat video compilation", "Wonder Girls live concert", "Hadoop tutorial part 1",
    "KVM virtualization deep dive", "OpenNebula demo", "Nobody dance cover",
    "Streaming video over the cloud",
]


def make_docs(n):
    filler = ("video cloud service stream music concert live show episode "
              "official channel subscribe hd quality").split()
    docs = []
    for i in range(n):
        title = TITLES[i % len(TITLES)] + (f" #{i}" if i >= len(TITLES) else "")
        desc = " ".join(filler[(i + j) % len(filler)] for j in range(60))
        docs.append(Document(f"video-{i}", {
            "title": title, "description": desc,
            "tags": filler[i % len(filler)],
            "uploader": f"user{i % 7}",
        }, {"views": (i * 37) % 1000}))
    return docs


def make_site(docs):
    pages = {"/": Page("/", None, tuple(f"/v/{d.doc_id}" for d in docs))}
    for d in docs:
        pages[f"/v/{d.doc_id}"] = Page(f"/v/{d.doc_id}", d)
    return StaticSite(pages, ["/"])


def main() -> None:
    cluster = Cluster(8)
    fs = Hdfs(cluster, block_size=64 * KiB, replication=2)
    docs = make_docs(120)

    print("== crawl the portal ==")
    result = cluster.run(cluster.engine.process(
        crawl(cluster.engine, make_site(docs))))
    print(f"   fetched {result.pages_fetched} pages, "
          f"{len(result.documents)} documents, {result.duration:.1f} s\n")

    cluster.run(cluster.engine.process(
        write_crawl_segment(fs, result.documents, "/nutch/seg-0")))

    print("== index build: sequential vs MapReduce ==")
    index, job = cluster.run(cluster.engine.process(
        build_index_mapreduce(fs, ["/nutch/seg-0"], num_reduces=4)))
    _, seq_dur = cluster.run(cluster.engine.process(
        build_index_sequential(fs, ["/nutch/seg-0"])))
    print(f"   MapReduce: {job.duration:.2f} s "
          f"({job.counters.map_tasks} maps, locality "
          f"{job.counters.locality_rate * 100:.0f}%)")
    print(f"   sequential: {seq_dur:.2f} s "
          f"(small corpus: overheads make MR slower here; see bench_search.py"
          f" for the at-scale crossover)\n")

    print("== Figure 18: query 'nobody' ==")
    for hit in execute(index, "nobody", limit=5):
        print(f"   {hit.score:6.2f}  {hit.title}")
    print()

    queries = ['"wonder girls"', "title:cloud", "+nobody -parody", "girl dance"]
    rows = []
    for q in queries:
        hits = execute(index, q, limit=3)
        rows.append([q, len(hits), hits[0].title if hits else "-"])
    print(format_table(["query", "hits", "top result"], rows,
                       title="query syntax tour"))


if __name__ == "__main__":
    main()
