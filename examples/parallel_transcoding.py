#!/usr/bin/env python3
"""Parallel FFmpeg conversion (Figure 16, claim C1, experiment E08).

Converts the same 720p upload on 1 node and on growing worker pools,
printing the split / convert / merge stage breakdown and the speedup --
the "it takes even less execution time than transferring files by FFmpeg
on a single node" claim, with the short-clip overhead regime shown too.

Run:  python examples/parallel_transcoding.py
"""

from repro.common.tables import format_table
from repro.common.units import Mbps
from repro.hardware import Cluster
from repro.video import R_720P, DistributedTranscoder, VideoFile


def clip(duration):
    return VideoFile(
        name="upload.avi", container="avi", vcodec="mpeg4", acodec="mp3",
        duration=duration, resolution=R_720P, fps=25.0, bitrate=4 * Mbps,
    )


def convert(duration, n_workers, distributed=True):
    cluster = Cluster(n_workers + 1)
    tx = DistributedTranscoder(cluster, cluster.host_names[1:],
                               ingest_host="node0")
    if distributed:
        gen = tx.convert_distributed(clip(duration), vcodec="h264", container="flv")
    else:
        gen = tx.convert_single_node(clip(duration), vcodec="h264", container="flv")
    return cluster.run(cluster.engine.process(gen))


def main() -> None:
    duration = 1800.0  # a 30-minute 720p upload
    base = convert(duration, 1, distributed=False)
    print(f"single node: {base.total_time:.1f} s for a "
          f"{duration / 60:.0f}-min 720p clip\n")

    rows = []
    for n in (1, 2, 4, 6, 8):
        rep = convert(duration, n)
        rows.append([
            n, rep.segments,
            f"{rep.stage_times['split']:.1f}",
            f"{rep.stage_times['convert']:.1f}",
            f"{rep.stage_times['merge']:.1f}",
            f"{rep.total_time:.1f}",
            f"{base.total_time / rep.total_time:.2f}x",
        ])
    print(format_table(
        ["workers", "segments", "split s", "convert s", "merge s",
         "total s", "speedup"],
        rows,
        title="Figure 16 pipeline: split + parallel convert + merge",
    ))

    print("\nshort-clip regime (fixed overheads bite):")
    rows = []
    for duration in (10, 30, 60, 300, 1800):
        single = convert(duration, 4, distributed=False)
        dist = convert(duration, 4)
        rows.append([
            f"{duration:.0f}", f"{single.total_time:.1f}",
            f"{dist.total_time:.1f}",
            f"{single.total_time / dist.total_time:.2f}x",
        ])
    print(format_table(
        ["clip s", "single s", "distributed s", "speedup"], rows))


if __name__ == "__main__":
    main()
