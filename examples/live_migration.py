#!/usr/bin/env python3
"""Live migration through the cloud interface (Figures 7-10, experiment E05).

Recreates the paper's demo: the monitoring dashboard shows the host pool,
a VM is live-migrated from Node 3 to Node 2 via the EC2-style front-end,
and the event log shows submitted -> migrating -> successful.  Then
pre-copy and post-copy are compared across guest dirty rates.

Run:  python examples/live_migration.py
"""

from repro.common.tables import format_table
from repro.common.units import GiB, MiB
from repro.hardware import Cluster
from repro.one import EconeApi, MonitoringService, OpenNebula, VmTemplate
from repro.virt import DiskImage


def build_cloud(dirty_rate=8 * MiB):
    cluster = Cluster(5)
    cloud = OpenNebula(cluster)
    for name in cluster.host_names[1:]:
        cloud.add_host(name)
    cloud.register_image(DiskImage("ubuntu-10.04", size=2 * GiB))
    tpl = VmTemplate(name="guest", vcpus=1, memory=1 * GiB,
                     image="ubuntu-10.04", dirty_rate=dirty_rate)
    vm = cloud.instantiate(tpl, name="web-vm")
    cluster.run()
    return cluster, cloud, vm


def main() -> None:
    cluster, cloud, vm = build_cloud()
    mon = MonitoringService(cloud)
    cluster.run(cluster.engine.process(mon.poll_once()))

    print("== Figure 7: the dashboard before migration ==")
    print(mon.snapshot())
    print()
    print(mon.vm_table())
    print()

    # pick the same hop as the paper: node3 -> node2
    assert vm.host_name is not None
    src = vm.host_name
    dst = "node2" if src != "node2" else "node3"
    print(f"== Figures 8-10: live migrate {vm.name} {src} -> {dst} ==")
    result = cluster.run(cluster.engine.process(
        cloud.live_migrate(vm, dst, "precopy")))
    for rec in cloud.log.records(source="one.migration"):
        print(f"   {rec}")
    print(f"\n   total {result.total_time:.2f} s | downtime "
          f"{result.downtime * 1000:.0f} ms | {result.rounds} pre-copy rounds | "
          f"{result.bytes_transferred / MiB:.0f} MiB moved\n")

    print("== pre-copy vs post-copy across guest dirty rates ==")
    rows = []
    for rate_mib in (0, 10, 50, 150, 400):
        for kind in ("precopy", "postcopy"):
            c, cl, v = build_cloud(dirty_rate=rate_mib * MiB)
            dst = next(n for n in c.host_names[1:] if n != v.host_name)
            r = c.run(c.engine.process(cl.live_migrate(v, dst, kind)))
            rows.append([
                rate_mib, kind, f"{r.total_time:.2f}",
                f"{r.downtime * 1000:.1f}", r.rounds,
                "yes" if r.converged else "no",
                f"{r.bytes_transferred / MiB:.0f}",
            ])
    print(format_table(
        ["dirty MiB/s", "algorithm", "total s", "downtime ms", "rounds",
         "converged", "MiB moved"],
        rows,
    ))


if __name__ == "__main__":
    main()
