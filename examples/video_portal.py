#!/usr/bin/env python3
"""The full VOC portal walkthrough (Figures 15, 17-23, experiment E03).

Drives every page of the paper's website in order: register two users,
verify them by e-mail, log in, upload videos (converted in parallel and
stored replicated in HDFS), re-crawl with Nutch, search, open the player
page, comment, share, flag a bad film, and let the admin remove it and
block the vicious user -- the complete page graph of Figure 15.

Run:  python examples/video_portal.py
"""

from repro import build_video_cloud
from repro.common.units import Mbps
from repro.video import R_720P, VideoFile
from repro.web import render_page


def media(name, minutes):
    return VideoFile(
        name=name, container="avi", vcodec="mpeg4", acodec="mp3",
        duration=minutes * 60.0, resolution=R_720P, fps=25.0, bitrate=4 * Mbps,
    )


def main() -> None:
    vc = build_video_cloud(n_hosts=7, seed=1)
    cluster, portal = vc.cluster, vc.portal
    run = lambda gen: cluster.run(cluster.engine.process(gen))  # noqa: E731

    def page(resp, label):
        status = "OK" if resp.ok else f"HTTP {resp.status}"
        print(f"   [{status:>8}] {label}: {resp.body}")
        return resp

    print("== register + verify + login (Figures 19-20) ==")
    sessions = {}
    for username in ("admin", "kuan", "troll"):
        page(run(portal.request("POST", "/register", params={
            "username": username, "password": "secret99",
            "email": f"{username}@thu.edu.tw"})), f"register {username}")
        _, token = portal.auth.outbox[-1]
        run(portal.request("POST", "/verify", params={"token": token}))
        resp = run(portal.request("POST", "/login", params={
            "username": username, "password": "secret99"}))
        sessions[username] = resp.set_session
    print()

    print("== uploads (Figure 22; parallel conversion of Figure 16) ==")
    uploads = [
        ("kuan", "Nobody - Wonder Girls MV", "kpop nobody wonder girls", 4),
        ("kuan", "Cloud IaaS lecture", "cloud kvm opennebula", 30),
        ("troll", "Totally legit video", "spam", 1),
    ]
    video_ids = {}
    for user, title, tags, minutes in uploads:
        resp = run(portal.request("POST", "/upload", session=sessions[user],
                                  params={"title": title, "tags": tags,
                                          "description": f"{title} in HD",
                                          "media": media(f"{title}.avi", minutes)}))
        video_ids[title] = resp.body["video_id"]
        print(f"   uploaded [{resp.body['video_id']}] {title} -> {resp.body['link']}")
    print()

    print("== Nutch refresh + home + search (Figures 17-18) ==")
    run(portal.refresh_search_index())
    home = run(portal.request("GET", "/"))
    print(f"   home shows {len(home.body['recent'])} recent videos")
    resp = run(portal.request("GET", "/search", params={"q": "nobody"}))
    print(render_page(resp))
    print()

    print("== player page + comments + social (Figure 23) ==")
    vid = video_ids["Nobody - Wonder Girls MV"]
    run(portal.request("POST", f"/video/{vid}/comment",
                       session=sessions["kuan"], params={"text": "classic!"}))
    resp = run(portal.request("GET", f"/video/{vid}"))
    body = resp.body
    print(render_page(resp))
    report = run(portal.play(vid, cluster.host_names[-1]).run())
    print(f"   streamed {report.watched_seconds:.0f} s, "
          f"startup {report.startup_delay * 1000:.0f} ms, smooth={report.smooth}")
    print()

    print("== moderation: flag -> admin removes + blocks (Section IV) ==")
    bad = video_ids["Totally legit video"]
    run(portal.request("POST", f"/video/{bad}/flag",
                       session=sessions["kuan"], params={"reason": "bad film"}))
    resp = run(portal.request("GET", "/admin", session=sessions["admin"]))
    print(f"   admin sees open flags: {resp.body['open_flags']}")
    run(portal.request("POST", f"/admin/video/{bad}/remove",
                       session=sessions["admin"]))
    troll_id = portal.auth.current_user(sessions["troll"])["id"]
    run(portal.request("POST", f"/admin/user/{troll_id}/block",
                       session=sessions["admin"]))
    print(f"   removed video {bad}, blocked user {troll_id}")
    resp = run(portal.request("POST", "/logout", session=sessions["kuan"]))
    print(f"   kuan logged out (Figure 21): {resp.body['message']}")

    print(f"\nserver stats: {portal.server.stats.requests} requests, "
          f"{portal.server.stats.errors} errors, "
          f"{portal.server.kind} footprint "
          f"{portal.server.memory_footprint() // 1024} KiB")


if __name__ == "__main__":
    main()
