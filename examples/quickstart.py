#!/usr/bin/env python3
"""Quickstart: stand up the whole video cloud and use it.

Builds the paper's full stack (Figure 14) on a 6-host simulated cluster --
OpenNebula/KVM IaaS, HDFS + MapReduce PaaS, and the VOC portal SaaS --
then walks the basic user journey: register, upload a video (which is
converted in parallel across the cluster), let Nutch re-index the site,
search for it, and stream it with a mid-playback seek.

Run:  python examples/quickstart.py
"""

from repro import build_video_cloud
from repro.common.units import Mbps
from repro.video import R_720P, VideoFile


def main() -> None:
    print("== deploying the cloud (IaaS VMs + HDFS + portal) ==")
    vc = build_video_cloud(n_hosts=6, seed=42)
    cluster, portal = vc.cluster, vc.portal
    print(f"   deployed in {cluster.now:.0f} simulated seconds; "
          f"{len(vc.services.services['video-cloud'].vms)} guest VMs running\n")

    # -- register / verify / login (Figures 19-20) ---------------------------
    run = lambda gen: cluster.run(cluster.engine.process(gen))  # noqa: E731
    run(portal.request("POST", "/register", params={
        "username": "kuan", "password": "secret99", "email": "kuan@thu.edu.tw"}))
    _, token = portal.auth.outbox[-1]
    run(portal.request("POST", "/verify", params={"token": token}))
    resp = run(portal.request("POST", "/login", params={
        "username": "kuan", "password": "secret99"}))
    session = resp.set_session
    print(f"== logged in as kuan (session {session}) ==\n")

    # -- upload (Figures 16 + 22) ---------------------------------------------
    clip = VideoFile(
        name="nobody-mv.avi", container="avi", vcodec="mpeg4", acodec="mp3",
        duration=240.0, resolution=R_720P, fps=25.0, bitrate=4 * Mbps,
    )
    t0 = cluster.now
    resp = run(portal.request("POST", "/upload", session=session, params={
        "title": "Nobody - Wonder Girls MV",
        "description": "the hit song nobody, live in HD",
        "tags": "kpop nobody wonder girls",
        "media": clip}))
    vid = resp.body["video_id"]
    print(f"== uploaded video {vid}: split + parallel convert + merge took "
          f"{cluster.now - t0:.1f} s; dynamic link {resp.body['link']} ==\n")

    # -- Nutch refresh + search (Figures 17-18) ----------------------------------
    run(portal.refresh_search_index())
    resp = run(portal.request("GET", "/search", params={"q": "nobody"}))
    print("== search results for 'nobody' ==")
    for hit in resp.body["results"]:
        print(f"   [{hit['id']}] {hit['title']}  (score {hit['score']:.2f}, "
              f"{hit['views']} views)")
    print()

    # -- player page + streaming with a seek (Figure 23) ----------------------------
    resp = run(portal.request("GET", f"/video/{vid}"))
    player = resp.body["player"]
    print(f"== player: {player['format']} {player['resolution']} "
          f"(seekable: {player['seekable_time_bar']}) ==")
    report = run(portal.play(vid, cluster.host_names[-1],
                             watch_plan=[(0.0, 20.0), (180.0, 20.0)]).run())
    print(f"   startup delay {report.startup_delay * 1000:.0f} ms, "
          f"watched {report.watched_seconds:.0f} s, "
          f"seek latency {report.seek_latencies[0] * 1000:.0f} ms, "
          f"rebuffers: {report.rebuffer_count}")
    print("\nDone. Total simulated time:", f"{cluster.now:.0f} s")


if __name__ == "__main__":
    main()
