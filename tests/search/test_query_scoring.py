import pytest

from repro.search import (
    Document,
    InvertedIndex,
    execute,
    idf,
    parse_query,
)


def build_corpus():
    idx = InvertedIndex()
    docs = [
        ("v1", "Nobody - Wonder Girls MV", "the hit song nobody by wonder girls",
         "kpop nobody"),
        ("v2", "Cloud computing lecture", "introduction to cloud IaaS and PaaS",
         "cloud lecture"),
        ("v3", "Nobody parody", "a funny parody of nobody", "parody"),
        ("v4", "Cat video", "a cat does cat things", "cat cute"),
        ("v5", "Wonder Girls concert", "live concert footage", "kpop live"),
    ]
    for doc_id, title, desc, tags in docs:
        idx.add(Document(doc_id, {"title": title, "description": desc, "tags": tags}))
    idx.finalize()
    return idx


@pytest.fixture(scope="module")
def idx():
    return build_corpus()


class TestParser:
    def test_bare_terms(self):
        q = parse_query("nobody song")
        assert len(q.clauses) == 2
        assert not q.clauses[0].phrase

    def test_phrase(self):
        q = parse_query('"wonder girls"')
        assert q.clauses[0].phrase
        assert q.clauses[0].terms == ["wonder", "girl"]

    def test_field_restriction(self):
        q = parse_query("title:nobody")
        assert q.clauses[0].field_name == "title"

    def test_required_and_prohibited(self):
        q = parse_query("+nobody -parody")
        assert q.clauses[0].required
        assert q.clauses[1].prohibited

    def test_stopword_only_query_is_empty(self):
        assert parse_query("the and of").is_empty

    def test_empty_string(self):
        assert parse_query("").is_empty


class TestSearch:
    def test_figure_18_nobody_query(self, idx):
        """The paper demos searching for 'nobody' (Figure 18)."""
        hits = execute(idx, "nobody")
        ids = [h.doc_id for h in hits]
        assert set(ids) == {"v1", "v3"}
        assert all(h.score > 0 for h in hits)

    def test_title_match_outranks_description_only(self, idx):
        # v2 has 'cloud' in title+desc+tags; make a title-only vs desc-only pair
        idx2 = InvertedIndex()
        idx2.add(Document("a", {"title": "cloud", "description": "x"}))
        idx2.add(Document("b", {"title": "x", "description": "cloud"}))
        idx2.finalize()
        hits = execute(idx2, "cloud")
        assert [h.doc_id for h in hits] == ["a", "b"]

    def test_multi_term_coord_rewards_fuller_matches(self, idx):
        hits = execute(idx, "wonder girls nobody")
        assert hits[0].doc_id == "v1"  # matches all three terms

    def test_phrase_query_requires_adjacency(self, idx):
        hits = execute(idx, '"wonder girls"')
        ids = {h.doc_id for h in hits}
        assert ids == {"v1", "v5"}

    def test_phrase_no_match_when_words_apart(self):
        idx2 = InvertedIndex()
        idx2.add(Document("a", {"title": "wonder about the girls"}))
        idx2.finalize()
        # 'about' is not a stopword, so positions are 0 and 3: no phrase hit
        assert execute(idx2, '"wonder girls"') == []

    def test_field_restricted_search(self, idx):
        hits = execute(idx, "tags:kpop")
        assert {h.doc_id for h in hits} == {"v1", "v5"}

    def test_prohibited_term_excludes(self, idx):
        hits = execute(idx, "nobody -parody")
        assert {h.doc_id for h in hits} == {"v1"}

    def test_required_term_filters(self, idx):
        hits = execute(idx, "+girls nobody")
        # must contain 'girls'; 'v3' (nobody parody) drops out
        assert {h.doc_id for h in hits} == {"v1", "v5"}

    def test_limit(self, idx):
        assert len(execute(idx, "nobody cloud cat wonder", limit=2)) == 2

    def test_no_hits(self, idx):
        assert execute(idx, "zzzxqwy") == []

    def test_deterministic_tie_break(self):
        idx2 = InvertedIndex()
        idx2.add(Document("b", {"title": "same words"}))
        idx2.add(Document("a", {"title": "same words"}))
        idx2.finalize()
        hits = execute(idx2, "same")
        assert [h.doc_id for h in hits] == ["a", "b"]

    def test_snippet_and_title_populated(self, idx):
        (hit, *_) = execute(idx, "cat")
        assert hit.title == "Cat video"
        assert "cat" in hit.snippet

    def test_stemming_bridges_query_and_doc(self, idx):
        hits = execute(idx, "girl")  # docs say 'girls'
        assert any(h.doc_id == "v1" for h in hits)


class TestScoring:
    def test_idf_decreases_with_frequency(self, idx):
        rare = idf(idx, "parody")
        common = idf(idx, "nobody")
        assert rare > common

    def test_idf_of_absent_term_is_max(self, idx):
        assert idf(idx, "zzz") >= idf(idx, "nobody")
