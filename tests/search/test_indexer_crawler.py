import pytest

from repro.common.errors import SearchError
from repro.common.units import KiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.search import (
    Document,
    Page,
    SearchEngine,
    StaticSite,
    build_index_mapreduce,
    build_index_sequential,
    crawl,
    doc_to_line,
    line_to_doc,
    load_index,
    save_index,
    write_crawl_segment,
)


def corpus(n=20):
    docs = []
    words = ["cloud", "video", "nobody", "song", "cat", "concert", "parody",
             "kvm", "hadoop", "nutch"]
    for i in range(n):
        w1, w2, w3 = words[i % 10], words[(i * 3 + 1) % 10], words[(i * 7 + 2) % 10]
        docs.append(Document(
            f"v{i}",
            {"title": f"{w1} {w2} show {i}",
             "description": f"a video about {w1} and {w3}",
             "tags": w2},
            {"views": i * 10},
        ))
    return docs


def heavy_corpus(n=300, desc_words=150):
    words = ["cloud", "video", "nobody", "song", "cat", "concert", "parody",
             "kvm", "hadoop", "nutch", "stream", "music", "girl", "wonder"]
    docs = []
    for i in range(n):
        desc = " ".join(words[(i + j) % len(words)] for j in range(desc_words))
        docs.append(Document(
            f"v{i}", {"title": f"{words[i % 14]} show {i}", "description": desc}))
    return docs


def make_env(n_hosts=5, block_size=2 * KiB):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, block_size=block_size, replication=2)
    return cluster, fs


class TestSegmentSerialization:
    def test_doc_line_roundtrip(self):
        d = corpus(1)[0]
        back = line_to_doc(doc_to_line(d))
        assert back.doc_id == d.doc_id
        assert back.fields == d.fields
        assert back.stored == d.stored

    def test_corrupt_line(self):
        with pytest.raises(SearchError):
            line_to_doc("{not json")


class TestIndexBuilders:
    def test_mapreduce_and_sequential_agree(self):
        cluster, fs = make_env()
        docs = corpus(20)
        cluster.run(cluster.engine.process(write_crawl_segment(fs, docs, "/seg/0")))
        mr_index, job = cluster.run(cluster.engine.process(
            build_index_mapreduce(fs, ["/seg/0"])))
        seq_index, dur = cluster.run(cluster.engine.process(
            build_index_sequential(fs, ["/seg/0"])))
        assert mr_index.doc_count == seq_index.doc_count == 20
        assert mr_index.terms() == seq_index.terms()
        for term in mr_index.terms():
            assert mr_index.doc_frequency(term) == seq_index.doc_frequency(term)

    def test_mapreduce_build_produces_searchable_index(self):
        cluster, fs = make_env()
        docs = corpus(10)
        cluster.run(cluster.engine.process(write_crawl_segment(fs, docs, "/seg/0")))
        index, job = cluster.run(cluster.engine.process(
            build_index_mapreduce(fs, ["/seg/0"])))
        from repro.search import execute
        hits = execute(index, "nobody")
        assert hits
        assert job.duration > 0

    def test_mapreduce_faster_than_sequential_on_large_corpus(self):
        """C2: the distributed build shortens index construction at scale.

        Analysis CPU is cranked up so the (test-sized) corpus behaves like a
        CPU-bound web-scale crawl; the bench (E09) sweeps real sizes.
        """
        from repro.common.calibration import Calibration, HadoopModel
        cal = Calibration(hadoop=HadoopModel(
            index_cpu_per_byte=2e-5, task_launch_overhead=0.05))
        cluster = Cluster(8, cal=cal)
        fs = Hdfs(cluster, block_size=64 * KiB, replication=2)
        docs = heavy_corpus(300)
        cluster.run(cluster.engine.process(write_crawl_segment(fs, docs, "/seg/0")))
        _, job = cluster.run(cluster.engine.process(
            build_index_mapreduce(fs, ["/seg/0"], num_reduces=4)))
        _, seq_dur = cluster.run(cluster.engine.process(
            build_index_sequential(fs, ["/seg/0"])))
        assert job.duration < seq_dur

    def test_sequential_wins_on_tiny_corpus(self):
        """The honest flip side: task-launch overhead dominates tiny inputs."""
        cluster, fs = make_env(8, block_size=4 * KiB)
        docs = corpus(40)
        cluster.run(cluster.engine.process(write_crawl_segment(fs, docs, "/seg/0")))
        _, job = cluster.run(cluster.engine.process(
            build_index_mapreduce(fs, ["/seg/0"], num_reduces=4)))
        _, seq_dur = cluster.run(cluster.engine.process(
            build_index_sequential(fs, ["/seg/0"])))
        assert seq_dur < job.duration

    def test_save_load_roundtrip_through_hdfs(self):
        cluster, fs = make_env()
        docs = corpus(5)
        cluster.run(cluster.engine.process(write_crawl_segment(fs, docs, "/seg/0")))
        index, _ = cluster.run(cluster.engine.process(
            build_index_mapreduce(fs, ["/seg/0"])))
        cluster.run(cluster.engine.process(save_index(fs, index, "/idx/0")))
        loaded = cluster.run(cluster.engine.process(load_index(fs, "/idx/0")))
        assert loaded.doc_count == 5
        assert loaded.terms() == index.terms()


def make_site(docs):
    pages = {"/": Page("/", None, tuple(f"/video/{d.doc_id}" for d in docs))}
    for d in docs:
        pages[f"/video/{d.doc_id}"] = Page(f"/video/{d.doc_id}", d)
    return StaticSite(pages, ["/"])


class TestCrawler:
    def test_crawl_collects_all_documents(self):
        cluster = Cluster(1)
        docs = corpus(7)
        result = cluster.run(cluster.engine.process(
            crawl(cluster.engine, make_site(docs))))
        assert len(result.documents) == 7
        assert result.pages_fetched == 8  # home + 7 videos
        assert result.frontier_exhausted
        assert result.duration > 0

    def test_max_pages_bound(self):
        cluster = Cluster(1)
        docs = corpus(7)
        result = cluster.run(cluster.engine.process(
            crawl(cluster.engine, make_site(docs), max_pages=3)))
        assert result.pages_fetched == 3
        assert not result.frontier_exhausted

    def test_cycle_safe(self):
        cluster = Cluster(1)
        pages = {
            "/a": Page("/a", None, ("/b",)),
            "/b": Page("/b", None, ("/a",)),
        }
        result = cluster.run(cluster.engine.process(
            crawl(cluster.engine, StaticSite(pages, ["/a"]))))
        assert result.pages_fetched == 2

    def test_bad_max_pages(self):
        cluster = Cluster(1)
        with pytest.raises(SearchError):
            crawl(cluster.engine, make_site(corpus(1)), max_pages=0)


class TestSearchEngineFacade:
    def test_refresh_then_search(self):
        cluster, fs = make_env()
        se = SearchEngine(fs)
        docs = corpus(12)
        n, dur = cluster.run(cluster.engine.process(se.refresh(make_site(docs))))
        assert n == 12
        hits = cluster.run(cluster.engine.process(se.search("nobody")))
        assert hits
        assert se.index.doc_count == 12

    def test_incremental_refresh_only_indexes_new(self):
        cluster, fs = make_env()
        se = SearchEngine(fs)
        docs = corpus(5)
        cluster.run(cluster.engine.process(se.refresh(make_site(docs))))
        # second crawl with 3 extra docs
        more = docs + corpus(8)[5:]
        n, _ = cluster.run(cluster.engine.process(se.refresh(make_site(more))))
        assert n == 3
        assert se.index.doc_count == 8

    def test_refresh_with_nothing_new_is_cheap(self):
        cluster, fs = make_env()
        se = SearchEngine(fs)
        docs = corpus(4)
        cluster.run(cluster.engine.process(se.refresh(make_site(docs))))
        n, dur = cluster.run(cluster.engine.process(se.refresh(make_site(docs))))
        assert (n, dur) == (0, 0.0)

    def test_segments_persisted_in_hdfs(self):
        cluster, fs = make_env()
        se = SearchEngine(fs)
        cluster.run(cluster.engine.process(se.refresh(make_site(corpus(4)))))
        client = fs.client()
        assert client.listdir("/nutch/segments")
        assert client.listdir("/nutch/index")

    def test_search_now_matches_search(self):
        cluster, fs = make_env()
        se = SearchEngine(fs)
        cluster.run(cluster.engine.process(se.refresh(make_site(corpus(6)))))
        slow = cluster.run(cluster.engine.process(se.search("cloud")))
        fast = se.search_now("cloud")
        assert [h.doc_id for h in slow] == [h.doc_id for h in fast]
