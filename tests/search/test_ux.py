import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SearchError
from repro.common.units import KiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.search import (
    Document,
    InvertedIndex,
    Page,
    SearchEngine,
    StaticSite,
    highlight,
    more_like_this,
    paginate,
    suggest,
)
from repro.search.ux import _edit_distance


def build_index(n=25):
    idx = InvertedIndex()
    words = ["cloud", "video", "nobody", "song", "cat", "wonder", "girl"]
    for i in range(n):
        idx.add(Document(f"v{i}", {
            "title": f"{words[i % 7]} {words[(i + 2) % 7]} episode {i}",
            "description": f"about {words[i % 7]} things",
        }))
    idx.finalize()
    return idx


class TestHighlight:
    def test_wraps_matching_words(self):
        out = highlight("The Nobody Song is great", "nobody song")
        assert out == "The <b>Nobody</b> <b>Song</b> is great"

    def test_stem_match(self):
        out = highlight("many videos here", "video")
        assert "<b>videos</b>" in out

    def test_no_terms_no_change(self):
        text = "hello world"
        assert highlight(text, "the and") == text

    def test_custom_markers(self):
        out = highlight("cat", "cat", pre="[", post="]")
        assert out == "[cat]"

    @given(st.text(max_size=80).filter(lambda s: "\x01" not in s and "\x02" not in s))
    def test_strip_markers_restores_text(self, text):
        out = highlight(text, "cloud video", pre="\x01", post="\x02")
        assert out.replace("\x01", "").replace("\x02", "") == text


class TestPagination:
    def test_pages_partition_results(self):
        idx = build_index(25)
        seen = []
        page_num = 1
        while True:
            page = paginate(idx, "cloud video nobody song cat wonder girl",
                            page=page_num, per_page=7)
            seen.extend(h.doc_id for h in page.hits)
            if not page.has_next:
                break
            page_num += 1
        assert len(seen) == len(set(seen)) == 25
        assert page.total_pages == 4

    def test_page_flags(self):
        idx = build_index(10)
        p1 = paginate(idx, "cloud video nobody song cat wonder girl",
                      page=1, per_page=4)
        assert not p1.has_prev and p1.has_next
        last = paginate(idx, "cloud video nobody song cat wonder girl",
                        page=p1.total_pages, per_page=4)
        assert last.has_prev and not last.has_next

    def test_empty_results(self):
        idx = build_index(5)
        page = paginate(idx, "zzzz", page=1, per_page=10)
        assert page.hits == []
        assert page.total_pages == 1

    def test_bad_page(self):
        idx = build_index(5)
        with pytest.raises(SearchError):
            paginate(idx, "cloud", page=0)


class TestSuggest:
    def test_corrects_typo(self):
        idx = build_index()
        assert suggest(idx, "nobdy") == "nobody"

    def test_known_terms_untouched(self):
        idx = build_index()
        assert suggest(idx, "nobody cloud") is None

    def test_mixed_query_partial_correction(self):
        idx = build_index()
        assert suggest(idx, "wondr video") == "wonder video"

    def test_hopeless_typo_gives_nothing(self):
        idx = build_index()
        assert suggest(idx, "xyzzyqq") is None

    def test_edit_distance(self):
        assert _edit_distance("cloud", "cloud") == 0
        assert _edit_distance("cloud", "clod") == 1
        assert _edit_distance("abc", "xyz") == 3
        assert _edit_distance("a", "abcdefgh", cap=2) > 2


class TestMoreLikeThis:
    def test_related_share_terms(self):
        idx = build_index(21)  # v0, v7, v14 share 'cloud' titles
        related = more_like_this(idx, "v0", limit=3)
        ids = {h.doc_id for h in related}
        assert "v0" not in ids
        assert ids & {"v7", "v14"}

    def test_unknown_doc(self):
        idx = build_index(3)
        with pytest.raises(SearchError):
            more_like_this(idx, "ghost")


class TestPeriodicRefresh:
    def make_engine(self):
        cluster = Cluster(5)
        fs = Hdfs(cluster, block_size=2 * KiB, replication=2)
        return cluster, SearchEngine(fs)

    def make_site(self, docs):
        pages = {"/": Page("/", None, tuple(f"/v/{d.doc_id}" for d in docs))}
        for d in docs:
            pages[f"/v/{d.doc_id}"] = Page(f"/v/{d.doc_id}", d)
        return StaticSite(pages, ["/"])

    def test_refresher_picks_up_new_docs(self):
        cluster, se = self.make_engine()
        docs = [Document("v0", {"title": "cloud intro"})]
        site_pages = self.make_site(docs)
        se.start_periodic_refresh(site_pages, interval=50)
        cluster.run(until=120)
        assert se.index.doc_count == 1
        se.stop_periodic_refresh()
        cluster.run()

    def test_stop_allows_drain(self):
        cluster, se = self.make_engine()
        se.start_periodic_refresh(self.make_site([]), interval=10)
        cluster.run(until=25)
        se.stop_periodic_refresh()
        cluster.run()  # must terminate
        assert se.refresh_count >= 1

    def test_bad_interval(self):
        _, se = self.make_engine()
        with pytest.raises(SearchError):
            se.start_periodic_refresh(self.make_site([]), interval=0)

    def test_idempotent_start(self):
        cluster, se = self.make_engine()
        site = self.make_site([])
        se.start_periodic_refresh(site, interval=10)
        proc = se._refresher
        se.start_periodic_refresh(site, interval=10)
        assert se._refresher is proc
        se.stop_periodic_refresh()
        cluster.run()
