import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SearchError
from repro.search import (
    Document,
    InvertedIndex,
    analyze,
    analyze_terms,
    strip_plural,
)


class TestAnalyzer:
    def test_lowercase_tokens(self):
        assert analyze_terms("Hello WORLD") == ["hello", "world"]

    def test_stopwords_dropped(self):
        assert analyze_terms("the cat and the hat") == ["cat", "hat"]

    def test_positions_preserved_across_stopwords(self):
        terms = analyze("the nobody song")
        # 'the'(0) dropped, nobody at 1, song at 2
        assert terms == [("nobody", 1), ("song", 2)]

    def test_plural_stemming(self):
        assert analyze_terms("videos") == ["video"]
        assert analyze_terms("ladies") == ["lady"]
        assert analyze_terms("classes") == ["class"]  # sses -> ss rule
        assert analyze_terms("boss") == ["boss"]

    def test_stem_disabled(self):
        assert analyze_terms("videos", stem=False) == ["videos"]

    def test_numbers_and_apostrophes(self):
        assert analyze_terms("top-10 can't stop") == ["top", "10", "can't", "stop"]

    def test_strip_plural_short_words(self):
        assert strip_plural("is") == "is"
        assert strip_plural("gas") == "gas"

    @given(st.text(max_size=200))
    def test_analyze_never_crashes_and_terms_are_clean(self, text):
        for term, pos in analyze(text):
            assert term == term.lower()
            assert pos >= 0
            assert term not in ("the", "and")


def doc(doc_id, title, desc="", **stored):
    return Document(doc_id, {"title": title, "description": desc}, stored)


class TestInvertedIndex:
    def test_add_and_postings(self):
        idx = InvertedIndex()
        idx.add(doc("v1", "Nobody Song", "a song about nobody"))
        idx.finalize()
        assert idx.doc_count == 1
        assert idx.doc_frequency("nobody") == 1
        posts = idx.postings["nobody"]
        assert {p.field for p in posts} == {"title", "description"}

    def test_tf_counted(self):
        idx = InvertedIndex()
        idx.add(doc("v1", "cloud cloud cloud"))
        (p,) = [p for p in idx.postings["cloud"] if p.field == "title"]
        assert p.tf == 3
        assert len(p.positions) == 3

    def test_duplicate_doc_rejected(self):
        idx = InvertedIndex()
        idx.add(doc("v1", "a b"))
        with pytest.raises(SearchError):
            idx.add(doc("v1", "c d"))

    def test_empty_doc_rejected(self):
        with pytest.raises(SearchError):
            Document("x", {})
        with pytest.raises(SearchError):
            Document("", {"title": "y"})

    def test_merge(self):
        a, b = InvertedIndex(), InvertedIndex()
        a.add(doc("v1", "alpha"))
        b.add(doc("v2", "alpha beta"))
        a.merge(b)
        a.finalize()
        assert a.doc_count == 2
        assert a.doc_frequency("alpha") == 2

    def test_merge_duplicate_rejected(self):
        a, b = InvertedIndex(), InvertedIndex()
        a.add(doc("v1", "x"))
        b.add(doc("v1", "y"))
        with pytest.raises(SearchError):
            a.merge(b)

    def test_serialization_roundtrip(self):
        idx = InvertedIndex()
        idx.add(doc("v1", "Nobody Song", "the nobody video", views=42))
        idx.add(doc("v2", "Cloud talk", "clouds everywhere"))
        idx.finalize()
        data = idx.to_bytes()
        back = InvertedIndex.from_bytes(data)
        assert back.doc_count == 2
        assert back.docs["v1"].stored["views"] == 42
        assert back.postings.keys() == idx.postings.keys()
        assert back.field_lengths == idx.field_lengths

    def test_corrupt_bytes_rejected(self):
        with pytest.raises(SearchError):
            InvertedIndex.from_bytes(b"\xff\xfenot json")

    def test_terms_sorted(self):
        idx = InvertedIndex()
        idx.add(doc("v1", "zebra apple mango"))
        assert idx.terms() == sorted(idx.terms())

    @given(st.lists(st.text(alphabet="abc ", min_size=1, max_size=30), min_size=1,
                    max_size=8, unique=True))
    def test_property_roundtrip_arbitrary_titles(self, titles):
        idx = InvertedIndex()
        for i, t in enumerate(titles):
            idx.add(Document(f"d{i}", {"title": t}))
        idx.finalize()
        back = InvertedIndex.from_bytes(idx.to_bytes())
        assert back.doc_count == idx.doc_count
        assert back.terms() == idx.terms()
