from repro.common.units import (
    Gbps,
    GiB,
    KiB,
    MiB,
    fmt_bytes,
    fmt_duration,
    fmt_rate,
)


def test_binary_prefixes_are_powers_of_two():
    assert KiB == 1024
    assert MiB == 1024**2
    assert GiB == 1024**3


def test_network_rates_are_bytes_per_second():
    # 1 Gb/s == 125 MB/s
    assert Gbps == 125_000_000


def test_fmt_bytes_picks_sane_unit():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(2048) == "2.00 KiB"
    assert fmt_bytes(5 * MiB) == "5.00 MiB"
    assert fmt_bytes(3.5 * GiB) == "3.50 GiB"


def test_fmt_bytes_huge_values_stay_in_tib():
    assert fmt_bytes(5000 * 1024**4).endswith("TiB")


def test_fmt_rate_decimal_bits():
    assert fmt_rate(125_000_000) == "1.00 Gb/s"
    assert fmt_rate(125_000) == "1.00 Mb/s"


def test_fmt_duration_scales():
    assert fmt_duration(0.0000005) == "0.5 us"
    assert fmt_duration(0.005) == "5.0 ms"
    assert fmt_duration(3.2) == "3.20 s"
    assert fmt_duration(600) == "10.0 min"


def test_fmt_duration_negative():
    assert fmt_duration(-2.0) == "-2.00 s"
