import pytest

from repro.common.events import EventLog
from repro.common.ids import IdFactory
from repro.common.rng import RngStream


class TestIdFactory:
    def test_sequential_per_prefix(self):
        f = IdFactory()
        assert f.next("vm") == "vm-0"
        assert f.next("vm") == "vm-1"
        assert f.next("host") == "host-0"
        assert f.next("vm") == "vm-2"

    def test_next_int(self):
        f = IdFactory()
        assert f.next_int("blk") == 0
        assert f.next_int("blk") == 1

    def test_peek_does_not_allocate(self):
        f = IdFactory()
        f.next("x")
        assert f.peek("x") == 1
        assert f.peek("x") == 1
        assert f.next("x") == "x-1"


class TestRngStream:
    def test_same_seed_same_draws(self):
        a = RngStream(42, "t")
        b = RngStream(42, "t")
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_different_labels_differ(self):
        a = RngStream(42, "a")
        b = RngStream(42, "b")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_child_streams_independent_of_draw_order(self):
        root1 = RngStream(7)
        c1 = root1.child("x")
        v1 = c1.uniform()

        root2 = RngStream(7)
        root2.uniform()  # extra draw on the parent must not disturb the child
        c2 = root2.child("x")
        assert c2.uniform() == v1

    def test_choice_single_and_multi(self):
        r = RngStream(1)
        xs = ["a", "b", "c"]
        assert r.choice(xs) in xs
        picked = r.choice(xs, k=2, replace=False)
        assert len(picked) == 2
        assert len(set(picked)) == 2

    def test_shuffle_is_permutation(self):
        r = RngStream(3)
        xs = list(range(20))
        out = r.shuffle(xs)
        assert sorted(out) == xs
        assert xs == list(range(20))  # input untouched

    def test_zipf_rank_in_range(self):
        r = RngStream(5)
        for _ in range(100):
            assert 0 <= r.zipf_rank(1.5, 10) < 10

    def test_lognormal_factor_positive(self):
        r = RngStream(9)
        assert all(r.lognormal_factor(0.2) > 0 for _ in range(50))

    def test_randint_bounds(self):
        r = RngStream(11)
        vals = {r.randint(2, 5) for _ in range(200)}
        assert vals == {2, 3, 4}


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog()
        log.emit("one.core", "vm_state", "vm-0 RUNNING", vm="vm-0")
        log.emit("hdfs", "block_written", "blk-0")
        assert len(log) == 2
        assert len(log.records(source="one.core")) == 1
        assert log.records(kind="block_written")[0].message == "blk-0"

    def test_clock_binding(self):
        t = {"now": 0.0}
        log = EventLog(clock=lambda: t["now"])
        log.emit("s", "k", "first")
        t["now"] = 5.0
        log.emit("s", "k", "second")
        times = [r.time for r in log]
        assert times == [0.0, 5.0]
        assert log.records(since=1.0)[0].message == "second"

    def test_last_and_tail(self):
        log = EventLog()
        for i in range(30):
            log.emit("s", "tick", f"n{i}", i=i)
        assert log.last("tick").data["i"] == 29
        assert log.last("absent") is None
        assert len(log.tail(5)) == 5

    def test_subscribers_see_records(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        rec = log.emit("s", "k", "m")
        assert seen == [rec]
