import pytest

from repro.common.errors import ConfigError, FaultInjectionError, TranscodeError
from repro.common.retry import DEFAULT_RETRY_ON, RetryPolicy, retry_process
from repro.sim import Engine


class TestRetryPolicy:
    def test_defaults(self):
        pol = RetryPolicy()
        assert pol.max_attempts == 4
        assert pol.delay(0) == 0.5
        assert pol.delay(1) == 1.0
        assert pol.delay(2) == 2.0

    def test_delay_is_capped(self):
        pol = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=25.0)
        assert pol.delay(0) == 1.0
        assert pol.delay(1) == 10.0
        assert pol.delay(2) == 25.0
        assert pol.delay(9) == 25.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(max_delay=-0.5)
        with pytest.raises(ConfigError):
            RetryPolicy().delay(-1)

    def test_default_retry_on_is_repro_errors(self):
        assert issubclass(FaultInjectionError, DEFAULT_RETRY_ON)


class TestRetryProcess:
    def run_retry(self, make_attempt, **kw):
        engine = Engine()
        p = engine.process(retry_process(engine, make_attempt, **kw))
        return engine, engine.run(until=p)

    def test_first_attempt_success_no_delay(self):
        def make_attempt(i):
            def _a():
                yield self.engine.timeout(1.0)
                return "ok"
            return _a()

        self.engine = Engine()
        p = self.engine.process(retry_process(self.engine, make_attempt))
        assert self.engine.run(until=p) == "ok"
        assert self.engine.now == pytest.approx(1.0)

    def test_retries_until_success_with_backoff(self):
        engine = Engine()
        seen = []

        def make_attempt(i):
            def _a():
                yield engine.timeout(1.0)
                seen.append(i)
                if i < 2:
                    raise FaultInjectionError(f"attempt {i} fails")
                return "finally"
            return _a()

        p = engine.process(retry_process(
            engine, make_attempt, policy=RetryPolicy(base_delay=0.5)))
        assert engine.run(until=p) == "finally"
        assert seen == [0, 1, 2]
        # 3 attempts x 1 s + backoff 0.5 + 1.0
        assert engine.now == pytest.approx(4.5)

    def test_exhaustion_reraises_last_error(self):
        engine = Engine()

        def make_attempt(i):
            def _a():
                yield engine.timeout(0.1)
                raise FaultInjectionError(f"attempt {i}")
            return _a()

        p = engine.process(retry_process(
            engine, make_attempt, policy=RetryPolicy(max_attempts=2)))
        with pytest.raises(FaultInjectionError, match="attempt 1"):
            engine.run(until=p)

    def test_unlisted_exception_not_retried(self):
        engine = Engine()
        calls = []

        def make_attempt(i):
            def _a():
                calls.append(i)
                yield engine.timeout(0.1)
                raise TranscodeError("not retryable here")
            return _a()

        p = engine.process(retry_process(
            engine, make_attempt, retry_on=(FaultInjectionError,)))
        with pytest.raises(TranscodeError):
            engine.run(until=p)
        assert calls == [0]

    def test_on_retry_callback_sees_attempt_and_error(self):
        engine = Engine()
        notes = []

        def make_attempt(i):
            def _a():
                yield engine.timeout(0.1)
                if i == 0:
                    raise FaultInjectionError("boom")
                return i
            return _a()

        p = engine.process(retry_process(
            engine, make_attempt,
            on_retry=lambda attempt, exc: notes.append((attempt, str(exc)))))
        assert engine.run(until=p) == 1
        assert notes == [(1, "boom")]


class TestBudgetAwareRetry:
    def test_full_jitter_draws_from_seeded_stream(self):
        from repro.common.rng import RngStream

        pol = RetryPolicy(base_delay=2.0, multiplier=2.0, max_delay=30.0)
        draws_a = [pol.delay(i, RngStream(7, "retry")) for i in range(4)]
        draws_b = [pol.delay(i, RngStream(7, "retry")) for i in range(4)]
        assert draws_a == draws_b                       # DET02: seeded
        for i, d in enumerate(draws_a):
            assert 0.0 <= d <= pol.delay(i)             # full jitter range
        assert draws_a != [pol.delay(i) for i in range(4)]

    def test_deadline_caps_cumulative_sleep(self):
        from repro.resilience import Deadline

        engine = Engine()
        calls = []

        def make_attempt(i):
            def _a():
                calls.append(i)
                yield engine.timeout(1.0)
                raise FaultInjectionError("always")
            return _a()

        # budget 2.5 s: attempt 0 (1 s) + backoff 1 s + attempt 1 (1 s).
        # The next 2 s backoff would sleep past the remaining budget, so
        # the loop re-raises immediately instead of backing off again.
        deadline = Deadline.after(engine, 2.5)
        p = engine.process(retry_process(
            engine, make_attempt,
            policy=RetryPolicy(max_attempts=10, base_delay=1.0),
            deadline=deadline))
        with pytest.raises(FaultInjectionError):
            engine.run(until=p)
        assert calls == [0, 1]
        # failure surfaces the moment attempt 1 ends: no backoff was slept
        assert engine.now == pytest.approx(3.0)

    def test_expired_deadline_blocks_the_next_attempt(self):
        from repro.common.errors import DeadlineExceeded
        from repro.resilience import Deadline

        engine = Engine()
        calls = []

        def make_attempt(i):
            def _a():
                calls.append(i)
                yield engine.timeout(3.0)
                raise FaultInjectionError("slow failure")
            return _a()

        deadline = Deadline.after(engine, 2.0)
        p = engine.process(retry_process(
            engine, make_attempt,
            policy=RetryPolicy(max_attempts=5, base_delay=0.0),
            deadline=deadline))
        # the first attempt outlives the budget; the loop must not start
        # attempt 1 -- backoff 0 would otherwise allow it
        with pytest.raises(FaultInjectionError):
            engine.run(until=p)
        assert calls == [0]

    def test_deadline_exceeded_inside_attempt_never_retried(self):
        from repro.common.errors import DeadlineExceeded

        engine = Engine()
        calls = []

        def make_attempt(i):
            def _a():
                calls.append(i)
                yield engine.timeout(0.1)
                raise DeadlineExceeded("budget spent downstream")
            return _a()

        p = engine.process(retry_process(engine, make_attempt))
        with pytest.raises(DeadlineExceeded):
            engine.run(until=p)
        assert calls == [0]

    def test_overload_error_inside_attempt_never_retried(self):
        from repro.common.errors import AdmissionShedError

        engine = Engine()
        calls = []

        def make_attempt(i):
            def _a():
                calls.append(i)
                yield engine.timeout(0.1)
                raise AdmissionShedError("shed downstream")
            return _a()

        p = engine.process(retry_process(engine, make_attempt))
        with pytest.raises(AdmissionShedError):
            engine.run(until=p)
        assert calls == [0]

    def test_breaker_gates_attempts_and_hears_outcomes(self):
        from repro.common.errors import CircuitOpenError
        from repro.resilience import CircuitBreaker

        engine = Engine()
        breaker = CircuitBreaker("dep", lambda: engine.now,
                                 failure_threshold=2, recovery_timeout=60.0)
        calls = []

        def make_attempt(i):
            def _a():
                calls.append(i)
                yield engine.timeout(0.1)
                raise FaultInjectionError("down")
            return _a()

        p = engine.process(retry_process(
            engine, make_attempt,
            policy=RetryPolicy(max_attempts=10, base_delay=0.1),
            breaker=breaker))
        # two failures trip the breaker; the third attempt is refused at
        # the gate without running
        with pytest.raises(CircuitOpenError):
            engine.run(until=p)
        assert calls == [0, 1]
        assert breaker.state == "open"

    def test_breaker_records_success(self):
        from repro.resilience import CircuitBreaker

        engine = Engine()
        breaker = CircuitBreaker("dep", lambda: engine.now)
        breaker.record_failure()

        def make_attempt(i):
            def _a():
                yield engine.timeout(0.1)
                return "ok"
            return _a()

        p = engine.process(retry_process(engine, make_attempt, breaker=breaker))
        assert engine.run(until=p) == "ok"
        assert breaker.consecutive_failures == 0
