"""Guard rails on the calibration constants and the table renderer.

The whole reproduction's *shapes* depend on ordering relations between
calibration constants (para < full < emulation, read faster than write,
Lighttpd lighter than prefork...).  These tests pin those relations so a
careless recalibration cannot silently invert a paper claim.
"""

import pytest

from repro.common.calibration import DEFAULT_CALIBRATION, Calibration
from repro.common.tables import format_table


class TestCalibrationInvariants:
    def setup_method(self):
        self.cal = DEFAULT_CALIBRATION

    def test_virtualization_orderings(self):
        v = self.cal.virt
        assert 1.0 == v.cpu_bare < v.cpu_para < v.cpu_full < v.cpu_emul
        assert 1.0 == v.io_bare < v.io_para < v.io_full < v.io_emul
        # I/O penalties exceed CPU penalties for each virtualized mode
        assert v.io_para / v.cpu_para > 1
        assert v.io_full / v.cpu_full > 1
        assert v.exit_cost > 0

    def test_disk_read_faster_than_write(self):
        assert self.cal.disk_read_rate > self.cal.disk_write_rate > 0
        assert self.cal.disk_seek_time > 0

    def test_network_sane(self):
        assert self.cal.nic_rate > 0
        assert 0 < self.cal.net_latency < 1.0

    def test_migration_model(self):
        m = self.cal.migration
        assert 0 < m.link_efficiency <= 1
        assert m.stop_copy_threshold > 0
        assert m.max_precopy_rounds >= 1
        assert m.suspend_cost > 0 and m.resume_cost > 0

    def test_hadoop_costs_positive_and_ordered(self):
        h = self.cal.hadoop
        assert h.block_size > 0 and h.replication >= 1
        assert h.datanode_timeout > h.heartbeat_interval
        # indexing is heavier than a plain scan
        assert h.index_cpu_per_byte > h.map_cpu_per_byte

    def test_video_codec_cost_orderings(self):
        v = self.cal.video
        # encode costs more than decode for every codec we encode
        for codec in ("h264", "mpeg4", "vp8"):
            assert v.encode_cycles_per_pixel[codec] > \
                v.decode_cycles_per_pixel[codec]
        # the paper's target codec is the expensive one
        assert v.encode_cycles_per_pixel["h264"] > \
            v.encode_cycles_per_pixel["mpeg4"]
        assert v.player_initial_buffer > 0

    def test_web_server_gap(self):
        w = self.cal.web
        assert w.lighttpd_request_cpu < w.apache_prefork_request_cpu
        assert w.lighttpd_conn_memory < w.apache_prefork_conn_memory
        assert w.php_page_cpu > w.db_point_query_cpu

    def test_calibration_is_immutable(self):
        with pytest.raises(Exception):
            self.cal.nic_rate = 0  # frozen dataclass

    def test_override_single_knob(self):
        cal = Calibration(cores_per_host=16)
        assert cal.cores_per_host == 16
        assert cal.cpu_hz == DEFAULT_CALIBRATION.cpu_hz


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["A", "BB"], [[1, 2.5], [33, 4.0]], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert lines[1] == "="
        assert len({len(l) for l in lines[2:]}) == 1  # aligned columns

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456]], floatfmt=".2f")
        assert "1.23" in out and "1.2345" not in out

    def test_bool_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_wide_cells_stretch_columns(self):
        out = format_table(["h"], [["a-very-long-cell-value"]])
        header_line = out.splitlines()[0]
        assert len(header_line) >= len("a-very-long-cell-value")
