from collections import Counter

import pytest

from repro.common.errors import MapReduceError
from repro.common.units import KiB, MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.mapreduce import (
    JobTracker,
    MapReduceJob,
    compute_splits,
    grep_job,
    partition_for,
    synthetic_scan_job,
    tokenize,
    word_count_job,
)

TEXT = b"""the cloud is a cloud of clouds
video services run in the cloud
the nobody song plays in the video
map and reduce shorten the search
"""


def make_env(n_hosts=5, block_size=1 * KiB, replication=2):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, block_size=block_size, replication=replication)
    return cluster, fs


def write(cluster, fs, path, data, host="node1"):
    cluster.run(cluster.engine.process(fs.client(host).write_file(path, data)))


def run_job(cluster, fs, job, hosts=None):
    jt = JobTracker(fs, hosts)
    return cluster.run(cluster.engine.process(jt.submit(job)))


class TestSplits:
    def test_one_split_per_block(self):
        cluster, fs = make_env(block_size=64)
        write(cluster, fs, "/in", TEXT)
        splits = compute_splits(fs, ["/in"])
        assert len(splits) == -(-len(TEXT) // 64)

    def test_records_cover_all_lines_exactly_once(self):
        cluster, fs = make_env(block_size=50)
        write(cluster, fs, "/in", TEXT)
        splits = compute_splits(fs, ["/in"])
        lines = [line for s in splits for _, line in s.records]
        expected = [l.decode() for l in TEXT.split(b"\n") if l]
        assert lines == expected

    def test_line_belongs_to_block_of_first_byte(self):
        cluster, fs = make_env(block_size=10)
        write(cluster, fs, "/in", b"0123456789abcdefghij\nxy\n")
        splits = compute_splits(fs, ["/in"])
        # first line starts at offset 0 -> split 0 owns it entirely
        assert splits[0].records[0][1] == "0123456789abcdefghij"
        assert all(not s.records or s.split_id != 1 for s in splits[1:2])

    def test_locality_hints_present(self):
        cluster, fs = make_env()
        write(cluster, fs, "/in", TEXT)
        splits = compute_splits(fs, ["/in"])
        assert all(len(s.hosts) == 2 for s in splits)

    def test_synthetic_splits(self):
        cluster, fs = make_env(block_size=1 * MiB)
        cluster.run(cluster.engine.process(
            fs.client("node1").write_synthetic("/big", 3 * MiB)))
        splits = compute_splits(fs, ["/big"])
        assert all(s.synthetic for s in splits)
        assert sum(s.length for s in splits) == 3 * MiB


class TestWordCount:
    def test_counts_are_exact(self):
        cluster, fs = make_env(block_size=60)
        write(cluster, fs, "/in", TEXT)
        result = run_job(cluster, fs, word_count_job(["/in"]))
        expected = Counter(tokenize(TEXT.decode()))
        assert result.output == dict(expected)

    def test_counts_independent_of_block_size(self):
        outs = []
        for bs in (32, 60, 1 * KiB):
            cluster, fs = make_env(block_size=bs)
            write(cluster, fs, "/in", TEXT)
            outs.append(run_job(cluster, fs, word_count_job(["/in"])).output)
        assert outs[0] == outs[1] == outs[2]

    def test_counts_independent_of_num_reduces(self):
        for r in (1, 3):
            cluster, fs = make_env()
            write(cluster, fs, "/in", TEXT)
            result = run_job(cluster, fs, word_count_job(["/in"], num_reduces=r))
            assert result.output == dict(Counter(tokenize(TEXT.decode())))
            assert result.counters.reduce_tasks == r

    def test_combiner_reduces_shuffle(self):
        def shuffle_bytes(use_combiner):
            cluster, fs = make_env(block_size=64)
            write(cluster, fs, "/in", TEXT * 20)
            result = run_job(
                cluster, fs,
                word_count_job(["/in"], use_combiner=use_combiner))
            return result.counters.shuffle_bytes

        assert shuffle_bytes(True) < shuffle_bytes(False)

    def test_output_written_to_hdfs(self):
        cluster, fs = make_env()
        write(cluster, fs, "/in", TEXT)
        job = word_count_job(["/in"], num_reduces=2, output_path="/out/wc")
        result = run_job(cluster, fs, job)
        assert result.part_paths == ["/out/wc/part-r-00000", "/out/wc/part-r-00001"]
        reader = fs.client("node1")
        text = b""
        for p in result.part_paths:
            text += cluster.run(cluster.engine.process(reader.read_file(p)))
        assert b"cloud\t" in text

    def test_counters_populated(self):
        cluster, fs = make_env(block_size=60)
        write(cluster, fs, "/in", TEXT)
        result = run_job(cluster, fs, word_count_job(["/in"]))
        c = result.counters
        assert c.map_tasks == len(compute_splits(fs, ["/in"]))
        assert c.map_input_records == 4
        assert c.map_output_records > 0
        assert c.reduce_input_groups == len(result.output)
        assert 0 <= c.locality_rate <= 1

    def test_duration_positive_and_deterministic(self):
        def run_once():
            cluster, fs = make_env(block_size=60)
            write(cluster, fs, "/in", TEXT * 50)
            return run_job(cluster, fs, word_count_job(["/in"])).duration

        d1, d2 = run_once(), run_once()
        assert d1 > 0
        assert d1 == d2


class TestGrepAndSynthetic:
    def test_grep_counts_matches(self):
        cluster, fs = make_env()
        write(cluster, fs, "/in", TEXT)
        result = run_job(cluster, fs, grep_job(["/in"], r"cloud[s]?"))
        assert result.output["cloud"] == 3
        assert result.output["clouds"] == 1

    def test_synthetic_job_runs_with_costs_only(self):
        cluster, fs = make_env(block_size=1 * MiB)
        cluster.run(cluster.engine.process(
            fs.client("node1").write_synthetic("/big", 8 * MiB)))
        result = run_job(cluster, fs, synthetic_scan_job(["/big"]))
        assert result.output == {}
        assert result.duration > 0
        assert result.counters.map_tasks == 8


class TestSchedulingAndScaling:
    def test_locality_rate_high_when_trackers_are_datanodes(self):
        cluster, fs = make_env(6, block_size=256)
        write(cluster, fs, "/in", TEXT * 40)
        result = run_job(cluster, fs, word_count_job(["/in"]))
        assert result.counters.locality_rate >= 0.5

    def test_more_nodes_faster_on_large_input(self):
        def duration(n_trackers):
            cluster = Cluster(10)
            fs = Hdfs(cluster, block_size=4 * MiB, replication=2)
            big_text = TEXT * 2000  # ~250 KiB real ... pad synthetic? keep real
            write(cluster, fs, "/in", big_text * 40)
            hosts = sorted(fs.datanodes)[:n_trackers]
            jt = JobTracker(fs, hosts)
            return cluster.run(
                cluster.engine.process(jt.submit(word_count_job(["/in"])))
            ).duration

        assert duration(4) < duration(1)

    def test_bad_tracker_host(self):
        cluster, fs = make_env()
        with pytest.raises(MapReduceError):
            JobTracker(fs, ["ghost"])

    def test_job_validation(self):
        with pytest.raises(MapReduceError):
            MapReduceJob(name="x", input_paths=[], mapper=None, reducer=None)
        with pytest.raises(MapReduceError):
            word_count_job(["/in"], num_reduces=0)

    def test_partitioner_stable_and_in_range(self):
        for key in ["a", "b", ("x", 1), 42]:
            p = partition_for(key, 4)
            assert 0 <= p < 4
            assert p == partition_for(key, 4)

    def test_missing_input_raises(self):
        cluster, fs = make_env()
        jt = JobTracker(fs)
        with pytest.raises(Exception):
            cluster.run(cluster.engine.process(jt.submit(word_count_job(["/absent"]))))
