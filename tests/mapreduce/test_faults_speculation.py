from collections import Counter

import pytest

from repro.common.errors import ConfigError, TaskFailedError
from repro.common.units import KiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.mapreduce import (
    FaultModel,
    JobQueue,
    JobTracker,
    grep_job,
    tokenize,
    word_count_job,
)

TEXT = (b"cloud video nobody song stream hadoop nutch kvm opennebula ffmpeg\n"
        * 200)


def make_env(n_hosts=6, block_size=1 * KiB, seed=0):
    cluster = Cluster(n_hosts, seed=seed)
    fs = Hdfs(cluster, block_size=block_size, replication=2)
    cluster.run(cluster.engine.process(fs.client("node1").write_file("/in", TEXT)))
    return cluster, fs


EXPECTED = dict(Counter(tokenize(TEXT.decode())))


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultModel(map_failure_rate=1.5)
        with pytest.raises(ConfigError):
            FaultModel(max_attempts=0)

    def test_retries_mask_moderate_failure_rate(self):
        cluster, fs = make_env()
        jt = JobTracker(fs, fault=FaultModel(map_failure_rate=0.25))
        result = cluster.run(cluster.engine.process(
            jt.submit(word_count_job(["/in"]))))
        assert result.output == EXPECTED
        assert result.counters.failed_task_attempts > 0

    def test_reduce_failures_also_retried(self):
        cluster, fs = make_env()
        jt = JobTracker(fs, fault=FaultModel(reduce_failure_rate=0.3))
        job = word_count_job(["/in"], num_reduces=3, output_path="/out")
        result = cluster.run(cluster.engine.process(jt.submit(job)))
        assert result.output == EXPECTED
        assert len(result.part_paths) == 3

    def test_certain_failure_kills_job(self):
        cluster, fs = make_env()
        jt = JobTracker(fs, fault=FaultModel(map_failure_rate=0.95,
                                             max_attempts=2))
        with pytest.raises(TaskFailedError):
            cluster.run(cluster.engine.process(
                jt.submit(word_count_job(["/in"]))))
        assert len(cluster.log.records(kind="job_failed")) == 1

    def test_failures_cost_time(self):
        def duration(rate):
            cluster, fs = make_env(seed=3)
            jt = JobTracker(fs, fault=FaultModel(map_failure_rate=rate))
            return cluster.run(cluster.engine.process(
                jt.submit(word_count_job(["/in"])))).duration

        assert duration(0.4) > duration(0.0)

    def test_deterministic_given_seed(self):
        def run_once():
            cluster, fs = make_env(seed=11)
            jt = JobTracker(fs, fault=FaultModel(map_failure_rate=0.3))
            r = cluster.run(cluster.engine.process(
                jt.submit(word_count_job(["/in"]))))
            return r.duration, r.counters.failed_task_attempts

        assert run_once() == run_once()


class TestSpeculation:
    def straggler_duration(self, speculative):
        cluster, fs = make_env(6)
        slow = sorted(fs.datanodes)[0]
        jt = JobTracker(fs, speculative=speculative,
                        slowdowns={slow: 40.0})
        result = cluster.run(cluster.engine.process(
            jt.submit(word_count_job(["/in"]))))
        assert result.output == EXPECTED
        return result

    def test_speculation_masks_straggler(self):
        plain = self.straggler_duration(False)
        spec = self.straggler_duration(True)
        assert spec.duration < plain.duration
        assert spec.counters.speculative_attempts > 0

    def test_no_speculation_without_flag(self):
        result = self.straggler_duration(False)
        assert result.counters.speculative_attempts == 0

    def test_speculation_output_identical(self):
        assert (self.straggler_duration(True).output
                == self.straggler_duration(False).output)


class TestJobQueue:
    def test_fifo_order(self):
        cluster, fs = make_env()
        jq = JobQueue(JobTracker(fs))
        ev1 = jq.submit(word_count_job(["/in"]))
        ev2 = jq.submit(grep_job(["/in"], "cloud"))
        r2 = cluster.run(until=ev2)
        r1 = ev1.value
        assert r1.output == EXPECTED
        assert r2.output == {"cloud": 200}
        # strictly serial: job 2 starts after job 1 finishes
        assert r2.started >= r1.finished

    def test_failed_job_does_not_block_queue(self):
        cluster, fs = make_env()
        jq = JobQueue(JobTracker(fs))
        bad = jq.submit(word_count_job(["/absent"]))   # missing input
        good = jq.submit(grep_job(["/in"], "nobody"))
        with pytest.raises(Exception):
            cluster.run(until=bad)
        r = cluster.run(until=good)
        assert r.output == {"nobody": 200}

    def test_late_submission_restarts_drain(self):
        cluster, fs = make_env()
        jq = JobQueue(JobTracker(fs))
        ev1 = jq.submit(word_count_job(["/in"]))
        cluster.run(until=ev1)
        ev2 = jq.submit(grep_job(["/in"], "kvm"))
        r2 = cluster.run(until=ev2)
        assert r2.output == {"kvm": 200}


class TestBoundedJobQueue:
    def test_overflow_is_shed_immediately(self):
        from repro.common.errors import AdmissionShedError

        cluster, fs = make_env()
        jq = JobQueue(JobTracker(fs), max_queued_jobs=1)
        running = jq.submit(word_count_job(["/in"]))
        queued = jq.submit(grep_job(["/in", ], "cloud"))
        shed = jq.submit(grep_job(["/in"], "kvm"))
        with pytest.raises(AdmissionShedError, match="queue full"):
            cluster.run(until=shed)
        assert jq.shed_jobs == 1
        # the admitted jobs still complete normally
        assert cluster.run(until=queued).output == {"cloud": 200}
        assert running.value.output == EXPECTED

    def test_unbounded_by_default(self):
        cluster, fs = make_env()
        jq = JobQueue(JobTracker(fs))
        events = [jq.submit(grep_job(["/in"], "kvm")) for _ in range(5)]
        for ev in events:
            assert cluster.run(until=ev).output == {"kvm": 200}
        assert jq.shed_jobs == 0

    def test_validation(self):
        from repro.common.errors import MapReduceError

        cluster, fs = make_env()
        with pytest.raises(MapReduceError):
            JobQueue(JobTracker(fs), max_queued_jobs=0)

    def test_pressure_suppresses_speculation(self):
        cluster, fs = make_env(6)
        slow = sorted(fs.datanodes)[0]
        jt = JobTracker(fs, speculative=True, slowdowns={slow: 40.0})
        jq = JobQueue(jt, max_queued_jobs=4)
        first = jq.submit(word_count_job(["/in"]))
        waiting = jq.submit(grep_job(["/in"], "cloud"))   # queue pressure
        r1 = cluster.run(until=first)
        # with a job waiting, idle slots drain backlog instead of
        # duplicating stragglers
        assert r1.counters.speculative_attempts == 0
        assert jt.speculation_suppressed > 0
        assert cluster.run(until=waiting).output == {"cloud": 200}
