"""Distributed sort (TeraSort pattern) with the TotalOrderPartitioner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import MapReduceError
from repro.common.rng import RngStream
from repro.common.units import KiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.mapreduce import (
    TotalOrderPartitioner,
    run_distributed_sort,
    sample_boundaries,
)


def make_env(lines, n_hosts=6, block_size=1 * KiB):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, block_size=block_size, replication=2)
    data = ("\n".join(lines) + "\n").encode("utf-8")
    cluster.run(cluster.engine.process(fs.client("node1").write_file("/in", data)))
    return cluster, fs


def random_lines(n, seed=0):
    rng = RngStream(seed, "sortdata")
    words = ["kiwi", "apple", "zebra", "mango", "fig", "pear", "yam",
             "date", "plum", "lime"]
    return [f"{rng.choice(words)}-{rng.randint(0, 1000):04d}" for _ in range(n)]


class TestPartitioner:
    def test_routes_by_range(self):
        p = TotalOrderPartitioner(["g", "n"])
        assert p("apple", 3) == 0
        assert p("grape", 3) == 1
        assert p("zebra", 3) == 2

    def test_boundary_keys_go_right(self):
        p = TotalOrderPartitioner(["g"])
        # bisect_right: key == boundary -> the upper partition, capped
        assert p("g", 2) == 1

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(MapReduceError):
            TotalOrderPartitioner(["z", "a"])

    def test_never_exceeds_reducer_count(self):
        p = TotalOrderPartitioner(["b", "d", "f"])
        assert p("zzz", 4) == 3


class TestSampling:
    def test_boundaries_sorted_and_sized(self):
        cluster, fs = make_env(random_lines(200))
        b = sample_boundaries(fs, ["/in"], 4)
        assert len(b) == 3
        assert b == sorted(b)

    def test_single_reducer_no_boundaries(self):
        cluster, fs = make_env(random_lines(50))
        assert sample_boundaries(fs, ["/in"], 1) == []

    def test_empty_input_rejected(self):
        cluster, fs = make_env([""])
        with pytest.raises(MapReduceError):
            sample_boundaries(fs, ["/in"], 2)


class TestDistributedSort:
    def test_output_is_sorted_and_complete(self):
        lines = random_lines(300, seed=5)
        cluster, fs = make_env(lines)
        ordered, result = cluster.run(cluster.engine.process(
            run_distributed_sort(fs, ["/in"], num_reduces=4)))
        assert ordered == sorted(lines)
        assert result.counters.reduce_tasks == 4

    def test_duplicates_preserved(self):
        lines = ["b", "a", "b", "c", "a", "a"]
        cluster, fs = make_env(lines)
        ordered, _ = cluster.run(cluster.engine.process(
            run_distributed_sort(fs, ["/in"], num_reduces=2)))
        assert ordered == ["a", "a", "a", "b", "b", "c"]

    def test_reducers_receive_disjoint_ranges(self):
        lines = random_lines(200, seed=9)
        cluster, fs = make_env(lines)
        ordered, result = cluster.run(cluster.engine.process(
            run_distributed_sort(fs, ["/in"], num_reduces=3,
                                 output_path="/sorted")))
        # each part file's keys form a contiguous range: concatenation of
        # the part files in order equals the global sort
        reader = fs.client("node1")
        concat = []
        for part in result.part_paths:
            data = cluster.run(cluster.engine.process(reader.read_file(part)))
            concat.extend(l.split("\t")[0] for l in
                          data.decode().splitlines() if l)
        assert concat == sorted(set(lines))

    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=6),
                    min_size=1, max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_property_sort_matches_builtin(self, lines):
        cluster, fs = make_env(lines)
        ordered, _ = cluster.run(cluster.engine.process(
            run_distributed_sort(fs, ["/in"], num_reduces=3)))
        assert ordered == sorted(l for l in lines if l)
