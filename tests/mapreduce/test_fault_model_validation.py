"""FaultModel hardening: kind validation + tracker crash draws (satellite)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import RngStream
from repro.mapreduce import FaultModel


class TestKindValidation:
    def test_unknown_kind_rejected(self):
        fault = FaultModel(map_failure_rate=0.5)
        rng = RngStream(0)
        with pytest.raises(ConfigError, match="unknown attempt kind"):
            fault.attempt_fails(rng, "shuffle")
        with pytest.raises(ConfigError):
            fault.attempt_fails(rng, "MAP")  # case-sensitive, like Hadoop conf

    def test_known_kinds_accepted(self):
        fault = FaultModel()
        rng = RngStream(0)
        assert fault.attempt_fails(rng, "map") is False
        assert fault.attempt_fails(rng, "reduce") is False


class TestTrackerCrashRate:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultModel(tracker_crash_rate=-0.1)
        with pytest.raises(ConfigError):
            FaultModel(tracker_crash_rate=1.0)
        assert FaultModel(tracker_crash_rate=0.5).tracker_crash_rate == 0.5

    def test_zero_rate_never_crashes(self):
        fault = FaultModel()
        rng = RngStream(1)
        assert not any(fault.tracker_crashes(rng) for _ in range(100))

    def test_draws_match_rate_and_are_seeded(self):
        fault = FaultModel(tracker_crash_rate=0.3)
        draws = [fault.tracker_crashes(RngStream(7).child(str(i)))
                 for i in range(500)]
        assert 0.2 < sum(draws) / len(draws) < 0.4
        again = [fault.tracker_crashes(RngStream(7).child(str(i)))
                 for i in range(500)]
        assert draws == again  # same seed, same crashes
