import pytest

from repro.common.errors import (
    ConfigError,
    FileAlreadyExists,
    FileNotFoundInHdfs,
    HdfsError,
    ReplicationError,
)
from repro.common.units import MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs


def make_fs(n_hosts=5, **kw):
    cluster = Cluster(n_hosts)
    kw.setdefault("block_size", 8 * MiB)
    fs = Hdfs(cluster, **kw)
    return cluster, fs


class TestConfig:
    def test_default_topology(self):
        cluster, fs = make_fs(4)
        assert fs.namenode_host == "node0"
        assert sorted(fs.datanodes) == ["node1", "node2", "node3"]

    def test_replication_exceeds_nodes(self):
        with pytest.raises(ConfigError):
            make_fs(3, replication=3)  # only 2 datanodes

    def test_bad_namenode_host(self):
        with pytest.raises(ConfigError):
            make_fs(3, namenode_host="ghost")

    def test_bad_block_size(self):
        with pytest.raises(ConfigError):
            make_fs(3, block_size=0)


class TestWriteRead:
    def test_real_data_roundtrip(self):
        cluster, fs = make_fs()
        client = fs.client("node1")
        data = b"the quick brown fox" * 1000
        p = cluster.engine.process(client.write_file("/videos/meta.txt", data))
        cluster.run(p)
        p = cluster.engine.process(client.read_file("/videos/meta.txt"))
        assert cluster.run(p) == data

    def test_synthetic_write_and_length(self):
        cluster, fs = make_fs()
        client = fs.client("node1")
        p = cluster.engine.process(client.write_synthetic("/videos/a.avi", 20 * MiB))
        inode = cluster.run(p)
        assert inode.length == 20 * MiB
        assert len(inode.blocks) == 3  # 8 + 8 + 4
        p = cluster.engine.process(client.read_file("/videos/a.avi"))
        assert cluster.run(p) == 20 * MiB

    def test_replication_places_n_copies(self):
        cluster, fs = make_fs(replication=3)
        client = fs.client("node1")
        p = cluster.engine.process(client.write_synthetic("/f", 1 * MiB))
        inode = cluster.run(p)
        block = inode.blocks[0]
        assert len(fs.namenode.locations(block.block_id)) == 3
        assert fs.total_stored_bytes() == 3 * MiB

    def test_writer_local_replica(self):
        cluster, fs = make_fs()
        client = fs.client("node2")
        p = cluster.engine.process(client.write_synthetic("/f", 1 * MiB))
        inode = cluster.run(p)
        assert "node2" in fs.namenode.locations(inode.blocks[0].block_id)

    def test_duplicate_create_rejected(self):
        cluster, fs = make_fs()
        client = fs.client()

        def flow():
            yield cluster.engine.process(client.write_file("/f", b"x"))
            yield cluster.engine.process(client.write_file("/f", b"y"))

        with pytest.raises(FileAlreadyExists):
            cluster.run(cluster.engine.process(flow()))

    def test_read_missing_file(self):
        cluster, fs = make_fs()
        client = fs.client()
        with pytest.raises(FileNotFoundInHdfs):
            cluster.run(cluster.engine.process(client.read_file("/nope")))

    def test_bad_path_rejected(self):
        cluster, fs = make_fs()
        client = fs.client()
        for bad in ["noslash", "/trailing/", "/dou//ble"]:
            with pytest.raises(HdfsError):
                cluster.run(cluster.engine.process(client.write_file(bad, b"x")))

    def test_listdir_and_exists_and_delete(self):
        cluster, fs = make_fs()
        client = fs.client()

        def flow():
            yield cluster.engine.process(client.write_file("/d/a", b"1"))
            yield cluster.engine.process(client.write_file("/d/b", b"2"))
            yield cluster.engine.process(client.write_file("/other", b"3"))

        cluster.run(cluster.engine.process(flow()))
        assert client.listdir("/d") == ["/d/a", "/d/b"]
        assert client.exists("/d/a")
        client.delete("/d/a")
        assert not client.exists("/d/a")
        # replicas physically dropped
        assert fs.total_stored_bytes() == (1 + 1) * fs.replication

    def test_replication_factor_larger_than_live_nodes(self):
        cluster, fs = make_fs(5)
        client = fs.client()
        p = cluster.engine.process(client.write_file("/f", b"x", replication=9))
        with pytest.raises(ReplicationError):
            cluster.run(p)

    def test_stat(self):
        cluster, fs = make_fs()
        client = fs.client()
        cluster.run(cluster.engine.process(client.write_file("/f", b"abc")))
        st = client.stat("/f")
        assert st.length == 3
        assert st.complete


class TestLocalityAndTiming:
    def test_local_read_faster_than_remote(self):
        def read_time(reader_host):
            cluster, fs = make_fs()
            writer = fs.client("node1")
            cluster.run(cluster.engine.process(
                writer.write_synthetic("/f", 32 * MiB, replication=1)))
            t0 = cluster.now
            reader = fs.client(reader_host)
            cluster.run(cluster.engine.process(reader.read_file("/f")))
            return cluster.now - t0

        local = read_time("node1")   # replica is on node1 (writer-local)
        remote = read_time("node4")
        assert local < remote

    def test_preferred_block_host_prefers_local(self):
        cluster, fs = make_fs()
        writer = fs.client("node1")
        cluster.run(cluster.engine.process(
            writer.write_synthetic("/f", 1 * MiB, replication=2)))
        assert writer.preferred_block_host("/f", 0) == "node1"

    def test_pipeline_write_slower_with_more_replicas(self):
        def write_time(repl):
            cluster, fs = make_fs()
            client = fs.client("node1")
            p = cluster.engine.process(
                client.write_synthetic("/f", 64 * MiB, replication=repl))
            cluster.run(p)
            return cluster.now

        # more replicas => more disk writes + transfers somewhere
        assert write_time(1) < write_time(3)


class TestFailureHandling:
    def setup_with_data(self, replication=3):
        cluster, fs = make_fs(6, replication=replication)
        client = fs.client("node1")
        p = cluster.engine.process(client.write_synthetic("/f", 16 * MiB))
        inode = cluster.run(p)
        return cluster, fs, inode

    def test_kill_datanode_detected_and_rereplicated(self):
        cluster, fs, inode = self.setup_with_data()
        fs.start()
        victim = sorted(fs.namenode.locations(inode.blocks[0].block_id))[0]
        fs.kill_datanode(victim)
        # run past the datanode timeout + monitor period + copy time
        cluster.run(until=cluster.now + cluster.cal.hadoop.datanode_timeout + 60)
        fs.stop()
        for block in inode.blocks:
            assert len(fs.namenode.locations(block.block_id)) >= 3
        assert fs.namenode.rereplications_done >= 1

    def test_read_survives_single_failure(self):
        cluster, fs, inode = self.setup_with_data()
        victim = sorted(fs.namenode.locations(inode.blocks[0].block_id))[0]
        fs.kill_datanode(victim)
        fs.namenode.dead_datanodes.add(victim)  # simulate detection
        reader = fs.client("node1")
        p = cluster.engine.process(reader.read_file("/f"))
        assert cluster.run(p) == 16 * MiB

    def test_all_replicas_lost_is_reported(self):
        cluster, fs, inode = self.setup_with_data(replication=1)
        (only,) = fs.namenode.locations(inode.blocks[0].block_id)
        fs.kill_datanode(only)
        fs.namenode.dead_datanodes.add(only)
        assert fs.namenode.missing_blocks()
        reader = fs.client("node1")
        with pytest.raises(HdfsError):
            cluster.run(cluster.engine.process(reader.read_file("/f")))

    def test_under_replicated_count(self):
        cluster, fs, inode = self.setup_with_data()
        assert fs.namenode.under_replicated_count() == 0
        victim = sorted(fs.namenode.locations(inode.blocks[0].block_id))[0]
        fs.kill_datanode(victim)
        fs.namenode.dead_datanodes.add(victim)
        assert fs.namenode.under_replicated_count() == len(inode.blocks)

    def test_heartbeat_keeps_node_alive(self):
        cluster, fs, _ = self.setup_with_data()
        fs.start()
        cluster.run(until=cluster.now + 100)
        assert fs.namenode.check_datanodes(cluster.cal.hadoop.datanode_timeout) == []
        fs.stop()

    def test_stop_allows_engine_drain(self):
        cluster, fs, _ = self.setup_with_data()
        fs.start()
        cluster.run(until=cluster.now + 10)
        fs.stop()
        cluster.run()  # must terminate
        assert True
