import pytest

from repro.common.errors import HdfsError, ReplicationError, SafeModeError
from repro.common.units import GiB, MiB
from repro.hardware import Cluster
from repro.hdfs import (
    Hdfs,
    SafeModeController,
    balancer,
    decommission,
    fsck,
    utilisations,
)


def make_fs(n_hosts=6, replication=2, block_size=8 * MiB):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, replication=replication, block_size=block_size)
    return cluster, fs


def write(cluster, fs, path, size, host="node1", replication=None):
    cluster.run(cluster.engine.process(
        fs.client(host).write_synthetic(path, size, replication=replication)))


class TestFsck:
    def test_healthy_cluster(self):
        cluster, fs = make_fs()
        write(cluster, fs, "/a", 10 * MiB)
        write(cluster, fs, "/b", 20 * MiB)
        report = fsck(fs)
        assert report.healthy
        assert len(report.files) == 2
        assert "HEALTHY" in report.summary()

    def test_detects_under_replication(self):
        cluster, fs = make_fs(replication=3)
        write(cluster, fs, "/a", 10 * MiB)
        inode = fs.namenode.get_file("/a")
        victim = sorted(fs.namenode.locations(inode.blocks[0].block_id))[0]
        fs.kill_datanode(victim)
        fs.namenode.dead_datanodes.add(victim)
        report = fsck(fs)
        assert not report.healthy
        assert report.total_under_replicated >= 1
        assert report.total_missing == 0

    def test_detects_missing_blocks(self):
        cluster, fs = make_fs()
        write(cluster, fs, "/a", 10 * MiB, replication=1)
        inode = fs.namenode.get_file("/a")
        (only,) = fs.namenode.locations(inode.blocks[0].block_id)
        fs.kill_datanode(only)
        fs.namenode.dead_datanodes.add(only)
        report = fsck(fs)
        assert report.total_missing == len(inode.blocks)
        assert "CORRUPT" in report.summary()


class TestSafeMode:
    def test_mutations_refused_in_safe_mode(self):
        cluster, fs = make_fs()
        sm = SafeModeController(fs)
        sm.enter()
        with pytest.raises(SafeModeError):
            cluster.run(cluster.engine.process(
                fs.client("node1").write_file("/x", b"data")))

    def test_leaves_after_enough_reports(self):
        cluster, fs = make_fs(6)  # 5 datanodes
        sm = SafeModeController(fs, threshold=0.6)
        sm.enter()
        for dn in sorted(fs.datanodes)[:2]:
            sm.report(dn)
        assert sm.active
        sm.report(sorted(fs.datanodes)[2])  # 3/5 = 0.6
        assert not sm.active
        # mutations work again
        write(cluster, fs, "/x", 1 * MiB)
        assert fs.namenode.exists("/x")

    def test_unknown_datanode_report(self):
        _, fs = make_fs()
        sm = SafeModeController(fs)
        sm.enter()
        with pytest.raises(HdfsError):
            sm.report("ghost")

    def test_threshold_validation(self):
        _, fs = make_fs()
        with pytest.raises(HdfsError):
            SafeModeController(fs, threshold=0.0)

    def test_enter_idempotent(self):
        cluster, fs = make_fs()
        sm = SafeModeController(fs)
        sm.enter()
        sm.enter()
        sm.leave()
        write(cluster, fs, "/x", 1 * MiB)  # create restored exactly once


class TestBalancer:
    def test_balances_skewed_cluster(self):
        cluster, fs = make_fs(6, replication=1)
        # everything lands on the writer's local node -> maximal skew
        for i in range(10):
            write(cluster, fs, f"/v/{i}", 8 * MiB, host="node1")
        cap = 1 * GiB
        before = utilisations(fs, cap)
        assert max(before.values()) - min(before.values()) > 0.05
        report = cluster.run(cluster.engine.process(
            balancer(fs, capacity=cap, threshold=0.02)))
        after = report.utilisations_after
        assert max(after.values()) - min(after.values()) < \
            max(before.values()) - min(before.values())
        assert report.moves > 0
        assert report.bytes_moved > 0

    def test_balanced_cluster_is_noop(self):
        cluster, fs = make_fs(4, replication=3)  # replicas everywhere
        write(cluster, fs, "/a", 8 * MiB)
        report = cluster.run(cluster.engine.process(
            balancer(fs, capacity=1 * GiB, threshold=0.5)))
        assert report.moves == 0

    def test_data_still_readable_after_balancing(self):
        cluster, fs = make_fs(6, replication=1)
        for i in range(6):
            write(cluster, fs, f"/v/{i}", 8 * MiB, host="node1")
        cluster.run(cluster.engine.process(
            balancer(fs, capacity=1 * GiB, threshold=0.02)))
        for i in range(6):
            got = cluster.run(cluster.engine.process(
                fs.client("node2").read_file(f"/v/{i}")))
            assert got == 8 * MiB
        assert fsck(fs).healthy

    def test_bad_capacity(self):
        _, fs = make_fs()
        with pytest.raises(HdfsError):
            balancer(fs, capacity=0)


class TestDecommission:
    def test_graceful_drain_preserves_data(self):
        cluster, fs = make_fs(6, replication=2)
        for i in range(4):
            write(cluster, fs, f"/v/{i}", 8 * MiB, host="node1")
        moved = cluster.run(cluster.engine.process(decommission(fs, "node1")))
        assert moved >= 0
        assert "node1" in fs.namenode.dead_datanodes
        assert fs.datanode("node1").blocks == {}
        report = fsck(fs)
        assert report.total_missing == 0
        # files still fully readable from elsewhere
        for i in range(4):
            got = cluster.run(cluster.engine.process(
                fs.client("node2").read_file(f"/v/{i}")))
            assert got == 8 * MiB

    def test_single_replica_blocks_are_moved_not_lost(self):
        cluster, fs = make_fs(6, replication=1)
        write(cluster, fs, "/only", 8 * MiB, host="node1")
        cluster.run(cluster.engine.process(decommission(fs, "node1")))
        assert fsck(fs).total_missing == 0

    def test_last_node_refused(self):
        cluster, fs = make_fs(3, replication=1)
        cluster.run(cluster.engine.process(decommission(fs, "node1")))
        with pytest.raises(ReplicationError):
            cluster.run(cluster.engine.process(decommission(fs, "node2")))
