"""Checksum verification, corrupt-replica handling, the block scanner."""

import pytest

from repro.common.errors import HdfsError
from repro.common.units import MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs


def make_fs(replication=3, n_hosts=6):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, replication=replication, block_size=8 * MiB)
    data = b"frame data " * 100000  # ~1 MiB real payload
    cluster.run(cluster.engine.process(
        fs.client("node1").write_file("/v/movie", data)))
    inode = fs.namenode.get_file("/v/movie")
    return cluster, fs, inode, data


class TestCorruptReads:
    def test_read_falls_through_to_good_replica(self):
        cluster, fs, inode, data = make_fs()
        block = inode.blocks[0]
        # corrupt the replica the reader would pick first
        first = sorted(fs.namenode.locations(block.block_id))[0]
        fs.datanode(first).corrupt_replica(block.block_id)
        got = cluster.run(cluster.engine.process(
            fs.client("node0").read_file("/v/movie")))
        assert got == data
        # the corrupt replica was reported and dropped
        assert first not in fs.namenode.locations(block.block_id)
        assert len(cluster.log.records(kind="corrupt_replica")) == 1

    def test_reader_local_corrupt_replica_also_retried(self):
        cluster, fs, inode, data = make_fs()
        block = inode.blocks[0]
        assert "node1" in fs.namenode.locations(block.block_id)
        fs.datanode("node1").corrupt_replica(block.block_id)
        got = cluster.run(cluster.engine.process(
            fs.client("node1").read_file("/v/movie")))
        assert got == data

    def test_all_replicas_corrupt_is_an_error(self):
        cluster, fs, inode, _ = make_fs()
        block = inode.blocks[0]
        for dn in list(fs.namenode.locations(block.block_id)):
            fs.datanode(dn).corrupt_replica(block.block_id)
        with pytest.raises(HdfsError):
            cluster.run(cluster.engine.process(
                fs.client("node0").read_file("/v/movie")))

    def test_corrupting_absent_replica_rejected(self):
        cluster, fs, inode, _ = make_fs()
        block = inode.blocks[0]
        outsider = next(n for n in fs.datanodes
                        if n not in fs.namenode.locations(block.block_id))
        with pytest.raises(HdfsError):
            fs.datanode(outsider).corrupt_replica(block.block_id)


class TestBlockScanner:
    def test_scan_once_detects_and_reports(self):
        cluster, fs, inode, _ = make_fs()
        block = inode.blocks[0]
        victim = sorted(fs.namenode.locations(block.block_id))[0]
        fs.datanode(victim).corrupt_replica(block.block_id)
        found = cluster.run(cluster.engine.process(
            fs.datanode(victim).scan_once()))
        assert found == [block.block_id]
        assert victim not in fs.namenode.locations(block.block_id)
        assert fs.namenode.under_replicated

    def test_scanner_plus_monitor_heal_to_full_replication(self):
        cluster, fs, inode, data = make_fs()
        block = inode.blocks[0]
        victim = sorted(fs.namenode.locations(block.block_id))[0]
        fs.datanode(victim).corrupt_replica(block.block_id)
        fs.start(scan_period=10)
        cluster.run(until=cluster.now + 120)
        fs.stop()
        cluster.run()
        # back at 3 healthy replicas, on live nodes, data intact
        assert len(fs.namenode.locations(block.block_id)) == 3
        got = cluster.run(cluster.engine.process(
            fs.client("node0").read_file("/v/movie")))
        assert got == data
        assert fs.namenode.rereplications_done >= 1

    def test_clean_scan_finds_nothing(self):
        cluster, fs, inode, _ = make_fs()
        dn = sorted(fs.namenode.locations(inode.blocks[0].block_id))[0]
        found = cluster.run(cluster.engine.process(fs.datanode(dn).scan_once()))
        assert found == []

    def test_scanner_stops_for_drain(self):
        cluster, fs, _, _ = make_fs()
        fs.start(scan_period=5)
        cluster.run(until=cluster.now + 12)
        fs.stop()
        cluster.run()  # must terminate
