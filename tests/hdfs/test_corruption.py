"""Checksum verification, corrupt-replica handling, the block scanner."""

import pytest

from repro.common.errors import HdfsError
from repro.common.units import MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs


def make_fs(replication=3, n_hosts=6):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, replication=replication, block_size=8 * MiB)
    data = b"frame data " * 100000  # ~1 MiB real payload
    cluster.run(cluster.engine.process(
        fs.client("node1").write_file("/v/movie", data)))
    inode = fs.namenode.get_file("/v/movie")
    return cluster, fs, inode, data


class TestCorruptReads:
    def test_read_falls_through_to_good_replica(self):
        cluster, fs, inode, data = make_fs()
        block = inode.blocks[0]
        # corrupt the replica the reader would pick first
        first = sorted(fs.namenode.locations(block.block_id))[0]
        fs.datanode(first).corrupt_replica(block.block_id)
        got = cluster.run(cluster.engine.process(
            fs.client("node0").read_file("/v/movie")))
        assert got == data
        # the corrupt replica was reported and dropped
        assert first not in fs.namenode.locations(block.block_id)
        assert len(cluster.log.records(kind="corrupt_replica")) == 1

    def test_reader_local_corrupt_replica_also_retried(self):
        cluster, fs, inode, data = make_fs()
        block = inode.blocks[0]
        assert "node1" in fs.namenode.locations(block.block_id)
        fs.datanode("node1").corrupt_replica(block.block_id)
        got = cluster.run(cluster.engine.process(
            fs.client("node1").read_file("/v/movie")))
        assert got == data

    def test_all_replicas_corrupt_is_an_error(self):
        cluster, fs, inode, _ = make_fs()
        block = inode.blocks[0]
        for dn in list(fs.namenode.locations(block.block_id)):
            fs.datanode(dn).corrupt_replica(block.block_id)
        with pytest.raises(HdfsError):
            cluster.run(cluster.engine.process(
                fs.client("node0").read_file("/v/movie")))

    def test_corrupting_absent_replica_rejected(self):
        cluster, fs, inode, _ = make_fs()
        block = inode.blocks[0]
        outsider = next(n for n in fs.datanodes
                        if n not in fs.namenode.locations(block.block_id))
        with pytest.raises(HdfsError):
            fs.datanode(outsider).corrupt_replica(block.block_id)


class TestBlockScanner:
    def test_scan_once_detects_and_reports(self):
        cluster, fs, inode, _ = make_fs()
        block = inode.blocks[0]
        victim = sorted(fs.namenode.locations(block.block_id))[0]
        fs.datanode(victim).corrupt_replica(block.block_id)
        found = cluster.run(cluster.engine.process(
            fs.datanode(victim).scan_once()))
        assert found == [block.block_id]
        assert victim not in fs.namenode.locations(block.block_id)
        assert fs.namenode.under_replicated

    def test_scanner_plus_monitor_heal_to_full_replication(self):
        cluster, fs, inode, data = make_fs()
        block = inode.blocks[0]
        victim = sorted(fs.namenode.locations(block.block_id))[0]
        fs.datanode(victim).corrupt_replica(block.block_id)
        fs.start(scan_period=10)
        cluster.run(until=cluster.now + 120)
        fs.stop()
        cluster.run()
        # back at 3 healthy replicas, on live nodes, data intact
        assert len(fs.namenode.locations(block.block_id)) == 3
        got = cluster.run(cluster.engine.process(
            fs.client("node0").read_file("/v/movie")))
        assert got == data
        assert fs.namenode.rereplications_done >= 1

    def test_clean_scan_finds_nothing(self):
        cluster, fs, inode, _ = make_fs()
        dn = sorted(fs.namenode.locations(inode.blocks[0].block_id))[0]
        found = cluster.run(cluster.engine.process(fs.datanode(dn).scan_once()))
        assert found == []

    def test_scanner_stops_for_drain(self):
        cluster, fs, _, _ = make_fs()
        fs.start(scan_period=5)
        cluster.run(until=cluster.now + 12)
        fs.stop()
        cluster.run()  # must terminate


class TestSoleReplicaCorruption:
    """Corruption of the *last* healthy replica must not silently become
    data loss: the damaged copy is retained for salvage and the block is
    surfaced as missing."""

    def make_single(self):
        cluster = Cluster(5)
        fs = Hdfs(cluster, replication=1, block_size=8 * MiB)
        data = b"the only copy " * 1000
        cluster.run(cluster.engine.process(
            fs.client("node1").write_file("/v/only", data)))
        block = fs.namenode.get_file("/v/only").blocks[0]
        holder = next(iter(fs.namenode.locations(block.block_id)))
        return cluster, fs, block, holder

    def test_last_replica_retained_and_marked_missing(self):
        cluster, fs, block, holder = self.make_single()
        fs.datanode(holder).corrupt_replica(block.block_id)
        found = cluster.run(cluster.engine.process(
            fs.datanode(holder).scan_once()))
        assert found == [block.block_id]
        # retained, not dropped -- but never counted as healthy
        assert fs.namenode.locations(block.block_id) == {holder}
        assert fs.namenode.healthy_locations(block.block_id) == set()
        assert block.block_id in fs.namenode.missing_blocks()
        assert cluster.log.records(kind="block_missing_corrupt")
        missing = cluster.metrics.counter(
            "hdfs_blocks_missing_all_corrupt_total", "")
        assert missing.value == 1
        # the damaged bytes are still on disk for forensics/salvage
        assert block.block_id in fs.datanode(holder).blocks

    def test_duplicate_reports_counted_once(self):
        cluster, fs, block, holder = self.make_single()
        fs.namenode.report_corrupt(holder, block.block_id)
        fs.namenode.report_corrupt(holder, block.block_id)
        corrupt = cluster.metrics.counter("hdfs_corrupt_replicas_total", "")
        missing = cluster.metrics.counter(
            "hdfs_blocks_missing_all_corrupt_total", "")
        assert corrupt.value == 1 and missing.value == 1

    def test_salvage_rereplication_converges_and_stops(self):
        cluster, fs, block, holder = self.make_single()
        fs.datanode(holder).corrupt_replica(block.block_id)
        fs.namenode.report_corrupt(holder, block.block_id)
        fs.start()
        cluster.run(until=cluster.now + 60)
        fs.stop()
        cluster.run()
        # exactly one salvage copy: damaged bytes now sit on two disks,
        # both flagged corrupt, and the block stays missing
        assert fs.namenode.salvage_rereplications == 1
        holders = fs.namenode.locations(block.block_id)
        assert len(holders) == 2
        assert fs.namenode.corrupt_replicas[block.block_id] == holders
        assert block.block_id in fs.namenode.missing_blocks()
        salvage = cluster.metrics.counter(
            "hdfs_salvage_rereplications_total", "")
        assert salvage.value == 1

    def test_multi_replica_corruption_retains_only_final_copy(self):
        cluster, fs, inode, _ = make_fs(replication=3)
        block = inode.blocks[0]
        replicas = sorted(fs.namenode.locations(block.block_id))
        for name in replicas[:2]:
            fs.namenode.report_corrupt(name, block.block_id)
            assert name not in fs.namenode.locations(block.block_id)
        fs.namenode.report_corrupt(replicas[2], block.block_id)
        assert fs.namenode.locations(block.block_id) == {replicas[2]}
        assert block.block_id in fs.namenode.missing_blocks()


class TestScannerRaceWithRereplication:
    def test_scanner_detection_races_monitor_copy(self):
        # One replica is lost to a crash while the surviving replica is
        # silently corrupt.  The monitor's first copy attempt trips the
        # checksum (scanner-on-read), the replica is retained as the last
        # copy, and the system converges to a salvage state instead of
        # crashing or looping.
        cluster, fs, inode, _ = make_fs(replication=2, n_hosts=5)
        block = inode.blocks[0]
        a, b = sorted(fs.namenode.locations(block.block_id))
        fs.kill_datanode(b)
        fs.datanode(a).corrupt_replica(block.block_id)
        fs.start(scan_period=30)
        cluster.run(until=cluster.now + 120)
        fs.stop()
        cluster.run()
        # converged: the corrupt copy was retained and salvaged once
        holders = fs.namenode.locations(block.block_id)
        assert a in holders and len(holders) == 2
        assert holders <= fs.namenode.corrupt_replicas[block.block_id]
        assert fs.namenode.salvage_rereplications == 1
        assert block.block_id in fs.namenode.missing_blocks()
        # other blocks of the file were re-replicated normally
        for other in inode.blocks[1:]:
            assert len(fs.namenode.healthy_locations(other.block_id)) == 2
