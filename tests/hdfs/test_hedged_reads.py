"""Hedged block reads: tail cut, budget bounds, determinism, race freedom."""

from repro.chaos import ChaosMonkey, DiskStall
from repro.common.units import MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs


def make_stack(n_hosts=6, seed=0, replication=3):
    cluster = Cluster(n_hosts, seed=seed)
    fs = Hdfs(cluster, replication=replication)
    return cluster, fs


def write(cluster, fs, path, size, host="node0"):
    cluster.run(cluster.engine.process(
        fs.client(host).write_synthetic(path, size)))


def read_once(cluster, fs, path, host="node0"):
    engine = cluster.engine
    t0 = engine.now

    def _run():
        yield from fs.client(host).read_file(path)

    cluster.run(engine.process(_run()))
    return engine.now - t0


def prime(cluster, fs, path, n=5):
    """Feed the latency tracker enough calm reads to arm hedging."""
    for _ in range(n):
        read_once(cluster, fs, path)


class TestHedging:
    def test_no_hedge_on_a_calm_cluster(self):
        cluster, fs = make_stack()
        fs.enable_hedged_reads()
        write(cluster, fs, "/v", 16 * MiB)
        prime(cluster, fs, "/v", n=8)
        assert fs.hedge.budget.spent == 0

    def test_stalled_primary_is_hedged_around(self):
        cluster, fs = make_stack()
        fs.enable_hedged_reads()
        write(cluster, fs, "/v", 16 * MiB)
        prime(cluster, fs, "/v")
        calm = read_once(cluster, fs, "/v")

        victim = sorted(fs.namenode.locations(
            fs.namenode.get_file("/v").blocks[0].block_id))[0]
        monkey = ChaosMonkey(cluster)
        done = monkey.unleash([DiskStall(
            host=victim, at=0.0, duration=300.0, severity="severe")])
        stalled = 0.0
        # the rotating replica picker hits the stalled node within a few
        # reads; the hedge must cap every one near the calm latency
        # rather than the 15-40x stall
        for _ in range(4):
            stalled = max(stalled, read_once(cluster, fs, "/v"))
        assert fs.hedge.budget.spent >= 1
        assert stalled < 5.0 * calm
        cluster.run(done)

    def test_hedge_budget_is_never_exceeded(self):
        cluster, fs = make_stack()
        fs.enable_hedged_reads(ratio=0.2, burst=2.0)
        write(cluster, fs, "/v", 16 * MiB)
        prime(cluster, fs, "/v")
        victim = sorted(fs.namenode.locations(
            fs.namenode.get_file("/v").blocks[0].block_id))[0]
        monkey = ChaosMonkey(cluster)
        monkey.unleash([DiskStall(
            host=victim, at=0.0, duration=3600.0, severity="severe")])
        for _ in range(20):
            read_once(cluster, fs, "/v")
        budget = fs.hedge.budget
        assert budget.spent <= budget.ratio * budget.earned + budget.burst

    def test_hedged_read_still_works_with_single_replica(self):
        cluster, fs = make_stack(n_hosts=2, replication=1)
        fs.enable_hedged_reads()
        write(cluster, fs, "/solo", 8 * MiB)
        prime(cluster, fs, "/solo")
        # nowhere to hedge to: the read must fall through, not crash
        assert read_once(cluster, fs, "/solo") > 0.0

    def test_corrupt_primary_falls_back_to_another_replica(self):
        cluster, fs = make_stack()
        fs.enable_hedged_reads()
        write(cluster, fs, "/v", 8 * MiB)
        prime(cluster, fs, "/v")
        block_id = fs.namenode.get_file("/v").blocks[0].block_id
        # corrupt every replica but one: checksum failures report the
        # replica to the NameNode (dropping it from the block map), and
        # the hedged loop must retry until it lands on the good copy
        locs = sorted(fs.namenode.locations(block_id))
        for victim in locs[:-1]:
            fs.datanode(victim).corrupt_replica(block_id)
        for _ in range(4):
            assert read_once(cluster, fs, "/v") > 0.0
        assert set(fs.namenode.locations(block_id)) == {locs[-1]}


class TestDeterminism:
    @staticmethod
    def _storm_signature(seed=11):
        cluster, fs = make_stack(seed=seed)
        fs.enable_hedged_reads()
        write(cluster, fs, "/v", 16 * MiB)
        prime(cluster, fs, "/v")
        victim = sorted(fs.namenode.locations(
            fs.namenode.get_file("/v").blocks[0].block_id))[0]
        monkey = ChaosMonkey(cluster)
        monkey.unleash([DiskStall(
            host=victim, at=0.0, duration=600.0, severity="severe")])
        durations = tuple(read_once(cluster, fs, "/v") for _ in range(6))
        return durations, fs.hedge.budget.spent, cluster.engine.now

    def test_same_seed_replays_bit_identically(self):
        assert self._storm_signature(11) == self._storm_signature(11)

    def test_hedged_storm_is_race_clean_under_the_sanitizer(self):
        cluster, fs = make_stack()
        san = cluster.engine.enable_sanitizer()
        fs.enable_hedged_reads()
        write(cluster, fs, "/v", 16 * MiB)
        prime(cluster, fs, "/v")
        victim = sorted(fs.namenode.locations(
            fs.namenode.get_file("/v").blocks[0].block_id))[0]
        monkey = ChaosMonkey(cluster)
        monkey.unleash([DiskStall(
            host=victim, at=0.0, duration=600.0, severity="severe")])
        for _ in range(6):
            read_once(cluster, fs, "/v")
        assert san.ok, san.report()


class TestMetrics:
    def test_hedge_counters_are_exported(self):
        cluster, fs = make_stack()
        fs.enable_hedged_reads()
        write(cluster, fs, "/v", 16 * MiB)
        prime(cluster, fs, "/v")
        victim = sorted(fs.namenode.locations(
            fs.namenode.get_file("/v").blocks[0].block_id))[0]
        monkey = ChaosMonkey(cluster)
        monkey.unleash([DiskStall(
            host=victim, at=0.0, duration=600.0, severity="severe")])
        for _ in range(4):
            read_once(cluster, fs, "/v")
        assert fs.hedge.m_hedged.value == fs.hedge.budget.spent >= 1
        wins = sum(fs.hedge.m_wins.labels(winner=w).value
                   for w in ("primary", "hedge"))
        assert wins >= 1
