import pytest

from repro.common.errors import FileNotFoundInHdfs, HdfsError
from repro.common.units import MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs, TrashPolicy, fsck


def make_env(interval=100.0):
    cluster = Cluster(5)
    fs = Hdfs(cluster, replication=2, block_size=4 * MiB)
    trash = TrashPolicy(fs, interval=interval)
    data = b"precious video metadata" * 100
    cluster.run(cluster.engine.process(
        fs.client("node1").write_file("/videos/mv.txt", data)))
    return cluster, fs, trash, data


class TestTrash:
    def test_delete_moves_to_trash(self):
        cluster, fs, trash, _ = make_env()
        entry = trash.delete("/videos/mv.txt")
        assert not fs.namenode.exists("/videos/mv.txt")
        assert fs.namenode.exists("/.Trash/videos/mv.txt")
        assert entry.trash_path == "/.Trash/videos/mv.txt"
        assert "/videos/mv.txt" in trash
        # replicas untouched (it's a metadata rename)
        assert fs.total_stored_bytes() > 0

    def test_restore_roundtrip(self):
        cluster, fs, trash, data = make_env()
        trash.delete("/videos/mv.txt")
        trash.restore("/videos/mv.txt")
        assert fs.namenode.exists("/videos/mv.txt")
        assert not fs.namenode.exists("/.Trash/videos/mv.txt")
        got = cluster.run(cluster.engine.process(
            fs.client("node2").read_file("/videos/mv.txt")))
        assert got == data

    def test_expunge_frees_replicas(self):
        cluster, fs, trash, _ = make_env()
        trash.delete("/videos/mv.txt")
        trash.expunge_one("/videos/mv.txt")
        assert fs.total_stored_bytes() == 0
        assert not fs.namenode.exists("/.Trash/videos/mv.txt")

    def test_expired_entries_expunged(self):
        cluster, fs, trash, _ = make_env(interval=50.0)
        trash.delete("/videos/mv.txt")

        def wait():
            yield cluster.engine.timeout(60.0)

        cluster.run(cluster.engine.process(wait()))
        expired = trash.expunge_expired()
        assert expired == ["/videos/mv.txt"]
        assert fs.total_stored_bytes() == 0

    def test_fresh_entries_survive_checkpoint(self):
        cluster, fs, trash, _ = make_env(interval=1000.0)
        trash.delete("/videos/mv.txt")
        assert trash.expunge_expired() == []
        assert fs.namenode.exists("/.Trash/videos/mv.txt")

    def test_restore_blocked_when_path_retaken(self):
        cluster, fs, trash, _ = make_env()
        trash.delete("/videos/mv.txt")
        cluster.run(cluster.engine.process(
            fs.client("node1").write_file("/videos/mv.txt", b"new")))
        with pytest.raises(HdfsError):
            trash.restore("/videos/mv.txt")

    def test_double_delete_expunges_previous(self):
        cluster, fs, trash, _ = make_env()
        trash.delete("/videos/mv.txt")
        cluster.run(cluster.engine.process(
            fs.client("node1").write_file("/videos/mv.txt", b"second")))
        trash.delete("/videos/mv.txt")
        assert len(trash.listing()) == 1
        got = fs.namenode.get_file("/.Trash/videos/mv.txt")
        assert got.length == len(b"second")

    def test_errors(self):
        cluster, fs, trash, _ = make_env()
        with pytest.raises(FileNotFoundInHdfs):
            trash.delete("/nope")
        with pytest.raises(FileNotFoundInHdfs):
            trash.restore("/nope")
        with pytest.raises(FileNotFoundInHdfs):
            trash.expunge_one("/nope")
        with pytest.raises(HdfsError):
            TrashPolicy(fs, interval=0)
        trash.delete("/videos/mv.txt")
        with pytest.raises(HdfsError):
            trash.delete("/.Trash/videos/mv.txt")

    def test_fsck_healthy_through_the_cycle(self):
        cluster, fs, trash, _ = make_env()
        trash.delete("/videos/mv.txt")
        assert fsck(fs).healthy
        trash.restore("/videos/mv.txt")
        assert fsck(fs).healthy
