"""DataNode failure racing an in-flight write pipeline (chaos satellite).

The client must notice the dead pipeline stage mid-block, rebuild the
pipeline from the survivors, finish the file under-replicated, and let
the NameNode's replication monitor heal it back to full replication.
"""

import pytest

from repro.common.errors import HdfsError, PartitionError
from repro.common.units import MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs


def make_fs(n_hosts=5, seed=0, **kw):
    cluster = Cluster(n_hosts, seed=seed)
    kw.setdefault("block_size", 8 * MiB)
    kw.setdefault("replication", 2)
    return cluster, Hdfs(cluster, **kw)


def kill_later(cluster, fs, victim, at):
    def _chaos():
        yield cluster.engine.timeout(at)
        fs.datanodes[victim].fail()
    cluster.engine.process(_chaos())


class TestPipelineFailure:
    def test_write_survives_datanode_crash_midstream(self):
        cluster, fs = make_fs()
        client = fs.client("node1")
        write = cluster.engine.process(
            client.write_synthetic("/mv.avi", 64 * MiB))
        # every pipeline includes 2 of 4 datanodes; node2 dies mid-write
        kill_later(cluster, fs, "node2", at=1.0)
        inode = cluster.run(write)
        assert inode.length == 64 * MiB
        recoveries = cluster.log.records(source="hdfs.client",
                                         kind="pipeline_recovered")
        assert recoveries  # at least one block had its pipeline rebuilt
        # blocks finished on a shortened pipeline are flagged for repair
        assert fs.namenode.under_replicated_count() > 0

    def test_every_block_keeps_a_live_replica(self):
        cluster, fs = make_fs()
        client = fs.client("node1")
        write = cluster.engine.process(
            client.write_synthetic("/mv.avi", 64 * MiB))
        kill_later(cluster, fs, "node2", at=1.0)
        inode = cluster.run(write)
        for block in inode.blocks:
            locs = fs.namenode.locations(block.block_id)
            assert any(fs.datanodes[d].alive for d in locs), \
                f"block {block.block_id} lost every live replica"

    def test_monitor_restores_full_replication(self):
        cluster, fs = make_fs()
        fs.start()
        client = fs.client("node1")
        write = cluster.engine.process(
            client.write_synthetic("/mv.avi", 64 * MiB))
        kill_later(cluster, fs, "node2", at=1.0)
        inode = cluster.run(write)
        # run past the heartbeat timeout + a few monitor periods
        cluster.run(cluster.engine.now + 120.0)
        fs.stop()
        cluster.run()
        assert fs.namenode.under_replicated_count() == 0
        assert not fs.namenode.missing_blocks()
        for block in inode.blocks:
            live = {d for d in fs.namenode.locations(block.block_id)
                    if fs.datanodes[d].alive}
            assert len(live) >= fs.replication

    def test_all_targets_dead_raises(self):
        cluster, fs = make_fs(4, replication=3)  # pipeline = all 3 datanodes
        client = fs.client("node1")
        write = cluster.engine.process(
            client.write_synthetic("/mv.avi", 32 * MiB))
        for victim in ("node2", "node3"):
            kill_later(cluster, fs, victim, at=1.0)
        # node1 hosts both the client and the last replica; killing the other
        # two leaves a 1-node pipeline, which still succeeds...
        inode = cluster.run(write)
        assert inode.length == 32 * MiB
        # ...but killing every datanode mid-write is fatal
        cluster2, fs2 = make_fs(4, replication=3)
        client2 = fs2.client("node0")  # client off-datanode
        write2 = cluster2.engine.process(
            client2.write_synthetic("/mv2.avi", 32 * MiB))
        for victim in ("node1", "node2", "node3"):
            kill_later(cluster2, fs2, victim, at=1.0)
        with pytest.raises((HdfsError, PartitionError)):
            cluster2.run(write2)

    def test_datanode_recover_reports_blocks_back(self):
        cluster, fs = make_fs()
        fs.start()
        client = fs.client("node1")
        inode = cluster.run(cluster.engine.process(
            client.write_synthetic("/mv.avi", 32 * MiB)))
        victim = next(iter(fs.namenode.locations(inode.blocks[0].block_id)))
        fs.datanodes[victim].fail()
        cluster.run(cluster.engine.now + 60.0)  # declared dead
        assert victim in fs.namenode.dead_datanodes
        fs.datanodes[victim].recover()
        cluster.run(cluster.engine.now + 10.0)
        fs.stop()
        cluster.run()
        assert victim not in fs.namenode.dead_datanodes
