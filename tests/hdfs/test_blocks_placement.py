import pytest
from hypothesis import given, strategies as st

from repro.common.errors import HdfsError, ReplicationError
from repro.common.rng import RngStream
from repro.hdfs import split_into_blocks
from repro.hdfs.block import Block, BlockId
from repro.hdfs.placement import PlacementPolicy


def ids():
    counter = {"n": 0}

    def nxt():
        counter["n"] += 1
        return counter["n"] - 1

    return nxt


class TestBlockSplitting:
    def test_exact_multiple(self):
        blocks = split_into_blocks(ids(), None, 128, 64)
        assert [b.length for b in blocks] == [64, 64]

    def test_remainder_block(self):
        blocks = split_into_blocks(ids(), None, 130, 64)
        assert [b.length for b in blocks] == [64, 64, 2]

    def test_small_file_single_block(self):
        blocks = split_into_blocks(ids(), b"hi", 2, 64)
        assert len(blocks) == 1
        assert blocks[0].payload == b"hi"

    def test_zero_length_file(self):
        blocks = split_into_blocks(ids(), b"", 0, 64)
        assert len(blocks) == 1
        assert blocks[0].length == 0

    def test_payload_sliced_correctly(self):
        data = bytes(range(200))
        blocks = split_into_blocks(ids(), data, 200, 64)
        assert b"".join(b.payload for b in blocks) == data

    def test_ids_unique(self):
        blocks = split_into_blocks(ids(), None, 1000, 64)
        assert len({b.block_id for b in blocks}) == len(blocks)

    def test_length_mismatch_rejected(self):
        with pytest.raises(HdfsError):
            split_into_blocks(ids(), b"abc", 5, 64)

    def test_bad_block_size(self):
        with pytest.raises(HdfsError):
            split_into_blocks(ids(), None, 10, 0)

    def test_block_payload_length_validated(self):
        with pytest.raises(HdfsError):
            Block(BlockId(0), 5, b"abcdef")

    @given(st.binary(min_size=0, max_size=3000), st.integers(min_value=1, max_value=500))
    def test_property_roundtrip(self, data, block_size):
        blocks = split_into_blocks(ids(), data, len(data), block_size)
        assert b"".join(b.payload for b in blocks) == data
        assert all(b.length <= block_size for b in blocks)
        assert sum(b.length for b in blocks) == len(data)


class TestPlacement:
    def nodes(self, n):
        return [f"dn{i}" for i in range(n)]

    def test_writer_local_first(self):
        p = PlacementPolicy(RngStream(0))
        targets = p.choose_targets(3, self.nodes(5), writer_host="dn2")
        assert targets[0] == "dn2"
        assert len(set(targets)) == 3

    def test_non_datanode_writer(self):
        p = PlacementPolicy(RngStream(0))
        targets = p.choose_targets(3, self.nodes(5), writer_host="gateway")
        assert "gateway" not in targets
        assert len(set(targets)) == 3

    def test_not_enough_nodes(self):
        p = PlacementPolicy(RngStream(0))
        with pytest.raises(ReplicationError):
            p.choose_targets(4, self.nodes(3))

    def test_bad_replication(self):
        p = PlacementPolicy(RngStream(0))
        with pytest.raises(ReplicationError):
            p.choose_targets(0, self.nodes(3))

    def test_exclusion(self):
        p = PlacementPolicy(RngStream(0))
        targets = p.choose_targets(2, self.nodes(4), exclude={"dn0", "dn1"})
        assert set(targets) <= {"dn2", "dn3"}

    def test_deterministic_given_seed(self):
        a = PlacementPolicy(RngStream(7)).choose_targets(3, self.nodes(8), "dn1")
        b = PlacementPolicy(RngStream(7)).choose_targets(3, self.nodes(8), "dn1")
        assert a == b

    def test_spread_over_many_calls(self):
        p = PlacementPolicy(RngStream(3))
        seen = set()
        for _ in range(50):
            seen.update(p.choose_targets(2, self.nodes(6)))
        assert len(seen) == 6  # every node eventually used

    def test_rereplication_target_avoids_existing(self):
        p = PlacementPolicy(RngStream(0))
        t = p.choose_rereplication_target(self.nodes(4), existing={"dn0", "dn1", "dn2"})
        assert t == "dn3"

    def test_rereplication_no_candidates(self):
        p = PlacementPolicy(RngStream(0))
        with pytest.raises(ReplicationError):
            p.choose_rereplication_target(["dn0"], existing={"dn0"})

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=6, max_value=12))
    def test_property_targets_distinct_and_live(self, repl, n_nodes):
        p = PlacementPolicy(RngStream(42))
        nodes = self.nodes(n_nodes)
        targets = p.choose_targets(repl, nodes)
        assert len(targets) == repl
        assert len(set(targets)) == repl
        assert set(targets) <= set(nodes)
