"""Edit log, checkpointing, NameNode restart with block reports."""

import pytest

from repro.common.errors import HdfsError, SafeModeError
from repro.common.units import MiB
from repro.hardware import Cluster
from repro.hdfs import (
    FsImage,
    Hdfs,
    attach_journal,
    checkpoint,
    replay_into_image,
    restart_namenode,
)
from repro.hdfs.journal import EditOp


def make_fs(n_hosts=5):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, replication=2, block_size=4 * MiB)
    log = attach_journal(fs.namenode)
    return cluster, fs, log


def write(cluster, fs, path, data):
    cluster.run(cluster.engine.process(fs.client("node1").write_file(path, data)))


class TestEditLog:
    def test_mutations_journalled(self):
        cluster, fs, log = make_fs()
        write(cluster, fs, "/a", b"x" * 100)
        ops = [op.op for op in log.ops]
        assert ops == ["create", "add_block", "complete"]

    def test_delete_journalled(self):
        cluster, fs, log = make_fs()
        write(cluster, fs, "/a", b"x")
        fs.namenode.delete("/a")
        assert log.ops[-1].op == "delete"

    def test_multi_block_file(self):
        cluster, fs, log = make_fs()
        cluster.run(cluster.engine.process(
            fs.client("node1").write_synthetic("/big", 10 * MiB)))
        adds = [op for op in log.ops if op.op == "add_block"]
        assert len(adds) == 3  # 4+4+2 MiB
        assert sum(op.length for op in adds) == 10 * MiB


class TestCheckpoint:
    def test_checkpoint_folds_and_truncates(self):
        cluster, fs, log = make_fs()
        write(cluster, fs, "/a", b"x" * 100)
        write(cluster, fs, "/b", b"y" * 50)
        image = checkpoint(fs.namenode)
        assert image.file_count == 2
        assert len(log) == 0
        # later mutations land in the fresh log only
        write(cluster, fs, "/c", b"z")
        assert image.file_count == 2
        assert len(log) == 3

    def test_replay_is_pure(self):
        base = FsImage()
        cluster, fs, log = make_fs()
        write(cluster, fs, "/a", b"x")
        out = replay_into_image(base, log.ops)
        assert base.file_count == 0
        assert out.file_count == 1

    def test_replay_delete_removes(self):
        cluster, fs, log = make_fs()
        write(cluster, fs, "/a", b"x")
        fs.namenode.delete("/a")
        image = replay_into_image(FsImage(), log.ops)
        assert image.file_count == 0

    def test_checkpoint_requires_journal(self):
        cluster = Cluster(4)
        fs = Hdfs(cluster, replication=2)
        with pytest.raises(HdfsError):
            checkpoint(fs.namenode)


class TestCrashConsistency:
    """The crash-window regression: checkpoints truncate by txid, so an op
    appended between the snapshot and the truncate is never dropped (the
    old ``clear()`` implementation silently lost it)."""

    def test_op_in_the_crash_window_survives_truncation(self):
        cluster, fs, log = make_fs()
        write(cluster, fs, "/a", b"x" * 100)
        upto = log.last_txid
        snapshot = [op for op in log.ops if op.txid <= upto]
        image = replay_into_image(FsImage(), snapshot)
        # an op lands between the two checkpoint phases
        late = log.append(EditOp("create", "/late", replication=2))
        log.truncate_through(upto)
        assert late in log.ops
        final = replay_into_image(image, log.ops)
        assert "/a" in final.files and "/late" in final.files

    def test_crash_window_op_recovered_on_restart(self):
        cluster, fs, log = make_fs()
        write(cluster, fs, "/a", b"x" * 100)
        upto = log.last_txid
        snapshot = [op for op in log.ops if op.txid <= upto]
        image = replay_into_image(FsImage(), snapshot)
        write(cluster, fs, "/late", b"z" * 10)  # inside the window
        log.truncate_through(upto)
        cluster.run(cluster.engine.process(
            restart_namenode(fs, image, list(log.ops))))
        assert fs.namenode.exists("/a") and fs.namenode.exists("/late")

    def test_double_replay_is_idempotent_by_txid(self):
        cluster, fs, log = make_fs()
        write(cluster, fs, "/a", b"x" * 100)
        stale = list(log.ops)  # a copy that survives the checkpoint
        image = checkpoint(fs.namenode)
        write(cluster, fs, "/b", b"y" * 50)
        # replaying stale (already-checkpointed) edits again is harmless:
        # their txids are covered by the image and skipped
        final = replay_into_image(image, stale + list(log.ops))
        assert final.file_count == 2
        _, blocks, complete = final.files["/a"]
        assert blocks and complete  # not reset by the stale create

    def test_txids_stay_monotonic_across_restart(self):
        cluster, fs, log = make_fs()
        write(cluster, fs, "/a", b"x" * 100)
        high = log.last_txid
        image = checkpoint(fs.namenode)
        cluster.run(cluster.engine.process(restart_namenode(fs, image)))
        write(cluster, fs, "/b", b"y" * 50)
        new_log = fs.namenode.journal
        assert all(op.txid > high for op in new_log.ops)


class TestRestart:
    def populated(self):
        cluster, fs, log = make_fs()
        data = b"the nobody video metadata " * 1000
        write(cluster, fs, "/meta", data)
        cluster.run(cluster.engine.process(
            fs.client("node2").write_synthetic("/movie", 12 * MiB)))
        return cluster, fs, log, data

    def test_restart_recovers_namespace_and_locations(self):
        cluster, fs, log, data = self.populated()
        image = checkpoint(fs.namenode)
        old_nn = fs.namenode
        nn = cluster.run(cluster.engine.process(restart_namenode(fs, image)))
        assert nn is not old_nn
        assert fs.namenode is nn
        assert nn.exists("/meta") and nn.exists("/movie")
        # locations rebuilt from block reports
        for path in ("/meta", "/movie"):
            for block in nn.get_file(path).blocks:
                assert len(nn.locations(block.block_id)) == 2

    def test_real_payload_survives_restart(self):
        cluster, fs, log, data = self.populated()
        image = checkpoint(fs.namenode)
        cluster.run(cluster.engine.process(restart_namenode(fs, image)))
        got = cluster.run(cluster.engine.process(
            fs.client("node3").read_file("/meta")))
        assert got == data

    def test_unreplayed_edits_also_recovered(self):
        cluster, fs, log, _ = self.populated()
        image = checkpoint(fs.namenode)
        write(cluster, fs, "/late", b"post-checkpoint")
        edits = list(log.ops)
        cluster.run(cluster.engine.process(
            restart_namenode(fs, image, edits)))
        assert fs.namenode.exists("/late")

    def test_safe_mode_lifts_after_all_reports(self):
        cluster, fs, log, _ = self.populated()
        image = checkpoint(fs.namenode)
        nn = cluster.run(cluster.engine.process(restart_namenode(fs, image)))
        assert not nn.safemode.active
        write(cluster, fs, "/after", b"ok")  # mutations allowed again

    def test_safe_mode_holds_with_dead_datanode(self):
        cluster, fs, log, _ = self.populated()
        image = checkpoint(fs.namenode)
        fs.kill_datanode("node4")
        nn = cluster.run(cluster.engine.process(
            restart_namenode(fs, image, safemode_threshold=0.999)))
        assert nn.safemode.active  # 3/4 reported < 99.9%
        with pytest.raises(SafeModeError):
            write(cluster, fs, "/blocked", b"no")

    def test_lower_threshold_tolerates_dead_node(self):
        cluster, fs, log, _ = self.populated()
        image = checkpoint(fs.namenode)
        fs.kill_datanode("node4")
        nn = cluster.run(cluster.engine.process(
            restart_namenode(fs, image, safemode_threshold=0.7)))
        assert not nn.safemode.active

    def test_datanodes_reregister_with_new_namenode(self):
        cluster, fs, log, _ = self.populated()
        fs.start()
        image = checkpoint(fs.namenode)
        nn = cluster.run(cluster.engine.process(restart_namenode(fs, image)))
        before = dict(nn.last_heartbeat)
        cluster.run(until=cluster.now + 15)
        fs.stop()
        cluster.run()
        # heartbeats re-pointed to the new NameNode without reconfiguration
        for name in fs.datanodes:
            assert fs.datanodes[name].namenode is nn
            assert nn.last_heartbeat[name] > before[name]

    def test_dead_datanode_reregisters_on_recovery(self):
        cluster, fs, log, _ = self.populated()
        image = checkpoint(fs.namenode)
        victim = "node4"
        held = set(fs.datanodes[victim].blocks)
        fs.kill_datanode(victim)
        nn = cluster.run(cluster.engine.process(
            restart_namenode(fs, image, safemode_threshold=0.7)))
        assert victim not in nn.last_heartbeat
        fs.datanodes[victim].recover()
        # recovery re-registers with the *new* NameNode and re-reports
        # every surviving replica
        assert victim in nn.last_heartbeat
        for block_id in held:
            assert victim in nn.locations(block_id)

    def test_next_block_id_preserved(self):
        cluster, fs, log, _ = self.populated()
        before = fs.namenode._next_block_id
        image = checkpoint(fs.namenode)
        cluster.run(cluster.engine.process(restart_namenode(fs, image)))
        assert fs.namenode._next_block_id == before
        # new blocks get fresh ids
        write(cluster, fs, "/new", b"n")
        new_block = fs.namenode.get_file("/new").blocks[0]
        assert new_block.block_id.id >= before
