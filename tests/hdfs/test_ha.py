"""NameNode HA: journal quorum, fencing epochs, tailing, fenced failover."""

import pytest

from repro.common.errors import (
    ConfigError,
    FencedError,
    QuorumLostError,
    StandbyError,
)
from repro.common.units import MiB
from repro.hardware import Cluster
from repro.hdfs import (
    HaNameNodePair,
    Hdfs,
    JournalQuorum,
    QuorumWriter,
)
from repro.hdfs.journal import EditOp

JOURNALS = ["node0", "node1", "node2"]


def make_quorum(n_hosts=5):
    cluster = Cluster(n_hosts)
    return cluster, JournalQuorum(cluster, list(JOURNALS))


def make_ha(n_hosts=6, replication=2):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, replication=replication, block_size=4 * MiB,
              namenode_host="node0")
    last = cluster.host_names[-1]
    pair = HaNameNodePair(fs, standby_host=last, journal_hosts=list(JOURNALS))
    return cluster, fs, pair


def write(cluster, fs, host, path, data):
    return cluster.run(cluster.engine.process(
        fs.client(host).write_file(path, data)))


class TestJournalQuorum:
    def test_shape_validation(self):
        cluster = Cluster(5)
        with pytest.raises(ConfigError):
            JournalQuorum(cluster, ["node0", "node1"])        # even / too few
        with pytest.raises(ConfigError):
            JournalQuorum(cluster, ["node0", "node0", "node1"])  # dup
        with pytest.raises(ConfigError):
            JournalQuorum(cluster, ["node0", "node1", "ghost"])  # unknown

    def test_majority_ack_append(self):
        cluster, quorum = make_quorum()
        writer = QuorumWriter(quorum, "node0")
        writer.activate()
        entry = writer.append(EditOp("create", "/a", replication=2))
        assert entry.txid == 2  # txid 1 is the activation marker
        for jn in quorum.nodes:
            assert jn.last_txid == 2
        assert quorum.committed_txid("node0") == 2

    def test_quorum_lost_append_writes_nothing(self):
        cluster, quorum = make_quorum()
        writer = QuorumWriter(quorum, "node0")
        writer.activate()
        cluster.network.partition(["node0"])
        with pytest.raises(QuorumLostError):
            writer.append(EditOp("create", "/a", replication=2))
        # the pre-check refused before transmitting: no orphan anywhere
        for jn in quorum.nodes:
            assert jn.last_txid == 1
        assert not writer.fenced  # quorum loss is not a fence

    def test_activation_needs_majority(self):
        cluster, quorum = make_quorum()
        cluster.network.partition(["node0"])
        with pytest.raises(QuorumLostError):
            QuorumWriter(quorum, "node0").activate()

    def test_new_epoch_fences_old_writer(self):
        cluster, quorum = make_quorum()
        old = QuorumWriter(quorum, "node0")
        old.activate()
        old.append(EditOp("create", "/a", replication=2))
        new = QuorumWriter(quorum, "node1")
        assert new.activate() == old.epoch + 1
        with pytest.raises(FencedError):
            old.append(EditOp("create", "/b", replication=2))
        assert old.fenced
        # the new writer adopted the committed prefix and keeps going
        assert any(e.op.path == "/a" for e in new.entries)
        new.append(EditOp("create", "/b", replication=2))

    def test_epoch_marker_dominates_fenced_orphan(self):
        # The nasty recovery case: a fenced writer scatters an orphan onto
        # the one journal node the new epoch has not promised yet.  The
        # orphan ties the marker on txid but loses on epoch, so recovery
        # must never adopt it.
        cluster, quorum = make_quorum()
        old = QuorumWriter(quorum, "node0")
        old.activate()
        old.append(EditOp("create", "/committed", replication=2))
        # node0 drops out; a new writer activates through node1+node2
        cluster.network.partition(["node0"])
        new = QuorumWriter(quorum, "node1")
        new.activate()
        # partition flips: the old writer now reaches node0 (unpromised)
        # and node1 (promised) -- a majority pre-check passes, node0
        # accepts the orphan, node1 rejects => fenced with side effects
        cluster.network.heal_partition()
        cluster.network.partition(["node2"])
        with pytest.raises(FencedError):
            old.append(EditOp("create", "/orphan", replication=2))
        node0 = quorum.nodes[0]
        assert any(e.op.path == "/orphan" for e in node0.entries)
        cluster.network.heal_partition()
        # epoch-aware recovery: the marker (higher epoch) wins over the
        # orphan (same txid, older epoch)
        best = quorum.best_log("node2")
        assert best.last_epoch == new.epoch
        third = QuorumWriter(quorum, "node2")
        third.activate()
        assert all(e.op.path != "/orphan" for e in third.entries)
        assert any(e.op.path == "/committed" for e in third.entries)
        # the catch-up batch erased the orphan from node0 too
        assert all(e.op.path != "/orphan" for e in node0.entries)

    def test_committed_txid_is_conservative(self):
        cluster, quorum = make_quorum()
        writer = QuorumWriter(quorum, "node0")
        writer.activate()
        writer.append(EditOp("create", "/a", replication=2))
        assert quorum.committed_txid("node0") == 2
        cluster.network.partition(["node3", "node0"])
        assert quorum.committed_txid("node3") is None  # no majority view


class TestHaPair:
    def test_construction_validation(self):
        cluster = Cluster(5)
        fs = Hdfs(cluster, replication=2)
        with pytest.raises(ConfigError):
            HaNameNodePair(fs, standby_host="node0", journal_hosts=JOURNALS)
        with pytest.raises(ConfigError):
            HaNameNodePair(fs, standby_host="ghost", journal_hosts=JOURNALS)
        pair = HaNameNodePair(fs, standby_host="node4",
                              journal_hosts=list(JOURNALS))
        assert fs.ha is pair
        with pytest.raises(ConfigError):
            HaNameNodePair(fs, standby_host="node3",
                           journal_hosts=list(JOURNALS))

    def test_acked_write_is_quorum_committed(self):
        cluster, fs, pair = make_ha()
        write(cluster, fs, "node2", "/movie", b"x" * (1 * MiB))
        committed = pair.quorum.committed_txid(pair.active_host)
        # marker + create + add_block + complete
        assert committed == 4
        ops = [e.op.op for e in pair.quorum.nodes[0].entries]
        assert ops == ["noop", "create", "add_block", "complete"]

    def test_standby_tails_to_identical_namespace(self):
        cluster, fs, pair = make_ha()
        write(cluster, fs, "node2", "/a", b"x" * 100)
        write(cluster, fs, "node3", "/b", b"y" * (5 * MiB))
        assert not pair.standby.exists("/a")
        pair.tail_once()
        assert pair.standby.exists("/a") and pair.standby.exists("/b")
        for path in ("/a", "/b"):
            ours = pair.standby.get_file(path)
            theirs = fs.namenode.get_file(path)
            assert [b.block_id for b in ours.blocks] == \
                   [b.block_id for b in theirs.blocks]
            assert ours.complete
        assert pair.caught_up()

    def test_bootstrap_covers_pre_ha_files(self):
        cluster = Cluster(6)
        fs = Hdfs(cluster, replication=2, block_size=4 * MiB)
        write(cluster, fs, "node2", "/old", b"z" * 100)
        pair = HaNameNodePair(fs, standby_host="node5",
                              journal_hosts=list(JOURNALS))
        assert pair.standby.exists("/old")
        block = pair.standby.get_file("/old").blocks[0]
        assert pair.standby.locations(block.block_id) == \
               fs.namenode.locations(block.block_id)

    def test_standby_refuses_direct_mutation(self):
        cluster, fs, pair = make_ha()
        with pytest.raises(StandbyError):
            pair.standby.create_file("/nope", 2)

    def test_datanodes_dual_heartbeat(self):
        cluster, fs, pair = make_ha()
        fs.start()
        cluster.run(until=10.0)
        fs.stop()
        pair.stop()
        cluster.run()
        for name in fs.datanodes:
            assert pair.active.last_heartbeat[name] > 0
            assert pair.standby.last_heartbeat[name] > 0

    def test_standby_learns_block_locations_live(self):
        cluster, fs, pair = make_ha()
        write(cluster, fs, "node2", "/v", b"q" * (1 * MiB))
        pair.tail_once()
        block = pair.standby.get_file("/v").blocks[0]
        # dual block_received: the standby knows the holders without a
        # block report, so it can serve immediately after promotion
        assert pair.standby.locations(block.block_id) == \
               fs.namenode.locations(block.block_id)

    def test_read_namenode_prefers_active_falls_back_to_standby(self):
        cluster, fs, pair = make_ha()
        write(cluster, fs, "node2", "/r", b"r" * 64)
        assert pair.read_namenode("node2") is pair.active
        pair.tail_once()
        cluster.host(pair.active_host).fail()
        assert pair.read_namenode("node2") is pair.standby

    def test_stale_standby_refuses_reads(self):
        cluster, fs, pair = make_ha()
        write(cluster, fs, "node2", "/r", b"r" * 64)
        cluster.host(pair.active_host).fail()  # before any tailing
        with pytest.raises(StandbyError):
            pair.read_namenode("node2")


class TestPromote:
    def test_promote_swaps_roles_and_bumps_epoch(self):
        cluster, fs, pair = make_ha()
        write(cluster, fs, "node2", "/f", b"d" * 100)
        old_active, old_standby = pair.active_host, pair.standby_host
        epoch = pair.promote()
        assert epoch == 2
        assert pair.active_host == old_standby
        assert pair.standby_host == old_active
        assert fs.namenode is pair.active
        assert fs.namenode_host == pair.active_host
        # promotion caught the new active up without waiting for a tail
        assert pair.active.exists("/f")

    def test_writes_work_after_promote(self):
        cluster, fs, pair = make_ha()
        pair.promote()
        write(cluster, fs, "node2", "/after", b"a" * 100)
        assert fs.namenode.exists("/after")
        assert pair.quorum.committed_txid(pair.active_host) is not None

    def test_deposed_reachable_active_is_demoted(self):
        cluster, fs, pair = make_ha()
        old_nn = pair.active
        pair.promote()
        with pytest.raises(StandbyError):
            old_nn.create_file("/stale", 2)

    def test_partitioned_deposed_active_is_fenced_by_journal(self):
        # Split-brain drill: the old active is alive but unreachable when
        # deposed, so nobody can tell it.  Its next commit attempt must
        # die on the journal's epoch fence, then it demotes itself.
        cluster, fs, pair = make_ha()
        old_nn, old_host = pair.active, pair.active_host
        cluster.network.partition([old_host])
        pair.promote()
        cluster.network.heal_partition()
        with pytest.raises(FencedError):
            old_nn.create_file("/split-brain", 2)
        assert "/split-brain" not in old_nn.namespace  # undo ran
        with pytest.raises(StandbyError):
            old_nn.create_file("/split-brain-2", 2)
        fenced = cluster.metrics.counter("hdfs_ha_fenced_writes_total", "")
        assert fenced.value == 1

    def test_partitioned_deposed_active_quorum_lost_while_cut(self):
        cluster, fs, pair = make_ha()
        old_nn, old_host = pair.active, pair.active_host
        cluster.network.partition([old_host])
        pair.promote()
        # still inside the partition: can't reach a majority at all
        with pytest.raises(QuorumLostError):
            old_nn.create_file("/island", 2)
        assert "/island" not in old_nn.namespace

    def test_promote_refused_without_quorum(self):
        cluster, fs, pair = make_ha()
        cluster.network.partition([pair.standby_host])
        with pytest.raises(QuorumLostError):
            pair.promote()

    def test_promote_refused_with_dead_standby(self):
        cluster, fs, pair = make_ha()
        cluster.host(pair.standby_host).fail()
        with pytest.raises(StandbyError):
            pair.promote()

    def test_acked_writes_survive_promote(self):
        cluster, fs, pair = make_ha()
        data = {}
        for i in range(4):
            data[f"/f{i}"] = bytes([i]) * 256
            write(cluster, fs, "node2", f"/f{i}", data[f"/f{i}"])
        pair.promote()
        for path, payload in data.items():
            got = cluster.run(cluster.engine.process(
                fs.client("node3").read_file(path)))
            assert got == payload


class TestClientFailover:
    def test_client_retries_through_active_crash(self):
        cluster, fs, pair = make_ha()
        fs.start()
        pair.start()
        engine = cluster.engine
        client = fs.client("node2")
        acked = []

        def workload():
            for i in range(6):
                yield engine.timeout(5.0)
                yield from client.write_file(f"/w{i}", bytes([i]) * 512)
                acked.append(f"/w{i}")

        def killer():
            yield engine.timeout(12.0)
            cluster.host(pair.active_host).fail()
            yield engine.timeout(2.0)
            pair.promote()

        engine.process(workload(), name="workload")
        engine.process(killer(), name="killer")
        cluster.run(until=120.0)
        fs.stop()
        pair.stop()
        cluster.run()
        assert len(acked) == 6
        for path in acked:
            assert fs.namenode.exists(path)
        assert pair.failovers == 1
