import pytest

from repro.common.calibration import Calibration
from repro.common.errors import CapacityError
from repro.common.units import GHz, MiB
from repro.hardware import Cluster, PhysicalHost
from repro.sim import Engine


@pytest.fixture
def cal():
    return Calibration()


@pytest.fixture
def eng():
    return Engine()


class TestMemoryLedger:
    def test_allocate_and_free(self, eng, cal):
        h = PhysicalHost(eng, "n0", cal, memory=1000)
        h.allocate_memory(600)
        assert h.memory_free == 400
        h.free_memory(100)
        assert h.memory_used == 500

    def test_over_allocation_rejected(self, eng, cal):
        h = PhysicalHost(eng, "n0", cal, memory=1000)
        with pytest.raises(CapacityError):
            h.allocate_memory(1001)

    def test_over_free_rejected(self, eng, cal):
        h = PhysicalHost(eng, "n0", cal, memory=1000)
        h.allocate_memory(10)
        with pytest.raises(CapacityError):
            h.free_memory(11)

    def test_negative_rejected(self, eng, cal):
        h = PhysicalHost(eng, "n0", cal)
        with pytest.raises(CapacityError):
            h.allocate_memory(-1)


class TestCompute:
    def test_compute_duration_matches_cycles(self, eng, cal):
        h = PhysicalHost(eng, "n0", cal, cores=1, cpu_hz=1 * GHz)
        p = eng.process(h.compute(2 * GHz))
        eng.run(p)
        assert eng.now == pytest.approx(2.0)

    def test_overhead_scales_duration(self, eng, cal):
        h = PhysicalHost(eng, "n0", cal, cores=1, cpu_hz=1 * GHz)
        p = eng.process(h.compute(1 * GHz, overhead=1.5))
        eng.run(p)
        assert eng.now == pytest.approx(1.5)

    def test_cores_limit_parallelism(self, eng, cal):
        h = PhysicalHost(eng, "n0", cal, cores=2, cpu_hz=1 * GHz)
        done = []

        def job(i):
            yield eng.process(h.compute(1 * GHz))
            done.append((i, eng.now))

        for i in range(4):
            eng.process(job(i))
        eng.run()
        assert [t for _, t in done] == [1, 1, 2, 2]

    def test_utilisation(self, eng, cal):
        h = PhysicalHost(eng, "n0", cal, cores=2, cpu_hz=1 * GHz)
        eng.process(h.compute(1 * GHz))
        eng.run(until=2.0)
        # one core busy 1s of 2 cores * 2s = 0.25
        assert h.cpu_utilisation() == pytest.approx(0.25)

    def test_utilisation_zero_window(self, eng, cal):
        h = PhysicalHost(eng, "n0", cal)
        assert h.cpu_utilisation() == 0.0

    def test_invalid_shape(self, eng, cal):
        with pytest.raises(CapacityError):
            PhysicalHost(eng, "bad", cal, cores=0)


class TestDisk:
    def test_sequential_io_time(self, eng, cal):
        h = PhysicalHost(eng, "n0", cal)
        nbytes = int(cal.disk_read_rate)  # exactly 1 second of streaming
        p = eng.process(h.disk.read(nbytes))
        eng.run(p)
        assert eng.now == pytest.approx(cal.disk_seek_time + 1.0)
        assert h.disk.bytes_read == nbytes

    def test_spindle_serializes(self, eng, cal):
        h = PhysicalHost(eng, "n0", cal)
        nbytes = int(cal.disk_write_rate)  # 1 s each
        times = []

        def w():
            yield eng.process(h.disk.write(nbytes))
            times.append(eng.now)

        eng.process(w())
        eng.process(w())
        eng.run()
        assert times[1] - times[0] == pytest.approx(cal.disk_seek_time + 1.0)

    def test_negative_size_rejected(self, eng, cal):
        h = PhysicalHost(eng, "n0", cal)
        p = eng.process(h.disk.read(-5))
        with pytest.raises(CapacityError):
            eng.run(p)


class TestCluster:
    def test_builds_named_hosts(self):
        c = Cluster(3)
        assert c.host_names == ["node0", "node1", "node2"]
        assert c.host("node1").name == "node1"

    def test_add_heterogeneous_host(self):
        c = Cluster(1)
        big = c.add_host("big", cores=16, memory=64 * 1024 * MiB)
        assert big.cores == 16
        assert c.host("big") is big

    def test_unknown_host_raises(self):
        c = Cluster(1)
        with pytest.raises(Exception):
            c.host("nope")

    def test_log_uses_sim_clock(self):
        c = Cluster(1)

        def p():
            yield c.engine.timeout(4)
            c.log.emit("test", "tick", "at four")

        c.engine.process(p())
        c.run()
        assert c.log.last("tick").time == 4

    def test_zero_hosts_rejected(self):
        with pytest.raises(Exception):
            Cluster(0)
