import pytest

from repro.common.calibration import Calibration
from repro.common.errors import SimulationError
from repro.hardware import Cluster

RATE = Calibration().nic_rate  # 1 Gb/s = 125 MB/s
LAT = Calibration().net_latency


def xfer_time(cluster, src, dst, nbytes):
    ev = cluster.network.transfer(src, dst, nbytes)
    return cluster.engine.run(until=ev)


class TestSingleFlow:
    def test_full_rate_when_alone(self):
        c = Cluster(2)
        t = xfer_time(c, "node0", "node1", RATE)  # 1 second of bytes
        assert t == pytest.approx(1.0 + LAT, rel=1e-6)

    def test_zero_bytes_costs_latency_only(self):
        c = Cluster(2)
        t = xfer_time(c, "node0", "node1", 0)
        assert t == pytest.approx(LAT)

    def test_loopback_is_fast(self):
        c = Cluster(1)
        t = xfer_time(c, "node0", "node0", RATE)
        assert t < 0.05

    def test_unknown_host_rejected(self):
        c = Cluster(1)
        with pytest.raises(SimulationError):
            c.network.transfer("node0", "ghost", 10)

    def test_negative_size_rejected(self):
        c = Cluster(2)
        with pytest.raises(SimulationError):
            c.network.transfer("node0", "node1", -1)


class TestSharing:
    def test_two_flows_into_same_destination_halve(self):
        """Two senders to one receiver share its downlink: each takes ~2x."""
        c = Cluster(3)
        done = {}

        def send(src):
            ev = c.network.transfer(src, "node2", RATE)
            yield ev
            done[src] = c.engine.now

        c.engine.process(send("node0"))
        c.engine.process(send("node1"))
        c.run()
        assert done["node0"] == pytest.approx(2.0 + LAT, rel=1e-3)
        assert done["node1"] == pytest.approx(2.0 + LAT, rel=1e-3)

    def test_disjoint_flows_do_not_interfere(self):
        c = Cluster(4)
        done = {}

        def send(src, dst):
            ev = c.network.transfer(src, dst, RATE)
            yield ev
            done[src] = c.engine.now

        c.engine.process(send("node0", "node1"))
        c.engine.process(send("node2", "node3"))
        c.run()
        assert done["node0"] == pytest.approx(1.0 + LAT, rel=1e-3)
        assert done["node2"] == pytest.approx(1.0 + LAT, rel=1e-3)

    def test_rate_recovers_after_flow_finishes(self):
        """Short flow + long flow into one node: long flow speeds up after."""
        c = Cluster(3)
        end = {}

        def send(src, size):
            ev = c.network.transfer(src, "node2", size)
            yield ev
            end[src] = c.engine.now

        c.engine.process(send("node0", RATE))       # 1 s worth of bytes
        c.engine.process(send("node1", 2 * RATE))   # 2 s worth
        c.run()
        # share (0.5 each) until the short flow finishes its bytes at t=2;
        # long flow then has 1*RATE left at full rate -> ends ~3.0
        assert end["node0"] == pytest.approx(2.0 + LAT, rel=1e-3)
        assert end["node1"] == pytest.approx(3.0 + LAT, rel=1e-3)

    def test_fan_out_limited_by_source_uplink(self):
        c = Cluster(4)
        end = {}

        def send(dst):
            ev = c.network.transfer("node0", dst, RATE)
            yield ev
            end[dst] = c.engine.now

        for dst in ["node1", "node2", "node3"]:
            c.engine.process(send(dst))
        c.run()
        for dst in end:
            assert end[dst] == pytest.approx(3.0 + LAT, rel=1e-3)

    def test_bytes_delivered_accounting(self):
        c = Cluster(2)
        xfer_time(c, "node0", "node1", 12345)
        assert c.network.bytes_delivered == pytest.approx(12345)

    def test_late_flow_joins_sharing(self):
        """A flow that starts midway still gets its fair share."""
        c = Cluster(3)
        end = {}

        def first():
            ev = c.network.transfer("node0", "node2", 2 * RATE)
            yield ev
            end["first"] = c.engine.now

        def second():
            yield c.engine.timeout(1.0)
            ev = c.network.transfer("node1", "node2", RATE)
            yield ev
            end["second"] = c.engine.now

        c.engine.process(first())
        c.engine.process(second())
        c.run()
        # first: full rate for 1s (1*RATE done), then half rate: 1*RATE left
        # -> 2 more seconds, ends ~3.0. second: half rate 1*RATE -> 2s, ends ~3.0
        assert end["first"] == pytest.approx(3.0 + LAT, rel=1e-3)
        assert end["second"] == pytest.approx(3.0 + LAT, rel=1e-3)


class TestHeterogeneousNics:
    def test_slow_nic_bottleneck(self):
        c = Cluster(1)
        c.add_host("slow", nic_rate=RATE / 10)
        t = xfer_time(c, "node0", "slow", RATE)
        assert t == pytest.approx(10.0 + LAT, rel=1e-3)

    def test_double_attach_rejected(self):
        c = Cluster(1)
        with pytest.raises(SimulationError):
            c.network.attach(c.hosts[0])
