"""Property-based tests of the max-min fair network model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import MiB
from repro.hardware import Cluster


@st.composite
def transfer_plans(draw):
    n_hosts = draw(st.integers(min_value=2, max_value=5))
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for _ in range(n_flows):
        src = draw(st.integers(min_value=0, max_value=n_hosts - 1))
        dst = draw(st.integers(min_value=0, max_value=n_hosts - 1))
        size = draw(st.integers(min_value=1, max_value=64)) * MiB
        start = draw(st.floats(min_value=0, max_value=5, allow_nan=False))
        flows.append((src, dst, size, start))
    return n_hosts, flows


class TestNetworkProperties:
    @given(transfer_plans())
    @settings(max_examples=50, deadline=None)
    def test_all_bytes_delivered(self, plan):
        n_hosts, flows = plan
        cluster = Cluster(n_hosts)
        hosts = cluster.host_names

        def launch(src, dst, size, start):
            yield cluster.engine.timeout(start)
            yield cluster.network.transfer(hosts[src], hosts[dst], size)

        for f in flows:
            cluster.engine.process(launch(*f))
        cluster.run()
        expected = sum(size for _, _, size, _ in flows)
        assert cluster.network.bytes_delivered == pytest.approx(expected)
        assert cluster.network.active_flow_count() == 0

    @given(transfer_plans())
    @settings(max_examples=50, deadline=None)
    def test_no_flow_beats_line_rate(self, plan):
        """Every transfer takes at least size/NIC-rate (+0 latency slack)."""
        n_hosts, flows = plan
        cluster = Cluster(n_hosts)
        hosts = cluster.host_names
        rate = cluster.cal.nic_rate
        durations = []

        def launch(src, dst, size, start):
            yield cluster.engine.timeout(start)
            dur = yield cluster.network.transfer(hosts[src], hosts[dst], size)
            if src != dst:
                durations.append((size, dur))

        for f in flows:
            cluster.engine.process(launch(*f))
        cluster.run()
        for size, dur in durations:
            assert dur >= size / rate - 1e-6

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_n_parallel_flows_share_fairly(self, n_flows, size_mib):
        """n identical flows into one sink all finish together at ~n*t1."""
        size = size_mib * MiB
        cluster = Cluster(n_flows + 1)
        sink = cluster.host_names[-1]
        ends = []

        def send(src):
            yield cluster.network.transfer(src, sink, size)
            ends.append(cluster.engine.now)

        for src in cluster.host_names[:-1]:
            cluster.engine.process(send(src))
        cluster.run()
        t_expected = n_flows * size / cluster.cal.nic_rate
        assert max(ends) == pytest.approx(t_expected, rel=1e-3, abs=1e-3)
        assert max(ends) - min(ends) < 1e-6  # all equal (perfect fairness)

    @given(st.integers(min_value=1, max_value=200) )
    @settings(max_examples=30, deadline=None)
    def test_determinism_across_runs(self, size_mib):
        def once():
            cluster = Cluster(4, seed=1)
            done = []

            def send(src, dst, size):
                yield cluster.network.transfer(src, dst, size)
                done.append((src, dst, cluster.engine.now))

            cluster.engine.process(send("node0", "node2", size_mib * MiB))
            cluster.engine.process(send("node1", "node2", 2 * size_mib * MiB))
            cluster.engine.process(send("node3", "node1", size_mib * MiB))
            cluster.run()
            return done

        assert once() == once()
