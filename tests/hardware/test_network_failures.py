"""Network fault injection: link cuts, partitions, degradation, host crashes."""

import pytest

from repro.common.calibration import Calibration
from repro.common.errors import PartitionError, SimulationError
from repro.hardware import Cluster

RATE = Calibration().nic_rate
LAT = Calibration().net_latency


class TestLinkCut:
    def test_new_transfer_to_cut_host_fails(self):
        c = Cluster(3)
        c.network.cut("node1")
        ev = c.network.transfer("node0", "node1", RATE)
        with pytest.raises(PartitionError):
            c.run(ev)
        assert c.engine.now == pytest.approx(LAT)  # fails fast, not after 1 s

    def test_inflight_flow_fails_immediately(self):
        c = Cluster(3)
        ev = c.network.transfer("node0", "node1", 10 * RATE)  # would take 10 s

        def chaos():
            yield c.engine.timeout(2.0)
            c.network.cut("node1")

        c.engine.process(chaos())
        with pytest.raises(PartitionError):
            c.run(ev)
        assert c.engine.now == pytest.approx(2.0)

    def test_unaffected_flow_speeds_up_after_cut(self):
        """Cutting one of two senders returns the shared downlink to the other."""
        c = Cluster(3)
        victim = c.network.transfer("node1", "node0", 10 * RATE)
        victim.defuse()
        survivor = c.network.transfer("node2", "node0", 2 * RATE)

        def chaos():
            yield c.engine.timeout(1.0)
            c.network.cut("node1")

        c.engine.process(chaos())
        c.run(survivor)
        # 1 s at half rate (0.5 done) + 1.5 s at full rate, plus latency
        assert c.engine.now == pytest.approx(2.5 + LAT, rel=1e-6)

    def test_restore_makes_host_reachable_again(self):
        c = Cluster(2)
        c.network.cut("node1")
        assert not c.network.reachable("node0", "node1")
        c.network.restore("node1")
        assert c.network.reachable("node0", "node1")
        t = c.run(c.network.transfer("node0", "node1", RATE))
        assert t == pytest.approx(1.0 + LAT, rel=1e-6)

    def test_cut_is_idempotent_and_validated(self):
        c = Cluster(2)
        c.network.cut("node1")
        c.network.cut("node1")  # no-op, no error
        with pytest.raises(SimulationError):
            c.network.cut("ghost")
        with pytest.raises(SimulationError):
            c.network.restore("ghost")


class TestPartition:
    def test_cross_partition_unreachable_within_ok(self):
        c = Cluster(4)
        c.network.partition(["node2", "node3"])
        assert not c.network.reachable("node0", "node2")
        assert not c.network.reachable("node3", "node1")
        assert c.network.reachable("node0", "node1")
        assert c.network.reachable("node2", "node3")

    def test_inflight_cross_flows_fail_others_survive(self):
        c = Cluster(4)
        cross = c.network.transfer("node0", "node2", 10 * RATE)
        inside = c.network.transfer("node0", "node1", 2 * RATE)

        def chaos():
            yield c.engine.timeout(1.0)
            c.network.partition(["node2", "node3"])

        c.engine.process(chaos())
        with pytest.raises(PartitionError):
            c.run(cross)
        c.run(inside)
        # both flows shared node0's uplink for 1 s, then inside ran alone
        assert c.engine.now == pytest.approx(2.5 + LAT, rel=1e-6)

    def test_heal_reconnects(self):
        c = Cluster(3)
        c.network.partition(["node2"])
        c.network.heal_partition()
        assert c.network.reachable("node0", "node2")
        t = c.run(c.network.transfer("node0", "node2", RATE))
        assert t == pytest.approx(1.0 + LAT, rel=1e-6)

    def test_unknown_hosts_rejected(self):
        c = Cluster(2)
        with pytest.raises(SimulationError):
            c.network.partition(["node0", "ghost"])

    def test_loopback_survives_everything(self):
        c = Cluster(2)
        c.network.cut("node1")
        c.network.partition(["node1"])
        assert c.network.reachable("node1", "node1")


class TestLinkDegradation:
    def test_degraded_link_slows_transfer(self):
        c = Cluster(2)
        c.network.set_link_factor("node1", 0.5)
        assert c.network.link_factor("node1") == pytest.approx(0.5)
        t = c.run(c.network.transfer("node0", "node1", RATE))
        assert t == pytest.approx(2.0 + LAT, rel=1e-6)

    def test_midflight_degradation_stretches_completion(self):
        c = Cluster(2)
        ev = c.network.transfer("node0", "node1", 2 * RATE)  # 2 s nominal

        def chaos():
            yield c.engine.timeout(1.0)
            c.network.set_link_factor("node1", 0.25)

        c.engine.process(chaos())
        c.run(ev)
        # 1 s at full rate + 4 s for the remaining half at quarter rate
        assert c.engine.now == pytest.approx(5.0 + LAT, rel=1e-6)

    def test_restore_clears_degradation(self):
        c = Cluster(2)
        c.network.set_link_factor("node1", 0.1)
        c.network.restore("node1")
        assert c.network.link_factor("node1") == pytest.approx(1.0)

    def test_factor_validated(self):
        c = Cluster(2)
        with pytest.raises(SimulationError):
            c.network.set_link_factor("node1", 0.0)
        with pytest.raises(SimulationError):
            c.network.set_link_factor("node1", 1.5)


class TestHostFailure:
    def test_fail_cuts_link_and_notifies_listeners(self):
        c = Cluster(3)
        host = c.host("node1")
        downs, ups = [], []
        host.on_fail(lambda h: downs.append(h.name))
        host.on_recover(lambda h: ups.append(h.name))
        host.fail()
        assert not host.alive
        assert downs == ["node1"]
        assert not c.network.reachable("node0", "node1")
        host.recover()
        assert host.alive
        assert ups == ["node1"]
        assert c.network.reachable("node0", "node1")

    def test_fail_is_idempotent(self):
        c = Cluster(2)
        host = c.host("node1")
        count = []
        host.on_fail(lambda h: count.append(1))
        host.fail()
        host.fail()
        assert count == [1]

    def test_failure_event_triggers_waiters(self):
        c = Cluster(2)
        host = c.host("node1")
        ev = host.failure_event()
        assert not ev.triggered

        def chaos():
            yield c.engine.timeout(3.0)
            host.fail()

        c.engine.process(chaos())
        c.run(ev)
        assert c.engine.now == pytest.approx(3.0)
        # after death, new watchers get an already-triggered event
        assert host.failure_event().triggered

    def test_disk_slowdown_scales_io(self):
        c = Cluster(1)
        c.run(c.engine.process(c.host("node0").disk.write(100 * 1024 * 1024)))
        base = c.engine.now
        c2 = Cluster(1)
        c2.host("node0").disk.set_slowdown(3.0)
        c2.run(c2.engine.process(c2.host("node0").disk.write(100 * 1024 * 1024)))
        assert c2.engine.now == pytest.approx(3.0 * base, rel=1e-6)
        with pytest.raises(Exception):
            c2.host("node0").disk.set_slowdown(0.5)
