"""Cross-layer composition tests: the point of one shared event engine.

Each test exercises two subsystems *simultaneously* and asserts both the
functional outcome and the resource-contention coupling (shared network /
CPU) that a layered simulator with separate clocks could never show.
"""

import pytest

from repro.common.units import GiB, Mbps, MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs, attach_journal, checkpoint, restart_namenode
from repro.one import OpenNebula, VmTemplate
from repro.video import (
    R_720P,
    DistributedTranscoder,
    PlaybackSession,
    StreamingServer,
    VideoFile,
)
from repro.virt import DiskImage


def clip(duration=600.0):
    return VideoFile(
        name="up.avi", container="avi", vcodec="mpeg4", acodec="mp3",
        duration=duration, resolution=R_720P, fps=25.0, bitrate=4 * Mbps,
    )


class TestMigrationDuringTranscode:
    def run_conversion(self, with_migration):
        cluster = Cluster(6)
        cloud = OpenNebula(cluster)
        for name in cluster.host_names[1:]:
            cloud.add_host(name)
        cloud.register_image(DiskImage("img", size=1 * GiB))
        vm = cloud.instantiate(VmTemplate(
            name="guest", vcpus=1, memory=2 * GiB, image="img",
            dirty_rate=50 * MiB))
        cluster.run()
        tx = DistributedTranscoder(cluster, cluster.host_names[1:],
                                   ingest_host="node1")
        conv = cluster.engine.process(
            tx.convert_distributed(clip(), vcodec="h264", container="flv"))
        migration_result = {}
        if with_migration:
            def migrate_midway():
                yield cluster.engine.timeout(30.0)
                dst = next(n for n in cluster.host_names[1:]
                           if n != vm.host_name)
                r = yield cluster.engine.process(
                    cloud.live_migrate(vm, dst, "precopy"))
                migration_result["r"] = r

            cluster.engine.process(migrate_midway())
        report = cluster.run(conv)
        return report, migration_result.get("r")

    def test_both_complete_and_contention_visible(self):
        clean, _ = self.run_conversion(False)
        contended, migration = self.run_conversion(True)
        # both finished, output identical geometry
        assert contended.output.gop_count == clean.output.gop_count
        assert migration is not None
        assert migration.downtime < 2.0
        # the 2 GiB RAM transfer stole worker bandwidth: conversion slower
        assert contended.total_time >= clean.total_time


class TestStreamingUnderUploadLoad:
    def test_viewers_slow_the_upload_pipeline(self):
        def upload_time(n_viewers):
            cluster = Cluster(6)
            for i in range(n_viewers):
                cluster.add_host(f"viewer{i}", nic_rate=100 * Mbps)
            tx = DistributedTranscoder(cluster, cluster.host_names[1:6],
                                       ingest_host="node1")
            server = StreamingServer(cluster, "node1")  # shares ingest uplink
            movie = VideoFile(
                name="m.flv", container="flv", vcodec="h264", acodec="aac",
                duration=600.0, resolution=R_720P, fps=25.0, bitrate=20 * Mbps,
            )
            for i in range(n_viewers):
                cluster.engine.process(
                    PlaybackSession(server, f"viewer{i}", movie,
                                    watch_plan=[(0.0, 300.0)]).run())
            report = cluster.run(cluster.engine.process(
                tx.convert_distributed(clip(), vcodec="h264",
                                       container="flv")))
            return report.total_time

        idle = upload_time(0)
        busy = upload_time(12)  # 12 x 20 Mb/s viewers on the ingest uplink
        # conversion is CPU-dominated, so the coupling is a bounded slowdown
        # of the scatter/gather stages -- strictly slower, deterministically
        assert busy > idle + 0.1

    def test_upload_still_correct_under_load(self):
        cluster = Cluster(6)
        cluster.add_host("viewer", nic_rate=200 * Mbps)
        tx = DistributedTranscoder(cluster, cluster.host_names[1:6],
                                   ingest_host="node1")
        server = StreamingServer(cluster, "node1")
        movie = VideoFile(
            name="m.flv", container="flv", vcodec="h264", acodec="aac",
            duration=300.0, resolution=R_720P, fps=25.0, bitrate=30 * Mbps,
        )
        cluster.engine.process(
            PlaybackSession(server, "viewer", movie).run())
        report = cluster.run(cluster.engine.process(
            tx.convert_distributed(clip(300.0), vcodec="h264",
                                   container="flv")))
        assert report.output.vcodec == "h264"
        assert report.output.duration == pytest.approx(300.0)


class TestNameNodeRestartUnderPortal:
    def test_portal_survives_namenode_restart(self):
        from repro.web import VideoPortal
        from tests.web.test_portal import register_and_login

        cluster = Cluster(6)
        fs = Hdfs(cluster, namenode_host="node0",
                  datanode_hosts=cluster.host_names[1:],
                  block_size=16 * MiB, replication=2)
        attach_journal(fs.namenode)
        portal = VideoPortal(cluster, fs, web_host="node1",
                             transcode_workers=cluster.host_names[2:])
        session = register_and_login(cluster, portal)
        resp = cluster.run(cluster.engine.process(portal.request(
            "POST", "/upload", session=session,
            params={"title": "Nobody MV", "tags": "nobody",
                    "media": clip(60.0)})))
        vid = resp.body["video_id"]

        # crash + restart the NameNode; recover from checkpoint + reports
        image = checkpoint(fs.namenode)
        cluster.run(cluster.engine.process(restart_namenode(fs, image)))

        # the published rendition is still there, replicated, and playable
        assert fs.namenode.exists(f"/published/video-{vid}-720p.flv")
        inode = fs.namenode.get_file(f"/published/video-{vid}-720p.flv")
        for block in inode.blocks:
            assert len(fs.namenode.locations(block.block_id)) == 2
        report = cluster.run(cluster.engine.process(
            portal.play(vid, cluster.host_names[-1],
                        watch_plan=[(0.0, 5.0)]).run()))
        assert report.watched_seconds == pytest.approx(5.0, abs=0.5)
        # and the portal can still publish new videos
        resp = cluster.run(cluster.engine.process(portal.request(
            "POST", "/upload", session=session,
            params={"title": "After restart", "media": clip(30.0)})))
        assert resp.ok
