"""Cross-layer observability over the full stack: one upload, every layer.

Drives a real upload through the deployed cloud, then checks that the
single ``/metrics`` scrape covers the web, storage, transcode, and
scheduler tiers, that ``/healthz`` sees every layer, and that the Chrome
trace export nests the upload flow portal -> FUSE -> HDFS -> transcode.
"""

import json

import pytest

from repro import build_video_cloud
from repro.common.trace import to_chrome_trace
from repro.common.units import Mbps
from repro.video import R_720P, VideoFile


@pytest.fixture(scope="module")
def stack():
    vc = build_video_cloud(6, seed=7)
    cluster, portal = vc.cluster, vc.portal
    cluster.run(cluster.engine.process(portal.request(
        "POST", "/register",
        params={"username": "kuan", "password": "secret99",
                "email": "kuan@thu.edu.tw"})))
    _, token = portal.auth.outbox[-1]
    cluster.run(cluster.engine.process(portal.request(
        "POST", "/verify", params={"token": token})))
    session = cluster.run(cluster.engine.process(portal.request(
        "POST", "/login",
        params={"username": "kuan", "password": "secret99"}))).set_session
    media = VideoFile(
        name="mv.avi", container="avi", vcodec="mpeg4", acodec="mp3",
        duration=120.0, resolution=R_720P, fps=25.0, bitrate=4 * Mbps)
    r = cluster.run(cluster.engine.process(portal.request(
        "POST", "/upload", session=session,
        params={"title": "Nobody", "tags": "kpop", "description": "mv",
                "media": media})))
    assert r.ok, r.body
    return vc


def scrape(vc):
    r = vc.cluster.run(vc.cluster.engine.process(
        vc.portal.request("GET", "/metrics")))
    assert r.ok
    return r.body["text"]


class TestMetricsAcrossLayers:
    def test_one_scrape_covers_every_tier(self, stack):
        text = scrape(stack)
        for family in (
            "web_requests_total",       # web tier
            "web_request_seconds",
            "portal_uploads_total",     # application tier
            "fuse_ops_total",           # mount glue
            "hdfs_bytes_written_total",  # storage tier
            "hdfs_write_seconds",
            "transcode_seconds",        # transcode tier
            "transcode_segments_total",
            "one_dispatch_total",       # IaaS scheduler tier
            "one_deploy_seconds",
        ):
            assert f"# TYPE {family} " in text, family

    def test_upload_counted_once_per_layer(self, stack):
        text = scrape(stack)
        assert 'portal_uploads_total{outcome="published"} 1' in text
        # the scheduler deployed the 5 service VMs during build
        assert "one_dispatch_total 5" in text

    def test_healthz_sees_all_four_layers(self, stack):
        vc = stack
        r = vc.cluster.run(vc.cluster.engine.process(
            vc.portal.request("GET", "/healthz")))
        assert r.ok, r.body
        assert r.body["health"] == "ok"
        assert set(r.body["layers"]) == {
            "web", "hdfs", "transcode", "scheduler"}


class TestUploadTrace:
    def test_chrome_trace_nests_the_upload_flow(self, stack):
        vc = stack
        blob = json.loads(to_chrome_trace(vc.cluster.log,
                                          tracer=vc.cluster.tracer))
        begins = {e["args"]["span_id"]: e
                  for e in blob["traceEvents"] if e["ph"] == "B"}
        by_name = {}
        for e in begins.values():
            by_name.setdefault(e["name"], []).append(e)

        # the upload request chains web.request -> portal.upload
        upload = by_name["portal.upload"][0]
        parent = begins[upload["args"]["parent_id"]]
        assert parent["name"] == "web.request"
        assert parent["args"]["route"] == "/upload"

        # descendants of the upload span cross the layer boundaries
        def ancestors(event):
            while event["args"]["parent_id"] is not None:
                event = begins[event["args"]["parent_id"]]
                yield event

        upload_id = upload["args"]["span_id"]

        def under_upload(name):
            return [e for e in by_name.get(name, ())
                    if any(a["args"]["span_id"] == upload_id
                           for a in ancestors(e))]

        assert under_upload("fuse.write")
        assert under_upload("hdfs.write")
        convert = under_upload("transcode.convert")
        assert convert
        assert under_upload("transcode.segment")

        # B/E events balance per lane, so Perfetto renders a clean flame
        by_tid = {}
        for e in blob["traceEvents"]:
            if e["ph"] in ("B", "E"):
                by_tid.setdefault(e["tid"], []).append(e)
        assert by_tid
        for evs in by_tid.values():
            evs.sort(key=lambda e: (e["ts"], 0 if e["ph"] == "E" else 1))
            depth = 0
            for e in evs:
                depth += 1 if e["ph"] == "B" else -1
                assert depth >= 0
            assert depth == 0

    def test_scheduler_spans_recorded_during_deploy(self, stack):
        spans = stack.cluster.tracer.spans(name="one.deploy", source="one")
        assert len(spans) == 5
        assert all(s.finished and s.status == "ok" for s in spans)
