"""Unit-level tests of the stack builder (the module behind E03)."""

import pytest

from repro import VideoCloud, build_video_cloud
from repro.common.calibration import Calibration
from repro.common.errors import ConfigError
from repro.one import OneState


class TestBuildVideoCloud:
    def test_minimum_size_enforced(self):
        with pytest.raises(ConfigError):
            build_video_cloud(3)

    def test_without_vm_layer_is_fast(self):
        vc = build_video_cloud(5, deploy_vms=False)
        assert isinstance(vc, VideoCloud)
        assert vc.cluster.now == 0.0
        assert vc.services.services == {}
        # upper layers still usable
        assert sorted(vc.fs.datanodes) == vc.cluster.host_names[1:]
        assert vc.portal.web_host == vc.cluster.host_names[1]

    def test_with_vm_layer_boots_guests(self):
        vc = build_video_cloud(5, seed=3)
        service = vc.services.services["video-cloud"]
        assert len(service.vms) == 4
        assert all(vm.state is OneState.RUNNING for vm in service.vms)
        assert vc.cluster.now > 0

    def test_custom_calibration_respected(self):
        cal = Calibration(cores_per_host=2)
        vc = build_video_cloud(5, cal=cal, deploy_vms=False)
        assert all(h.cores == 2 for h in vc.cluster.hosts)

    def test_hypervisor_choice(self):
        vc = build_video_cloud(5, hypervisor="xen", deploy_vms=False)
        assert all(r.hypervisor.mode == "para" for r in vc.cloud.host_pool)

    def test_same_seed_same_deployment(self):
        a = build_video_cloud(5, seed=11)
        b = build_video_cloud(5, seed=11)
        pa = [vm.host_name for vm in a.services.services["video-cloud"].vms]
        pb = [vm.host_name for vm in b.services.services["video-cloud"].vms]
        assert pa == pb
        assert a.cluster.now == b.cluster.now

    def test_engine_shared_across_layers(self):
        vc = build_video_cloud(5, deploy_vms=False)
        assert vc.engine is vc.cluster.engine
        assert vc.fs.engine is vc.engine
        assert vc.portal.engine is vc.engine
        assert vc.cloud.engine is vc.engine
