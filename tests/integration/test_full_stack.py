"""End-to-end tests of the whole Figure 13/14 stack (experiment E03)."""

import pytest

from repro import build_video_cloud
from repro.common.errors import ConfigError
from repro.common.units import Mbps
from repro.one import OneState
from repro.video import R_720P, VideoFile


def upload_clip(name="mv.avi", duration=120.0):
    return VideoFile(
        name=name, container="avi", vcodec="mpeg4", acodec="mp3",
        duration=duration, resolution=R_720P, fps=25.0, bitrate=4 * Mbps,
    )


@pytest.fixture(scope="module")
def stack():
    """One fully deployed cloud shared by the module (it's expensive)."""
    vc = build_video_cloud(6, seed=7)
    return vc


def login(vc, username="kuan"):
    cluster, portal = vc.cluster, vc.portal
    cluster.run(cluster.engine.process(portal.request(
        "POST", "/register",
        params={"username": username, "password": "secret99",
                "email": f"{username}@thu.edu.tw"})))
    _, token = portal.auth.outbox[-1]
    cluster.run(cluster.engine.process(portal.request(
        "POST", "/verify", params={"token": token})))
    r = cluster.run(cluster.engine.process(portal.request(
        "POST", "/login", params={"username": username, "password": "secret99"})))
    return r.set_session


class TestDeployment:
    def test_iaas_vms_running(self, stack):
        service = stack.services.services["video-cloud"]
        assert service.healthy
        assert len(service.vms) == 5
        assert all(vm.state is OneState.RUNNING for vm in service.vms)

    def test_vms_spread_across_hosts(self, stack):
        hosts = {vm.host_name for vm in stack.services.services["video-cloud"].vms}
        assert len(hosts) == 5  # striping policy: one per compute host

    def test_too_small_cluster_rejected(self):
        with pytest.raises(ConfigError):
            build_video_cloud(2)


class TestEndToEndVideoService:
    def test_upload_search_play_cycle(self, stack):
        vc = stack
        cluster, portal = vc.cluster, vc.portal
        session = login(vc)

        # upload (Figure 22): FUSE -> HDFS -> parallel FFmpeg -> publish
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", "/upload", session=session,
            params={"title": "Nobody - Wonder Girls", "tags": "kpop nobody",
                    "description": "the hit song nobody",
                    "media": upload_clip()})))
        assert r.ok
        vid = r.body["video_id"]

        # Nutch re-crawl (Section III: refresh indexed material)
        cluster.run(cluster.engine.process(portal.refresh_search_index()))

        # search (Figure 18)
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/search", params={"q": "nobody"})))
        assert [v["id"] for v in r.body["results"]] == [vid]

        # player page (Figure 23) + streaming session with a seek
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", f"/video/{vid}")))
        assert r.body["player"]["seekable_time_bar"]
        playback = portal.play(vid, vc.cluster.host_names[-1],
                               watch_plan=[(0.0, 10.0), (60.0, 10.0)])
        report = cluster.run(cluster.engine.process(playback.run()))
        assert report.watched_seconds == pytest.approx(20.0, abs=0.5)

    def test_video_bytes_are_replicated_in_hdfs(self, stack):
        fs = stack.fs
        published = fs.namenode.listdir("/published")
        assert published
        for path in published:
            inode = fs.namenode.get_file(path)
            for block in inode.blocks:
                assert len(fs.namenode.locations(block.block_id)) == fs.replication

    def test_live_migration_during_service(self, stack):
        """Figures 8-10 on the full stack: move a hadoop VM, service stays up."""
        vc = stack
        vm = vc.services.services["video-cloud"].vms[0]
        src = vm.host_name
        dst = next(n for n in vc.cluster.host_names[1:] if n != src)
        p = vc.engine.process(vc.cloud.live_migrate(vm, dst, "precopy"))
        result = vc.run(p)
        assert vm.host_name == dst
        assert result.downtime < 1.0
        assert vc.services.services["video-cloud"].healthy

    def test_event_log_tells_the_story(self, stack):
        kinds = {r.kind for r in stack.cluster.log}
        for expected in ["vm_submitted", "vm_state", "service_running",
                         "video_published", "index_refreshed", "job_started",
                         "migrate_done"]:
            assert expected in kinds, expected
