"""Acceptance: crash a compute host mid-upload-and-transcode (ISSUE tentpole).

One compute host dies while a user's upload is converting on the full
``build_video_cloud`` stack.  The conversion must complete on the
surviving workers, HDFS must return to full replication, the lost VM must
be resurrected RUNNING elsewhere, the portal must never answer 5xx other
than bounded 503s, and the whole run must be deterministic under a fixed
seed.
"""

import pytest

from repro import build_video_cloud
from repro.chaos import HostCrash
from repro.common.units import Mbps
from repro.one import OneState
from repro.video import R_720P, VideoFile

VICTIM = "node3"
CRASH_AT = 20.0          # seconds after the upload is fired
SETTLE = 400.0           # recovery horizon after the upload completes


def upload_clip(name="mv.avi"):
    return VideoFile(
        name=name, container="avi", vcodec="mpeg4", acodec="mp3",
        duration=120.0, resolution=R_720P, fps=25.0, bitrate=4 * Mbps,
    )


def run_scenario(seed):
    vc = build_video_cloud(6, seed=seed, fault_tolerance=True)
    cluster, portal, chaos = vc.cluster, vc.portal, vc.chaos
    engine = vc.engine

    cluster.run(engine.process(portal.request(
        "POST", "/register",
        params={"username": "kuan", "password": "secret99",
                "email": "kuan@thu.edu.tw"})))
    _, token = portal.auth.outbox[-1]
    cluster.run(engine.process(portal.request(
        "POST", "/verify", params={"token": token})))
    session = cluster.run(engine.process(portal.request(
        "POST", "/login",
        params={"username": "kuan", "password": "secret99"}))).set_session

    t0 = engine.now
    upload = engine.process(portal.request(
        "POST", "/upload", session=session,
        params={"title": "Nobody - Wonder Girls", "media": upload_clip()}))
    chaos.unleash([HostCrash(VICTIM, at=CRASH_AT)])
    chaos.watch_hdfs(since=t0 + CRASH_AT)

    # hammer the portal throughout the outage window; it must never 5xx
    # (other than a 503 that carries Retry-After)
    probes = []

    def probe():
        for i in range(40):
            yield engine.timeout(10.0)
            r = yield engine.process(portal.request(
                "GET", "/search", params={"q": "nobody"}))
            probes.append((round(engine.now - t0, 3), r.status,
                           r.headers.get("Retry-After")))

    probe_proc = engine.process(probe())

    up = cluster.run(upload)
    upload_done = engine.now
    cluster.run(engine.now + SETTLE)
    cluster.run(probe_proc)
    vc.stop_background()
    cluster.run()

    return {
        "vc": vc,
        "upload_status": up.status,
        "upload_body": dict(up.body),
        "upload_done": upload_done - t0,
        "probes": list(probes),
        "restored": list(vc.ft.restored),
        "vm_states": sorted((vm.name, vm.state.value, vm.host_name)
                            for vm in vc.cloud.vm_pool.values()),
        "recoveries": [(r.layer, r.target, round(r.injected_at - t0, 6),
                        round(r.recovered_at - t0, 6))
                       for r in chaos.report.recoveries],
        "faults": [(f.kind, f.target, round(f.time - t0, 6))
                   for f in chaos.report.faults],
    }


@pytest.fixture(scope="module")
def scenario():
    return run_scenario(seed=7)


class TestCrashMidUpload:
    def test_conversion_completes_on_survivors(self, scenario):
        assert scenario["upload_status"] == 200
        assert "video_id" in scenario["upload_body"]
        vc = scenario["vc"]
        # the dead worker's segment failed over instead of sinking the upload
        assert vc.cluster.log.records(source="video.pipeline",
                                      kind="segment_failover")
        assert vc.cluster.log.records(source="video.pipeline",
                                      kind="conversion_done")

    def test_hdfs_back_to_full_replication(self, scenario):
        vc = scenario["vc"]
        nn = vc.fs.namenode
        assert nn.under_replicated_count() == 0
        assert not nn.missing_blocks()
        hdfs = [r for r in scenario["recoveries"] if r[0] == "hdfs"]
        assert len(hdfs) == 1
        _, _, injected, recovered = hdfs[0]
        assert injected == pytest.approx(CRASH_AT)
        assert recovered > injected  # positive MTTR, after the crash

    def test_replacement_vm_running(self, scenario):
        vc = scenario["vc"]
        assert len(scenario["restored"]) == 1
        assert all(state == OneState.RUNNING.value
                   for _, state, _ in scenario["vm_states"])
        assert all(host != VICTIM for _, _, host in scenario["vm_states"])
        iaas = [r for r in scenario["recoveries"] if r[0] == "iaas"]
        assert len(iaas) == 1 and iaas[0][3] > iaas[0][2]
        assert vc.chaos.report.mttr("iaas") > 0

    def test_portal_never_5xx_beyond_bounded_503(self, scenario):
        assert scenario["probes"], "no probes ran"
        for when, status, retry_after in scenario["probes"]:
            assert status < 500 or status == 503, (when, status)
            if status == 503:
                assert retry_after is not None  # bounded, advertised window

    def test_mean_time_to_recovery_is_plausible(self, scenario):
        vc = scenario["vc"]
        by_layer = vc.chaos.report.mttr_by_layer()
        # HDFS heals after the 30 s heartbeat timeout + re-replication; the
        # VM after monitoring detection + image staging + boot.  Bound both
        # well away from zero and from the watcher give-up horizon.
        assert 30.0 < by_layer["hdfs"] < 300.0
        assert 10.0 < by_layer["iaas"] < 300.0

    def test_deterministic_under_fixed_seed(self, scenario):
        again = run_scenario(seed=7)
        for key in ("upload_status", "upload_done", "probes", "restored",
                    "vm_states", "recoveries", "faults"):
            assert again[key] == scenario[key], key

    def test_recovery_holds_under_other_seeds(self, scenario):
        other = run_scenario(seed=8)
        assert other["upload_status"] == 200
        assert len(other["restored"]) == 1
        assert all(state == OneState.RUNNING.value
                   for _, state, _ in other["vm_states"])
