"""Portal graceful degradation: bounded 503s while the storage tier heals."""

import pytest

from repro.common.units import Mbps, MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.hdfs.admin import SafeModeController
from repro.video import R_720P, VideoFile
from repro.web import VideoPortal


def make_portal(n_hosts=6):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, namenode_host="node0",
              datanode_hosts=cluster.host_names[1:], block_size=16 * MiB,
              replication=2)
    portal = VideoPortal(
        cluster, fs, web_host="node1",
        transcode_workers=cluster.host_names[2:],
    )
    return cluster, fs, portal


def upload_clip(duration=60.0):
    return VideoFile(
        name="clip.avi", container="avi", vcodec="mpeg4", acodec="mp3",
        duration=duration, resolution=R_720P, fps=25.0, bitrate=4 * Mbps,
    )


def login(cluster, portal, username="kuan"):
    cluster.run(cluster.engine.process(portal.request(
        "POST", "/register",
        params={"username": username, "password": "secret99",
                "email": f"{username}@thu.edu.tw"})))
    _, token = portal.auth.outbox[-1]
    cluster.run(cluster.engine.process(portal.request(
        "POST", "/verify", params={"token": token})))
    r = cluster.run(cluster.engine.process(portal.request(
        "POST", "/login",
        params={"username": username, "password": "secret99"})))
    return r.set_session


def try_upload(cluster, portal, session):
    return cluster.run(cluster.engine.process(portal.request(
        "POST", "/upload", session=session,
        params={"title": "mv", "media": upload_clip()})))


class TestSafeModeDegradation:
    def test_upload_refused_503_with_retry_after(self):
        cluster, fs, portal = make_portal()
        session = login(cluster, portal)
        safemode = SafeModeController(fs)
        portal.attach_safemode(safemode)
        safemode.enter()
        r = try_upload(cluster, portal, session)
        assert r.status == 503
        assert r.headers["Retry-After"] == str(int(portal.RETRY_AFTER))
        assert portal.degraded_reason() == "namenode in safe mode"
        assert cluster.log.records(source="web.portal", kind="portal_degraded")

    def test_reads_keep_working_while_degraded(self):
        cluster, fs, portal = make_portal()
        session = login(cluster, portal)
        video_id = try_upload(cluster, portal, session).body["video_id"]
        safemode = SafeModeController(fs)
        portal.attach_safemode(safemode)
        safemode.enter()
        r = cluster.run(cluster.engine.process(
            portal.request("GET", f"/video/{video_id}")))
        assert r.ok  # degradation sheds writes only

    def test_upload_succeeds_after_safemode_exit(self):
        cluster, fs, portal = make_portal()
        session = login(cluster, portal)
        safemode = SafeModeController(fs)
        portal.attach_safemode(safemode)
        safemode.enter()
        assert try_upload(cluster, portal, session).status == 503
        # block reports from every datanode lift safe mode
        for dn in fs.datanodes:
            safemode.report(dn)
        assert not safemode.active
        r = try_upload(cluster, portal, session)
        assert r.ok, r.body


class TestReplicationDegradation:
    def test_too_few_live_datanodes_means_503(self):
        cluster, fs, portal = make_portal()
        session = login(cluster, portal)
        for victim in cluster.host_names[2:]:
            fs.namenode.dead_datanodes.add(victim)  # only node1 left, repl=2
        r = try_upload(cluster, portal, session)
        assert r.status == 503
        assert "Retry-After" in r.headers
        assert "live datanodes" in r.body["error"]

    def test_healthy_portal_not_degraded(self):
        cluster, fs, portal = make_portal()
        assert portal.degraded_reason() is None
        session = login(cluster, portal)
        assert try_upload(cluster, portal, session).ok
