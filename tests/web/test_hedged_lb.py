"""LoadBalancer gray gate + hedged dispatch."""

import pytest

from repro.chaos import ChaosMonkey
from repro.common.errors import ConfigError
from repro.hardware import Cluster
from repro.web import LoadBalancer
from repro.web.server import Request, Response, WebServer

WORK_CPU = 0.01


def make_lb(n_backends=3, seed=0):
    cluster = Cluster(n_backends + 1, seed=seed)
    lb = LoadBalancer(cluster)
    for i in range(1, n_backends + 1):
        server = WebServer(cluster, f"node{i}")

        def _work(request, server=server):
            def _h():
                yield server.engine.process(
                    server.host.compute_seconds(WORK_CPU))
                return Response.json_ok({"from": server.host.name})
            return _h()

        server.route("GET", "/w", _work)
        server.route("POST", "/w", _work)
        lb.add_backend(f"node{i}", server)
    return cluster, lb


def send(cluster, lb, method="GET"):
    done = cluster.engine.process(
        lb.handle(Request(method, "/w", client_host="node0")))
    t0 = cluster.engine.now
    cluster.run(done)
    return done.value, cluster.engine.now - t0


def advance(cluster, dt):
    cluster.engine.run(until=cluster.engine.timeout(dt))


class TestGrayGate:
    def test_slow_backend_is_gated_then_reinstated(self):
        cluster, lb = make_lb()
        lb.enable_gray_gate(interval=1.0, probe_from="node0")
        monkey = ChaosMonkey(cluster)
        advance(cluster, 30.0)                  # prime the probe baselines
        assert sorted(lb.healthy_backends()) == ["node1", "node2", "node3"]

        monkey.throttle_cpu("node1", 50.0)
        advance(cluster, 30.0)
        assert lb.detectors.phi("node1") >= lb.suspicion_threshold
        assert "node1" not in lb.healthy_backends()
        assert sorted(lb.healthy_backends()) == ["node2", "node3"]

        monkey.restore_cpu("node1")
        advance(cluster, 30.0)
        assert lb.detectors.phi("node1") < lb.suspicion_threshold
        assert "node1" in lb.healthy_backends()
        lb.stop_probes()
        cluster.run()                           # probe loop must not wedge

    def test_gated_backend_gets_no_traffic(self):
        cluster, lb = make_lb()
        lb.enable_gray_gate(interval=1.0, probe_from="node0")
        monkey = ChaosMonkey(cluster)
        advance(cluster, 30.0)
        monkey.throttle_cpu("node1", 50.0)
        advance(cluster, 30.0)
        for _ in range(6):
            resp, _ = send(cluster, lb)
            assert resp.status == 200
            assert resp.body["from"] != "node1"
        lb.stop_probes()

    def test_suspicion_never_empties_the_pool(self):
        cluster, lb = make_lb()
        lb.enable_gray_gate(interval=1.0, probe_from="node0")
        monkey = ChaosMonkey(cluster)
        advance(cluster, 30.0)
        for name in ("node1", "node2", "node3"):
            monkey.throttle_cpu(name, 50.0)
        advance(cluster, 30.0)
        # every backend suspect: forced traffic beats refusing everyone
        assert sorted(lb.healthy_backends()) == ["node1", "node2", "node3"]
        resp, _ = send(cluster, lb)
        assert resp.status == 200
        lb.stop_probes()

    def test_removed_backend_is_forgotten(self):
        cluster, lb = make_lb()
        lb.enable_gray_gate(interval=1.0)
        advance(cluster, 5.0)
        lb.remove_backend("node2")
        assert "node2" not in lb.detectors.targets()
        lb.stop_probes()

    def test_config_validation(self):
        cluster, lb = make_lb()
        with pytest.raises(ConfigError):
            lb.enable_gray_gate(interval=0.0)
        with pytest.raises(ConfigError):
            lb.enable_gray_gate(probe_from="ghost")


class TestHedgedDispatch:
    def test_calm_pool_never_hedges(self):
        cluster, lb = make_lb()
        lb.enable_hedged_dispatch()
        for _ in range(10):
            resp, _ = send(cluster, lb)
            assert resp.status == 200
        assert lb.hedge_budget.spent == 0

    def test_slow_backend_is_hedged_around(self):
        cluster, lb = make_lb()
        lb.enable_hedged_dispatch()
        durations = [send(cluster, lb)[1] for _ in range(6)]
        calm = max(durations)
        ChaosMonkey(cluster).throttle_cpu("node1", 50.0)
        worst = 0.0
        for _ in range(6):
            resp, dur = send(cluster, lb)
            assert resp.status == 200
            worst = max(worst, dur)
        assert lb.hedge_budget.spent >= 1
        # a 50x stall must be cut to near the hedge trigger, not ridden out
        assert worst < 0.5 * 50 * WORK_CPU

    def test_posts_are_never_hedged(self):
        cluster, lb = make_lb()
        lb.enable_hedged_dispatch()
        for _ in range(6):
            send(cluster, lb)                   # prime the tracker with GETs
        ChaosMonkey(cluster).throttle_cpu("node1", 50.0)
        before = lb.hedge_budget.spent
        for _ in range(6):
            resp, _ = send(cluster, lb, method="POST")
            assert resp.status == 200
        assert lb.hedge_budget.spent == before  # duplicated POST double-applies

    def test_hedge_budget_is_bounded(self):
        cluster, lb = make_lb()
        lb.enable_hedged_dispatch(ratio=0.1, burst=2.0)
        for _ in range(6):
            send(cluster, lb)
        ChaosMonkey(cluster).throttle_cpu("node1", 50.0)
        for _ in range(30):
            send(cluster, lb)
        budget = lb.hedge_budget
        assert budget.spent <= budget.ratio * budget.earned + budget.burst
        assert budget.denied >= 1

    def test_dead_backend_still_served_by_the_binary_gate(self):
        cluster, lb = make_lb()
        lb.enable_hedged_dispatch()
        for _ in range(6):
            send(cluster, lb)
        cluster.host("node1").fail()
        for _ in range(4):
            resp, _ = send(cluster, lb)
            assert resp.status == 200

    def test_hedged_storm_is_seed_deterministic(self):
        def run(seed):
            cluster, lb = make_lb(seed=seed)
            lb.enable_hedged_dispatch()
            out = [send(cluster, lb)[1] for _ in range(5)]
            ChaosMonkey(cluster).throttle_cpu("node2", 30.0)
            out += [send(cluster, lb)[1] for _ in range(8)]
            return tuple(out), lb.hedge_budget.spent

        assert run(4) == run(4)

    def test_hedged_storm_is_race_clean_under_the_sanitizer(self):
        cluster, lb = make_lb()
        san = cluster.engine.enable_sanitizer()
        lb.enable_hedged_dispatch()
        for _ in range(5):
            send(cluster, lb)
        ChaosMonkey(cluster).throttle_cpu("node2", 30.0)
        for _ in range(8):
            send(cluster, lb)
        assert san.ok, san.report()
