import pytest

from repro.common.errors import AuthError, HttpError, WebError
from repro.hardware import Cluster
from repro.web import (
    ApachePrefork,
    AuthService,
    Database,
    Lighttpd,
    Request,
    Response,
)


def make_auth():
    t = {"now": 0.0}
    return AuthService(Database(), clock=lambda: t["now"])


class TestRegistration:
    def test_register_verify_login_logout(self):
        auth = make_auth()
        uid = auth.register("kuan", "secret99", "Kuan-Lung", "kuan@thu.edu.tw")
        # not verified yet -> login refused
        with pytest.raises(AuthError, match="not verified"):
            auth.login("kuan", "secret99")
        email, token = auth.outbox[-1]
        assert email == "kuan@thu.edu.tw"
        assert auth.verify_email(token) == uid
        session = auth.login("kuan", "secret99")
        assert auth.current_user(session.token)["username"] == "kuan"
        auth.logout(session.token)
        assert auth.current_user(session.token) is None

    def test_duplicate_username_and_email(self):
        auth = make_auth()
        auth.register("kuan", "secret99", "K", "a@b.c")
        with pytest.raises(AuthError, match="taken"):
            auth.register("kuan", "other999", "K2", "x@y.z")
        with pytest.raises(AuthError, match="already registered"):
            auth.register("other", "other999", "K2", "a@b.c")

    def test_weak_password(self):
        with pytest.raises(AuthError):
            make_auth().register("u1", "abc", "U", "u@x.y")

    def test_bad_username(self):
        with pytest.raises(AuthError):
            make_auth().register("bad name!", "secret99", "U", "u@x.y")

    def test_bad_email(self):
        with pytest.raises(AuthError):
            make_auth().register("user1", "secret99", "U", "nope")

    def test_wrong_password_indistinguishable(self):
        auth = make_auth()
        auth.register("kuan", "secret99", "K", "a@b.c")
        auth.verify_email(auth.outbox[-1][1])
        with pytest.raises(AuthError) as e1:
            auth.login("kuan", "wrong999")
        with pytest.raises(AuthError) as e2:
            auth.login("ghost", "whatever")
        assert str(e1.value) == str(e2.value)

    def test_token_single_use(self):
        auth = make_auth()
        auth.register("kuan", "secret99", "K", "a@b.c")
        _, token = auth.outbox[-1]
        auth.verify_email(token)
        with pytest.raises(AuthError):
            auth.verify_email(token)

    def test_blocked_user_cannot_login(self):
        auth = make_auth()
        uid = auth.register("kuan", "secret99", "K", "a@b.c")
        auth.verify_email(auth.outbox[-1][1])
        auth.db.table("users").update(uid, blocked=True)
        with pytest.raises(AuthError, match="blocked"):
            auth.login("kuan", "secret99")

    def test_require_user(self):
        auth = make_auth()
        with pytest.raises(AuthError):
            auth.require_user(None)
        with pytest.raises(AuthError):
            auth.require_user("bogus")

    def test_logout_unknown_session(self):
        with pytest.raises(AuthError):
            make_auth().logout("nope")


def ok_handler(request):
    def _h():
        yield request  # placeholder; replaced below
    raise AssertionError("not used directly")


class TestWebServer:
    def make_server(self, cls=Lighttpd, **kw):
        cluster = Cluster(2)
        server = cls(cluster, "node0", **kw) if kw else cls(cluster, "node0")

        def hello(request):
            def _h():
                yield cluster.engine.timeout(0.001)
                return Response(body={"hello": request.params.get("name", "world")})

            return _h()

        server.route("GET", "/hello", hello)
        return cluster, server

    def test_request_response_roundtrip(self):
        cluster, server = self.make_server()
        req = Request("GET", "/hello", params={"name": "voc"}, client_host="node1")
        resp = cluster.run(cluster.engine.process(server.handle(req)))
        assert resp.ok
        assert resp.body == {"hello": "voc"}
        assert server.stats.requests == 1
        assert server.stats.bytes_sent > 0

    def test_404_for_unknown_route(self):
        cluster, server = self.make_server()
        req = Request("GET", "/nope", client_host="node1")
        resp = cluster.run(cluster.engine.process(server.handle(req)))
        assert resp.status == 404
        assert server.stats.errors == 1

    def test_bad_method_rejected(self):
        with pytest.raises(HttpError):
            Request("DELETE", "/x")

    def test_unknown_host_rejected(self):
        cluster = Cluster(1)
        with pytest.raises(WebError):
            Lighttpd(cluster, "ghost")

    def test_lighttpd_footprint_smaller_than_apache(self):
        cluster, lighttpd = self.make_server(Lighttpd)
        cluster2, apache = self.make_server(ApachePrefork)

        def hammer(cluster, server, n=20):
            procs = [
                cluster.engine.process(server.handle(
                    Request("GET", "/hello", client_host="node1")))
                for _ in range(n)
            ]
            cluster.engine.run(cluster.engine.all_of(procs))

        hammer(cluster, lighttpd)
        hammer(cluster2, apache)
        assert lighttpd.memory_footprint() < apache.memory_footprint()
        assert lighttpd.stats.cpu_seconds < apache.stats.cpu_seconds

    def test_connection_cap_queues_requests(self):
        cluster = Cluster(2)
        server = ApachePrefork(cluster, "node0", workers=2)
        order = []

        def slow(request):
            def _h():
                yield cluster.engine.timeout(1.0)
                order.append(cluster.engine.now)
                return Response()

            return _h()

        server.route("GET", "/slow", slow)
        procs = [
            cluster.engine.process(server.handle(
                Request("GET", "/slow", client_host="node1")))
            for _ in range(4)
        ]
        cluster.engine.run(cluster.engine.all_of(procs))
        # two waves of two
        assert order[1] - order[0] < 0.5
        assert order[2] - order[0] >= 1.0
