import pytest
from hypothesis import given, strategies as st

from repro.common.errors import DatabaseError
from repro.web import Column, Database, QueryStats


def users_table(db=None):
    db = db or Database()
    return db.create_table(
        "users",
        [
            Column("id", "int"),
            Column("name", "str", unique=True),
            Column("age", "int", nullable=True),
            Column("active", "bool"),
        ],
    )


class TestSchema:
    def test_unknown_column_type(self):
        with pytest.raises(DatabaseError):
            Column("x", "json")

    def test_missing_primary_key(self):
        with pytest.raises(DatabaseError):
            Database().create_table("t", [Column("a")], primary_key="id")

    def test_duplicate_table(self):
        db = Database()
        users_table(db)
        with pytest.raises(DatabaseError):
            users_table(db)

    def test_table_lookup(self):
        db = Database()
        t = users_table(db)
        assert db.table("users") is t
        assert "users" in db
        with pytest.raises(DatabaseError):
            db.table("ghost")


class TestCrud:
    def test_auto_increment(self):
        t = users_table()
        a = t.insert(name="ann", active=True)
        b = t.insert(name="bob", active=False)
        assert (a, b) == (1, 2)

    def test_explicit_pk_respected(self):
        t = users_table()
        t.insert(id=10, name="x", active=True)
        assert t.insert(name="y", active=True) == 11

    def test_type_checked(self):
        t = users_table()
        with pytest.raises(DatabaseError):
            t.insert(name=5, active=True)
        with pytest.raises(DatabaseError):
            t.insert(name="ok", active="yes")

    def test_not_null(self):
        t = users_table()
        with pytest.raises(DatabaseError):
            t.insert(name=None, active=True)
        t.insert(name="ok", active=True, age=None)  # nullable

    def test_unique_enforced_on_insert_and_update(self):
        t = users_table()
        t.insert(name="ann", active=True)
        t.insert(name="bob", active=True)
        with pytest.raises(DatabaseError):
            t.insert(name="ann", active=False)
        with pytest.raises(DatabaseError):
            t.update(2, name="ann")
        t.update(2, name="bobby")

    def test_duplicate_pk(self):
        t = users_table()
        t.insert(id=1, name="a", active=True)
        with pytest.raises(DatabaseError):
            t.insert(id=1, name="b", active=True)

    def test_get_and_isolation(self):
        t = users_table()
        pk = t.insert(name="ann", active=True)
        row = t.get(pk)
        row["name"] = "mutated"
        assert t.get(pk)["name"] == "ann"  # copies, not references

    def test_update_and_delete(self):
        t = users_table()
        pk = t.insert(name="ann", active=True)
        assert t.update(pk, age=30)
        assert t.get(pk)["age"] == 30
        assert t.delete(pk)
        assert t.get(pk) is None
        assert not t.delete(pk)
        assert not t.update(pk, age=1)

    def test_unknown_column_rejected(self):
        t = users_table()
        with pytest.raises(DatabaseError):
            t.insert(name="x", active=True, ghost=1)
        pk = t.insert(name="x", active=True)
        with pytest.raises(DatabaseError):
            t.update(pk, ghost=2)


class TestSelect:
    def make_filled(self):
        t = users_table()
        for i, (name, age, active) in enumerate(
            [("ann", 30, True), ("bob", 25, True), ("cat", 35, False)]
        ):
            t.insert(name=name, age=age, active=active)
        return t

    def test_full_scan(self):
        t = self.make_filled()
        assert len(t.select()) == 3

    def test_where_dict(self):
        t = self.make_filled()
        rows = t.select({"active": True})
        assert {r["name"] for r in rows} == {"ann", "bob"}

    def test_where_callable(self):
        t = self.make_filled()
        rows = t.select(lambda r: r["age"] > 28)
        assert {r["name"] for r in rows} == {"ann", "cat"}

    def test_order_and_limit(self):
        t = self.make_filled()
        rows = t.select(order_by="age", descending=True, limit=2)
        assert [r["name"] for r in rows] == ["cat", "ann"]

    def test_order_by_unknown(self):
        t = self.make_filled()
        with pytest.raises(DatabaseError):
            t.select(order_by="ghost")

    def test_index_used_for_unique_column(self):
        t = self.make_filled()
        stats = QueryStats()
        rows = t.select({"name": "bob"}, stats=stats)
        assert rows[0]["age"] == 25
        assert stats.used_index
        assert stats.rows_scanned == 1

    def test_scan_counts_all_rows_without_index(self):
        t = self.make_filled()
        stats = QueryStats()
        t.select({"age": 25}, stats=stats)
        assert not stats.used_index
        assert stats.rows_scanned == 3

    def test_secondary_index_after_data(self):
        t = self.make_filled()
        t.create_index("age")
        stats = QueryStats()
        rows = t.select({"age": 35}, stats=stats)
        assert rows[0]["name"] == "cat"
        assert stats.used_index

    def test_count(self):
        t = self.make_filled()
        assert t.count() == 3
        assert t.count({"active": False}) == 1

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30))
    def test_property_index_equals_scan(self, ages):
        t = Database().create_table(
            "t", [Column("id", "int"), Column("age", "int")])
        for a in ages:
            t.insert(age=a)
        t.create_index("age")
        target = ages[0]
        with_index = t.select({"age": target})
        brute = [r for r in t.select() if r["age"] == target]
        assert sorted(r["id"] for r in with_index) == sorted(r["id"] for r in brute)
