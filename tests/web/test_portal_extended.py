"""Tests for the extended portal: my-videos / edit / delete, search UX,
multi-rendition playback, related videos."""

import pytest

from repro.common.errors import WebError
from repro.common.units import Mbps, MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.video import R_720P, VideoFile
from repro.web import VideoPortal

from tests.web.test_portal import register_and_login, upload_clip


def make_portal(n_hosts=6, ladder=("720p",)):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, namenode_host="node0",
              datanode_hosts=cluster.host_names[1:], block_size=16 * MiB,
              replication=2)
    portal = VideoPortal(
        cluster, fs, web_host="node1",
        transcode_workers=cluster.host_names[2:], ladder=ladder,
    )
    return cluster, portal


def publish(cluster, portal, session, title, description="", tags=""):
    resp = cluster.run(cluster.engine.process(portal.request(
        "POST", "/upload", session=session,
        params={"title": title, "description": description, "tags": tags,
                "media": upload_clip()})))
    assert resp.ok, resp.body
    return resp.body["video_id"]


class TestMyVideosEditDelete:
    def test_my_videos_lists_only_own(self):
        cluster, portal = make_portal()
        alice = register_and_login(cluster, portal, "alice")
        bob = register_and_login(cluster, portal, "bob")
        v1 = publish(cluster, portal, alice, "alice video")
        publish(cluster, portal, bob, "bob video")
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/my_videos", session=alice)))
        assert r.ok
        assert [v["id"] for v in r.body["videos"]] == [v1]

    def test_my_videos_requires_login(self):
        cluster, portal = make_portal()
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/my_videos")))
        assert r.status == 403

    def test_edit_own_video(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish(cluster, portal, session, "old title")
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", f"/video/{vid}/edit", session=session,
            params={"title": "new title", "tags": "updated"})))
        assert r.ok
        row = portal.db.table("videos").get(vid)
        assert row["title"] == "new title"
        assert row["tags"] == "updated"

    def test_edit_reflects_in_search_after_recrawl(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish(cluster, portal, session, "original nobody")
        cluster.run(cluster.engine.process(portal.refresh_search_index()))
        cluster.run(cluster.engine.process(portal.request(
            "POST", f"/video/{vid}/edit", session=session,
            params={"title": "renamed wonderful"})))
        # stale entry dropped immediately
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/search", params={"q": "nobody"})))
        assert r.body["results"] == []
        cluster.run(cluster.engine.process(portal.refresh_search_index()))
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/search", params={"q": "wonderful"})))
        assert [v["id"] for v in r.body["results"]] == [vid]

    def test_cannot_edit_others_video(self):
        cluster, portal = make_portal()
        alice = register_and_login(cluster, portal, "alice")
        bob = register_and_login(cluster, portal, "bob")
        vid = publish(cluster, portal, alice, "alice video")
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", f"/video/{vid}/edit", session=bob,
            params={"title": "hacked"})))
        assert r.status == 403

    def test_edit_nothing_is_400(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish(cluster, portal, session, "x")
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", f"/video/{vid}/edit", session=session)))
        assert r.status == 400

    def test_delete_own_video(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish(cluster, portal, session, "doomed")
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", f"/video/{vid}/delete", session=session)))
        assert r.ok
        assert portal.db.table("videos").get(vid)["status"] == "removed"
        assert not portal.fs.namenode.listdir("/published")
        with pytest.raises(WebError):
            portal.rendition(vid)
        # gone from my_videos and the player page
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/my_videos", session=session)))
        assert r.body["videos"] == []
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", f"/video/{vid}")))
        assert r.status == 404

    def test_admin_can_delete_any(self):
        cluster, portal = make_portal()
        admin = register_and_login(cluster, portal, "admin")
        user = register_and_login(cluster, portal, "user1")
        vid = publish(cluster, portal, user, "spam")
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", f"/video/{vid}/delete", session=admin)))
        assert r.ok


class TestSearchUx:
    def setup_portal_with_corpus(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vids = []
        for i in range(12):
            vids.append(publish(cluster, portal, session,
                                f"nobody cover take {i}",
                                description=f"nobody performance {i}",
                                tags="nobody"))
        cluster.run(cluster.engine.process(portal.refresh_search_index()))
        return cluster, portal, session, vids

    def test_pagination(self):
        cluster, portal, _, vids = self.setup_portal_with_corpus()
        r1 = cluster.run(cluster.engine.process(portal.request(
            "GET", "/search", params={"q": "nobody", "page": 1, "per_page": 5})))
        r2 = cluster.run(cluster.engine.process(portal.request(
            "GET", "/search", params={"q": "nobody", "page": 2, "per_page": 5})))
        assert r1.body["total_hits"] == 12
        assert r1.body["total_pages"] == 3
        ids1 = {v["id"] for v in r1.body["results"]}
        ids2 = {v["id"] for v in r2.body["results"]}
        assert len(ids1) == len(ids2) == 5
        assert not ids1 & ids2

    def test_did_you_mean_on_typo(self):
        cluster, portal, _, _ = self.setup_portal_with_corpus()
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/search", params={"q": "nobdy"})))
        assert r.body["results"] == []
        assert r.body["did_you_mean"] == "nobody"

    def test_snippets_highlighted(self):
        cluster, portal, _, _ = self.setup_portal_with_corpus()
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/search", params={"q": "nobody"})))
        assert any("<b>nobody</b>" in v["snippet"] for v in r.body["results"])

    def test_related_videos_on_player_page(self):
        cluster, portal, _, vids = self.setup_portal_with_corpus()
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", f"/video/{vids[0]}")))
        related_ids = {v["id"] for v in r.body["related"]}
        assert related_ids
        assert vids[0] not in related_ids
        assert related_ids <= set(vids)


class TestMultiRendition:
    def test_full_ladder_published(self):
        cluster, portal = make_portal(ladder=("720p", "480p", "360p"))
        session = register_and_login(cluster, portal)
        vid = publish(cluster, portal, session, "hd upload")
        assert portal.qualities(vid) == ["720p", "480p", "360p"]
        for q in ("720p", "480p", "360p"):
            assert portal.fs.namenode.exists(f"/published/video-{vid}-{q}.flv")
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", f"/video/{vid}")))
        assert r.body["player"]["qualities"] == ["720p", "480p", "360p"]

    def test_low_quality_streams_fewer_bytes(self):
        cluster, portal = make_portal(ladder=("720p", "360p"))
        session = register_and_login(cluster, portal)
        vid = publish(cluster, portal, session, "hd upload")
        hd = portal.rendition(vid, "720p")
        sd = portal.rendition(vid, "360p")
        assert sd.size < hd.size

    def test_unknown_quality_rejected(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish(cluster, portal, session, "x")
        with pytest.raises(WebError):
            portal.rendition(vid, "4k")

    def test_unknown_ladder_name_rejected(self):
        with pytest.raises(WebError):
            make_portal(ladder=("8k",))


class TestInputValidation:
    def test_bad_pagination_params(self):
        cluster, portal = make_portal()
        for params in ({"q": "x", "page": "zero"},
                       {"q": "x", "page": 0},
                       {"q": "x", "per_page": 1000}):
            r = cluster.run(cluster.engine.process(portal.request(
                "GET", "/search", params=params)))
            assert r.status == 400

    def test_bad_video_id(self):
        cluster, portal = make_portal()
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/video/nan")))
        assert r.status == 400
