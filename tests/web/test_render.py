import pytest

from repro.common.errors import WebError
from repro.web import Response, render_page

from tests.web.test_portal import make_portal, publish_video, register_and_login


def run(cluster, gen):
    return cluster.run(cluster.engine.process(gen))


@pytest.fixture(scope="module")
def portal_with_video():
    cluster, portal = make_portal()
    session = register_and_login(cluster, portal)
    vid = publish_video(cluster, portal, session, title="Nobody MV")
    run(cluster, portal.refresh_search_index())
    return cluster, portal, session, vid


class TestRenderPages:
    def test_home(self, portal_with_video):
        cluster, portal, _, _ = portal_with_video
        resp = run(cluster, portal.request("GET", "/"))
        page = render_page(resp)
        assert "VOC" in page
        assert "Nobody MV" in page
        assert "search" in page.lower()

    def test_search_results(self, portal_with_video):
        cluster, portal, _, vid = portal_with_video
        resp = run(cluster, portal.request("GET", "/search",
                                           params={"q": "nobody"}))
        page = render_page(resp)
        assert "FIGURE 18" in page
        assert f"/video/{vid}" in page

    def test_search_no_results_with_suggestion(self, portal_with_video):
        cluster, portal, _, _ = portal_with_video
        resp = run(cluster, portal.request("GET", "/search",
                                           params={"q": "nobdy"}))
        page = render_page(resp)
        assert "no videos found" in page
        assert "did you mean" in page

    def test_player_page(self, portal_with_video):
        cluster, portal, _, vid = portal_with_video
        resp = run(cluster, portal.request("GET", f"/video/{vid}"))
        page = render_page(resp)
        assert "FIGURE 23" in page
        assert "h264/flv" in page
        assert "drag to seek" in page
        assert "facebook" in page

    def test_auth_pages(self, portal_with_video):
        cluster, portal, session, _ = portal_with_video
        resp = run(cluster, portal.request(
            "POST", "/register",
            params={"username": "newbie", "password": "secret99",
                    "email": "n@x.y"}))
        assert "FIGURE 19" in render_page(resp)
        _, token = portal.auth.outbox[-1]
        run(cluster, portal.request("POST", "/verify", params={"token": token}))
        resp = run(cluster, portal.request(
            "POST", "/login",
            params={"username": "newbie", "password": "secret99"}))
        assert "welcome back, newbie" in render_page(resp)
        resp = run(cluster, portal.request("POST", "/logout",
                                           session=resp.set_session))
        assert "FIGURE 21" in render_page(resp)

    def test_my_videos(self, portal_with_video):
        cluster, portal, session, _ = portal_with_video
        resp = run(cluster, portal.request("GET", "/my_videos", session=session))
        page = render_page(resp)
        assert "MY VIDEOS" in page
        assert "(edit) (delete)" in page

    def test_error_page(self):
        page = render_page(Response(status=404, body={"error": "no video 9"}))
        assert "HTTP 404" in page
        assert "no video 9" in page

    def test_unknown_page_rejected(self):
        with pytest.raises(WebError):
            render_page(Response(body={"page": "mystery"}))

    def test_boxes_are_rectangular(self, portal_with_video):
        cluster, portal, _, _ = portal_with_video
        resp = run(cluster, portal.request("GET", "/"))
        lines = render_page(resp).splitlines()
        assert len({len(l) for l in lines}) == 1  # constant width
        assert lines[0].startswith("+--")
        assert lines[-1].startswith("+--")
