"""The redesigned portal API surface: routing, /metrics, /healthz."""

import pytest

from repro.common.errors import HttpError, WebError
from repro.common.units import Mbps, MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.video import R_720P, VideoFile
from repro.web import ALIAS_SUNSET, Lighttpd, Request, Response, VideoPortal


def make_portal(n_hosts=6):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, namenode_host="node0",
              datanode_hosts=cluster.host_names[1:], block_size=16 * MiB,
              replication=2)
    portal = VideoPortal(cluster, fs, web_host="node1",
                         transcode_workers=cluster.host_names[2:])
    return cluster, portal


def request(cluster, portal, method, path, **kw):
    return cluster.run(cluster.engine.process(
        portal.request(method, path, **kw)))


def register_and_login(cluster, portal, username="kuan"):
    request(cluster, portal, "POST", "/register",
            params={"username": username, "password": "secret99",
                    "email": f"{username}@thu.edu.tw"})
    _, token = portal.auth.outbox[-1]
    request(cluster, portal, "POST", "/verify", params={"token": token})
    r = request(cluster, portal, "POST", "/login",
                params={"username": username, "password": "secret99"})
    return r.set_session


def publish_video(cluster, portal, session, title="Nobody MV"):
    media = VideoFile(
        name="clip.avi", container="avi", vcodec="mpeg4", acodec="mp3",
        duration=30.0, resolution=R_720P, fps=25.0, bitrate=4 * Mbps)
    r = request(cluster, portal, "POST", "/upload", session=session,
                params={"title": title, "description": "d", "tags": "t",
                        "media": media})
    assert r.ok, r.body
    return r.body["video_id"]


class TestResponseShapes:
    def test_json_ok_merges_extras(self):
        r = Response.json_ok({"page": "x"}, n=3)
        assert r.ok
        assert r.body == {"page": "x", "n": 3}

    def test_json_ok_rejects_error_status(self):
        with pytest.raises(WebError):
            Response.json_ok(status=500)

    def test_json_error_uniform_body(self):
        r = Response.json_error("boom", status=503, hint="later")
        assert r.status == 503
        assert r.body == {"error": "boom", "status": 503, "hint": "later"}

    def test_json_error_rejects_success_status(self):
        with pytest.raises(WebError):
            Response.json_error("fine", status=200)

    def test_http_error_headers_reach_the_response(self):
        exc = HttpError(503, "degraded", retry_after=30.0,
                        headers={"X-Layer": "hdfs"})
        r = Response.from_http_error(exc)
        assert r.status == 503
        assert r.headers["Retry-After"] == "30"
        assert r.headers["X-Layer"] == "hdfs"
        assert r.body["error"].startswith("degraded")


class TestRouting:
    def make_server(self):
        cluster = Cluster(2)
        return cluster, Lighttpd(cluster, "node0")

    def test_path_params_land_in_request_params(self):
        cluster, server = self.make_server()

        def handler(req):
            yield cluster.engine.timeout(0)
            return Response.json_ok(vid=req.params["id"])

        server.route("GET", "/video/<id>", handler)
        r = cluster.run(cluster.engine.process(
            server.handle(Request("GET", "/video/42"))))
        assert r.body["vid"] == "42"

    def test_decorator_forms(self):
        cluster, server = self.make_server()

        @server.get("/video/<id>")
        def _page(req):
            yield cluster.engine.timeout(0)
            return Response.json_ok(page="video")

        @server.post("/video/<id>/comment")
        def _comment(req):
            yield cluster.engine.timeout(0)
            return Response.json_ok(page="comment")

        route, params = server.resolve("GET", "/video/7")
        assert route.pattern == "/video/<id>"
        assert params == {"id": "7"}
        route, params = server.resolve("POST", "/video/7/comment")
        assert params == {"id": "7"}

    def test_explicit_query_param_wins_over_path_param(self):
        cluster, server = self.make_server()

        def handler(req):
            yield cluster.engine.timeout(0)
            return Response.json_ok(vid=req.params["id"])

        server.route("GET", "/video/<id>", handler)
        req = Request("GET", "/video/42", params={"id": "explicit"})
        r = cluster.run(cluster.engine.process(server.handle(req)))
        assert r.body["vid"] == "explicit"

    def test_unmatched_path_is_404_with_bounded_label(self):
        cluster, server = self.make_server()
        r = cluster.run(cluster.engine.process(
            server.handle(Request("GET", "/nope/1"))))
        assert r.status == 404
        assert cluster.metrics.get("web_requests_total").labels(
            method="GET", route="<unmatched>", status="404").value == 1

    def test_alias_reports_under_canonical_label(self):
        cluster, server = self.make_server()

        def handler(req):
            yield cluster.engine.timeout(0)
            return Response.json_ok()

        server.route("GET", "/video/<id>", handler, aliases=("/video",))
        legacy = cluster.run(cluster.engine.process(
            server.handle(Request("GET", "/video", params={"id": "1"}))))
        canonical = cluster.run(cluster.engine.process(
            server.handle(Request("GET", "/video/1"))))
        counter = cluster.metrics.get("web_requests_total")
        assert counter.labels(
            method="GET", route="/video/<id>", status="200").value == 2
        # alias responses announce their retirement (RFC 8594 style)
        assert legacy.headers["Deprecation"] == "true"
        assert legacy.headers["Sunset"] == ALIAS_SUNSET
        assert "Deprecation" not in canonical.headers
        assert "Sunset" not in canonical.headers

    def test_malformed_patterns_rejected(self):
        cluster, server = self.make_server()

        def handler(req):
            yield cluster.engine.timeout(0)

        with pytest.raises(WebError):
            server.route("GET", "no-slash", handler)
        with pytest.raises(WebError):
            server.route("GET", "/video/<id", handler)
        with pytest.raises(WebError):
            server.route("GET", "/video/<bad name>", handler)
        with pytest.raises(WebError):
            server.route("GET", "/pair/<id>/<id>", handler)


class TestPortalRoutes:
    def test_canonical_video_page_and_alias(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish_video(cluster, portal, session)
        canonical = request(cluster, portal, "GET", f"/video/{vid}")
        legacy = request(cluster, portal, "GET", "/video",
                         params={"id": vid})
        assert canonical.ok and legacy.ok
        assert canonical.body["video"]["id"] == legacy.body["video"]["id"]
        assert legacy.headers["Deprecation"] == "true"
        assert legacy.headers["Sunset"] == ALIAS_SUNSET
        assert "Deprecation" not in canonical.headers

    def test_comment_via_path_param(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish_video(cluster, portal, session)
        r = request(cluster, portal, "POST", f"/video/{vid}/comment",
                    session=session, params={"text": "great"})
        assert r.ok, r.body


class TestMetricsEndpoint:
    def test_prometheus_text_covers_the_layers(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        publish_video(cluster, portal, session)
        r = request(cluster, portal, "GET", "/metrics")
        assert r.ok
        assert r.headers["Content-Type"].startswith("text/plain")
        text = r.body["text"]
        assert "# TYPE web_request_seconds histogram" in text
        assert "hdfs_bytes_written_total" in text
        assert "transcode_seconds_bucket" in text
        assert 'portal_uploads_total{outcome="published"} 1' in text
        assert r.body_bytes == len(text.encode("utf-8"))

    def test_scraping_metrics_counts_itself(self):
        cluster, portal = make_portal()
        request(cluster, portal, "GET", "/metrics")
        second = request(cluster, portal, "GET", "/metrics")
        assert 'route="/metrics"' in second.body["text"]


class TestHealthz:
    def test_healthy_stack(self):
        cluster, portal = make_portal()
        r = request(cluster, portal, "GET", "/healthz")
        assert r.ok
        assert r.body["health"] == "ok"
        assert r.body["degraded_layers"] == []
        assert set(r.body["layers"]) >= {"web", "hdfs", "transcode"}

    def test_degraded_storage_reports_503_with_retry_after(self):
        cluster, portal = make_portal()
        # drop live datanodes below the replication factor
        for victim in list(portal.fs.datanodes)[1:]:
            portal.fs.namenode.dead_datanodes.add(victim)
        r = request(cluster, portal, "GET", "/healthz")
        assert r.status == 503
        assert "hdfs" in r.body["degraded_layers"]
        assert r.body["layers"]["hdfs"]["status"] == "degraded"
        assert r.headers["Retry-After"]
        # uniform error shape even on the health endpoint
        assert r.body["health"] == "degraded"
        assert "error" in r.body

    def test_custom_probe_shows_up(self):
        cluster, portal = make_portal()
        portal.add_health_provider("cache", lambda: "cold start")
        r = request(cluster, portal, "GET", "/healthz")
        assert r.status == 503
        assert r.body["layers"]["cache"]["reason"] == "cold start"
