import json

import pytest

from repro.common.events import EventLog
from repro.common.trace import to_chrome_trace
from repro.web import render_feed

from tests.web.test_portal import make_portal, publish_video, register_and_login


class TestRssFeed:
    def test_feed_route_lists_recent(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish_video(cluster, portal, session, title="Nobody <MV>")
        resp = cluster.run(cluster.engine.process(
            portal.request("GET", "/feed")))
        assert resp.ok
        xml = resp.body["xml"]
        assert xml.startswith('<?xml version="1.0"')
        assert "<rss version=\"2.0\">" in xml
        assert f"/video/{vid}" in xml
        # XML-escaped title
        assert "Nobody &lt;MV&gt;" in xml
        assert resp.body["items"] == 1
        assert resp.body_bytes == len(xml.encode())

    def test_removed_videos_absent(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal, "admin")
        vid = publish_video(cluster, portal, session)
        cluster.run(cluster.engine.process(portal.request(
            "POST", f"/video/{vid}/delete", session=session)))
        resp = cluster.run(cluster.engine.process(
            portal.request("GET", "/feed")))
        assert resp.body["items"] == 0

    def test_render_feed_limit(self):
        videos = [{"id": i, "title": f"v{i}", "description": ""}
                  for i in range(30)]
        xml = render_feed(videos, limit=5)
        assert xml.count("<item>") == 5

    def test_feed_is_parseable_xml(self):
        import xml.etree.ElementTree as ET

        xml = render_feed([{"id": 1, "title": 'a "quoted" & <odd> title',
                            "description": "d&d"}])
        root = ET.fromstring(xml)
        assert root.tag == "rss"
        items = root.findall("./channel/item")
        assert items[0].find("title").text == 'a "quoted" & <odd> title'


class TestChromeTrace:
    def test_trace_structure(self):
        t = {"now": 0.0}
        log = EventLog(clock=lambda: t["now"])
        log.emit("one.core", "vm_state", "vm-0 RUNNING", vm="vm-0")
        t["now"] = 2.5
        log.emit("hdfs", "block_written", "blk-0", size=1024)
        doc = json.loads(to_chrome_trace(log))
        events = doc["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 2
        assert instants[0]["ts"] == 0.0
        assert instants[1]["ts"] == 2_500_000.0
        assert instants[1]["args"]["size"] == 1024
        # distinct sources get distinct threads, with name metadata
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"one.core", "hdfs"} <= names

    def test_non_jsonable_data_reprd(self):
        log = EventLog()
        log.emit("s", "k", "m", payload=object())
        doc = json.loads(to_chrome_trace(log))
        (ev,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert "object" in ev["args"]["payload"]

    def test_whole_simulation_trace(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        publish_video(cluster, portal, session)
        doc = json.loads(to_chrome_trace(cluster.log))
        kinds = {e["name"] for e in doc["traceEvents"] if e["ph"] == "i"}
        assert "video_published" in kinds
