"""The paper's actual deployment: the web tier runs inside an IaaS guest,
so virtualization overhead (claim C3) shows up in page service times."""

import pytest

from repro.common.errors import WebError
from repro.common.units import GiB, MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.virt import DiskImage, Kvm, VirtualMachine, XenPv, make_hypervisor
from repro.web import VideoPortal


def make_portal(hypervisor_kind=None):
    """Portal whose web tier optionally runs in a guest on `node1`."""
    cluster = Cluster(6)
    fs = Hdfs(cluster, namenode_host="node0",
              datanode_hosts=cluster.host_names[1:], block_size=16 * MiB,
              replication=2)
    guest = None
    if hypervisor_kind is not None:
        hv = make_hypervisor(hypervisor_kind, cluster.host("node1"))
        guest = VirtualMachine("web-vm", vcpus=2, memory=1 * GiB,
                               image=DiskImage("ubuntu", size=1 * GiB))
        hv.define(guest)
        hv.start(guest)
    portal = VideoPortal(cluster, fs, web_host="node1",
                         transcode_workers=cluster.host_names[2:],
                         guest_vm=guest)
    return cluster, portal


def page_time(cluster, portal, n=40):
    t0 = cluster.now
    for _ in range(n):
        resp = cluster.run(cluster.engine.process(portal.request("GET", "/")))
        assert resp.ok
    return cluster.now - t0


class TestPortalInVm:
    def test_unplaced_guest_rejected(self):
        cluster = Cluster(6)
        fs = Hdfs(cluster, namenode_host="node0",
                  datanode_hosts=cluster.host_names[1:], replication=2)
        stray = VirtualMachine("stray", vcpus=1, memory=256 * MiB,
                               image=DiskImage("i", size=1 * GiB))
        with pytest.raises(WebError):
            VideoPortal(cluster, fs, web_host="node1",
                        transcode_workers=cluster.host_names[2:],
                        guest_vm=stray)

    def test_portal_works_inside_guest(self):
        cluster, portal = make_portal("kvm")
        resp = cluster.run(cluster.engine.process(portal.request(
            "POST", "/register",
            params={"username": "kuan", "password": "secret99",
                    "email": "k@x.y"})))
        assert resp.ok
        assert portal.guest_vm.cpu_seconds_run > 0

    def test_c3_overhead_ordering_at_page_level(self):
        """bare < Xen PV < KVM page times: C3 expressed in the SaaS layer."""
        times = {}
        for kind in (None, "xen", "kvm"):
            cluster, portal = make_portal(kind)
            times[kind] = page_time(cluster, portal)
        assert times[None] < times["xen"] < times["kvm"]

    def test_guest_pause_falls_back_to_host(self):
        """A paused guest (e.g. mid-migration) doesn't break the portal."""
        cluster, portal = make_portal("kvm")
        portal.guest_vm.hypervisor.pause(portal.guest_vm)
        resp = cluster.run(cluster.engine.process(portal.request("GET", "/")))
        assert resp.ok
