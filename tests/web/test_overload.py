"""End-to-end overload control at the portal's front door."""

import pytest

from repro.common.units import MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.resilience import Deadline
from repro.web import VideoPortal
from repro.web.server import format_retry_after


def make_portal(n_hosts=6, **overload_kw):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, namenode_host="node0",
              datanode_hosts=cluster.host_names[1:], block_size=16 * MiB,
              replication=2)
    portal = VideoPortal(
        cluster, fs, web_host="node1",
        transcode_workers=cluster.host_names[2:],
    )
    controller = portal.enable_overload_control(**overload_kw)
    return cluster, portal, controller


def fire(cluster, portal, method, path, **kw):
    return cluster.run(cluster.engine.process(
        portal.request(method, path, **kw)))


class TestRetryAfterFormat:
    def test_whole_seconds_rounded_up(self):
        assert format_retry_after(0.0) == "0"
        assert format_retry_after(0.2) == "1"
        assert format_retry_after(15.0) == "15"
        assert format_retry_after(15.4) == "16"
        assert format_retry_after(-3.0) == "0"


class TestRateLimiting:
    def test_burst_past_the_bucket_gets_429_with_retry_after(self):
        cluster, portal, _ = make_portal(
            rate_limits={("GET", "/search"): 2.0})
        statuses = []
        for _ in range(5):
            r = fire(cluster, portal, "GET", "/search", params={"q": "x"})
            statuses.append(r.status)
        assert statuses.count(429) == 3          # burst of 2, then refusals
        refused = [r for r in [fire(cluster, portal, "GET", "/search",
                                    params={"q": "x"})] if r.status == 429]
        assert refused
        assert float(refused[0].headers["Retry-After"]) >= 0
        assert portal.server.stats.shed >= 3

    def test_unlimited_routes_unaffected(self):
        cluster, portal, _ = make_portal(
            rate_limits={("GET", "/search"): 1.0})
        for _ in range(5):
            r = fire(cluster, portal, "GET", "/")
            assert r.ok

    def test_bucket_refills_with_simulated_time(self):
        cluster, portal, _ = make_portal(
            rate_limits={("GET", "/search"): 1.0})
        assert fire(cluster, portal, "GET", "/search",
                    params={"q": "x"}).ok
        assert fire(cluster, portal, "GET", "/search",
                    params={"q": "x"}).status == 429
        cluster.engine.run(until=cluster.engine.timeout(2.0))
        assert fire(cluster, portal, "GET", "/search",
                    params={"q": "x"}).ok


class TestDeadlines:
    def test_requests_get_a_stamped_deadline(self):
        import dataclasses

        cluster, portal, _ = make_portal(request_budget=10.0)
        seen = {}
        original = portal._handle_home

        def spy(request):
            seen["deadline"] = request.deadline
            return original(request)

        route = portal.server.routes[("GET", "/")]
        portal.server.routes[("GET", "/")] = dataclasses.replace(
            route, handler=spy)
        r = fire(cluster, portal, "GET", "/")
        assert r.ok
        assert isinstance(seen["deadline"], Deadline)
        assert seen["deadline"].remaining() > 0

    def test_expired_deadline_is_a_504(self):
        cluster, portal, _ = make_portal(request_budget=5.0)
        from repro.web.server import Request

        req = Request(method="GET", path="/",
                      deadline=Deadline.after(cluster.engine, 0.001))
        cluster.engine.run(until=cluster.engine.timeout(1.0))
        r = cluster.run(cluster.engine.process(portal.server.handle(req)))
        assert r.status == 504
        assert "deadline" in r.body["error"]


class TestAdmissionShedding:
    def test_saturation_returns_503_with_retry_after(self):
        cluster, portal, controller = make_portal(
            capacity=1, queue_capacity=0)
        engine = cluster.engine
        responses = []

        def client(path):
            def _run():
                resp = yield engine.process(portal.request("GET", path))
                responses.append(resp)
            return engine.process(_run())

        for _ in range(4):
            client("/")
        cluster.run()
        statuses = sorted(r.status for r in responses)
        assert 200 in statuses
        assert 503 in statuses
        shed = [r for r in responses if r.status == 503]
        assert shed[0].headers["Retry-After"] == format_retry_after(
            portal.RETRY_AFTER)
        assert controller.shed_counts["playback"] >= 1

    def test_playback_outranks_upload_in_the_queue(self):
        cluster, portal, controller = make_portal(
            capacity=1, queue_capacity=1)
        engine = cluster.engine
        outcomes = []

        def client(tag, method, path, **kw):
            def _run():
                resp = yield engine.process(
                    portal.request(method, path, **kw))
                outcomes.append((tag, resp.status))
            return engine.process(_run())

        client("first", "GET", "/")           # takes the slot
        client("upload", "POST", "/upload")   # queued (class upload)
        client("playback", "GET", "/")        # evicts the queued upload
        cluster.run()
        by_tag = dict(outcomes)
        assert by_tag["upload"] == 503
        assert by_tag["playback"] == 200
        assert controller.shed_counts["upload"] == 1

    def test_no_overload_control_means_no_shedding(self):
        cluster = Cluster(6)
        fs = Hdfs(cluster, namenode_host="node0",
                  datanode_hosts=cluster.host_names[1:],
                  block_size=16 * MiB, replication=2)
        portal = VideoPortal(cluster, fs, web_host="node1",
                             transcode_workers=cluster.host_names[2:])
        for _ in range(10):
            r = fire(cluster, portal, "GET", "/")
            assert r.ok
        assert portal.server.stats.shed == 0

    def test_metrics_account_shed_work(self):
        cluster, portal, _ = make_portal(
            rate_limits={("GET", "/search"): 1.0})
        fire(cluster, portal, "GET", "/search", params={"q": "x"})
        fire(cluster, portal, "GET", "/search", params={"q": "x"})
        rate_limited = cluster.metrics.counter(
            "web_rate_limited_total",
            "requests refused 429 by a per-route token bucket",
            labels=("route",))
        assert rate_limited.labels(route="/search").value == 1.0
        requests = cluster.metrics.counter(
            "web_requests_total", "HTTP requests served",
            labels=("method", "route", "status"))
        assert requests.labels(
            method="GET", route="/search", status="429").value == 1.0
