"""LoadBalancer: round-robin, draining, and no-backend behaviour."""

import pytest

from repro.common.errors import WebError
from repro.stack import build_reconciled_cloud


@pytest.fixture()
def vc():
    cloud = build_reconciled_cloud(seed=5, autoscale=False)
    cloud.run(until=30.0)          # reconciler fills the web pool to 2
    yield cloud
    cloud.stop_background()
    cloud.cluster.run()


def get(vc, path="/"):
    # requests originate from the front-end so killing web backends
    # never strands the reply transfer
    done = vc.engine.process(
        vc.portal.request("GET", path, client_host="node0"))
    vc.run(done)
    return done.value


def served_counts(vc):
    counter = vc.cluster.metrics.get("lb_requests_total")
    return {c.labelvalues: c.value for c in counter.children()
            if c.labelvalues}


class TestRouting:
    def test_requests_round_robin_over_healthy_backends(self, vc):
        assert len(vc.lb.backends) == 2
        for _ in range(4):
            resp = get(vc)
            assert resp.status == 200
        served = served_counts(vc)
        assert len(served) == 2
        assert all(v == 2 for v in served.values())

    def test_draining_backend_gets_no_new_requests(self, vc):
        victim = next(iter(vc.lb.backends))
        vc.lb.drain(victim)
        before = served_counts(vc)
        for _ in range(3):
            assert get(vc).status == 200
        after = served_counts(vc)
        for labels, value in after.items():
            if victim in labels:
                assert value == before.get(labels, 0.0)
        vc.lb.undrain(victim)

    def test_dead_backend_skipped(self, vc):
        victim = next(iter(vc.lb.backends))
        vc.cluster.host(victim).fail()
        assert get(vc).status == 200
        vc.cluster.host(victim).recover()

    def test_all_backends_down_is_503(self, vc):
        for name in vc.lb.backends:
            vc.cluster.host(name).fail()
        resp = get(vc)
        assert resp.status == 503
        assert resp.headers.get("Retry-After") is not None
        for name in vc.lb.backends:
            vc.cluster.host(name).recover()


class TestMembership:
    def test_duplicate_backend_rejected(self, vc):
        name = next(iter(vc.lb.backends))
        with pytest.raises(WebError):
            vc.lb.add_backend(name, vc.lb.backends[name])

    def test_remove_unknown_backend_rejected(self, vc):
        with pytest.raises(WebError):
            vc.lb.remove_backend("nope")
