import pytest

from repro.common.errors import WebError
from repro.common.units import Mbps, MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.video import R_720P, VideoFile
from repro.web import VideoPortal


def make_portal(n_hosts=6, server_kind="lighttpd"):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, namenode_host="node0",
              datanode_hosts=cluster.host_names[1:], block_size=16 * MiB,
              replication=2)
    portal = VideoPortal(
        cluster, fs, web_host="node1",
        transcode_workers=cluster.host_names[2:], server_kind=server_kind,
    )
    return cluster, portal


def upload_clip(duration=60.0, name="clip.avi"):
    return VideoFile(
        name=name, container="avi", vcodec="mpeg4", acodec="mp3",
        duration=duration, resolution=R_720P, fps=25.0, bitrate=4 * Mbps,
    )


def register_and_login(cluster, portal, username="kuan"):
    r = cluster.run(cluster.engine.process(portal.request(
        "POST", "/register",
        params={"username": username, "password": "secret99",
                "email": f"{username}@thu.edu.tw"})))
    assert r.ok
    _, token = portal.auth.outbox[-1]
    r = cluster.run(cluster.engine.process(portal.request(
        "POST", "/verify", params={"token": token})))
    assert r.ok
    r = cluster.run(cluster.engine.process(portal.request(
        "POST", "/login",
        params={"username": username, "password": "secret99"})))
    assert r.ok
    return r.set_session


def publish_video(cluster, portal, session, title="Nobody MV", **kw):
    resp = cluster.run(cluster.engine.process(portal.request(
        "POST", "/upload", session=session,
        params=dict({"title": title, "description": "the nobody video",
                     "tags": "kpop nobody", "media": upload_clip()}, **kw))))
    assert resp.ok, resp.body
    return resp.body["video_id"]


class TestAuthFlow:
    def test_register_verify_login_logout_pages(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        assert session
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", "/logout", session=session)))
        assert r.ok
        assert portal.auth.current_user(session) is None

    def test_login_before_verification_fails(self):
        cluster, portal = make_portal()
        cluster.run(cluster.engine.process(portal.request(
            "POST", "/register",
            params={"username": "eve", "password": "secret99",
                    "email": "e@x.y"})))
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", "/login", params={"username": "eve", "password": "secret99"})))
        assert r.status == 403

    def test_register_missing_field(self):
        cluster, portal = make_portal()
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", "/register", params={"username": "x"})))
        assert r.status == 400


class TestUploadFlow:
    def test_upload_publishes_and_creates_dynamic_link(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish_video(cluster, portal, session)
        row = portal.db.table("videos").get(vid)
        assert row["status"] == "published"
        # rendition is H.264 FLV (the Figure 23 player format)
        rend = portal.rendition(vid)
        assert (rend.vcodec, rend.container) == ("h264", "flv")
        # raw upload landed in HDFS through the mount
        assert portal.fs.namenode.exists(f"/uploads/raw/video-{vid}.avi")
        # published rendition in HDFS
        assert portal.fs.namenode.exists(f"/published/video-{vid}-720p.flv")
        # poster thumbnail extracted
        assert portal.thumbnail(vid) is not None

    def test_upload_requires_login(self):
        cluster, portal = make_portal()
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", "/upload",
            params={"title": "x", "media": upload_clip()})))
        assert r.status == 403

    def test_anonymous_cannot_upload_blocked_user_either(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal, "mallory")
        user = portal.auth.current_user(session)
        portal.db.table("users").update(user["id"], blocked=True)
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", "/upload", session=session,
            params={"title": "x", "media": upload_clip()})))
        assert r.status == 403


class TestSearchAndHome:
    def test_home_lists_recent_videos(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish_video(cluster, portal, session)
        r = cluster.run(cluster.engine.process(portal.request("GET", "/")))
        assert r.ok
        assert r.body["search_box"]
        assert any(v["id"] == vid for v in r.body["recent"])

    def test_figure_18_search_nobody(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish_video(cluster, portal, session, title="Nobody - Wonder Girls")
        publish_video(cluster, portal, session, title="Cat video",
                      description="a cat does cat things", tags="cat cute")
        cluster.run(cluster.engine.process(portal.refresh_search_index()))
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/search", params={"q": "nobody"})))
        assert r.ok
        ids = [v["id"] for v in r.body["results"]]
        assert ids == [vid]

    def test_search_before_indexing_finds_nothing(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        publish_video(cluster, portal, session)
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/search", params={"q": "nobody"})))
        assert r.body["results"] == []

    def test_removed_video_drops_from_results(self):
        cluster, portal = make_portal()
        admin_session = register_and_login(cluster, portal, "admin")
        vid = publish_video(cluster, portal, admin_session)
        cluster.run(cluster.engine.process(portal.refresh_search_index()))
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", f"/admin/video/{vid}/remove",
            session=admin_session)))
        assert r.ok
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/search", params={"q": "nobody"})))
        assert r.body["results"] == []


class TestPlayerPage:
    def test_player_page_fields(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish_video(cluster, portal, session)
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", f"/video/{vid}")))
        assert r.ok
        player = r.body["player"]
        assert player["format"] == "h264/flv"
        assert player["resolution"] == "1280x720"
        assert player["aspect"] == "16x9"
        assert player["seekable_time_bar"]
        assert set(r.body["share"]) == {"facebook", "plurk", "twitter"}

    def test_views_increment(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish_video(cluster, portal, session)
        for _ in range(3):
            cluster.run(cluster.engine.process(portal.request(
                "GET", f"/video/{vid}")))
        assert portal.db.table("videos").get(vid)["views"] == 3

    def test_missing_video_404(self):
        cluster, portal = make_portal()
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/video/999")))
        assert r.status == 404

    def test_play_session_streams(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish_video(cluster, portal, session)
        playback = portal.play(vid, "node5", watch_plan=[(0.0, 5.0), (30.0, 5.0)])
        report = cluster.run(cluster.engine.process(playback.run()))
        assert report.watched_seconds == pytest.approx(10.0, abs=0.5)
        assert len(report.seek_latencies) == 1

    def test_play_unpublished_rejected(self):
        cluster, portal = make_portal()
        with pytest.raises(WebError):
            portal.play(42, "node5")


class TestCommentsFlagsAdmin:
    def test_comment_appears_on_player_page(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish_video(cluster, portal, session)
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", f"/video/{vid}/comment", session=session,
            params={"text": "great video!"})))
        assert r.ok
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", f"/video/{vid}")))
        assert r.body["comments"][0]["text"] == "great video!"

    def test_comment_requires_login(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal)
        vid = publish_video(cluster, portal, session)
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", f"/video/{vid}/comment", params={"text": "anon"})))
        assert r.status == 403

    def test_flag_then_admin_remove(self):
        cluster, portal = make_portal()
        admin_session = register_and_login(cluster, portal, "admin")
        user_session = register_and_login(cluster, portal, "user1")
        vid = publish_video(cluster, portal, user_session)
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", f"/video/{vid}/flag", session=user_session,
            params={"reason": "bad film"})))
        assert r.ok
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/admin", session=admin_session)))
        assert r.body["open_flags"][0]["video_id"] == vid
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", f"/admin/video/{vid}/remove", session=admin_session)))
        assert r.ok
        assert portal.db.table("videos").get(vid)["status"] == "removed"
        # flags resolved, HDFS rendition gone
        assert all(f["resolved"] for f in portal.db.table("flags").select())
        assert not portal.fs.namenode.exists(f"/published/video-{vid}-720p.flv")

    def test_admin_pages_require_admin(self):
        cluster, portal = make_portal()
        session = register_and_login(cluster, portal, "pleb")
        r = cluster.run(cluster.engine.process(portal.request(
            "GET", "/admin", session=session)))
        assert r.status == 403

    def test_block_vicious_user_kills_sessions(self):
        cluster, portal = make_portal()
        admin_session = register_and_login(cluster, portal, "admin")
        user_session = register_and_login(cluster, portal, "troll")
        user = portal.auth.current_user(user_session)
        r = cluster.run(cluster.engine.process(portal.request(
            "POST", f"/admin/user/{user['id']}/block",
            session=admin_session)))
        assert r.ok
        assert portal.auth.current_user(user_session) is None
        with pytest.raises(Exception):
            portal.auth.login("troll", "secret99")
