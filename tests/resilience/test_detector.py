import pytest

from repro.common.errors import ConfigError
from repro.obs import MetricsRegistry
from repro.resilience import (
    PHI_MAX,
    AdaptiveDeadline,
    FailureDetectorBank,
    HedgeBudget,
    LatencyTracker,
    PhiAccrualDetector,
    ProbeGate,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def beat_n(det, clock, n, interval=1.0):
    for _ in range(n):
        clock.now += interval
        det.heartbeat()


class TestPhiAccrual:
    def test_never_heard_from_is_max_suspicion(self):
        det = PhiAccrualDetector(FakeClock())
        assert det.phi() == PHI_MAX

    def test_zero_right_after_a_beat(self):
        clock = FakeClock()
        det = PhiAccrualDetector(clock)
        beat_n(det, clock, 8)
        assert det.phi() == 0.0

    def test_phi_rises_monotonically_with_silence(self):
        clock = FakeClock()
        det = PhiAccrualDetector(clock, min_std=0.05)
        beat_n(det, clock, 10, interval=1.0)
        values = []
        for _ in range(12):
            clock.now += 0.5
            values.append(det.phi())
        assert values == sorted(values)
        assert values[-1] > 8.0

    def test_on_time_beats_keep_phi_low(self):
        clock = FakeClock()
        det = PhiAccrualDetector(clock, min_std=0.05)
        beat_n(det, clock, 20, interval=1.0)
        clock.now += 1.0
        assert det.phi() < 1.0

    def test_bootstrap_interval_governs_fresh_targets(self):
        clock = FakeClock()
        det = PhiAccrualDetector(clock, bootstrap_interval=10.0)
        det.heartbeat()
        clock.now += 5.0
        # half an assumed period late: not suspicious yet
        assert det.phi() < 1.0

    def test_huge_gap_resets_window_instead_of_poisoning_it(self):
        clock = FakeClock()
        det = PhiAccrualDetector(clock, min_std=0.05, max_gap_factor=16.0)
        beat_n(det, clock, 10, interval=1.0)
        clock.now += 500.0          # the node was down, not slow
        det.heartbeat()
        assert len(det.gaps) == 0
        # after the reset it re-learns from the bootstrap interval
        beat_n(det, clock, 5, interval=1.0)
        clock.now += 1.0
        assert det.phi() < 1.0

    def test_adapts_to_the_observed_period(self):
        clock = FakeClock()
        fast = PhiAccrualDetector(clock, min_std=0.05)
        beat_n(fast, clock, 20, interval=0.5)
        phi_fast = None
        clock.now += 2.0
        phi_fast = fast.phi()

        clock2 = FakeClock()
        slow = PhiAccrualDetector(clock2, min_std=0.05)
        beat_n(slow, clock2, 20, interval=5.0)
        clock2.now += 2.0
        phi_slow = slow.phi()
        # 2s of silence is an eternity at a 0.5s period, nothing at 5s
        assert phi_fast > 8.0
        assert phi_slow == 0.0

    def test_config_validation(self):
        clock = FakeClock()
        with pytest.raises(ConfigError):
            PhiAccrualDetector(clock, window=1)
        with pytest.raises(ConfigError):
            PhiAccrualDetector(clock, min_std=0.0)
        with pytest.raises(ConfigError):
            PhiAccrualDetector(clock, bootstrap_interval=0.0)
        with pytest.raises(ConfigError):
            PhiAccrualDetector(clock, min_samples=0)
        with pytest.raises(ConfigError):
            PhiAccrualDetector(clock, max_gap_factor=1.0)


class TestBank:
    def test_unknown_target_is_max_suspicion(self):
        bank = FailureDetectorBank("b", FakeClock())
        assert bank.phi("ghost") == PHI_MAX

    def test_per_target_streams_are_independent(self):
        clock = FakeClock()
        bank = FailureDetectorBank("b", clock, min_std=0.05)
        for _ in range(10):
            clock.now += 1.0
            bank.heartbeat("steady")
            bank.heartbeat("flaky")
        for _ in range(10):
            clock.now += 1.0
            bank.heartbeat("steady")      # flaky goes silent
        assert bank.phi("steady") < 1.0
        assert bank.phi("flaky") > 8.0
        assert bank.suspect("flaky", 8.0)
        assert not bank.suspect("steady", 8.0)

    def test_forget_drops_the_target(self):
        clock = FakeClock()
        bank = FailureDetectorBank("b", clock)
        bank.heartbeat("dn1")
        assert bank.targets() == ["dn1"]
        bank.forget("dn1")
        assert bank.targets() == []
        assert bank.phi("dn1") == PHI_MAX

    def test_snapshot_covers_every_target(self):
        clock = FakeClock()
        bank = FailureDetectorBank("b", clock)
        bank.heartbeat("a")
        bank.heartbeat("c")
        snap = bank.suspicion_snapshot()
        assert sorted(snap) == ["a", "c"]

    def test_phi_gauge_is_exported(self):
        clock = FakeClock()
        metrics = MetricsRegistry()
        bank = FailureDetectorBank("dns", clock, metrics=metrics)
        bank.heartbeat("dn1")
        bank.phi("dn1")
        sample = metrics.gauge(
            "detector_phi", "phi-accrual suspicion level per monitored target",
            labels=("bank", "target")).labels(bank="dns", target="dn1")
        assert sample.value == bank.phi("dn1")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            FailureDetectorBank("", FakeClock())


class TestLatencyTracker:
    def test_unprimed_threshold_is_zero(self):
        t = LatencyTracker()
        t.observe(1.0)
        t.observe(1.0)
        assert not t.primed
        assert t.threshold() == 0.0

    def test_threshold_sits_above_the_mean(self):
        t = LatencyTracker(alpha=0.2, tail_factor=4.0)
        for _ in range(20):
            t.observe(0.1)
        assert t.primed
        assert t.threshold() >= t.mean
        assert abs(t.mean - 0.1) < 1e-9

    def test_tracks_a_shifting_stream(self):
        t = LatencyTracker(alpha=0.5)
        for _ in range(10):
            t.observe(0.1)
        for _ in range(10):
            t.observe(1.0)
        assert 0.9 < t.mean <= 1.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            LatencyTracker().observe(-0.1)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            LatencyTracker(alpha=0.0)
        with pytest.raises(ConfigError):
            LatencyTracker(tail_factor=0.0)


class TestProbeGate:
    def test_admits_everything_until_primed(self):
        gate = ProbeGate()
        assert gate.admit(0.01)
        assert gate.admit(50.0)      # still learning, no baseline yet
        assert gate.missed == 0

    def test_spike_over_baseline_is_suppressed(self):
        gate = ProbeGate(spike_factor=3.0)
        for _ in range(10):
            assert gate.admit(0.05)
        assert not gate.admit(1.5)   # 30x the baseline
        assert gate.missed == 1

    def test_karns_rule_keeps_the_baseline_clean(self):
        gate = ProbeGate(spike_factor=3.0)
        for _ in range(10):
            gate.admit(0.05)
        baseline = gate.tracker.mean
        # a sustained gray episode: every probe suppressed, none folded in
        for _ in range(20):
            assert not gate.admit(2.0)
        assert gate.tracker.mean == baseline
        # the node recovers: normal probes re-admitted immediately
        assert gate.admit(0.05)

    def test_without_karn_the_gate_would_reopen(self):
        # the control experiment: folding outliers in stretches the cut
        t = LatencyTracker(alpha=0.2, tail_factor=8.0)
        for _ in range(10):
            t.observe(0.05)
        for _ in range(20):
            t.observe(2.0)
        # baseline stretched past the gray latency -> 2.0s now looks fine
        assert max(t.threshold(), 3.0 * t.mean) > 2.0

    def test_mild_jitter_is_admitted(self):
        gate = ProbeGate(spike_factor=3.0)
        for rtt in (0.05, 0.06, 0.04, 0.05, 0.07, 0.05):
            assert gate.admit(rtt)
        assert gate.missed == 0

    def test_spike_factor_validated(self):
        with pytest.raises(ConfigError):
            ProbeGate(spike_factor=1.0)


class TestHedgeBudget:
    def test_burst_allows_immediate_hedges(self):
        b = HedgeBudget(ratio=0.1, burst=2.0)
        assert b.try_spend()
        assert b.try_spend()
        assert not b.try_spend()
        assert b.denied == 1

    def test_primaries_earn_fractional_tokens(self):
        b = HedgeBudget(ratio=0.5, burst=1.0)
        assert b.try_spend()
        assert not b.try_spend()
        b.record_primary()
        assert not b.try_spend()
        b.record_primary()
        assert b.try_spend()             # two primaries = one hedge at 0.5

    def test_sustained_ratio_is_bounded(self):
        b = HedgeBudget(ratio=0.1, burst=4.0)
        hedged = 0
        for _ in range(1000):
            b.record_primary()
            if b.try_spend():
                hedged += 1
        assert hedged <= 0.1 * 1000 + 4.0

    def test_refund_returns_the_token(self):
        b = HedgeBudget(ratio=0.1, burst=1.0)
        assert b.try_spend()
        assert b.spent == 1
        b.refund()
        assert b.spent == 0
        assert b.try_spend()

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            HedgeBudget(ratio=0.0)
        with pytest.raises(ConfigError):
            HedgeBudget(ratio=1.5)
        with pytest.raises(ConfigError):
            HedgeBudget(burst=0.5)


class TestAdaptiveDeadline:
    def test_unprimed_uses_the_cap(self):
        ad = AdaptiveDeadline(LatencyTracker(), cap=30.0)
        assert ad.budget() == 30.0

    def test_budget_follows_the_tail_estimate(self):
        t = LatencyTracker()
        ad = AdaptiveDeadline(t, multiplier=3.0, floor=0.05, cap=60.0)
        for _ in range(10):
            ad.observe(0.2)
        assert 0.05 <= ad.budget() <= 60.0
        assert abs(ad.budget() - 3.0 * t.threshold()) < 1e-9

    def test_floor_and_cap_clamp(self):
        t = LatencyTracker()
        ad = AdaptiveDeadline(t, multiplier=3.0, floor=0.5, cap=1.0)
        for _ in range(10):
            ad.observe(0.0001)
        assert ad.budget() == 0.5
        for _ in range(50):
            ad.observe(10.0)
        assert ad.budget() == 1.0

    def test_config_validation(self):
        t = LatencyTracker()
        with pytest.raises(ConfigError):
            AdaptiveDeadline(t, multiplier=0.0)
        with pytest.raises(ConfigError):
            AdaptiveDeadline(t, floor=2.0, cap=1.0)
