import pytest

from repro.common.errors import ConfigError, RateLimitError
from repro.resilience import TokenBucket
from repro.sim import Engine


def make_bucket(**kw):
    engine = Engine()
    kw.setdefault("rate", 10.0)
    kw.setdefault("capacity", 5.0)
    return engine, TokenBucket("route", lambda: engine.now, **kw)


def advance(engine, dt):
    engine.run(until=engine.timeout(dt))


class TestBurstAndRefill:
    def test_starts_full_and_absorbs_a_burst(self):
        _, bucket = make_bucket(capacity=5.0)
        for _ in range(5):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.refused == 1

    def test_refills_continuously_at_rate(self):
        engine, bucket = make_bucket(rate=10.0, capacity=5.0)
        for _ in range(5):
            bucket.try_acquire()
        advance(engine, 0.1)             # 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_is_capped_at_capacity(self):
        engine, bucket = make_bucket(rate=10.0, capacity=5.0)
        advance(engine, 100.0)
        assert bucket.available() == pytest.approx(5.0)

    def test_fractional_tokens_accumulate(self):
        engine, bucket = make_bucket(rate=10.0, capacity=5.0)
        for _ in range(5):
            bucket.try_acquire()
        advance(engine, 0.05)            # half a token: not enough
        assert not bucket.try_acquire()
        advance(engine, 0.05)            # the other half
        assert bucket.try_acquire()

    def test_multi_token_cost(self):
        _, bucket = make_bucket(capacity=5.0)
        assert bucket.try_acquire(cost=5.0)
        assert not bucket.try_acquire(cost=0.5)

    def test_exact_boundary_acquires(self):
        engine, bucket = make_bucket(rate=1.0, capacity=1.0)
        assert bucket.try_acquire()
        advance(engine, 1.0)
        assert bucket.try_acquire()


class TestRetryAfter:
    def test_zero_when_tokens_on_hand(self):
        _, bucket = make_bucket()
        assert bucket.retry_after() == 0.0

    def test_honest_wait_for_the_deficit(self):
        engine, bucket = make_bucket(rate=10.0, capacity=5.0)
        for _ in range(5):
            bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.1)
        assert bucket.retry_after(cost=5.0) == pytest.approx(0.5)

    def test_acquire_or_raise_carries_retry_after(self):
        _, bucket = make_bucket(rate=2.0, capacity=1.0)
        bucket.try_acquire()
        with pytest.raises(RateLimitError) as exc_info:
            bucket.acquire_or_raise(doing="GET /")
        assert exc_info.value.retry_after == pytest.approx(0.5)

    def test_validation(self):
        engine = Engine()
        with pytest.raises(ConfigError):
            TokenBucket("x", lambda: engine.now, rate=0.0, capacity=1.0)
        with pytest.raises(ConfigError):
            TokenBucket("x", lambda: engine.now, rate=1.0, capacity=0.0)
        _, bucket = make_bucket()
        with pytest.raises(ConfigError):
            bucket.try_acquire(cost=0.0)
