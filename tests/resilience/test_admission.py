import pytest

from repro.common.errors import AdmissionShedError, ConfigError
from repro.resilience import DEFAULT_PRIORITIES, AdmissionController
from repro.sim import Engine


def make_controller(engine=None, capacity=1, queue_capacity=2, **kw):
    engine = engine or Engine()
    return engine, AdmissionController(
        engine, capacity=capacity, queue_capacity=queue_capacity, **kw)


def spawn_entrant(engine, admission, kind, outcomes, hold=None):
    """A process that enters, optionally holds for *hold* s, and leaves."""

    def _run():
        try:
            yield admission.enter(kind)
        except AdmissionShedError:
            outcomes.append((kind, "shed"))
            return None
        outcomes.append((kind, "admitted"))
        if hold is not None:
            yield engine.timeout(hold)
            admission.leave(kind)
        return None

    return engine.process(_run())


class TestAdmission:
    def test_default_priorities_match_the_portal(self):
        assert DEFAULT_PRIORITIES == ("playback", "search", "upload",
                                      "transcode")

    def test_immediate_grant_under_capacity(self):
        engine, adm = make_controller(capacity=2)
        outcomes = []
        spawn_entrant(engine, adm, "playback", outcomes)
        spawn_entrant(engine, adm, "search", outcomes)
        engine.run()
        assert outcomes == [("playback", "admitted"), ("search", "admitted")]
        assert adm.active == 2

    def test_queueing_and_promotion_in_priority_order(self):
        engine, adm = make_controller(capacity=1, queue_capacity=3)
        outcomes = []
        spawn_entrant(engine, adm, "playback", outcomes, hold=1.0)
        # three waiters arrive while the slot is busy, lowest priority first
        spawn_entrant(engine, adm, "transcode", outcomes, hold=1.0)
        spawn_entrant(engine, adm, "upload", outcomes, hold=1.0)
        spawn_entrant(engine, adm, "search", outcomes, hold=1.0)
        engine.run()
        # promotions happen highest-priority first, not FIFO
        assert outcomes == [
            ("playback", "admitted"),
            ("search", "admitted"),
            ("upload", "admitted"),
            ("transcode", "admitted"),
        ]

    def test_full_queue_sheds_the_cheapest_queued_class(self):
        engine, adm = make_controller(capacity=1, queue_capacity=2)
        outcomes = []
        spawn_entrant(engine, adm, "playback", outcomes, hold=10.0)
        spawn_entrant(engine, adm, "transcode", outcomes, hold=1.0)
        spawn_entrant(engine, adm, "upload", outcomes, hold=1.0)
        # queue now full [transcode, upload]; a playback arrival evicts
        # the cheapest queued work (transcode), not the newest
        spawn_entrant(engine, adm, "playback", outcomes, hold=1.0)
        engine.run()
        assert ("transcode", "shed") in outcomes
        assert outcomes.count(("playback", "admitted")) == 2
        assert ("upload", "admitted") in outcomes
        assert adm.shed_counts["transcode"] == 1

    def test_incoming_cheapest_is_shed_itself(self):
        engine, adm = make_controller(capacity=1, queue_capacity=1)
        outcomes = []
        spawn_entrant(engine, adm, "playback", outcomes, hold=10.0)
        spawn_entrant(engine, adm, "search", outcomes, hold=1.0)   # queued
        # transcode arrives with the queue full of more valuable work
        spawn_entrant(engine, adm, "transcode", outcomes)
        engine.run()
        assert ("transcode", "shed") in outcomes
        assert adm.shed_counts["transcode"] == 1

    def test_equal_priority_arrival_is_shed_not_the_queue(self):
        engine, adm = make_controller(capacity=1, queue_capacity=1)
        outcomes = []
        spawn_entrant(engine, adm, "search", outcomes, hold=10.0)
        spawn_entrant(engine, adm, "search", outcomes, hold=1.0)   # queued
        spawn_entrant(engine, adm, "search", outcomes)             # shed
        engine.run()
        assert outcomes.count(("search", "shed")) == 1

    def test_sheds_the_newest_arrival_of_the_victim_class(self):
        engine, adm = make_controller(capacity=1, queue_capacity=2)
        order = []
        outcomes = []
        spawn_entrant(engine, adm, "playback", outcomes, hold=10.0)

        def tagged(tag):
            def _run():
                try:
                    yield adm.enter("upload")
                except AdmissionShedError:
                    order.append((tag, "shed"))
                    return None
                order.append((tag, "admitted"))
                return None
            return engine.process(_run())

        tagged("older")
        tagged("newer")
        spawn_entrant(engine, adm, "search", outcomes)   # evicts newest upload
        engine.run()
        assert ("newer", "shed") in order
        assert ("older", "shed") not in order

    def test_zero_queue_capacity_is_pure_admission(self):
        engine, adm = make_controller(capacity=1, queue_capacity=0)
        outcomes = []
        spawn_entrant(engine, adm, "playback", outcomes, hold=1.0)
        spawn_entrant(engine, adm, "playback", outcomes)
        engine.run()
        assert ("playback", "shed") in outcomes

    def test_leave_requires_matching_enter(self):
        _, adm = make_controller()
        with pytest.raises(ConfigError):
            adm.leave("playback")

    def test_unknown_class_is_rejected(self):
        _, adm = make_controller()
        with pytest.raises(ConfigError, match="unknown admission class"):
            adm.enter("mystery")

    def test_validation(self):
        engine = Engine()
        with pytest.raises(ConfigError):
            AdmissionController(engine, capacity=0, queue_capacity=1)
        with pytest.raises(ConfigError):
            AdmissionController(engine, capacity=1, queue_capacity=-1)
        with pytest.raises(ConfigError):
            AdmissionController(engine, capacity=1, queue_capacity=1,
                                priorities=())
