import pytest

from repro.common.errors import ConfigError, DeadlineExceeded
from repro.resilience import Deadline
from repro.sim import Engine


class TestDeadline:
    def test_remaining_burns_with_the_clock(self):
        engine = Engine()
        d = Deadline.after(engine, 5.0)
        assert d.remaining() == pytest.approx(5.0)
        engine.run(until=engine.timeout(2.0))
        assert d.remaining() == pytest.approx(3.0)
        assert not d.expired

    def test_expires_and_check_raises(self):
        engine = Engine()
        d = Deadline.after(engine, 1.0, label="upload")
        engine.run(until=engine.timeout(1.0))
        assert d.expired
        assert d.remaining() == 0.0
        with pytest.raises(DeadlineExceeded, match="upload"):
            d.check("writing block")

    def test_check_mentions_the_stage(self):
        engine = Engine()
        d = Deadline.after(engine, 0.5)
        engine.run(until=engine.timeout(1.0))
        with pytest.raises(DeadlineExceeded, match="writing block"):
            d.check("writing block")

    def test_remaining_never_negative(self):
        engine = Engine()
        d = Deadline.after(engine, 1.0)
        engine.run(until=engine.timeout(10.0))
        assert d.remaining() == 0.0

    def test_budget_must_be_positive(self):
        engine = Engine()
        with pytest.raises(ConfigError):
            Deadline.after(engine, 0.0)
        with pytest.raises(ConfigError):
            Deadline.after(engine, -1.0)

    def test_child_is_capped_at_parent(self):
        engine = Engine()
        parent = Deadline.after(engine, 2.0)
        child = parent.child(10.0)
        assert child.expires_at == parent.expires_at
        tight = parent.child(0.5, label="sub")
        assert tight.expires_at == pytest.approx(0.5)
        assert tight.label == "sub"

    def test_child_keeps_parent_label_by_default(self):
        engine = Engine()
        parent = Deadline.after(engine, 2.0, label="req")
        assert parent.child(1.0).label == "req"
