import pytest

from repro.common.errors import CircuitOpenError, ConfigError
from repro.common.rng import RngStream
from repro.obs import MetricsRegistry
from repro.resilience import CircuitBreaker
from repro.sim import Engine


def make_breaker(engine=None, **kw):
    engine = engine or Engine()
    kw.setdefault("failure_threshold", 3)
    kw.setdefault("recovery_timeout", 10.0)
    return engine, CircuitBreaker("dep", lambda: engine.now, **kw)


def advance(engine, dt):
    engine.run(until=engine.timeout(dt))


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        _, b = make_breaker()
        assert b.state == "closed"
        assert b.allow()
        b.check()  # no raise

    def test_closed_to_open_after_consecutive_failures(self):
        _, b = make_breaker(failure_threshold=3)
        b.record_failure()
        b.record_failure()
        assert b.state == "closed"
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()
        with pytest.raises(CircuitOpenError, match="dep"):
            b.check("read block")

    def test_success_resets_the_failure_streak(self):
        _, b = make_breaker(failure_threshold=3)
        b.record_failure()
        b.record_failure()
        b.record_success()
        b.record_failure()
        b.record_failure()
        assert b.state == "closed"

    def test_open_to_half_open_after_recovery_timeout(self):
        engine, b = make_breaker(recovery_timeout=10.0)
        for _ in range(3):
            b.record_failure()
        assert b.state == "open"
        advance(engine, 9.0)
        assert not b.allow()
        advance(engine, 1.0)
        assert b.allow()                 # the probe slot
        assert b.state == "half_open"

    def test_half_open_admits_exactly_one_probe(self):
        engine, b = make_breaker()
        for _ in range(3):
            b.record_failure()
        advance(engine, 10.0)
        assert b.allow()                 # transitions to half-open
        # a second caller before the probe's outcome is refused
        assert not b.allow()

    def test_half_open_success_closes(self):
        engine, b = make_breaker()
        for _ in range(3):
            b.record_failure()
        advance(engine, 10.0)
        assert b.allow()
        b.record_success()
        assert b.state == "closed"
        assert b.probe_at is None
        assert b.allow()

    def test_half_open_failure_re_trips(self):
        engine, b = make_breaker(recovery_timeout=10.0)
        for _ in range(3):
            b.record_failure()
        advance(engine, 10.0)
        assert b.allow()
        b.record_failure()               # the probe failed
        assert b.state == "open"
        assert not b.allow()
        # the re-trip re-arms the full recovery timeout
        assert b.probe_at == pytest.approx(engine.now + 10.0)
        advance(engine, 10.0)
        assert b.allow()
        b.record_success()
        assert b.state == "closed"

    def test_success_threshold_needs_n_probes(self):
        engine, b = make_breaker(success_threshold=2)
        for _ in range(3):
            b.record_failure()
        advance(engine, 10.0)
        assert b.allow()
        b.record_success()
        assert b.state == "half_open"
        assert b.allow()                 # next probe slot opens
        b.record_success()
        assert b.state == "closed"


class TestJitterAndMetrics:
    def test_seeded_probe_jitter_is_reproducible(self):
        def probe_time(seed):
            engine = Engine()
            b = CircuitBreaker(
                "dep", lambda: engine.now, failure_threshold=1,
                recovery_timeout=10.0, probe_jitter=0.5,
                rng=RngStream(seed, "breaker"))
            b.record_failure()
            return b.probe_at

        assert probe_time(42) == probe_time(42)
        assert 10.0 <= probe_time(42) <= 15.0
        assert probe_time(42) != probe_time(43)

    def test_metrics_track_state_and_rejections(self):
        engine = Engine()
        metrics = MetricsRegistry()
        b = CircuitBreaker("dep", lambda: engine.now, failure_threshold=1,
                           recovery_timeout=5.0, metrics=metrics)
        state = metrics.gauge(
            "breaker_state", "circuit state: 0 closed, 1 half-open, 2 open",
            labels=("breaker",))
        assert state.labels(breaker="dep").value == 0.0
        b.record_failure()
        assert state.labels(breaker="dep").value == 2.0
        with pytest.raises(CircuitOpenError):
            b.check()
        assert b.rejections == 1

    def test_validation(self):
        engine = Engine()
        with pytest.raises(ConfigError):
            CircuitBreaker("x", lambda: engine.now, failure_threshold=0)
        with pytest.raises(ConfigError):
            CircuitBreaker("x", lambda: engine.now, recovery_timeout=0.0)
        with pytest.raises(ConfigError):
            CircuitBreaker("x", lambda: engine.now, probe_jitter=-0.1)
