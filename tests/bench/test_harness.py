"""The BenchResult / emit / KernelRate publishing harness."""

import json

import pytest

import repro.bench.harness as harness
from repro.bench import BenchResult, KernelRate, emit, kernel_events_per_sec
from repro.common.errors import ConfigError
from repro.sim import Engine


@pytest.fixture(autouse=True)
def _fresh_header_state():
    """Each test sees a process that has not yet emitted its header."""
    prior = harness._analyzer_header_emitted
    harness._analyzer_header_emitted = False
    yield
    harness._analyzer_header_emitted = prior


def blocks_of(lines):
    """Parse the ``### BENCH_JSON tag {...}`` lines out of emitted text."""
    out = {}
    for line in lines:
        if line.startswith("### BENCH_JSON "):
            _, _, rest = line.partition("### BENCH_JSON ")
            tag, _, body = rest.partition(" ")
            out[tag] = json.loads(body)
    return out


class TestBenchResult:
    def test_name_must_be_snake_case_tag(self):
        with pytest.raises(ConfigError):
            BenchResult("bad tag")
        with pytest.raises(ConfigError):
            BenchResult("")
        assert BenchResult("e07_tracker").name == "e07_tracker"

    def test_payload_has_params_and_metrics(self):
        r = BenchResult("demo", params={"n": 3}, metrics={"ok": True})
        assert r.payload() == {"params": {"n": 3}, "metrics": {"ok": True}}

    def test_payload_carries_seed_and_rounded_rate(self):
        r = BenchResult("demo", seed=9, events_per_sec=1234.5678)
        body = r.payload()
        assert body["seed"] == 9
        assert body["events_per_sec"] == 1234.6

    def test_table_is_chainable_and_renders(self):
        r = (BenchResult("demo")
             .table("first", ["a"], [[1]])
             .table("second", ["b"], [[2]]))
        text = r.render()
        assert "first" in text and "second" in text
        assert text.index("first") < text.index("second")


class TestEmit:
    def test_emits_analyzer_header_once_per_process(self):
        lines = []
        emit(BenchResult("one"), write=lines.append)
        emit(BenchResult("two"), write=lines.append)
        blocks = blocks_of(lines)
        assert set(blocks) == {"analyzer", "one", "two"}
        assert blocks["analyzer"]["rule_count"] > 0
        assert "analyzer_version" in blocks["analyzer"]

    def test_tables_precede_the_json_block(self):
        lines = []
        emit(BenchResult("demo").table("t", ["h"], [[1]]),
             write=lines.append)
        rendered = "\n".join(lines)
        assert rendered.index("t") < rendered.index("### BENCH_JSON demo")

    def test_block_body_round_trips(self):
        lines = []
        emit(BenchResult("demo", params={"z": 1, "a": 2}), write=lines.append)
        body = blocks_of(lines)["demo"]
        assert body["params"] == {"z": 1, "a": 2}


class TestKernelRate:
    def test_unmeasured_rate_raises(self):
        with pytest.raises(ConfigError):
            KernelRate().events_per_sec

    def test_measures_dispatch_delta(self):
        eng = Engine()
        for i in range(10):
            eng.call_later(float(i), lambda: None)
        rate = KernelRate()
        with rate.measure(eng):
            eng.run()
        assert rate.events == 10
        assert rate.events_per_sec > 0

    def test_accumulates_across_engines(self):
        rate = KernelRate()
        for _ in range(2):
            eng = Engine()
            for i in range(5):
                eng.call_later(float(i), lambda: None)
            with rate.measure(eng):
                eng.run()
        assert rate.events == 10

    def test_only_counts_inside_the_window(self):
        eng = Engine()
        eng.call_later(1.0, lambda: None)
        eng.run()  # outside any measurement
        eng.call_later(1.0, lambda: None)
        rate = KernelRate()
        with rate.measure(eng):
            eng.run()
        assert rate.events == 1


class TestKernelEventsPerSec:
    def test_returns_result_and_rate(self):
        eng = Engine()
        seen = []
        eng.call_later(2.0, seen.append, "x")

        def drive():
            eng.run()
            return len(seen)

        result, eps = kernel_events_per_sec(eng, drive)
        assert result == 1
        assert eps > 0
