import pytest

from repro.bench import (
    LatencyStats,
    PortalDriver,
    TrafficMix,
    TrafficModel,
    VideoCatalog,
)
from repro.common.errors import ConfigError
from repro.common.units import MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.web import VideoPortal


class TestVideoCatalog:
    def test_deterministic(self):
        a = VideoCatalog(10, seed=5)
        b = VideoCatalog(10, seed=5)
        assert [e.title for e in a.entries] == [e.title for e in b.entries]
        assert [e.media.duration for e in a.entries] == \
            [e.media.duration for e in b.entries]

    def test_popularity_is_permutation(self):
        cat = VideoCatalog(20)
        ranks = sorted(e.popularity_rank for e in cat.entries)
        assert ranks == list(range(20))
        assert [e.popularity_rank for e in cat.by_popularity()] == list(range(20))

    def test_durations_have_tail(self):
        cat = VideoCatalog(200, seed=1, mean_duration=300)
        durations = [e.media.duration for e in cat.entries]
        assert min(durations) >= 10.0
        assert max(durations) > 2 * (sum(durations) / len(durations))

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            VideoCatalog(0)


class TestTrafficModel:
    def test_arrivals_monotone(self):
        events = TrafficModel(rate_per_s=2.0, seed=3).events(50, 10)
        times = [e.at for e in events]
        assert times == sorted(times)
        assert len(events) == 50

    def test_mix_roughly_respected(self):
        events = TrafficModel(seed=7).events(2000, 10)
        frac = {a: sum(1 for e in events if e.action == a) / 2000
                for a in ("browse", "search", "watch", "comment")}
        assert abs(frac["watch"] - 0.40) < 0.05
        assert abs(frac["browse"] - 0.30) < 0.05

    def test_zipf_prefers_popular(self):
        events = TrafficModel(seed=5).events(2000, 50)
        rank0 = sum(1 for e in events if e.video_rank == 0)
        rank_tail = sum(1 for e in events if e.video_rank >= 25)
        assert rank0 > rank_tail / 5
        assert all(0 <= e.video_rank < 50 for e in events)

    def test_bad_mix(self):
        with pytest.raises(ConfigError):
            TrafficMix(browse=0.9, search=0.9, watch=0.1, comment=0.1)

    def test_bad_rate(self):
        with pytest.raises(ConfigError):
            TrafficModel(rate_per_s=0)


class TestLatencyStats:
    def test_mean_and_percentiles(self):
        s = LatencyStats()
        for v in [1.0, 2.0, 3.0, 4.0, 10.0]:
            s.add(v)
        assert s.count == 5
        assert s.mean == pytest.approx(4.0)
        assert s.percentile(0) == 1.0
        assert s.percentile(100) == 10.0
        assert s.percentile(50) == 3.0

    def test_empty(self):
        s = LatencyStats()
        assert s.mean == 0.0
        assert s.percentile(99) == 0.0

    def test_bad_percentile(self):
        s = LatencyStats()
        s.add(1.0)
        with pytest.raises(ConfigError):
            s.percentile(101)


class TestPortalDriver:
    def make(self):
        cluster = Cluster(7)
        fs = Hdfs(cluster, namenode_host="node0",
                  datanode_hosts=cluster.host_names[1:], block_size=16 * MiB,
                  replication=2)
        portal = VideoPortal(cluster, fs, web_host="node1",
                             transcode_workers=cluster.host_names[2:])
        return cluster, portal, PortalDriver(portal)

    def test_seed_publishes_catalog(self):
        cluster, portal, driver = self.make()
        catalog = VideoCatalog(4, seed=2, mean_duration=60)
        vids = cluster.run(cluster.engine.process(driver.seed(catalog)))
        assert len(vids) == 4
        assert portal.db.table("videos").count({"status": "published"}) == 4
        assert portal.search.index.doc_count == 4

    def test_replay_collects_stats(self):
        cluster, portal, driver = self.make()
        catalog = VideoCatalog(3, seed=2, mean_duration=30)
        cluster.run(cluster.engine.process(driver.seed(catalog)))
        events = TrafficModel(rate_per_s=5.0, seed=1).events(30, 3)
        report = cluster.run(cluster.engine.process(
            driver.replay(events, client_hosts=[cluster.host_names[-1]])))
        assert report.events == 30
        assert report.errors == 0
        assert report.stat("watch").count > 0
        assert report.stat("browse").mean > 0
        assert report.duration > 0
        assert report.throughput > 0

    def test_replay_requires_seed(self):
        cluster, portal, driver = self.make()
        with pytest.raises(ConfigError):
            driver.replay([], ["node1"])
