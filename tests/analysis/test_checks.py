"""Per-rule fixture tests for the invariant checker.

Each rule gets three kinds of fixture: a violating snippet that must be
flagged, a conforming (or allowlisted) snippet that must stay clean, and
a suppressed violation (``# repro: allow[RULE]``) that must be dropped.
Fixtures are built as in-memory :class:`ModuleInfo` objects with
synthetic paths, so the tests stay independent of the real tree.
"""

from __future__ import annotations

import textwrap

from repro.analysis import ALL_CHECKS, Finding, ModuleInfo, rule_ids, run_checks
from repro.analysis.checks import (
    ExceptionHierarchyCheck,
    ImportHygieneCheck,
    LayeringCheck,
    MetricLabelCheck,
    PublicAnnotationCheck,
    SpanDisciplineCheck,
    UnseededRandomCheck,
    WallClockCheck,
)


def mod(relpath: str, source: str) -> ModuleInfo:
    return ModuleInfo(relpath, textwrap.dedent(source))


def check(rule_check, *mods: ModuleInfo) -> list[Finding]:
    return run_checks(list(mods), [rule_check])


# -- framework ----------------------------------------------------------------


def test_rule_registry_is_complete():
    assert rule_ids() == [
        "DET01", "DET02", "ARCH01", "ARCH02",
        "ERR01", "OBS01", "OBS02", "API01",
        "RACE01", "RACE02", "RACE03",
    ]
    assert len(ALL_CHECKS) == 11
    assert all(c.description for c in ALL_CHECKS)


def test_finding_format_and_dict():
    f = Finding("src/repro/web/x.py", 12, "DET01", "wall clock")
    assert f.format() == "src/repro/web/x.py:12: DET01 wall clock"
    assert f.to_dict() == {
        "path": "src/repro/web/x.py", "line": 12, "rule": "DET01",
        "severity": "error", "message": "wall clock",
    }


def test_suppression_comment_accepts_multiple_rules():
    m = mod("src/repro/web/x.py", "import time, random  # repro: allow[DET01, DET02]\n")
    assert check(WallClockCheck(), m) == []
    assert check(UnseededRandomCheck(), m) == []


def test_suppression_is_per_line_and_per_rule():
    m = mod(
        "src/repro/web/x.py",
        """\
        import time  # repro: allow[DET02]
        import time
        """,
    )
    flagged = check(WallClockCheck(), m)
    # a DET02 allow does not silence DET01, and line 2 has no comment
    assert [f.line for f in flagged] == [1, 2]


# -- DET01: wall clock --------------------------------------------------------


def test_det01_flags_time_import_and_calls():
    m = mod(
        "src/repro/web/clock.py",
        """\
        import time


        def wait() -> None:
            time.sleep(1.0)
        """,
    )
    flagged = check(WallClockCheck(), m)
    assert [f.line for f in flagged] == [1, 5]
    assert all(f.rule == "DET01" for f in flagged)


def test_det01_flags_datetime_from_import():
    m = mod("src/repro/video/meta.py", "from datetime import datetime\n")
    assert [f.rule for f in check(WallClockCheck(), m)] == ["DET01"]


def test_det01_allowlists_sim_core_rng_and_benchmarks():
    for path in ("src/repro/sim/core.py", "src/repro/common/rng.py",
                 "benchmarks/bench_clock.py"):
        assert check(WallClockCheck(), mod(path, "import time\n")) == []


def test_det01_suppression():
    m = mod("src/repro/web/clock.py", "import time  # repro: allow[DET01]\n")
    assert check(WallClockCheck(), m) == []


# -- DET02: unseeded randomness -----------------------------------------------


def test_det02_flags_stdlib_random():
    m = mod("src/repro/hdfs/pick.py", "import random\n")
    assert [f.rule for f in check(UnseededRandomCheck(), m)] == ["DET02"]


def test_det02_flags_numpy_random_attribute():
    m = mod(
        "src/repro/hdfs/pick.py",
        """\
        import numpy as np


        def draw() -> float:
            return np.random.uniform()
        """,
    )
    flagged = check(UnseededRandomCheck(), m)
    assert [f.line for f in flagged] == [5]


def test_det02_clean_for_rng_stream_users():
    m = mod(
        "src/repro/hdfs/pick.py",
        "from repro.common.rng import RngStream\n",
    )
    assert check(UnseededRandomCheck(), m) == []


def test_det02_allowlists_rng_module():
    m = mod("src/repro/common/rng.py", "import random\n")
    assert check(UnseededRandomCheck(), m) == []


# -- ARCH01: layering ---------------------------------------------------------


def test_arch01_flags_upward_import():
    m = mod("src/repro/hdfs/evil.py", "from repro.web import VideoPortal\n")
    flagged = check(LayeringCheck(), m)
    assert [f.rule for f in flagged] == ["ARCH01"]
    assert "layering violation" in flagged[0].message


def test_arch01_resolves_relative_imports():
    m = mod("src/repro/hdfs/evil.py", "from ..web import VideoPortal\n")
    assert [f.rule for f in check(LayeringCheck(), m)] == ["ARCH01"]


def test_arch01_allows_downward_import():
    m = mod("src/repro/hdfs/fine.py", "from ..common.errors import ConfigError\n")
    assert check(LayeringCheck(), m) == []


def test_arch01_ignores_type_checking_imports():
    m = mod(
        "src/repro/hdfs/hints.py",
        """\
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            from ..web import VideoPortal
        """,
    )
    assert check(LayeringCheck(), m) == []


def test_arch01_unknown_package_must_be_registered():
    m = mod("src/repro/newpkg/x.py", "from repro.common import rng\n")
    flagged = check(LayeringCheck(), m)
    assert [f.rule for f in flagged] == ["ARCH01"]
    assert "layering table" in flagged[0].message


# -- ARCH02: import hygiene ---------------------------------------------------


def test_arch02_flags_star_import():
    m = mod("src/repro/web/glob.py", "from repro.common.errors import *\n")
    flagged = check(ImportHygieneCheck(), m)
    assert [f.rule for f in flagged] == ["ARCH02"]
    assert "star import" in flagged[0].message


def test_arch02_flags_module_level_cycle():
    a = mod("src/repro/hdfs/a.py", "from .b import thing\n")
    b = mod("src/repro/hdfs/b.py", "from .a import other\n")
    flagged = check(ImportHygieneCheck(), a, b)
    assert [f.rule for f in flagged] == ["ARCH02"]
    assert "circular import" in flagged[0].message
    assert "repro.hdfs.a" in flagged[0].message
    assert "repro.hdfs.b" in flagged[0].message


def test_arch02_function_local_import_breaks_cycle():
    a = mod("src/repro/hdfs/a.py", "from .b import thing\n")
    b = mod(
        "src/repro/hdfs/b.py",
        """\
        def lazy() -> object:
            from .a import other
            return other
        """,
    )
    assert check(ImportHygieneCheck(), a, b) == []


# -- ERR01: exception hierarchy -----------------------------------------------


def test_err01_flags_ad_hoc_exception_class():
    m = mod(
        "src/repro/video/bad.py",
        """\
        class BadError(Exception):
            pass


        def f() -> None:
            raise BadError("boom")
        """,
    )
    flagged = check(ExceptionHierarchyCheck(), m)
    assert [f.line for f in flagged] == [6]
    assert "does not derive" in flagged[0].message


def test_err01_accepts_errors_hierarchy_subclass():
    m = mod(
        "src/repro/video/good.py",
        """\
        from repro.common.errors import MediaError


        class TranscodeStall(MediaError):
            pass


        def f() -> None:
            raise TranscodeStall("stalled")
        """,
    )
    assert check(ExceptionHierarchyCheck(), m) == []


def test_err01_flags_generic_builtin_raise():
    m = mod(
        "src/repro/video/bad.py",
        """\
        def f() -> None:
            raise ValueError("boom")
        """,
    )
    flagged = check(ExceptionHierarchyCheck(), m)
    assert [f.rule for f in flagged] == ["ERR01"]
    assert "ValueError" in flagged[0].message


def test_err01_allows_not_implemented_and_bare_reraise():
    m = mod(
        "src/repro/video/ok.py",
        """\
        def abstract() -> None:
            raise NotImplementedError


        def passthrough() -> None:
            try:
                abstract()
            except NotImplementedError:
                raise
        """,
    )
    assert check(ExceptionHierarchyCheck(), m) == []


# -- OBS01: metric hygiene ----------------------------------------------------


def test_obs01_flags_dynamic_metric_name():
    m = mod(
        "src/repro/web/m.py",
        """\
        def setup(metrics: object, suffix: str) -> None:
            metrics.counter(f"reqs_{suffix}", "per-tenant counter")
        """,
    )
    flagged = check(MetricLabelCheck(), m)
    assert [f.rule for f in flagged] == ["OBS01"]
    assert "static string literal" in flagged[0].message


def test_obs01_flags_dynamic_label_keys():
    m = mod(
        "src/repro/web/m.py",
        """\
        def setup(metrics: object, keys: tuple) -> None:
            metrics.counter("reqs_total", "requests", labels=keys)
        """,
    )
    assert [f.rule for f in check(MetricLabelCheck(), m)] == ["OBS01"]


def test_obs01_flags_positional_and_splat_labels_calls():
    m = mod(
        "src/repro/web/m.py",
        """\
        def bump(gauge: object, extra: dict) -> None:
            gauge.labels("node0").set(1)
            gauge.labels(**extra).set(2)
        """,
    )
    flagged = check(MetricLabelCheck(), m)
    assert [f.line for f in flagged] == [2, 3]


def test_obs01_clean_static_metrics():
    m = mod(
        "src/repro/web/m.py",
        """\
        def setup(metrics: object) -> None:
            c = metrics.counter("reqs_total", "requests", labels=("route",))
            c.labels(route="/video").inc()
        """,
    )
    assert check(MetricLabelCheck(), m) == []


# -- OBS02: span discipline ---------------------------------------------------


def test_obs02_flags_span_without_with():
    m = mod(
        "src/repro/web/t.py",
        """\
        def f(tracer: object) -> None:
            tracer.span("handler")
        """,
    )
    flagged = check(SpanDisciplineCheck(), m)
    assert [f.rule for f in flagged] == ["OBS02"]
    assert "`with`" in flagged[0].message


def test_obs02_accepts_with_span():
    m = mod(
        "src/repro/web/t.py",
        """\
        def f(tracer: object) -> None:
            with tracer.span("handler"):
                pass
            with tracer.span("other") as span:
                span.labels["x"] = 1
        """,
    )
    assert check(SpanDisciplineCheck(), m) == []


def test_obs02_flags_manual_span_control_outside_obs():
    m = mod(
        "src/repro/web/t.py",
        """\
        def f(tracer: object) -> None:
            s = tracer.start_span("handler")
            tracer.end_span(s)
        """,
    )
    flagged = check(SpanDisciplineCheck(), m)
    assert [f.line for f in flagged] == [2, 3]


def test_obs02_allows_manual_span_control_inside_obs():
    m = mod(
        "src/repro/obs/custom.py",
        """\
        def f(tracer: object) -> None:
            s = tracer.start_span("internal")
            tracer.end_span(s)
        """,
    )
    assert check(SpanDisciplineCheck(), m) == []


# -- API01: annotations -------------------------------------------------------


def test_api01_flags_unannotated_public_function():
    m = mod(
        "src/repro/video/api.py",
        """\
        def encode(path):
            return path
        """,
    )
    flagged = check(PublicAnnotationCheck(), m)
    assert [f.rule for f in flagged] == ["API01"]
    assert "path" in flagged[0].message and "return" in flagged[0].message


def test_api01_flags_unannotated_public_method():
    m = mod(
        "src/repro/video/api.py",
        """\
        class Encoder:
            def run(self, clip):
                return clip
        """,
    )
    flagged = check(PublicAnnotationCheck(), m)
    assert [f.line for f in flagged] == [2]
    assert "clip" in flagged[0].message


def test_api01_skips_private_names_and_nested_defs():
    m = mod(
        "src/repro/video/api.py",
        """\
        def _helper(x):
            return x


        class _Internal:
            def run(self, clip):
                return clip


        def public() -> None:
            def inner(y):
                return y
            inner(1)
        """,
    )
    assert check(PublicAnnotationCheck(), m) == []


def test_api01_requires_init_annotations():
    m = mod(
        "src/repro/video/api.py",
        """\
        class Encoder:
            def __init__(self, preset):
                self.preset = preset
        """,
    )
    flagged = check(PublicAnnotationCheck(), m)
    assert [f.rule for f in flagged] == ["API01"]


def test_api01_accepts_fully_annotated_code():
    m = mod(
        "src/repro/video/api.py",
        """\
        class Encoder:
            def __init__(self, preset: str) -> None:
                self.preset = preset

            def run(self, clip: str, *extra: str, **opts: int) -> str:
                return clip
        """,
    )
    assert check(PublicAnnotationCheck(), m) == []


def test_api01_ignores_non_repro_files():
    m = mod("tools/script.py", "def loose(x):\n    return x\n")
    assert check(PublicAnnotationCheck(), m) == []
