"""Fixture tests for the yield-point hazard rules RACE01-03."""

from __future__ import annotations

import textwrap

from repro.analysis import run_checks
from repro.analysis.core import ModuleInfo
from repro.analysis.races import RACE_CHECKS


def findings_for(source: str, rule: "str | None" = None):
    mod = ModuleInfo("src/repro/fake/mod.py", textwrap.dedent(source))
    out = run_checks([mod], RACE_CHECKS)
    if rule is not None:
        out = [f for f in out if f.rule == rule]
    return out


# -- RACE01: check-then-act ---------------------------------------------------


RACE01_POSITIVE = """
def consume(engine, tank):
    yield engine.timeout(1.0)
    if tank.level >= 5:
        yield engine.timeout(0.5)
        tank.get(5)
"""


def test_race01_flags_guard_acting_after_yield():
    found = findings_for(RACE01_POSITIVE, "RACE01")
    assert len(found) == 1
    f = found[0]
    assert "tank.level" in f.message
    assert "re-validate" in f.message


def test_race01_suppressed_with_allow_comment():
    src = RACE01_POSITIVE.replace(
        "if tank.level >= 5:",
        "if tank.level >= 5:  # repro: allow[RACE01]")
    assert findings_for(src, "RACE01") == []


def test_race01_negative_revalidated_guard():
    src = """
    def consume(engine, tank):
        yield engine.timeout(1.0)
        if tank.level >= 5:
            yield engine.timeout(0.5)
            if tank.level >= 5:
                tank.get(5)
    """
    assert findings_for(src, "RACE01") == []


def test_race01_negative_yield_is_the_last_action():
    src = """
    def consume(engine, tank):
        if tank.level >= 5:
            yield tank.get(5)
    """
    assert findings_for(src, "RACE01") == []


def test_race01_negative_plain_function_is_atomic():
    src = """
    def consume(engine, tank):
        if tank.level >= 5:
            tank.get(5)
            tank.get(1)
    """
    assert findings_for(src, "RACE01") == []


def test_race01_while_guard_is_checked_too():
    src = """
    def drain(engine, store):
        while store.items:
            yield engine.timeout(1.0)
            store.get()
    """
    found = findings_for(src, "RACE01")
    assert len(found) == 1


# -- RACE02: iterate-while-mutating across a yield ----------------------------


RACE02_POSITIVE = """
def sweep(engine, registry):
    for name in registry.members:
        yield engine.timeout(1.0)
        registry.members.remove(name)
"""


def test_race02_flags_mutation_of_iterated_container():
    found = findings_for(RACE02_POSITIVE, "RACE02")
    assert len(found) == 1
    assert "registry.members" in found[0].message
    assert "snapshot" in found[0].message


def test_race02_suppressed_with_allow_comment():
    src = RACE02_POSITIVE.replace(
        "for name in registry.members:",
        "for name in registry.members:  # repro: allow[RACE02]")
    assert findings_for(src, "RACE02") == []


def test_race02_negative_snapshot_iteration():
    src = """
    def sweep(engine, registry):
        for name in list(registry.members):
            yield engine.timeout(1.0)
            registry.members.remove(name)
    """
    assert findings_for(src, "RACE02") == []


def test_race02_negative_no_yield_in_loop():
    src = """
    def sweep(engine, registry):
        yield engine.timeout(1.0)
        for name in registry.members:
            registry.members.discard(name)
    """
    assert findings_for(src, "RACE02") == []


def test_race02_flags_subscript_and_del_mutations():
    src = """
    def rekey(engine, table):
        for key in table.items:
            yield engine.timeout(1.0)
            del table.items[key]
    """
    assert len(findings_for(src, "RACE02")) == 1


# -- RACE03: stale snapshot across a yield ------------------------------------


RACE03_POSITIVE = """
def report(engine, tank):
    before = tank.level
    yield engine.timeout(5.0)
    return before
"""


def test_race03_flags_stale_snapshot_read():
    found = findings_for(RACE03_POSITIVE, "RACE03")
    assert len(found) == 1
    assert "tank.level" in found[0].message
    assert "stale" in found[0].message


def test_race03_suppressed_with_allow_comment():
    src = RACE03_POSITIVE.replace("return before",
                                  "return before  # repro: allow[RACE03]")
    assert findings_for(src, "RACE03") == []


def test_race03_negative_elapsed_time_subtraction():
    src = """
    def timed(engine):
        t0 = engine.now
        yield engine.timeout(5.0)
        return engine.now - t0
    """
    assert findings_for(src, "RACE03") == []


def test_race03_negative_use_before_any_yield():
    src = """
    def peek(engine, tank):
        snapshot = tank.level
        decide(snapshot)
        yield engine.timeout(1.0)
    """
    assert findings_for(src, "RACE03") == []


def test_race03_negative_fresh_snapshot_after_yield():
    src = """
    def report(engine, tank):
        snap = tank.level
        use(snap)
        yield engine.timeout(5.0)
        snap = tank.level
        return snap
    """
    assert findings_for(src, "RACE03") == []


def test_race03_flags_cached_engine_now():
    src = """
    def lease(engine):
        deadline = engine.now
        yield engine.timeout(10.0)
        renew(deadline)
    """
    found = findings_for(src, "RACE03")
    assert len(found) == 1
    assert "engine.now" in found[0].message


# -- framework plumbing -------------------------------------------------------


def test_race_rules_skip_non_repro_files():
    mod = ModuleInfo("scripts/tool.py", RACE01_POSITIVE)
    assert run_checks([mod], RACE_CHECKS) == []


def test_race_rules_skip_nested_function_bodies():
    src = """
    def outer(engine, tank):
        def helper():
            if tank.level >= 5:
                pass
        yield engine.timeout(1.0)
        helper()
    """
    assert findings_for(src) == []
