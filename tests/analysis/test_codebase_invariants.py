"""The tier-1 gate: the real source tree passes every invariant check.

This is the pytest wiring of ``python -m repro.analysis src`` -- a
violating commit fails the suite with the exact findings in the assertion
message.  The CLI exit-code contract (0 clean / 1 findings / 2 usage
error) is exercised here too, against throwaway fixture trees.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import ANALYZER_VERSION, analyze_paths, rule_ids
from repro.analysis.__main__ import main

REPO = Path(__file__).resolve().parents[2]


def test_source_tree_has_no_violations():
    findings = analyze_paths([str(REPO / "src")])
    assert findings == [], (
        "invariant violations in src/ (fix them or add a targeted "
        "`# repro: allow[RULE]`):\n"
        + "\n".join(f.format() for f in findings)
    )


def test_benchmarks_have_no_violations():
    findings = analyze_paths([str(REPO / "benchmarks")])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_cli_exits_zero_on_clean_tree(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x: int) -> int:\n    return x\n")
    assert main([str(clean)]) == 0
    out = capsys.readouterr().out
    assert f"0 findings (11 rules, analyzer {ANALYZER_VERSION})" in out


def test_cli_exits_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "DET02" in out


def test_cli_json_report(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nimport time\n")
    assert main([str(bad), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["analyzer_version"] == ANALYZER_VERSION
    assert report["rules"] == rule_ids()
    assert report["count"] == 2
    assert sorted(f["rule"] for f in report["findings"]) == ["DET01", "DET02"]
    assert all(f["severity"] == "error" for f in report["findings"])


def test_cli_rule_filter(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nimport time\n")
    assert main([str(bad), "--rules", "DET01"]) == 1
    out = capsys.readouterr().out
    assert "DET01" in out and "DET02" not in out


def test_cli_rejects_unknown_rule(tmp_path, capsys):
    assert main([str(tmp_path), "--rules", "NOPE99"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in rule_ids():
        assert rule in out
