"""The Jepsen-style history checker: synthetic histories with known verdicts."""

from repro.analysis import HistoryRecorder, check_history


def make_recorder():
    now = [0.0]

    def clock():
        now[0] += 1.0
        return now[0]

    return HistoryRecorder(clock)


def ok_write(rec, client, key, value=1):
    op = rec.invoke(client, "write", key, value=value)
    rec.ack(op, value=value)
    return op


def ok_read(rec, client, key, value=1):
    op = rec.invoke(client, "read", key)
    rec.ack(op, value=value)
    return op


class TestCleanHistories:
    def test_empty_history_is_ok(self):
        rec = make_recorder()
        report = check_history(rec, final_keys=set())
        assert report.ok and report.ops == 0

    def test_write_then_read_is_ok(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a", value=100)
        ok_read(rec, "c1", "/a", value=100)
        report = check_history(rec, final_keys={"/a"})
        assert report.ok
        assert report.acked_writes == 1 and report.acked_reads == 1

    def test_delete_then_absent_is_ok(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        op = rec.invoke("c1", "delete", "/a")
        rec.ack(op)
        report = check_history(rec, final_keys=set())
        assert report.ok

    def test_counts(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        bad = rec.invoke("c2", "write", "/b", value=2)
        rec.fail(bad, "QuorumLostError")
        report = check_history(rec)
        assert report.ops == 2
        assert report.acked_writes == 1
        assert report.failed_ops == 1


class TestViolations:
    def test_lost_acked_write_detected(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        report = check_history(rec, final_keys=set())
        assert not report.ok
        assert report.violations[0].rule == "lost-acked-write"
        assert report.violations[0].key == "/a"

    def test_resurrected_delete_detected(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        op = rec.invoke("c1", "delete", "/a")
        rec.ack(op)
        report = check_history(rec, final_keys={"/a"})
        assert [v.rule for v in report.violations] == ["lost-acked-write"]

    def test_stale_read_after_ack_detected(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        read = rec.invoke("c2", "read", "/a")
        rec.fail(read, "FileNotFoundInHdfs")
        report = check_history(rec, final_keys={"/a"})
        assert [v.rule for v in report.violations] == ["stale-read"]

    def test_value_mismatch_detected(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a", value=100)
        ok_read(rec, "c2", "/a", value=7)
        report = check_history(rec, final_keys={"/a"})
        assert [v.rule for v in report.violations] == ["value-mismatch"]


class TestAmbiguityExemptions:
    def test_failed_write_makes_final_state_ambiguous(self):
        # a failed (unacknowledged) write may or may not have landed --
        # either final state is legal, so no violation in either case
        rec = make_recorder()
        op = rec.invoke("c1", "write", "/a", value=1)
        rec.fail(op, "QuorumLostError")
        assert check_history(rec, final_keys=set()).ok
        rec2 = make_recorder()
        op = rec2.invoke("c1", "write", "/a", value=1)
        rec2.fail(op, "QuorumLostError")
        assert check_history(rec2, final_keys={"/a"}).ok

    def test_failed_delete_after_acked_write_is_ambiguous(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        op = rec.invoke("c1", "delete", "/a")
        rec.fail(op, "StandbyError")
        # the delete may have landed: absence is not a lost write
        assert check_history(rec, final_keys=set()).ok
        assert check_history(rec, final_keys={"/a"}).ok

    def test_read_concurrent_with_mutation_is_exempt(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a", value=1)
        # read overlaps a second write in wall-clock time: either value ok
        w2 = rec.invoke("c1", "write", "/a", value=2)     # t=3
        read = rec.invoke("c2", "read", "/a")             # t=4
        rec.ack(w2, value=2)                              # t=5
        rec.ack(read, value=2)  # t=6: newer value than the pre-read write
        assert check_history(rec, final_keys={"/a"}).ok

    def test_infrastructure_read_failure_is_not_staleness(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        read = rec.invoke("c2", "read", "/a")
        rec.fail(read, "PartitionError")  # not a not-found error
        assert check_history(rec, final_keys={"/a"}).ok

    def test_open_op_at_run_end_is_ambiguous(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        rec.invoke("c1", "delete", "/a")  # run ended mid-flight
        assert check_history(rec, final_keys=set()).ok


class TestSignature:
    def test_signature_deterministic_and_sensitive(self):
        rec1, rec2 = make_recorder(), make_recorder()
        for rec in (rec1, rec2):
            ok_write(rec, "c1", "/a", value=3)
            ok_read(rec, "c2", "/a", value=3)
        assert rec1.signature() == rec2.signature()
        ok_write(rec2, "c1", "/b")
        assert rec1.signature() != rec2.signature()

    def test_acked_writes_accessor(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        bad = rec.invoke("c1", "write", "/b")
        rec.fail(bad, "FencedError")
        assert [op.key for op in rec.acked_writes()] == ["/a"]
