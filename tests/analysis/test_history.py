"""The Jepsen-style history checker: synthetic histories with known verdicts."""

from repro.analysis import HistoryRecorder, check_history


def make_recorder():
    now = [0.0]

    def clock():
        now[0] += 1.0
        return now[0]

    return HistoryRecorder(clock)


def ok_write(rec, client, key, value=1):
    op = rec.invoke(client, "write", key, value=value)
    rec.ack(op, value=value)
    return op


def ok_read(rec, client, key, value=1):
    op = rec.invoke(client, "read", key)
    rec.ack(op, value=value)
    return op


class TestCleanHistories:
    def test_empty_history_is_ok(self):
        rec = make_recorder()
        report = check_history(rec, final_keys=set())
        assert report.ok and report.ops == 0

    def test_write_then_read_is_ok(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a", value=100)
        ok_read(rec, "c1", "/a", value=100)
        report = check_history(rec, final_keys={"/a"})
        assert report.ok
        assert report.acked_writes == 1 and report.acked_reads == 1

    def test_delete_then_absent_is_ok(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        op = rec.invoke("c1", "delete", "/a")
        rec.ack(op)
        report = check_history(rec, final_keys=set())
        assert report.ok

    def test_counts(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        bad = rec.invoke("c2", "write", "/b", value=2)
        rec.fail(bad, "QuorumLostError")
        report = check_history(rec)
        assert report.ops == 2
        assert report.acked_writes == 1
        assert report.failed_ops == 1


class TestViolations:
    def test_lost_acked_write_detected(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        report = check_history(rec, final_keys=set())
        assert not report.ok
        assert report.violations[0].rule == "lost-acked-write"
        assert report.violations[0].key == "/a"

    def test_resurrected_delete_detected(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        op = rec.invoke("c1", "delete", "/a")
        rec.ack(op)
        report = check_history(rec, final_keys={"/a"})
        assert [v.rule for v in report.violations] == ["lost-acked-write"]

    def test_stale_read_after_ack_detected(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        read = rec.invoke("c2", "read", "/a")
        rec.fail(read, "FileNotFoundInHdfs")
        report = check_history(rec, final_keys={"/a"})
        assert [v.rule for v in report.violations] == ["stale-read"]

    def test_value_mismatch_detected(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a", value=100)
        ok_read(rec, "c2", "/a", value=7)
        report = check_history(rec, final_keys={"/a"})
        assert [v.rule for v in report.violations] == ["value-mismatch"]


class TestAmbiguityExemptions:
    def test_failed_write_makes_final_state_ambiguous(self):
        # a failed (unacknowledged) write may or may not have landed --
        # either final state is legal, so no violation in either case
        rec = make_recorder()
        op = rec.invoke("c1", "write", "/a", value=1)
        rec.fail(op, "QuorumLostError")
        assert check_history(rec, final_keys=set()).ok
        rec2 = make_recorder()
        op = rec2.invoke("c1", "write", "/a", value=1)
        rec2.fail(op, "QuorumLostError")
        assert check_history(rec2, final_keys={"/a"}).ok

    def test_failed_delete_after_acked_write_is_ambiguous(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        op = rec.invoke("c1", "delete", "/a")
        rec.fail(op, "StandbyError")
        # the delete may have landed: absence is not a lost write
        assert check_history(rec, final_keys=set()).ok
        assert check_history(rec, final_keys={"/a"}).ok

    def test_read_concurrent_with_mutation_is_exempt(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a", value=1)
        # read overlaps a second write in wall-clock time: either value ok
        w2 = rec.invoke("c1", "write", "/a", value=2)     # t=3
        read = rec.invoke("c2", "read", "/a")             # t=4
        rec.ack(w2, value=2)                              # t=5
        rec.ack(read, value=2)  # t=6: newer value than the pre-read write
        assert check_history(rec, final_keys={"/a"}).ok

    def test_infrastructure_read_failure_is_not_staleness(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        read = rec.invoke("c2", "read", "/a")
        rec.fail(read, "PartitionError")  # not a not-found error
        assert check_history(rec, final_keys={"/a"}).ok

    def test_open_op_at_run_end_is_ambiguous(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        rec.invoke("c1", "delete", "/a")  # run ended mid-flight
        assert check_history(rec, final_keys=set()).ok


def manual_recorder():
    """A recorder with a hand-driven clock, for boundary-exact histories."""
    now = [0.0]
    rec = HistoryRecorder(lambda: now[0])

    def at(t):
        now[0] = t

    return rec, at


class TestConcurrencyExemptionBoundaries:
    """The overlap window is closed: touching endpoints count as concurrent."""

    def test_mutation_completing_exactly_at_read_start_is_exempt(self):
        rec, at = manual_recorder()
        at(1.0); ok_write(rec, "c1", "/a", value=1)
        at(2.0); w2 = rec.invoke("c1", "write", "/a", value=2)
        at(4.0); rec.ack(w2, value=2)
        at(4.0); read = rec.invoke("c2", "read", "/a")
        at(6.0); rec.ack(read, value=1)   # old value, but w2 end == read start
        assert check_history(rec, final_keys={"/a"}).ok

    def test_mutation_invoked_exactly_at_read_end_is_exempt(self):
        rec, at = manual_recorder()
        at(1.0); ok_write(rec, "c1", "/a", value=1)
        at(2.0); read = rec.invoke("c2", "read", "/a")
        at(4.0); w2 = rec.invoke("c1", "write", "/a", value=2)
        at(4.0); rec.ack(read, value=2)   # new value, but w2 start == read end
        at(6.0); rec.ack(w2, value=2)
        assert check_history(rec, final_keys={"/a"}).ok

    def test_mutation_completing_just_before_read_start_is_not_exempt(self):
        # one tick outside the window the exemption must NOT apply: the
        # read provably began after the second write was acked, so the
        # old value is a real anomaly
        rec, at = manual_recorder()
        at(1.0); ok_write(rec, "c1", "/a", value=1)
        at(2.0); w2 = rec.invoke("c1", "write", "/a", value=2)
        at(3.9); rec.ack(w2, value=2)
        at(4.0); read = rec.invoke("c2", "read", "/a")
        at(6.0); rec.ack(read, value=1)
        report = check_history(rec, final_keys={"/a"})
        assert [v.rule for v in report.violations] == ["value-mismatch"]

    def test_failed_mutation_completing_at_last_ack_is_ambiguous(self):
        # final-state rule boundary: a failed delete whose completion ties
        # the acked write's completion may legally have landed after it
        rec, at = manual_recorder()
        at(1.0); w = rec.invoke("c1", "write", "/a", value=1)
        at(2.0); rec.ack(w, value=1)
        at(1.5); bad = rec.invoke("c2", "delete", "/a")
        at(2.0); rec.fail(bad, "StandbyError")
        assert check_history(rec, final_keys=set()).ok

    def test_failed_mutation_completing_before_last_ack_is_not_ambiguous(self):
        # ...but one that completed strictly before the acked write cannot
        # explain the write's absence from the final state
        rec, at = manual_recorder()
        at(0.5); bad = rec.invoke("c2", "delete", "/a")
        at(1.0); rec.fail(bad, "StandbyError")
        at(1.5); w = rec.invoke("c1", "write", "/a", value=1)
        at(2.0); rec.ack(w, value=1)
        report = check_history(rec, final_keys=set())
        assert [v.rule for v in report.violations] == ["lost-acked-write"]


class TestResurrectedDeleteInterleavings:
    def test_delete_then_recreate_present_is_ok(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        d = rec.invoke("c1", "delete", "/a")
        rec.ack(d)
        ok_write(rec, "c1", "/a", value=2)  # re-create after the delete
        assert check_history(rec, final_keys={"/a"}).ok

    def test_delete_then_recreate_absent_is_lost_write(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        d = rec.invoke("c1", "delete", "/a")
        rec.ack(d)
        ok_write(rec, "c1", "/a", value=2)
        report = check_history(rec, final_keys=set())
        assert [v.rule for v in report.violations] == ["lost-acked-write"]
        assert "absent" in report.violations[0].detail

    def test_recreate_then_final_delete_surviving_is_resurrection(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        d1 = rec.invoke("c1", "delete", "/a")
        rec.ack(d1)
        ok_write(rec, "c1", "/a", value=2)
        d2 = rec.invoke("c1", "delete", "/a")
        rec.ack(d2)
        assert check_history(rec, final_keys=set()).ok
        report = check_history(rec, final_keys={"/a"})
        assert [v.rule for v in report.violations] == ["lost-acked-write"]
        assert "survives" in report.violations[0].detail

    def test_same_instant_delete_and_recreate_break_ties_by_index(self):
        # both mutations complete at the same simulated instant; the
        # checker must pick the later *invocation* as authoritative
        rec, at = manual_recorder()
        at(1.0); ok_write(rec, "c1", "/a", value=1)
        at(2.0); d = rec.invoke("c1", "delete", "/a")
        at(2.0); w = rec.invoke("c1", "write", "/a", value=2)
        at(3.0); rec.ack(d)
        at(3.0); rec.ack(w, value=2)
        assert check_history(rec, final_keys={"/a"}).ok
        report = check_history(rec, final_keys=set())
        assert [v.rule for v in report.violations] == ["lost-acked-write"]


class TestSignature:
    def test_signature_deterministic_and_sensitive(self):
        rec1, rec2 = make_recorder(), make_recorder()
        for rec in (rec1, rec2):
            ok_write(rec, "c1", "/a", value=3)
            ok_read(rec, "c2", "/a", value=3)
        assert rec1.signature() == rec2.signature()
        ok_write(rec2, "c1", "/b")
        assert rec1.signature() != rec2.signature()

    def test_signature_stable_across_checks(self):
        # check_history must be a pure reader: the digest cannot move
        rec = make_recorder()
        ok_write(rec, "c1", "/a", value=3)
        before = rec.signature()
        check_history(rec, final_keys={"/a"})
        check_history(rec)
        assert rec.signature() == before

    def test_signature_sees_outcome_error_and_timestamps(self):
        rec1, _ = manual_recorder()
        rec2, _ = manual_recorder()
        op1 = rec1.invoke("c1", "write", "/a", value=1)
        op2 = rec2.invoke("c1", "write", "/a", value=1)
        rec1.fail(op1, "QuorumLostError")
        rec2.fail(op2, "FencedError")
        assert rec1.signature() != rec2.signature()   # error string differs
        rec3, at3 = manual_recorder()
        rec4, at4 = manual_recorder()
        at3(1.0); op3 = rec3.invoke("c1", "write", "/a", value=1)
        at4(2.0); op4 = rec4.invoke("c1", "write", "/a", value=1)
        rec3.ack(op3, value=1)
        rec4.ack(op4, value=1)
        assert rec3.signature() != rec4.signature()   # invoked time differs

    def test_acked_writes_accessor(self):
        rec = make_recorder()
        ok_write(rec, "c1", "/a")
        bad = rec.invoke("c1", "write", "/b")
        rec.fail(bad, "FencedError")
        assert [op.key for op in rec.acked_writes()] == ["/a"]
