"""SUP01 unused-suppression detection, SARIF output, and the CLI contract."""

from __future__ import annotations

import json
import textwrap

from repro.analysis import ALL_CHECKS, ANALYZER_VERSION, run_checks, to_sarif
from repro.analysis.__main__ import main
from repro.analysis.core import UNUSED_ALLOW_RULE, ModuleInfo
from repro.analysis.races import RACE_CHECKS
from repro.analysis.sarif import SARIF_SCHEMA, SARIF_VERSION

RACY = textwrap.dedent("""
    def consume(engine: object, tank: object) -> object:
        yield engine.timeout(1.0)
        if tank.level >= 5:
            yield engine.timeout(0.5)
            tank.get(5)
""")

SUPPRESSED = RACY.replace("if tank.level >= 5:",
                          "if tank.level >= 5:  # repro: allow[RACE01]")

CLEAN = "def double(x: int) -> int:\n    return 2 * x\n"

STALE_ALLOW = "LIMIT = 3  # repro: allow[RACE01]\n"


def mod(source: str, path: str = "src/repro/fake/mod.py") -> ModuleInfo:
    return ModuleInfo(path, source)


# -- SUP01: unused-suppression detection --------------------------------------


class TestUnusedAllows:
    def test_stale_allow_reported_as_sup01_warning(self):
        found = run_checks([mod(STALE_ALLOW)], RACE_CHECKS,
                           report_unused_allows=True)
        assert len(found) == 1
        f = found[0]
        assert f.rule == UNUSED_ALLOW_RULE
        assert f.severity == "warning"
        assert f.line == 1
        assert "delete the allow[RACE01] comment" in f.message

    def test_used_allow_is_not_reported(self):
        found = run_checks([mod(SUPPRESSED)], RACE_CHECKS,
                           report_unused_allows=True)
        assert found == []

    def test_off_by_default(self):
        assert run_checks([mod(STALE_ALLOW)], RACE_CHECKS) == []

    def test_unselected_rule_suppressions_are_not_called_stale(self):
        # a RACE01 allow is not stale just because a filtered run only
        # executed RACE02/RACE03 -- the rule never had a chance to fire
        subset = [c for c in RACE_CHECKS if c.rule != "RACE01"]
        found = run_checks([mod(SUPPRESSED)], subset,
                           report_unused_allows=True)
        assert found == []

    def test_sup01_itself_is_not_suppressible(self):
        src = STALE_ALLOW.replace("allow[RACE01]", "allow[RACE01, SUP01]")
        found = run_checks([mod(src)], RACE_CHECKS,
                           report_unused_allows=True)
        assert [f.rule for f in found] == [UNUSED_ALLOW_RULE]


# -- SARIF serialisation ------------------------------------------------------


class TestSarif:
    def test_document_shape_and_versioning(self):
        doc = to_sarif([], ALL_CHECKS)
        assert doc["$schema"] == SARIF_SCHEMA
        assert doc["version"] == SARIF_VERSION
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro.analysis"
        assert driver["version"] == ANALYZER_VERSION
        assert [r["id"] for r in driver["rules"]] == \
            [c.rule for c in ALL_CHECKS]
        assert run["results"] == []

    def test_results_resolve_through_rule_index(self):
        found = run_checks([mod(RACY)], RACE_CHECKS)
        assert found, "fixture must produce findings"
        doc = to_sarif(found, RACE_CHECKS)
        (run,) = doc["runs"]
        rules = run["tool"]["driver"]["rules"]
        for result, f in zip(run["results"], found):
            assert result["ruleId"] == f.rule
            assert rules[result["ruleIndex"]]["id"] == f.rule
            loc = result["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"] == f.path
            assert loc["region"]["startLine"] == f.line

    def test_framework_rules_get_synthesised_descriptors(self):
        found = run_checks([mod(STALE_ALLOW)], RACE_CHECKS,
                           report_unused_allows=True)
        doc = to_sarif(found, RACE_CHECKS)
        (run,) = doc["runs"]
        rules = run["tool"]["driver"]["rules"]
        sup = [r for r in rules if r["id"] == UNUSED_ALLOW_RULE]
        assert len(sup) == 1
        assert sup[0]["defaultConfiguration"]["level"] == "warning"
        (result,) = run["results"]
        assert result["level"] == "warning"


# -- the CLI contract: formats, --fix, exit codes -----------------------------


def write_tree(tmp_path, source: str):
    target = tmp_path / "src" / "repro" / "fake"
    target.mkdir(parents=True)
    path = target / "mod.py"
    path.write_text(source, encoding="utf-8")
    return str(path)


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        path = write_tree(tmp_path, CLEAN)
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = write_tree(tmp_path, RACY)
        assert main([path]) == 1
        assert "RACE01" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["--rules", "NOPE99", "src"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_unreadable_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing.py")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_help_documents_exit_codes(self, capsys):
        try:
            main(["--help"])
        except SystemExit as exc:
            assert exc.code == 0
        out = capsys.readouterr().out
        assert "exit status" in out
        assert "0   the tree is clean" in out

    def test_list_rules_includes_sup01(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for check in ALL_CHECKS:
            assert check.rule in out
        assert UNUSED_ALLOW_RULE in out

    def test_json_format_is_parseable(self, tmp_path, capsys):
        path = write_tree(tmp_path, RACY)
        assert main([path, "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["analyzer_version"] == ANALYZER_VERSION
        assert doc["count"] >= 1
        assert doc["findings"][0]["rule"] == "RACE01"

    def test_sarif_format_is_parseable(self, tmp_path, capsys):
        path = write_tree(tmp_path, RACY)
        assert main([path, "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == SARIF_VERSION
        assert doc["runs"][0]["results"][0]["ruleId"] == "RACE01"

    def test_fix_lists_stale_allows_and_exits_one(self, tmp_path, capsys):
        path = write_tree(tmp_path, STALE_ALLOW)
        assert main([path, "--fix"]) == 1
        out = capsys.readouterr().out
        assert "delete the stale allow comment" in out
        assert "1 stale suppression comment" in out

    def test_fix_on_clean_tree_exits_zero(self, tmp_path, capsys):
        path = write_tree(tmp_path, SUPPRESSED)
        assert main([path, "--fix"]) == 0
        assert "0 stale suppression comments" in capsys.readouterr().out

    def test_real_tree_is_clean_including_suppressions(self, capsys):
        assert main(["src"]) == 0
        assert "0 findings" in capsys.readouterr().out
