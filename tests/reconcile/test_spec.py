"""FleetSpec / PoolSpec / HealthPolicy validation and copy-on-write."""

import pytest

from repro.common.errors import ReconcileError
from repro.reconcile import FleetSpec, HealthPolicy, PoolSpec


class TestHealthPolicy:
    def test_defaults_are_valid(self):
        HealthPolicy()

    @pytest.mark.parametrize("kwargs", [
        {"unhealthy_after": 0},
        {"hung_after": 0.0},
        {"backoff_base": 0.0},
        {"backoff_base": 10.0, "backoff_max": 5.0},
        {"crashloop_budget": 0},
        {"ready_sweeps": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ReconcileError):
            HealthPolicy(**kwargs)


class TestPoolSpec:
    def test_replicas_must_fit_bounds(self):
        with pytest.raises(ReconcileError):
            PoolSpec(name="web", replicas=20, max_replicas=16)
        with pytest.raises(ReconcileError):
            PoolSpec(name="web", replicas=0, min_replicas=1)

    def test_rejects_empty_name_and_version(self):
        with pytest.raises(ReconcileError):
            PoolSpec(name="", replicas=1)
        with pytest.raises(ReconcileError):
            PoolSpec(name="web", replicas=1, version="")

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ReconcileError):
            PoolSpec(name="web", replicas=2, min_replicas=4, max_replicas=2)


class TestFleetSpec:
    def test_needs_pools_and_unique_names(self):
        with pytest.raises(ReconcileError):
            FleetSpec(pools=())
        p = PoolSpec(name="web", replicas=1)
        with pytest.raises(ReconcileError):
            FleetSpec(pools=(p, p))

    def test_pool_lookup(self):
        spec = FleetSpec(pools=(PoolSpec(name="web", replicas=2),))
        assert spec.pool("web").replicas == 2
        with pytest.raises(ReconcileError):
            spec.pool("nope")

    def test_with_replicas_returns_new_clamped_spec(self):
        spec = FleetSpec(pools=(
            PoolSpec(name="web", replicas=2, min_replicas=1, max_replicas=4),))
        grown = spec.with_replicas("web", 99)
        assert grown.pool("web").replicas == 4      # clamped to max
        assert spec.pool("web").replicas == 2       # original untouched
        shrunk = spec.with_replicas("web", 0)
        assert shrunk.pool("web").replicas == 1     # clamped to min

    def test_with_version(self):
        spec = FleetSpec(pools=(PoolSpec(name="web", replicas=2),))
        v2 = spec.with_version("web", "v2")
        assert v2.pool("web").version == "v2"
        assert spec.pool("web").version == "v1"
