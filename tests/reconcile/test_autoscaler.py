"""Hysteresis autoscaler: watermarks, streaks, cooldown, signals."""

import pytest

from repro.common.errors import ReconcileError
from repro.hardware import Cluster
from repro.reconcile import (
    AutoscalePolicy,
    Autoscaler,
    p99_latency_signal,
    queue_depth_signal,
    shed_rate_signal,
)


def scaler(value, **kwargs):
    kwargs.setdefault("pool", "web")
    kwargs.setdefault("high", 10.0)
    kwargs.setdefault("low", 2.0)
    box = {"v": value}
    a = Autoscaler(AutoscalePolicy(**kwargs), lambda: box["v"])
    return a, box


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"low": 5.0, "high": 1.0},
        {"up_after": 0},
        {"down_after": 0},
        {"cooldown": -1.0},
        {"step": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        kwargs.setdefault("pool", "web")
        kwargs.setdefault("high", 10.0)
        kwargs.setdefault("low", 2.0)
        with pytest.raises(ReconcileError):
            AutoscalePolicy(**kwargs)


class TestHysteresis:
    def test_single_spike_does_not_scale(self):
        a, box = scaler(50.0, up_after=2)
        assert a.evaluate(0.0, 3) == 3          # first sweep above: streak 1
        box["v"] = 5.0                          # back in the dead band
        assert a.evaluate(5.0, 3) == 3
        assert a.above == 0                     # streak was reset

    def test_sustained_pressure_scales_up(self):
        a, _ = scaler(50.0, up_after=2)
        assert a.evaluate(0.0, 3) == 3
        assert a.evaluate(5.0, 3) == 4

    def test_sustained_idle_scales_down_slower(self):
        a, _ = scaler(0.0, up_after=2, down_after=4, cooldown=0.0)
        for t in range(3):
            assert a.evaluate(float(t), 3) == 3
        assert a.evaluate(3.0, 3) == 2

    def test_cooldown_blocks_back_to_back_actions(self):
        a, _ = scaler(50.0, up_after=1, cooldown=30.0)
        assert a.evaluate(0.0, 3) == 4
        assert a.evaluate(5.0, 4) == 4          # still cooling down
        assert a.evaluate(31.0, 4) == 5         # cooldown over

    def test_step_size(self):
        a, _ = scaler(50.0, up_after=1, step=3)
        assert a.evaluate(0.0, 2) == 5

    def test_dead_band_resets_both_streaks(self):
        a, box = scaler(0.0, up_after=2, down_after=2, cooldown=0.0)
        a.evaluate(0.0, 3)
        box["v"] = 5.0
        a.evaluate(1.0, 3)
        assert a.above == 0 and a.below == 0


class TestSignals:
    @pytest.fixture()
    def cluster(self):
        return Cluster(2, seed=0)

    def test_queue_depth_sums_the_family(self, cluster):
        g = cluster.metrics.gauge("admission_queued", "q", labels=("server",))
        g.labels(server="a").set(3)
        g.labels(server="b").set(4)
        assert queue_depth_signal(cluster.metrics)() == 7.0

    def test_queue_depth_defaults_to_zero(self, cluster):
        assert queue_depth_signal(cluster.metrics)() == 0.0

    def test_p99_pools_all_children(self, cluster):
        h = cluster.metrics.histogram("web_request_seconds", "lat",
                                      labels=("server",))
        for v in range(100):
            h.labels(server="a").observe(float(v))
        sig = p99_latency_signal(cluster.metrics)
        assert sig() >= 90.0

    def test_shed_rate_is_delta_based(self, cluster):
        c = cluster.metrics.counter("admission_shed_total", "shed",
                                    labels=("klass",))
        clock = {"t": 0.0}
        sig = shed_rate_signal(cluster.metrics, lambda: clock["t"])
        c.labels(klass="search").inc(10)
        clock["t"] = 10.0
        assert sig() == pytest.approx(1.0)      # 10 sheds over 10 s
        clock["t"] = 20.0
        assert sig() == pytest.approx(0.0)      # no new sheds
