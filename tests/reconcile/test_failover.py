"""The failover controller: streak detection, flap guard, fenced promotion."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import MiB
from repro.hardware import Cluster
from repro.hdfs import HaNameNodePair, Hdfs
from repro.reconcile import FailoverController, HealthPolicy
from repro.reconcile.reconciler import ActionLog

JOURNALS = ["node0", "node1", "node2"]


def make_pair(n_hosts=6):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, replication=2, block_size=4 * MiB)
    pair = HaNameNodePair(fs, standby_host=cluster.host_names[-1],
                          journal_hosts=list(JOURNALS))
    return cluster, fs, pair


class TestCheckOnce:
    def test_config_validation(self):
        cluster, fs, pair = make_pair()
        with pytest.raises(ConfigError):
            FailoverController(pair, period=0)
        with pytest.raises(ConfigError):
            FailoverController(pair, min_interval=-1)

    def test_healthy_probe_resets_streak(self):
        cluster, fs, pair = make_pair()
        fc = FailoverController(pair, policy=HealthPolicy(unhealthy_after=3))
        assert fc.check_once() is None
        cluster.host(pair.active_host).fail()
        assert fc.check_once() == "suspect"
        cluster.host(pair.active_host).recover()
        assert fc.check_once() is None
        assert fc._streak == 0

    def test_streak_then_failover(self):
        cluster, fs, pair = make_pair()
        fc = FailoverController(pair, policy=HealthPolicy(unhealthy_after=2))
        old_active = pair.active_host
        cluster.host(pair.active_host).fail()
        assert fc.check_once() == "suspect"
        assert fc.check_once() == "failover"
        assert pair.active_host != old_active
        assert fc.failovers == 1
        assert fc.last_mttr is not None

    def test_flap_guard_refuses_back_to_back(self):
        cluster, fs, pair = make_pair()
        fc = FailoverController(pair, policy=HealthPolicy(unhealthy_after=1),
                                min_interval=30.0)
        cluster.host(pair.active_host).fail()
        assert fc.check_once() == "failover"
        # the new active dies immediately, but the guard holds
        cluster.host(pair.active_host).fail()
        assert fc.check_once() == "suspect"
        assert fc.failovers == 1

    def test_promotion_skipped_without_quorum(self):
        cluster, fs, pair = make_pair()
        fc = FailoverController(pair, policy=HealthPolicy(unhealthy_after=1))
        # a majority of journal hosts dies with the active: no safe fence
        for host in JOURNALS[:2]:
            cluster.host(host).fail()
        assert fc.check_once() == "skipped"
        assert fc.skipped == 1
        assert cluster.log.records(kind="failover_skipped")

    def test_action_log_records_failover(self):
        cluster, fs, pair = make_pair()
        actions = ActionLog(cluster)
        fc = FailoverController(pair, policy=HealthPolicy(unhealthy_after=1),
                                actions=actions)
        cluster.host(pair.active_host).fail()
        assert fc.check_once() == "failover"
        assert len(actions.actions) == 1
        action = actions.actions[0]
        assert action.kind == "failover"
        assert action.pool == "hdfs-ha"
        assert action.member == pair.active_host
        assert "epoch 2" in action.detail


class TestLoop:
    def test_background_loop_promotes_and_measures_mttr(self):
        cluster, fs, pair = make_pair()
        pair.start()
        fc = FailoverController(pair, policy=HealthPolicy(unhealthy_after=2),
                                period=1.0)
        fc.start()
        engine = cluster.engine

        def killer():
            yield engine.timeout(10.0)
            cluster.host(pair.active_host).fail()

        engine.process(killer(), name="killer")
        cluster.run(until=30.0)
        fc.stop()
        pair.stop()
        cluster.run()
        assert fc.failovers == 1
        # detection takes unhealthy_after probes plus the promote RPC
        assert 1.0 <= fc.last_mttr <= 5.0
        hist = cluster.metrics.histogram("hdfs_ha_failover_mttr_seconds", "")
        assert hist.count == 1

    def test_loop_stays_quiet_when_healthy(self):
        cluster, fs, pair = make_pair()
        pair.start()
        fc = FailoverController(pair, period=1.0)
        fc.start()
        cluster.run(until=20.0)
        fc.stop()
        pair.stop()
        cluster.run()
        assert fc.failovers == 0 and fc.skipped == 0
