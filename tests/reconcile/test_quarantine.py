"""Slow-node quarantine: suspicion sweeps, probation, cordon wiring."""

import pytest

from repro.chaos import DiskStall
from repro.common.errors import ReconcileError
from repro.hardware import Cluster
from repro.reconcile import FleetSpec, MemberStatus, PoolSpec, Reconciler
from repro.stack import build_reconciled_cloud, enable_gray_tolerance


class FakeBank:
    """Suspicion levels set directly, so each sweep rule is isolated."""

    def __init__(self):
        self.levels = {}

    def targets(self):
        return sorted(self.levels)

    def phi(self, target):
        return self.levels.get(target, 0.0)


class FakeAdapter:
    def members(self):
        return [MemberStatus(name="m1", version="v1", phase="ready")]

    def add_member(self, version):  # pragma: no cover - pool stays converged
        return None

    def remove_member(self, name, *, drain):  # pragma: no cover
        return True


def make(**watch_kw):
    cluster = Cluster(2, seed=0)
    spec = FleetSpec(pools=(
        PoolSpec(name="web", replicas=1, min_replicas=0),))
    rec = Reconciler(cluster, spec, {"web": FakeAdapter()})
    bank = FakeBank()
    watch_kw.setdefault("threshold", 8.0)
    watch_kw.setdefault("sweeps", 2)
    watch_kw.setdefault("probation", 30.0)
    rec.watch_suspicion("gray", bank, **watch_kw)
    return cluster, rec, bank


def sweep_at(cluster, rec, t):
    cluster.engine.run(until=cluster.engine.timeout(t - cluster.engine.now))
    rec.sweep()


class TestValidation:
    def test_rejects_bad_parameters(self):
        cluster = Cluster(2, seed=0)
        spec = FleetSpec(pools=(PoolSpec(name="web", replicas=1,
                                         min_replicas=0),))
        rec = Reconciler(cluster, spec, {"web": FakeAdapter()})
        bank = FakeBank()
        with pytest.raises(ReconcileError):
            rec.watch_suspicion("a", bank, threshold=0.0)
        with pytest.raises(ReconcileError):
            rec.watch_suspicion("a", bank, sweeps=0)
        with pytest.raises(ReconcileError):
            rec.watch_suspicion("a", bank, probation=0.0)

    def test_rejects_duplicate_watch_names(self):
        cluster, rec, bank = make()
        with pytest.raises(ReconcileError, match="gray"):
            rec.watch_suspicion("gray", bank)


class TestSweeps:
    def test_one_hot_sweep_is_not_enough(self):
        cluster, rec, bank = make(sweeps=2)
        bank.levels["n1"] = 50.0
        sweep_at(cluster, rec, 5.0)
        assert rec.quarantined()["gray"] == []
        sweep_at(cluster, rec, 10.0)
        assert rec.quarantined()["gray"] == ["n1"]
        q = [a for a in rec.actions.actions if a.kind == "quarantine"]
        assert len(q) == 1 and q[0].member == "n1"
        assert "phi=50.0" in q[0].detail

    def test_a_blip_resets_the_streak(self):
        cluster, rec, bank = make(sweeps=2)
        bank.levels["n1"] = 50.0
        sweep_at(cluster, rec, 5.0)
        bank.levels["n1"] = 0.0          # recovered between sweeps
        sweep_at(cluster, rec, 10.0)
        bank.levels["n1"] = 50.0         # flares again: streak starts over
        sweep_at(cluster, rec, 15.0)
        assert rec.quarantined()["gray"] == []

    def test_calm_targets_are_never_touched(self):
        cluster, rec, bank = make()
        bank.levels["n1"] = 0.5
        for t in (5.0, 10.0, 15.0, 20.0):
            sweep_at(cluster, rec, t)
        assert rec.quarantined()["gray"] == []
        assert not [a for a in rec.actions.actions
                    if a.kind in ("quarantine", "reinstate")]


class TestProbation:
    def quarantine(self, cluster, rec, bank):
        bank.levels["n1"] = 50.0
        sweep_at(cluster, rec, 5.0)
        sweep_at(cluster, rec, 10.0)
        assert rec.quarantined()["gray"] == ["n1"]

    def test_served_probation_reinstates(self):
        cluster, rec, bank = make(probation=30.0)
        self.quarantine(cluster, rec, bank)
        bank.levels["n1"] = 0.0
        sweep_at(cluster, rec, 15.0)     # calm clock starts here
        sweep_at(cluster, rec, 40.0)
        assert rec.quarantined()["gray"] == ["n1"]   # 25s < 30s
        sweep_at(cluster, rec, 45.0)
        assert rec.quarantined()["gray"] == []
        r = [a for a in rec.actions.actions if a.kind == "reinstate"]
        assert len(r) == 1 and r[0].member == "n1"

    def test_flare_during_probation_restarts_it(self):
        cluster, rec, bank = make(probation=30.0)
        self.quarantine(cluster, rec, bank)
        bank.levels["n1"] = 0.0
        sweep_at(cluster, rec, 15.0)
        bank.levels["n1"] = 50.0         # still sick: probation voided
        sweep_at(cluster, rec, 40.0)
        bank.levels["n1"] = 0.0
        sweep_at(cluster, rec, 45.0)     # calm clock restarts
        sweep_at(cluster, rec, 70.0)
        assert rec.quarantined()["gray"] == ["n1"]
        sweep_at(cluster, rec, 76.0)
        assert rec.quarantined()["gray"] == []

    def test_hooks_fire_on_both_transitions(self):
        events = []
        cluster, rec, bank = make(
            probation=10.0,
            on_quarantine=lambda n: events.append(("q", n)),
            on_reinstate=lambda n: events.append(("r", n)))
        self.quarantine(cluster, rec, bank)
        bank.levels["n1"] = 0.0
        sweep_at(cluster, rec, 15.0)
        sweep_at(cluster, rec, 26.0)
        assert events == [("q", "n1"), ("r", "n1")]


class TestFullStack:
    def test_disk_stalled_datanode_is_cordoned_not_killed(self):
        """The PR's acceptance scenario end-to-end: a severe disk stall
        on one DataNode is quarantined (host cordoned) within the storm
        window, is never declared dead, and is reinstated after serving
        probation once the stall clears."""
        vc = build_reconciled_cloud(8, seed=11)
        vc.run(until=60.0)
        rec = vc.reconciler
        assert rec.report.open_pools() == []

        enable_gray_tolerance(vc, probation=20.0)
        vc.run(until=120.0)              # settle detectors + trackers

        victim = sorted(vc.fs.datanodes)[0]
        # `at` is relative to unleash time (t=120): storm runs t=125..165
        vc.run(vc.chaos.unleash([
            DiskStall(host=victim, at=5.0, duration=40.0, severity="severe"),
        ]))
        assert victim not in vc.fs.namenode.dead_datanodes
        vc.run(until=260.0)
        assert victim not in vc.fs.namenode.dead_datanodes

        quarantines = [a for a in rec.actions.actions
                       if a.kind == "quarantine" and a.member == victim]
        assert quarantines, "victim never quarantined"
        assert 125.0 <= quarantines[0].time <= 165.0
        assert vc.cloud.host_record(victim).cordoned is False  # uncordoned
        reinstates = [a for a in rec.actions.actions
                      if a.kind == "reinstate" and a.member == victim]
        assert reinstates and reinstates[0].time > 165.0
        assert not any(victim in v for v in rec.quarantined().values())

        vc.stop_background()
        vc.cluster.run()                 # engine must drain, never wedge
