"""Reconciler core loop: replace, backoff, crash-loop, scale, upgrades.

Driven against an in-memory fake adapter so each behaviour is isolated
from the real substrates (those are covered in test_pools.py and the
chaos integration tests).
"""

import pytest

from repro.common.errors import ReconcileError
from repro.hardware import Cluster
from repro.reconcile import (
    AutoscalePolicy,
    Autoscaler,
    FleetSpec,
    HealthPolicy,
    MemberStatus,
    PoolSpec,
    Reconciler,
)


class FakeAdapter:
    """In-memory pool: members are (version, phase) pairs."""

    def __init__(self):
        self.state = {}
        self.counter = 0
        self.added = []
        self.removed = []
        self.bad_versions = set()   # adds at these versions come up unhealthy
        self.refuse_adds = False

    def members(self):
        return [MemberStatus(name=n, version=v, phase=p)
                for n, (v, p) in sorted(self.state.items())]

    def add_member(self, version):
        if self.refuse_adds:
            return None
        self.counter += 1
        name = f"m{self.counter}"
        phase = "unhealthy" if version in self.bad_versions else "ready"
        self.state[name] = (version, phase)
        self.added.append(name)
        return name

    def remove_member(self, name, *, drain):
        self.state.pop(name, None)
        self.removed.append((name, drain))
        return True

    def set_phase(self, name, phase):
        v, _ = self.state[name]
        self.state[name] = (v, phase)


def make(replicas=2, *, health=None, autoscalers=(), period=5.0, **pool_kw):
    cluster = Cluster(2, seed=0)
    adapter = FakeAdapter()
    pool_kw.setdefault("min_replicas", 0)
    spec = FleetSpec(pools=(
        PoolSpec(name="web", replicas=replicas,
                 health=health or HealthPolicy(), **pool_kw),))
    rec = Reconciler(cluster, spec, {"web": adapter},
                     autoscalers=autoscalers, period=period)
    return cluster, adapter, rec


def kinds(rec):
    return [a.kind for a in rec.actions.actions]


class TestConstruction:
    def test_every_pool_needs_an_adapter(self):
        cluster = Cluster(2, seed=0)
        spec = FleetSpec(pools=(PoolSpec(name="web", replicas=1),))
        with pytest.raises(ReconcileError):
            Reconciler(cluster, spec, {})

    def test_period_must_be_positive(self):
        cluster = Cluster(2, seed=0)
        spec = FleetSpec(pools=(PoolSpec(name="web", replicas=1),))
        with pytest.raises(ReconcileError):
            Reconciler(cluster, spec, {"web": FakeAdapter()}, period=0.0)

    def test_start_is_idempotent_and_stop_drains(self):
        cluster, _, rec = make()
        rec.start()
        proc = rec._proc
        rec.start()
        assert rec._proc is proc
        cluster.run(until=20.0)
        rec.stop()
        cluster.run()           # hangs forever if the loop keeps ticking


class TestScaleToSpec:
    def test_empty_pool_filled_to_replicas(self):
        _, adapter, rec = make(replicas=3)
        rec.sweep()
        assert len(adapter.state) == 3
        assert kinds(rec).count("add") == 3
        rec.sweep()
        assert rec.report.open_pools() == []    # converged

    def test_surplus_removed_with_drain(self):
        _, adapter, rec = make(replicas=1)
        rec.sweep()
        adapter.add_member("v1")                # an extra appears
        adapter.add_member("v1")
        rec.sweep()
        assert len(adapter.state) == 1
        assert all(drain for _, drain in adapter.removed)

    def test_scale_down_prefers_non_ready_victims(self):
        _, adapter, rec = make(replicas=2)
        rec.sweep()
        adapter.add_member("v1")
        sick = adapter.added[-1]
        adapter.set_phase(sick, "unhealthy")
        rec.sweep()
        assert (sick, True) in adapter.removed

    def test_no_room_is_not_fatal(self):
        cluster, adapter, rec = make(replicas=2)
        adapter.refuse_adds = True
        rec.sweep()
        assert len(adapter.state) == 0
        assert cluster.log.records(source="reconcile",
                                   kind="reconcile_no_capacity")


class TestReplacement:
    def test_unhealthy_member_replaced_after_streak(self):
        _, adapter, rec = make(replicas=2)
        rec.sweep()
        victim = adapter.added[0]
        adapter.set_phase(victim, "unhealthy")
        rec.sweep()                             # streak 1: not yet
        assert victim in adapter.state
        rec.sweep()                             # streak 2: condemned
        assert victim not in adapter.state
        assert (victim, False) in adapter.removed
        assert "replace" in kinds(rec)
        assert len(adapter.state) == 2          # replacement added

    def test_recovery_resets_the_streak(self):
        _, adapter, rec = make(replicas=2)
        rec.sweep()
        victim = adapter.added[0]
        adapter.set_phase(victim, "unhealthy")
        rec.sweep()
        adapter.set_phase(victim, "ready")      # it came back
        rec.sweep()
        rec.sweep()
        assert victim in adapter.state
        assert "replace" not in kinds(rec)

    def test_member_hung_in_starting_is_condemned(self):
        cluster, adapter, rec = make(
            replicas=1, health=HealthPolicy(hung_after=30.0))
        rec.start()
        cluster.run(until=6.0)                  # first sweep adds m1
        adapter.set_phase(adapter.added[0], "starting")
        cluster.run(until=60.0)                 # > hung_after in starting
        assert ("m1", False) in adapter.removed
        assert "replace" in kinds(rec)
        rec.stop()
        cluster.run()

    def test_replacement_backoff_grows(self):
        cluster, adapter, rec = make(
            replicas=1,
            health=HealthPolicy(unhealthy_after=1, backoff_base=20.0,
                                backoff_max=160.0, crashloop_budget=100))
        adapter.bad_versions.add("v1")          # every member is sick
        rec.start()
        cluster.run(until=200.0)
        adds = [a.time for a in rec.actions.by_kind("add")]
        gaps = [b - a for a, b in zip(adds, adds[1:])]
        assert gaps, "expected repeated replacement attempts"
        # first gap is one sweep (no backoff yet), then 20 s, 40 s, ...
        assert gaps[1] >= 20.0
        assert gaps[2] >= 40.0
        rec.stop()
        cluster.run()


class TestCrashLoop:
    def _crashloop(self):
        cluster, adapter, rec = make(
            replicas=1,
            health=HealthPolicy(unhealthy_after=1, backoff_base=1.0,
                                backoff_max=1.0, crashloop_budget=3))
        adapter.bad_versions.add("v1")
        rec.start()
        cluster.run(until=100.0)
        return cluster, adapter, rec

    def test_budget_exhaustion_gives_up(self):
        cluster, adapter, rec = self._crashloop()
        assert "give_up" in kinds(rec)
        assert rec.actions.counts()["replace"] == 3
        adds_after = [a for a in rec.actions.by_kind("add")
                      if a.time > rec.actions.by_kind("give_up")[0].time]
        assert not adds_after                   # no more thrash
        rec.stop()
        cluster.run()

    def test_new_spec_resets_the_budget(self):
        cluster, adapter, rec = self._crashloop()
        adapter.bad_versions.clear()            # v1 is "fixed" now
        rec.apply(rec.spec)
        cluster.run(until=cluster.engine.now + 30.0)
        assert len(adapter.state) == 1
        assert rec.report.open_pools() == []
        rec.stop()
        cluster.run()


class TestRollingUpgrade:
    def _upgraded(self, *, bad_v2=False):
        cluster, adapter, rec = make(
            replicas=2, health=HealthPolicy(ready_sweeps=2))
        rec.sweep()                             # fill the pool at v1
        rec.sweep()                             # converge
        if bad_v2:
            adapter.bad_versions.add("v2")
        rec.apply(rec.spec.with_version("web", "v2"))
        return cluster, adapter, rec

    def test_upgrade_surges_then_drains_old(self):
        _, adapter, rec = self._upgraded()
        rec.sweep()
        assert "upgrade_start" in kinds(rec)
        versions = [v for v, _ in adapter.state.values()]
        assert versions.count("v2") == 1        # the surge member
        assert len(adapter.state) == 3          # desired + 1 during upgrade
        for _ in range(12):
            rec.sweep()
        assert "upgrade_done" in kinds(rec)
        assert [v for v, _ in adapter.state.values()] == ["v2", "v2"]
        assert len(adapter.state) == 2
        # old members were drained, not killed
        drained = [n for n, drain in adapter.removed if drain]
        assert len(drained) == 2

    def test_ready_gate_blocks_drain(self):
        _, adapter, rec = self._upgraded()
        rec.sweep()                             # surge added
        surge = adapter.added[-1]
        adapter.set_phase(surge, "starting")    # never becomes ready
        for _ in range(6):
            rec.sweep()
        assert not [n for n, drain in adapter.removed if drain]

    def test_regression_rolls_back(self):
        _, adapter, rec = self._upgraded(bad_v2=True)
        rec.sweep()                             # surge comes up unhealthy
        rec.sweep()
        assert "rollback" in kinds(rec)
        assert all(v == "v1" for v, _ in adapter.state.values())
        for _ in range(4):
            rec.sweep()
        # v2 is banned: no second attempt, pool stays converged on v1
        assert kinds(rec).count("upgrade_start") == 1
        assert kinds(rec).count("rollback") == 1
        assert len(adapter.state) == 2
        assert rec.report.open_pools() == []


class TestAutoscalerIntegration:
    def test_signal_pressure_rewrites_the_spec(self):
        box = {"v": 100.0}
        policy = AutoscalePolicy(pool="web", high=10.0, low=1.0,
                                 up_after=2, down_after=4, cooldown=0.0)
        cluster = Cluster(2, seed=0)
        adapter = FakeAdapter()
        spec = FleetSpec(pools=(
            PoolSpec(name="web", replicas=2, min_replicas=1, max_replicas=4),))
        rec = Reconciler(cluster, spec, {"web": adapter},
                         autoscalers=[Autoscaler(policy, lambda: box["v"])])
        rec.sweep()
        rec.sweep()
        assert rec.spec.pool("web").replicas == 3
        assert "scale_up" in kinds(rec)
        assert len(adapter.state) == 3          # reconciled immediately
        box["v"] = 0.0
        for _ in range(8):
            rec.sweep()
        assert rec.spec.pool("web").replicas < 3
        assert "scale_down" in kinds(rec)

    def test_scaling_clamped_to_pool_bounds(self):
        policy = AutoscalePolicy(pool="web", high=10.0, low=1.0,
                                 up_after=1, cooldown=0.0)
        cluster = Cluster(2, seed=0)
        adapter = FakeAdapter()
        spec = FleetSpec(pools=(
            PoolSpec(name="web", replicas=2, min_replicas=1, max_replicas=2),))
        rec = Reconciler(cluster, spec, {"web": adapter},
                         autoscalers=[Autoscaler(policy, lambda: 100.0)])
        for _ in range(4):
            rec.sweep()
        assert rec.spec.pool("web").replicas == 2   # clamped at max


class TestConvergenceReport:
    def test_episode_opens_and_closes(self):
        _, adapter, rec = make(replicas=2)
        rec.sweep()                             # diverged (empty) -> filled
        rec.sweep()                             # converged
        assert len(rec.report.episodes) == 1
        assert rec.report.episodes[0].converged is not None
        assert rec.report.mean_convergence_time() >= 0.0
        victim = adapter.added[0]
        adapter.set_phase(victim, "unhealthy")
        rec.sweep()
        rec.sweep()                             # replaced
        rec.sweep()
        assert len(rec.report.episodes) == 2
        assert rec.report.open_pools() == []

    def test_signature_is_stable(self):
        _, _, rec = make(replicas=2)
        rec.sweep()
        rec.sweep()
        assert rec.report.signature() == rec.report.signature()
        d = rec.report.as_dict()
        assert set(d) == {"episodes", "unconverged_pools",
                          "mean_convergence_s", "max_convergence_s"}
