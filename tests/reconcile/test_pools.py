"""Pool adapters against the real substrates."""

import pytest

from repro.common.errors import ReconcileError
from repro.common.units import GiB, MiB
from repro.one import OneState, VmTemplate
from repro.reconcile import (
    DataNodePoolAdapter,
    MemberStatus,
    TranscodePoolAdapter,
    VmPoolAdapter,
    WebReplicaPoolAdapter,
)
from repro.stack import build_reconciled_cloud, build_video_cloud


def test_member_status_rejects_unknown_phase():
    with pytest.raises(ReconcileError):
        MemberStatus(name="x", version="v1", phase="zombie")


@pytest.fixture()
def vc():
    cloud = build_reconciled_cloud(seed=11, autoscale=False)
    yield cloud
    cloud.stop_background()
    cloud.cluster.run()


class TestVmPoolAdapter:
    @pytest.fixture()
    def base(self):
        vc = build_video_cloud(5, seed=4, deploy_vms=False)
        tpl = VmTemplate(name="pool-node", vcpus=1, memory=1 * GiB,
                         image="ubuntu-10.04-hadoop", dirty_rate=4 * MiB)
        return vc, VmPoolAdapter(vc.cloud, "workers", tpl)

    def test_add_then_ready_after_boot(self, base):
        vc, adapter = base
        name = adapter.add_member("v1")
        assert name is not None
        members = adapter.members()
        assert [m.name for m in members] == [name]
        assert members[0].phase == "starting"
        assert members[0].version == "v1"
        vc.cluster.run(until=vc.engine.now + 120.0)
        assert adapter.members()[0].phase == "ready"

    def test_only_tagged_vms_are_members(self, base):
        vc, adapter = base
        adapter.add_member("v1")
        tpl = VmTemplate(name="other", vcpus=1, memory=1 * GiB,
                         image="ubuntu-10.04-hadoop", dirty_rate=4 * MiB)
        vc.cloud.instantiate(tpl, owner="oneadmin")   # untagged bystander
        assert len(adapter.members()) == 1

    def test_dead_host_makes_member_unhealthy(self, base):
        vc, adapter = base
        adapter.add_member("v1")
        vc.cluster.run(until=vc.engine.now + 120.0)
        host = adapter.members()[0].host
        vc.cluster.host(host).fail()
        m = adapter.members()[0]
        assert m.phase == "unhealthy"
        assert host in m.reason

    def test_remove_without_drain_retires(self, base):
        vc, adapter = base
        name = adapter.add_member("v1")
        vc.cluster.run(until=vc.engine.now + 120.0)
        assert adapter.remove_member(name, drain=False)
        vc.cluster.run(until=vc.engine.now + 10.0)
        assert adapter.members() == []

    def test_remove_with_drain_shuts_down(self, base):
        vc, adapter = base
        name = adapter.add_member("v1")
        vc.cluster.run(until=vc.engine.now + 120.0)
        assert adapter.remove_member(name, drain=True)
        vc.cluster.run(until=vc.engine.now + 120.0)
        vm = next(v for v in vc.cloud.vm_pool.values() if v.name == name)
        assert vm.state is OneState.DONE

    def test_removing_missing_member_is_fine(self, base):
        _, adapter = base
        assert adapter.remove_member("ghost", drain=True)


class TestDataNodePoolAdapter:
    def test_observed_phases(self, vc):
        adapter = vc.reconciler.adapters["datanodes"]
        members = adapter.members()
        assert len(members) == len(vc.fs.datanodes)
        assert all(m.phase == "ready" for m in members)

    def test_add_enrols_a_free_host(self, vc):
        adapter = vc.reconciler.adapters["datanodes"]
        before = set(vc.fs.datanodes)
        name = adapter.add_member("v1")
        assert name is not None and name not in before
        assert name in vc.fs.datanodes
        assert adapter.versions[name] == "v1"

    def test_add_returns_none_when_full(self, vc):
        adapter = vc.reconciler.adapters["datanodes"]
        while adapter.add_member("v1") is not None:
            pass
        assert adapter.add_member("v1") is None

    def test_drain_remove_decommissions(self, vc):
        adapter = vc.reconciler.adapters["datanodes"]
        victim = sorted(vc.fs.datanodes)[-1]
        # no blocks stored: the drain completes on the first call
        assert adapter.remove_member(victim, drain=True)
        assert victim not in vc.fs.datanodes

    def test_hard_remove_drops_dead_node(self, vc):
        adapter = vc.reconciler.adapters["datanodes"]
        victim = sorted(vc.fs.datanodes)[-1]
        vc.fs.kill_datanode(victim)
        assert adapter.remove_member(victim, drain=False)
        assert victim not in vc.fs.datanodes


class TestTranscodePoolAdapter:
    def test_roundtrip(self, vc):
        adapter = vc.reconciler.adapters["transcode"]
        start = list(vc.portal.transcoder.workers)
        name = adapter.add_member("v1")
        assert name in vc.portal.transcoder.workers
        assert adapter.remove_member(name, drain=True)
        assert vc.portal.transcoder.workers == start

    def test_dead_worker_host_is_unhealthy(self, vc):
        adapter = vc.reconciler.adapters["transcode"]
        worker = vc.portal.transcoder.workers[0]
        vc.cluster.host(worker).fail()
        assert adapter.members()[0].phase == "unhealthy"
        vc.cluster.host(worker).recover()


class TestWebReplicaPoolAdapter:
    def test_replica_shares_portal_state(self, vc):
        adapter = vc.reconciler.adapters["web"]
        name = adapter.add_member("v1")
        assert name is not None
        replica = vc.lb.backends[name]
        assert replica.routes is vc.portal.server.routes
        assert replica.admission is vc.portal.server.admission

    def test_drain_is_two_phase(self, vc):
        adapter = vc.reconciler.adapters["web"]
        name = adapter.add_member("v1")
        assert adapter.remove_member(name, drain=False) or True
        name = adapter.add_member("v1")
        assert not adapter.remove_member(name, drain=True)   # draining
        assert name in vc.lb.draining
        assert adapter.remove_member(name, drain=True)       # gone
        assert name not in vc.lb.backends
