import pytest

from repro.common.errors import HdfsError
from repro.common.units import MiB
from repro.fusehdfs import HdfsMount
from repro.hardware import Cluster
from repro.hdfs import Hdfs


def make_mount(hdfs_root="/uploads"):
    cluster = Cluster(4)
    fs = Hdfs(cluster, block_size=4 * MiB, replication=2)
    mount = HdfsMount(fs, "node1", mount_point="/var/www/uploads",
                      hdfs_root=hdfs_root)
    return cluster, fs, mount


class TestPathTranslation:
    def test_roundtrip(self):
        _, _, m = make_mount()
        local = "/var/www/uploads/videos/a.avi"
        hdfs = m.to_hdfs_path(local)
        assert hdfs == "/uploads/videos/a.avi"
        assert m.to_local_path(hdfs) == local

    def test_outside_mount_rejected(self):
        _, _, m = make_mount()
        with pytest.raises(HdfsError):
            m.to_hdfs_path("/etc/passwd")

    def test_outside_root_rejected(self):
        _, _, m = make_mount()
        with pytest.raises(HdfsError):
            m.to_local_path("/other/file")

    def test_empty_root(self):
        _, _, m = make_mount(hdfs_root="")
        assert m.to_hdfs_path("/var/www/uploads/x") == "/x"

    def test_bad_mount_point(self):
        cluster = Cluster(4)
        fs = Hdfs(cluster)
        with pytest.raises(HdfsError):
            HdfsMount(fs, "node1", mount_point="relative/path")


class TestOperations:
    def test_write_read_through_mount(self):
        cluster, fs, m = make_mount()
        data = b"video metadata" * 100
        cluster.run(cluster.engine.process(
            m.write("/var/www/uploads/meta.txt", data)))
        got = cluster.run(cluster.engine.process(
            m.read("/var/www/uploads/meta.txt")))
        assert got == data
        # and the bytes genuinely live in HDFS
        assert fs.namenode.exists("/uploads/meta.txt")

    def test_sized_write(self):
        cluster, fs, m = make_mount()
        cluster.run(cluster.engine.process(
            m.write_sized("/var/www/uploads/big.avi", 10 * MiB)))
        assert m.stat("/var/www/uploads/big.avi").length == 10 * MiB

    def test_exists_listdir_remove(self):
        cluster, fs, m = make_mount()
        cluster.run(cluster.engine.process(
            m.write("/var/www/uploads/v/a.txt", b"1")))
        cluster.run(cluster.engine.process(
            m.write("/var/www/uploads/v/b.txt", b"2")))
        assert m.exists("/var/www/uploads/v/a.txt")
        assert m.listdir("/var/www/uploads/v") == [
            "/var/www/uploads/v/a.txt", "/var/www/uploads/v/b.txt"]
        assert m.listdir("/var/www/uploads") == [
            "/var/www/uploads/v/a.txt", "/var/www/uploads/v/b.txt"]
        m.remove("/var/www/uploads/v/a.txt")
        assert not m.exists("/var/www/uploads/v/a.txt")

    def test_mount_costs_slightly_more_than_direct(self):
        cluster, fs, m = make_mount()
        t0 = cluster.now
        cluster.run(cluster.engine.process(
            m.write("/var/www/uploads/x", b"data")))
        mounted = cluster.now - t0

        cluster2 = Cluster(4)
        fs2 = Hdfs(cluster2, block_size=4 * MiB, replication=2)
        t0 = cluster2.now
        cluster2.run(cluster2.engine.process(
            fs2.client("node1").write_file("/uploads/x", b"data")))
        direct = cluster2.now - t0
        assert mounted > direct
        assert mounted - direct < 0.01
