"""Property-based tests of the event kernel's core invariants."""

from hypothesis import given, settings, strategies as st

from repro.sim import Container, Engine, Resource, Store


@st.composite
def process_specs(draw):
    """A random set of processes: (start_delay, work_items)."""
    n = draw(st.integers(min_value=1, max_value=8))
    specs = []
    for _ in range(n):
        start = draw(st.floats(min_value=0, max_value=10, allow_nan=False))
        work = draw(st.lists(
            st.floats(min_value=0, max_value=5, allow_nan=False),
            min_size=1, max_size=5))
        specs.append((start, work))
    return specs


class TestKernelProperties:
    @given(process_specs())
    @settings(max_examples=60, deadline=None)
    def test_time_never_goes_backwards(self, specs):
        engine = Engine()
        observed = []

        def proc(start, work):
            yield engine.timeout(start)
            for w in work:
                observed.append(engine.now)
                yield engine.timeout(w)
            observed.append(engine.now)

        for start, work in specs:
            engine.process(proc(start, work))
        engine.run()
        assert observed == sorted(observed)
        assert engine.now == max(observed)

    @given(process_specs())
    @settings(max_examples=60, deadline=None)
    def test_identical_runs_identical_traces(self, specs):
        def run_once():
            engine = Engine()
            trace = []

            def proc(i, start, work):
                yield engine.timeout(start)
                for w in work:
                    trace.append((round(engine.now, 9), i))
                    yield engine.timeout(w)

            for i, (start, work) in enumerate(specs):
                engine.process(proc(i, start, work))
            engine.run()
            return trace

        assert run_once() == run_once()

    @given(st.integers(min_value=1, max_value=5),
           st.lists(st.floats(min_value=0.1, max_value=3), min_size=1,
                    max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_resource_work_conservation(self, capacity, durations):
        """Total busy time is conserved; makespan bounded by capacity."""
        engine = Engine()
        resource = Resource(engine, capacity=capacity)
        finished = []

        def worker(d):
            with resource.request() as req:
                yield req
                yield engine.timeout(d)
            finished.append(d)

        for d in durations:
            engine.process(worker(d))
        engine.run()
        assert sorted(finished) == sorted(durations)
        total = sum(durations)
        # perfect packing lower bound and serial upper bound
        assert engine.now >= max(max(durations), total / capacity) - 1e-9
        assert engine.now <= total + 1e-9

    @given(st.lists(st.integers(min_value=1, max_value=20), min_size=1,
                    max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_container_conserves_quantity(self, amounts):
        engine = Engine()
        tank = Container(engine, capacity=10**9, init=0)

        def producer():
            for a in amounts:
                yield tank.put(a)

        def consumer():
            for a in amounts:
                yield tank.get(a)

        engine.process(producer())
        engine.process(consumer())
        engine.run()
        assert tank.level == 0

    @given(st.lists(st.integers(), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_store_is_fifo(self, items):
        engine = Engine()
        store = Store(engine)
        got = []

        def producer():
            for item in items:
                yield store.put(item)

        def consumer():
            for _ in items:
                v = yield store.get()
                got.append(v)

        engine.process(producer())
        engine.process(consumer())
        engine.run()
        assert got == items
