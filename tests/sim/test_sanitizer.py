"""Happens-before sanitizer: race detection over kernel shared state.

The planted scenarios mirror the hazards the static RACE rules describe:
same-timestamp check-then-act against a Container, unordered writes to
the same field, and the causally-ordered counterparts that must *not*
be flagged (scheduling edges order them).
"""

from __future__ import annotations

from repro.sim import Container, Engine, Resource, Store
from repro.sim import sanitizer as sanitizer_mod


def test_enable_disable_roundtrip_restores_fast_path():
    env = Engine()
    assert "call_later" not in env.__dict__
    san = env.enable_sanitizer()
    assert env.enable_sanitizer() is san          # idempotent
    assert sanitizer_mod.ACTIVE is san
    assert "call_later" in env.__dict__           # instrumented wrappers on
    env.disable_sanitizer()
    assert sanitizer_mod.ACTIVE is None
    assert "call_later" not in env.__dict__       # class fast path restored
    assert "call_at" not in env.__dict__
    assert "_schedule" not in env.__dict__


def test_same_time_read_write_race_is_flagged():
    env = Engine()
    tank = Container(env, capacity=10, init=3)
    san = env.enable_sanitizer()
    san.track(tank, "tank")

    def consumer():
        yield env.timeout(1.0)
        if tank.level >= 5:                       # check ...
            yield tank.get(5)                     # ... then act

    def producer():
        yield env.timeout(1.0)
        yield tank.put(3)

    env.process(consumer(), name="consumer")
    env.process(producer(), name="producer")
    env.run()
    env.disable_sanitizer()

    assert not san.ok
    kinds = {r.kind for r in san.races}
    assert "read-write" in kinds
    race = san.races[0]
    assert race.obj == "tank"
    assert race.field == "level"
    assert race.time == 1.0
    assert "tank.level" in race.format()


def test_causally_ordered_accesses_are_not_flagged():
    env = Engine()
    tank = Container(env, capacity=10, init=0)
    san = env.enable_sanitizer()
    san.track(tank, "tank")
    gate = env.event()

    def producer():
        yield env.timeout(1.0)
        yield tank.put(5)                 # write ...
        gate.succeed()                    # ... then signal

    def consumer():
        yield gate                        # scheduling edge orders the read
        assert tank.level == 5.0

    env.process(producer(), name="producer")
    env.process(consumer(), name="consumer")
    env.run()
    env.disable_sanitizer()
    assert san.ok, san.report()


def test_different_time_accesses_are_not_flagged():
    env = Engine()
    tank = Container(env, capacity=10, init=5)
    san = env.enable_sanitizer()

    def reader():
        yield env.timeout(1.0)
        assert tank.level == 5.0

    def writer():
        yield env.timeout(2.0)            # strictly later: never a race
        yield tank.put(1)

    env.process(reader(), name="reader")
    env.process(writer(), name="writer")
    env.run()
    env.disable_sanitizer()
    assert san.ok, san.report()


def test_same_time_write_write_race_is_flagged():
    env = Engine()
    store = Store(env)

    def putter(tag):
        yield env.timeout(1.0)
        yield store.put(tag)

    san = env.enable_sanitizer()
    san.track(store, "queue")
    env.process(putter("a"), name="a")
    env.process(putter("b"), name="b")
    env.run()
    env.disable_sanitizer()
    assert any(r.kind == "write-write" for r in san.races), san.report()


def test_resource_requests_from_unordered_processes_are_flagged():
    env = Engine()
    cpu = Resource(env, capacity=1)

    def claimant():
        yield env.timeout(1.0)
        with cpu.request() as req:
            yield req

    san = env.enable_sanitizer()
    env.process(claimant(), name="p1")
    env.process(claimant(), name="p2")
    env.run()
    env.disable_sanitizer()
    assert any(r.field == "slots" for r in san.races), san.report()


def test_untracked_objects_get_derived_names():
    env = Engine()
    tank = Container(env, init=1)
    san = env.enable_sanitizer()

    def toucher():
        yield env.timeout(1.0)
        yield tank.put(1)

    def reader():
        yield env.timeout(1.0)
        assert tank.level >= 0

    env.process(toucher(), name="t")
    env.process(reader(), name="r")
    env.run()
    env.disable_sanitizer()
    assert san.races
    assert san.races[0].obj.startswith("Container#")


def test_report_counts_accesses_and_dedups_repeats():
    env = Engine()
    tank = Container(env, init=1)
    san = env.enable_sanitizer()
    san.track(tank, "tank")

    def writer():
        for _ in range(5):                # same pair every round: one record
            yield env.timeout(1.0)
            yield tank.put(1)

    def reader():
        for _ in range(5):
            yield env.timeout(1.0)
            assert tank.level >= 0

    env.process(writer(), name="writer")
    env.process(reader(), name="reader")
    env.run()
    env.disable_sanitizer()
    assert san.accesses >= 10
    # five rounds of the same conflict collapse to the distinct ordered
    # pairs (write-then-read, read-then-write), not one record per round
    assert len(san.races) <= 2
    assert "race(s)" in san.report()


def test_clean_run_reports_ok():
    env = Engine()
    san = env.enable_sanitizer()

    def quiet():
        yield env.timeout(1.0)

    env.process(quiet(), name="quiet")
    env.run()
    env.disable_sanitizer()
    assert san.ok
    assert "no races" in san.report()


def test_instrumented_loop_matches_fast_path_results():
    def world(env: Engine) -> list[float]:
        times = []

        def worker(delay):
            yield env.timeout(delay)
            times.append(env.now)

        for d in (3.0, 1.0, 2.0, 1.0):
            env.process(worker(d), name=f"w{d}")
        env.run()
        return times

    plain = Engine()
    fast = world(plain)

    instrumented = Engine()
    instrumented.enable_sanitizer()
    slow = world(instrumented)
    instrumented.disable_sanitizer()

    assert fast == slow
    assert plain.events_dispatched == instrumented.events_dispatched


def test_run_returning_is_a_synchronization_barrier():
    # the caller resumes only after every dispatched event finished, so
    # reading shared state between two run() calls -- at the very
    # timestamp the last event wrote it -- is ordered, not a race
    env = Engine()
    tank = Container(env, capacity=10, init=0)
    san = env.enable_sanitizer()
    san.track(tank, "tank")

    def producer():
        yield env.timeout(1.0)
        yield tank.put(3)

    env.process(producer(), name="producer")
    env.run()
    assert env.now == 1.0
    assert tank.level == 3         # root read at the write's timestamp
    env.run(2.0)                   # and the world keeps running after
    env.disable_sanitizer()
    assert san.ok, san.report()
