"""Schedule fuzzer: planted check-then-act race caught both ways.

The acceptance fixture for PR 9: a world with a genuine check-then-act
race (guard on ``Container.level`` consumed after a schedule tie-break)
must be caught by BOTH detectors -- the dynamic sanitizer flags the
unordered same-timestamp access pair, and the schedule fuzzer observes
divergent outcomes within a handful of shuffles.
"""

from __future__ import annotations

from repro.sim import (
    Container,
    Engine,
    first_difference,
    fuzz_schedules,
    signature_digest,
)

#: shuffles needed to catch the planted race (documented in EXPERIMENTS.md)
PLANTED_RACE_SHUFFLES = 4


def _racy_world(shuffle_seed: "int | None") -> dict:
    """Planted check-then-act race: outcome depends on dispatch order.

    At t=1 a consumer checks ``tank.level >= 5`` (level is 3) while a
    producer puts 3 more at the same timestamp.  FIFO dispatch runs the
    consumer's check first ("skipped"); any shuffle that runs the
    producer first flips it to "took".
    """
    env = Engine()
    if shuffle_seed is not None:
        env.enable_schedule_shuffle(shuffle_seed)
    tank = Container(env, capacity=10, init=3)
    outcome: list[str] = []

    def consumer():
        yield env.timeout(1.0)
        if tank.level >= 5:
            outcome.append("took")
            yield tank.get(5)
        else:
            outcome.append("skipped")

    def producer():
        yield env.timeout(1.0)
        yield tank.put(3)

    env.process(consumer(), name="consumer")
    env.process(producer(), name="producer")
    env.run()
    return {"outcome": tuple(outcome), "level": tank.level, "end": env.now}


def _fixed_world(shuffle_seed: "int | None") -> dict:
    """The same world with the guard re-validated after every yield."""
    env = Engine()
    if shuffle_seed is not None:
        env.enable_schedule_shuffle(shuffle_seed)
    tank = Container(env, capacity=10, init=3)
    taken: list[float] = []

    def consumer():
        yield env.timeout(2.0)            # strictly after the producer
        if tank.level >= 5:
            yield tank.get(5)
            taken.append(env.now)

    def producer():
        yield env.timeout(1.0)
        yield tank.put(3)

    env.process(consumer(), name="consumer")
    env.process(producer(), name="producer")
    env.run()
    return {"taken": tuple(taken), "level": tank.level, "end": env.now}


def test_planted_race_is_caught_by_the_fuzzer():
    report = fuzz_schedules(_racy_world, shuffles=PLANTED_RACE_SHUFFLES,
                            seed=0)
    assert not report.ok
    assert report.divergences
    detail = report.divergences[0].format()
    assert "outcome" in detail or "level" in detail
    assert "depends on same-timestamp dispatch order" in report.summary()


def test_planted_race_is_caught_by_the_sanitizer():
    env = Engine()
    tank = Container(env, capacity=10, init=3)
    san = env.enable_sanitizer()
    san.track(tank, "tank")
    outcome: list[str] = []

    def consumer():
        yield env.timeout(1.0)
        outcome.append("took" if tank.level >= 5 else "skipped")

    def producer():
        yield env.timeout(1.0)
        yield tank.put(3)

    env.process(consumer(), name="consumer")
    env.process(producer(), name="producer")
    env.run()
    env.disable_sanitizer()
    assert not san.ok
    assert any(r.obj == "tank" and r.field == "level" and
               r.kind == "read-write" for r in san.races)


def test_fixed_world_passes_the_fuzzer():
    report = fuzz_schedules(_fixed_world, shuffles=8, seed=0)
    assert report.ok, report.summary()
    assert report.signature == signature_digest(_fixed_world(None))
    assert "bit-identical" in report.summary()


def test_divergence_names_two_conflicting_schedules():
    report = fuzz_schedules(_racy_world, shuffles=PLANTED_RACE_SHUFFLES,
                            seed=0)
    d = report.divergences[0]
    assert d.seed_first is None            # the FIFO baseline
    assert d.seed_second in report.seeds
    assert d.format().startswith("fifo vs shuffle[")


def test_fuzz_without_baseline_compares_shuffles_to_each_other():
    report = fuzz_schedules(_fixed_world, shuffles=4, seed=3,
                            include_baseline=False)
    assert report.ok
    assert len(report.seeds) == 4


def test_first_difference_points_into_nested_structures():
    a = {"metrics": {"mttr": [1.0, 2.0]}, "end": 10.0}
    b = {"metrics": {"mttr": [1.0, 3.0]}, "end": 10.0}
    detail = first_difference(a, b)
    assert detail == "sig['metrics']['mttr'][1]: 2.0 != 3.0"
    assert first_difference((1, 2), (1, 2, 3)) == "sig: length 2 != 3"
    assert "type" in first_difference({"a": 1}, [1])
    assert "missing on the right" in first_difference({"a": 1, "b": 2},
                                                      {"a": 1})


def test_shuffle_preserves_priorities_and_time_order():
    """Shuffling only permutes ties: time and URGENT ordering still hold."""

    def run(shuffle_seed):
        env = Engine()
        if shuffle_seed is not None:
            env.enable_schedule_shuffle(shuffle_seed)
        order: list[str] = []

        def late():
            yield env.timeout(2.0)
            order.append("late")

        def early():
            yield env.timeout(1.0)
            order.append("early")

        env.process(late(), name="late")
        env.process(early(), name="early")
        env.run()
        return tuple(order)

    for seed in (None, 0, 1, 2, 3):
        assert run(seed) == ("early", "late")
