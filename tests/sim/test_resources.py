import pytest

from repro.common.errors import SimulationError
from repro.sim import Container, Engine, Resource, Store


@pytest.fixture
def eng():
    return Engine()


class TestResource:
    def test_capacity_enforced(self, eng):
        res = Resource(eng, capacity=2)
        times = []

        def user(i):
            with res.request() as req:
                yield req
                yield eng.timeout(10)
                times.append((i, eng.now))

        for i in range(4):
            eng.process(user(i))
        eng.run()
        # two at t=10, two queued behind them finish at t=20
        assert [t for _, t in times] == [10, 10, 20, 20]

    def test_fifo_grant_order(self, eng):
        res = Resource(eng, capacity=1)
        order = []

        def user(i):
            with res.request() as req:
                yield req
                order.append(i)
                yield eng.timeout(1)

        for i in range(5):
            eng.process(user(i))
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_release_of_queued_request_cancels(self, eng):
        res = Resource(eng, capacity=1)
        got = []

        def holder():
            with res.request() as req:
                yield req
                yield eng.timeout(5)

        def impatient():
            req = res.request()
            result = yield req | eng.timeout(1)
            if req not in result:
                res.release(req)  # gave up
                got.append("gave_up")
            else:  # pragma: no cover
                got.append("got_it")

        def third():
            yield eng.timeout(2)
            with res.request() as req:
                yield req
                got.append(("third", eng.now))

        eng.process(holder())
        eng.process(impatient())
        eng.process(third())
        eng.run()
        assert got == ["gave_up", ("third", 5)]

    def test_counts(self, eng):
        res = Resource(eng, capacity=1)

        def u():
            with res.request() as req:
                yield req
                assert res.count == 1
                yield eng.timeout(1)

        eng.process(u())
        eng.process(u())
        eng.run(until=0.5)
        assert res.count == 1
        assert res.queue_length == 1
        eng.run()
        assert res.count == 0

    def test_bad_capacity(self, eng):
        with pytest.raises(SimulationError):
            Resource(eng, capacity=0)


class TestContainer:
    def test_get_blocks_until_put(self, eng):
        tank = Container(eng, capacity=100, init=0)
        log = []

        def consumer():
            yield tank.get(30)
            log.append(("got", eng.now))

        def producer():
            yield eng.timeout(4)
            yield tank.put(50)

        eng.process(consumer())
        eng.process(producer())
        eng.run()
        assert log == [("got", 4)]
        assert tank.level == 20

    def test_put_blocks_when_full(self, eng):
        tank = Container(eng, capacity=10, init=10)
        log = []

        def producer():
            yield tank.put(5)
            log.append(("put", eng.now))

        def consumer():
            yield eng.timeout(3)
            yield tank.get(7)

        eng.process(producer())
        eng.process(consumer())
        eng.run()
        assert log == [("put", 3)]
        assert tank.level == 8

    def test_init_validation(self, eng):
        with pytest.raises(SimulationError):
            Container(eng, capacity=5, init=9)
        with pytest.raises(SimulationError):
            Container(eng, capacity=0)

    def test_zero_amount_rejected(self, eng):
        tank = Container(eng, capacity=5, init=1)
        with pytest.raises(SimulationError):
            tank.get(0)
        with pytest.raises(SimulationError):
            tank.put(-1)

    def test_cancel_pending_get(self, eng):
        tank = Container(eng, capacity=10, init=0)

        def proc():
            get = tank.get(5)
            res = yield get | eng.timeout(1)
            assert get not in res
            tank.cancel(get)
            yield tank.put(3)  # fits regardless of the dead get

        eng.run(eng.process(proc()))
        assert tank.level == 3


class TestStore:
    def test_fifo_items(self, eng):
        store = Store(eng)
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)
                yield eng.timeout(1)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append((item, eng.now))

        eng.process(producer())
        eng.process(consumer())
        eng.run()
        assert [i for i, _ in got] == [0, 1, 2]

    def test_capacity_blocks_producer(self, eng):
        store = Store(eng, capacity=1)
        done = []

        def producer():
            yield store.put("a")
            yield store.put("b")
            done.append(eng.now)

        def consumer():
            yield eng.timeout(5)
            yield store.get()

        eng.process(producer())
        eng.process(consumer())
        eng.run()
        assert done == [5]

    def test_len(self, eng):
        store = Store(eng)

        def proc():
            yield store.put("x")
            yield store.put("y")

        eng.run(eng.process(proc()))
        assert len(store) == 2
