"""Kernel fast-path behaviour: batched dispatch, timers, recycling.

PR 7 rebuilt the schedule as a heap of ``(time, priority)`` keys over
FIFO buckets and added the ``call_later`` timer path and the Timeout
freelist.  These tests pin the properties that redesign must preserve:
simultaneous events fire in exact schedule order (the old
``(time, priority, seq)`` semantics), URGENT work preempts a same-time
NORMAL run mid-drain, and recycling never leaks state to model code
that plays by the documented rules.
"""

import random

import pytest

from repro.common.errors import SimulationError
from repro.sim import Engine


@pytest.fixture
def eng():
    return Engine()


class TestSimultaneousOrdering:
    """Satellite: N simultaneous mixed-priority events fire in schedule
    order, bit-identically across runs."""

    N = 240
    SEED = 2026

    @staticmethod
    def _storm(seed):
        """Schedule N callbacks over 3 timestamps x 2 priorities; return
        (firing log, expected log in old (time, priority, seq) order)."""
        eng = Engine()
        rng = random.Random(seed)
        log = []
        schedule = []
        for i in range(TestSimultaneousOrdering.N):
            at = float(rng.randrange(3))
            urgent = rng.random() < 0.3
            record = (at, 0 if urgent else 1, i)
            schedule.append(record)
            eng.call_at(at, log.append, record, urgent=urgent)
        eng.run()
        # stable sort on (time, priority) keeps schedule order within
        # each equal run -- exactly the retired seq-counter semantics
        expected = sorted(schedule, key=lambda r: (r[0], r[1]))
        return log, expected

    def test_fires_in_schedule_order(self):
        log, expected = self._storm(self.SEED)
        assert log == expected

    def test_log_is_bit_identical_across_runs(self):
        first, _ = self._storm(self.SEED)
        second, _ = self._storm(self.SEED)
        assert first == second

    def test_processes_and_timers_share_one_order(self, eng):
        log = []

        def worker(tag):
            log.append(tag)
            yield eng.timeout(1.0)
            log.append(f"{tag}+1s")

        eng.process(worker("p1"))
        eng.call_later(0.0, log.append, "t0")
        eng.process(worker("p2"))
        eng.call_later(1.0, log.append, "t1")
        eng.run()
        # t=0: inits (URGENT, schedule order) then the NORMAL timer;
        # t=1: the timer was scheduled at t=0, before either process had
        # resumed and created its timeout, so it fires first
        assert log == ["p1", "p2", "t0", "t1", "p1+1s", "p2+1s"]


class TestUrgentPreemption:
    def test_urgent_preempts_same_time_normal_drain(self, eng):
        log = []

        def first():
            log.append("first")
            eng.call_later(0.0, log.append, "urgent", urgent=True)

        eng.call_later(0.0, first)
        eng.call_later(0.0, log.append, "second")
        eng.run()
        assert log == ["first", "urgent", "second"]

    def test_urgent_chain_drains_before_resuming_normal(self, eng):
        log = []

        def spawn(depth):
            log.append(f"u{depth}")
            if depth < 3:
                eng.call_later(0.0, spawn, depth + 1, urgent=True)

        eng.call_later(0.0, spawn, 1, urgent=True)
        eng.call_later(0.0, log.append, "n1")
        eng.call_later(0.0, log.append, "n2")
        eng.run()
        assert log == ["u1", "u2", "u3", "n1", "n2"]


class TestCallLater:
    def test_args_are_passed_through(self, eng):
        seen = []
        eng.call_later(1.0, lambda a, b: seen.append((a, b, eng.now)), "x", 2)
        eng.run()
        assert seen == [("x", 2, 1.0)]

    def test_negative_delay_rejected(self, eng):
        with pytest.raises(SimulationError):
            eng.call_later(-0.1, lambda: None)

    def test_call_at_past_rejected(self, eng):
        eng.call_later(5.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.call_at(4.0, lambda: None)

    def test_timers_respect_run_deadline(self, eng):
        log = []
        eng.call_later(1.0, log.append, "early")
        eng.call_later(10.0, log.append, "late")
        eng.run(until=5.0)
        assert log == ["early"]
        assert eng.now == 5.0
        eng.run()
        assert log == ["early", "late"]

    def test_timer_chain_counts_in_events_dispatched(self, eng):
        left = [5]

        def tick():
            left[0] -= 1
            if left[0]:
                eng.call_later(1.0, tick)

        eng.call_later(1.0, tick)
        eng.run()
        assert left[0] == 0
        assert eng.events_dispatched == 5

    def test_schedule_into_partially_drained_bucket(self, eng):
        """step() pops one entry; later same-key appends must land in
        the still-live bucket, not a stale cache."""
        log = []
        eng.call_later(1.0, log.append, "a")
        eng.call_later(1.0, log.append, "b")
        eng.step()
        assert log == ["a"]
        eng.call_later(0.0, log.append, "c")  # now=1.0, same key
        eng.run()
        assert log == ["a", "b", "c"]

    def test_rescheduling_same_key_after_full_drain(self, eng):
        """A drained (time, priority) bucket is deleted; scheduling the
        same key again must build a fresh bucket (hot-cache invalidation)."""
        log = []
        eng.call_at(1.0, log.append, "x")
        eng.run()
        eng.call_at(1.0, log.append, "y")
        eng.run()
        assert log == ["x", "y"]


class TestTimeoutRecycling:
    def test_sole_process_waiter_is_recycled(self, eng):
        def p():
            yield eng.timeout(1.0)

        eng.run(eng.process(p()))
        assert len(eng._timeout_pool) == 1
        cell = eng._timeout_pool[0]
        assert not cell.triggered
        assert cell.callbacks == []

    def test_pool_cell_is_reused_with_fresh_state(self, eng):
        def p():
            yield eng.timeout(1.0)

        eng.run(eng.process(p()))
        cell = eng._timeout_pool[0]
        t = eng.timeout(2.0, value="again")
        assert t is cell
        assert t.delay == 2.0
        assert t.value == "again"

        def q(t):
            got = yield t
            return got

        assert eng.run(eng.process(q(t))) == "again"

    def test_extra_waiter_blocks_recycling(self, eng):
        held = []

        def p():
            t = eng.timeout(1.0, value=7)
            t.callbacks.append(lambda ev: None)
            held.append(t)
            yield t

        eng.run(eng.process(p()))
        assert held[0] not in eng._timeout_pool
        assert held[0].triggered
        assert held[0].value == 7

    def test_condition_waiter_blocks_recycling(self, eng):
        held = []

        def p():
            t = eng.timeout(1.0, value="winner")
            held.append(t)
            result = yield t | eng.timeout(5.0)
            return result

        result = eng.run(eng.process(p()))
        assert held[0].value == "winner"
        assert held[0] in result
        assert held[0] not in eng._timeout_pool

    def test_run_until_timeout_is_not_recycled(self, eng):
        def p(t):
            yield t

        t = eng.timeout(3.0, value="stop")
        eng.process(p(t))
        assert eng.run(t) == "stop"
        assert t.triggered
        assert t not in eng._timeout_pool
