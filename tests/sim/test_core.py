import pytest

from repro.common.errors import SimulationError
from repro.sim import Engine, Interrupt


@pytest.fixture
def eng():
    return Engine()


class TestClockAndTimeouts:
    def test_time_starts_at_zero(self, eng):
        assert eng.now == 0.0

    def test_timeout_advances_clock(self, eng):
        def proc():
            yield eng.timeout(3.5)
            return eng.now

        p = eng.process(proc())
        assert eng.run(p) == 3.5
        assert eng.now == 3.5

    def test_negative_timeout_rejected(self, eng):
        with pytest.raises(SimulationError):
            eng.timeout(-1)

    def test_run_until_time_lands_exactly(self, eng):
        def ticker():
            while True:
                yield eng.timeout(1.0)

        eng.process(ticker())
        eng.run(until=10.5)
        assert eng.now == 10.5

    def test_run_until_past_raises(self, eng):
        def proc():
            yield eng.timeout(5)

        eng.process(proc())
        eng.run(until=5)
        with pytest.raises(SimulationError):
            eng.run(until=1)

    def test_timeout_value_passthrough(self, eng):
        def proc():
            v = yield eng.timeout(1, value="hello")
            return v

        assert eng.run(eng.process(proc())) == "hello"


class TestDeterminism:
    def test_simultaneous_events_fire_in_schedule_order(self, eng):
        order = []

        def proc(tag):
            yield eng.timeout(1.0)
            order.append(tag)

        for tag in ["a", "b", "c"]:
            eng.process(proc(tag))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_two_identical_runs_identical_trace(self):
        def run_once():
            eng = Engine()
            trace = []

            def worker(i):
                yield eng.timeout(i % 3)
                trace.append((eng.now, i))
                yield eng.timeout(2)
                trace.append((eng.now, -i))

            for i in range(10):
                eng.process(worker(i))
            eng.run()
            return trace

        assert run_once() == run_once()


class TestProcesses:
    def test_process_return_value(self, eng):
        def child():
            yield eng.timeout(2)
            return 42

        def parent():
            result = yield eng.process(child())
            return result + 1

        assert eng.run(eng.process(parent())) == 43

    def test_exception_propagates_to_joiner(self, eng):
        def child():
            yield eng.timeout(1)
            raise ValueError("boom")

        def parent():
            try:
                yield eng.process(child())
            except ValueError as e:
                return f"caught {e}"

        assert eng.run(eng.process(parent())) == "caught boom"

    def test_unhandled_failure_crashes_run(self, eng):
        def child():
            yield eng.timeout(1)
            raise ValueError("boom")

        eng.process(child())
        with pytest.raises(ValueError):
            eng.run()

    def test_yield_non_event_fails_process(self, eng):
        def bad():
            yield 5

        p = eng.process(bad())
        with pytest.raises(SimulationError):
            eng.run(p)

    def test_join_already_finished_process(self, eng):
        def quick():
            return "done"
            yield  # pragma: no cover

        def parent():
            p = eng.process(quick())
            yield eng.timeout(5)
            v = yield p
            return v

        assert eng.run(eng.process(parent())) == "done"


class TestInterrupts:
    def test_interrupt_wakes_sleeping_process(self, eng):
        def sleeper():
            try:
                yield eng.timeout(100)
                return "slept"
            except Interrupt as i:
                return f"interrupted:{i.cause}"

        def interrupter(target):
            yield eng.timeout(3)
            target.interrupt("migration")

        p = eng.process(sleeper())
        eng.process(interrupter(p))
        assert eng.run(p) == "interrupted:migration"
        assert eng.now == 3

    def test_interrupt_terminated_process_rejected(self, eng):
        def quick():
            yield eng.timeout(1)

        p = eng.process(quick())
        eng.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_rejected(self, eng):
        def proc():
            me = eng.active_process
            with pytest.raises(SimulationError):
                me.interrupt()
            yield eng.timeout(0)

        eng.run(eng.process(proc()))

    def test_process_can_resume_waiting_after_interrupt(self, eng):
        def sleeper():
            deadline = eng.timeout(10)
            try:
                yield deadline
            except Interrupt:
                pass
            yield deadline  # keep waiting for the original event
            return eng.now

        def interrupter(target):
            yield eng.timeout(2)
            target.interrupt()

        p = eng.process(sleeper())
        eng.process(interrupter(p))
        assert eng.run(p) == 10


class TestConditions:
    def test_all_of_waits_for_slowest(self, eng):
        def proc():
            yield eng.timeout(1) & eng.timeout(5)
            return eng.now

        assert eng.run(eng.process(proc())) == 5

    def test_any_of_takes_fastest(self, eng):
        def proc():
            yield eng.timeout(1) | eng.timeout(5)
            return eng.now

        assert eng.run(eng.process(proc())) == 1

    def test_any_of_result_contains_winner(self, eng):
        def proc():
            fast = eng.timeout(1, value="fast")
            slow = eng.timeout(5, value="slow")
            result = yield fast | slow
            return result

        res = eng.run(eng.process(proc()))
        assert list(res.values()) == ["fast"]

    def test_empty_all_of_succeeds_immediately(self, eng):
        def proc():
            yield eng.all_of([])
            return eng.now

        assert eng.run(eng.process(proc())) == 0.0


class TestEvents:
    def test_manual_event_succeed(self, eng):
        ev = eng.event()

        def waiter():
            v = yield ev
            return v

        def firer():
            yield eng.timeout(2)
            ev.succeed("payload")

        p = eng.process(waiter())
        eng.process(firer())
        assert eng.run(p) == "payload"

    def test_double_trigger_rejected(self, eng):
        ev = eng.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, eng):
        ev = eng.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, eng):
        ev = eng.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_run_until_event(self, eng):
        ev = eng.event()

        def firer():
            yield eng.timeout(7)
            ev.succeed(99)

        eng.process(firer())
        assert eng.run(until=ev) == 99
        assert eng.now == 7

    def test_run_until_event_never_fires(self, eng):
        ev = eng.event()

        def proc():
            yield eng.timeout(1)

        eng.process(proc())
        with pytest.raises(SimulationError):
            eng.run(until=ev)

    def test_step_empty_schedule(self, eng):
        with pytest.raises(SimulationError):
            eng.step()

    def test_peek(self, eng):
        assert eng.peek() == float("inf")
        eng.timeout(4)
        assert eng.peek() == 4
