"""Property-based exploration of the lifecycle DFA."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import LifecycleError
from repro.one.lifecycle import (
    ACTIVE_STATES,
    FINAL_STATES,
    TRANSITIONS,
    LifecycleTracker,
    OneState,
)


def walk(choices):
    """Drive a tracker with a list of choice indices; returns it."""
    t = {"now": 0.0}
    lt = LifecycleTracker(lambda: t["now"])
    for c in choices:
        targets = sorted(TRANSITIONS[lt.state], key=lambda s: s.value)
        if not targets:
            break
        t["now"] += 1.0
        lt.to(targets[c % len(targets)])
    return lt


class TestDfaProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_random_walks_never_reach_illegal_states(self, choices):
        lt = walk(choices)
        # every visited state was reached through a declared transition
        for (t0, a), (t1, b) in zip(lt.history, lt.history[1:]):
            assert b in TRANSITIONS[a]
            assert t1 >= t0

    @given(st.lists(st.integers(min_value=0, max_value=10), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_active_final_flags_consistent(self, choices):
        lt = walk(choices)
        assert lt.is_active == (lt.state in ACTIVE_STATES)
        assert lt.is_final == (lt.state in FINAL_STATES)
        if lt.is_final:
            for s in OneState:
                with pytest.raises(LifecycleError):
                    lt.to(s)

    @given(st.lists(st.integers(min_value=0, max_value=10), min_size=1,
                    max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_history_is_append_only_and_timestamps_monotone(self, choices):
        lt = walk(choices)
        times = [t for t, _ in lt.history]
        assert times == sorted(times)
        assert lt.history[0][1] is OneState.PENDING
        assert lt.history[-1][1] is lt.state

    @given(st.lists(st.integers(min_value=0, max_value=10), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_listeners_see_every_transition(self, choices):
        t = {"now": 0.0}
        lt = LifecycleTracker(lambda: t["now"])
        seen = []
        lt.listeners.append(lambda old, new: seen.append((old, new)))
        for c in choices:
            targets = sorted(TRANSITIONS[lt.state], key=lambda s: s.value)
            if not targets:
                break
            lt.to(targets[c % len(targets)])
        assert len(seen) == len(lt.history) - 1
        for old, new in seen:
            assert new in TRANSITIONS[old]
