import pytest

from repro.common.units import GiB, MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.one import CloudShell, OneState, OpenNebula, VmTemplate
from repro.virt import DiskImage


@pytest.fixture
def shell():
    cluster = Cluster(5)
    cloud = OpenNebula(cluster)
    for name in cluster.host_names[1:]:
        cloud.add_host(name)
    cloud.register_image(DiskImage("ubuntu-10.04", size=2 * GiB))
    fs = Hdfs(cluster, replication=2, block_size=16 * MiB)
    vm = cloud.instantiate(VmTemplate(
        name="web", vcpus=1, memory=512 * MiB, image="ubuntu-10.04"))
    cluster.run()
    sh = CloudShell(cloud, fs)
    sh._vm = vm  # test convenience
    return sh


class TestShell:
    def test_help(self, shell):
        out = shell.execute("help")
        assert "onevm" in out and "onehost" in out

    def test_empty_line(self, shell):
        assert shell.execute("") == ""

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.execute("onemagic wave")

    def test_onehost_list(self, shell):
        out = shell.execute("onehost list")
        assert "node1" in out
        assert "CPU" in out

    def test_onevm_list_and_show(self, shell):
        out = shell.execute("onevm list")
        assert "RUNNING" in out
        out = shell.execute(f"onevm show {shell._vm.id}")
        assert "HISTORY" in out
        assert "pending -> prolog -> boot -> running" in out

    def test_onevm_show_missing(self, shell):
        assert "ERROR" in shell.execute("onevm show 999")

    def test_onevm_migrate_live(self, shell):
        vm = shell._vm
        dst = next(n for n in shell.cloud.cluster.host_names[1:]
                   if n != vm.host_name)
        out = shell.execute(f"onevm migrate {vm.id} {dst} --live")
        assert "live-migrated" in out
        assert vm.host_name == dst

    def test_onevm_shutdown(self, shell):
        out = shell.execute(f"onevm shutdown {shell._vm.id}")
        assert "DONE" in out
        assert shell._vm.state is OneState.DONE

    def test_oneuser_create_and_list(self, shell):
        out = shell.execute("oneuser create kuan 2")
        assert "created" in out
        out = shell.execute("oneuser list")
        assert "kuan" in out
        assert "0/2" in out
        assert "oneadmin" in out

    def test_oneuser_duplicate_is_error_text(self, shell):
        shell.execute("oneuser create kuan")
        assert "ERROR" in shell.execute("oneuser create kuan")

    def test_oneimage_list(self, shell):
        out = shell.execute("oneimage list")
        assert "ubuntu-10.04" in out
        assert "qcow2" in out

    def test_hdfs_fsck(self, shell):
        out = shell.execute("hdfs fsck")
        assert "HEALTHY" in out

    def test_hdfs_without_fs(self):
        cluster = Cluster(2)
        cloud = OpenNebula(cluster)
        sh = CloudShell(cloud)
        assert "no HDFS" in sh.execute("hdfs fsck")

    def test_bad_arguments(self, shell):
        assert "ERROR" in shell.execute("onevm show notanumber")
        assert "ERROR" in shell.execute("onevm")

    def test_unbalanced_quotes(self, shell):
        assert "ERROR" in shell.execute('onevm show "oops')
