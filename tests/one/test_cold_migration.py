import pytest

from repro.common.errors import ConfigError, LifecycleError
from repro.common.units import GiB, MiB
from repro.hardware import Cluster
from repro.one import OneState, OpenNebula, VmTemplate
from repro.virt import DiskImage


def running_vm(dirty_rate=20 * MiB):
    cluster = Cluster(4)
    cloud = OpenNebula(cluster)
    for name in cluster.host_names[1:]:
        cloud.add_host(name)
    cloud.register_image(DiskImage("img", size=1 * GiB))
    vm = cloud.instantiate(VmTemplate(
        name="t", vcpus=1, memory=1 * GiB, image="img", dirty_rate=dirty_rate))
    cluster.run()
    dst = next(n for n in cluster.host_names[1:] if n != vm.host_name)
    return cluster, cloud, vm, dst


class TestColdMigration:
    def test_moves_vm_and_returns_to_running(self):
        cluster, cloud, vm, dst = running_vm()
        result = cluster.run(cluster.engine.process(cloud.cold_migrate(vm, dst)))
        assert result.kind == "cold"
        assert vm.state is OneState.RUNNING
        assert vm.host_name == dst
        assert vm.placements[-1].reason == "migrate"

    def test_downtime_is_total_time(self):
        cluster, cloud, vm, dst = running_vm()
        result = cluster.run(cluster.engine.process(cloud.cold_migrate(vm, dst)))
        assert result.downtime == result.total_time
        assert result.rounds == 0

    def test_live_beats_cold_on_downtime(self):
        cluster, cloud, vm, dst = running_vm()
        cold = cluster.run(cluster.engine.process(cloud.cold_migrate(vm, dst)))
        # migrate back, live this time
        src = dst
        back = vm.placements[-2].host
        live = cluster.run(cluster.engine.process(
            cloud.live_migrate(vm, back, "precopy")))
        assert live.downtime < cold.downtime / 10

    def test_lifecycle_passes_through_save_suspended_resume(self):
        cluster, cloud, vm, dst = running_vm()
        cluster.run(cluster.engine.process(cloud.cold_migrate(vm, dst)))
        states = [s for _, s in vm.lifecycle.history]
        for expected in (OneState.SAVE, OneState.SUSPENDED, OneState.RESUME):
            assert expected in states

    def test_memory_ledger_moves(self):
        cluster, cloud, vm, dst = running_vm()
        src = vm.host_name
        cluster.run(cluster.engine.process(cloud.cold_migrate(vm, dst)))
        assert cluster.host(src).memory_used == 0
        assert cluster.host(dst).memory_used == vm.domain.memory

    def test_requires_running(self):
        cluster, cloud, vm, dst = running_vm()
        cluster.run(cluster.engine.process(cloud.shutdown_vm(vm)))
        with pytest.raises(LifecycleError):
            cloud.cold_migrate(vm, dst)

    def test_same_host_rejected(self):
        cluster, cloud, vm, _ = running_vm()
        with pytest.raises(ConfigError):
            cloud.cold_migrate(vm, vm.host_name)
