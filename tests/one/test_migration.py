import pytest

from repro.common.calibration import Calibration, MigrationModel
from repro.common.errors import LifecycleError, MigrationError
from repro.common.units import GiB, MiB
from repro.hardware import Cluster
from repro.one import OneState, OpenNebula, VmTemplate
from repro.one.migration import postcopy_migrate, precopy_migrate
from repro.virt import DiskImage, Kvm


def cloud_with_running_vm(dirty_rate=0.0, memory=1 * GiB, n_hosts=4):
    cluster = Cluster(n_hosts)
    cloud = OpenNebula(cluster)
    for name in cluster.host_names[1:]:
        cloud.add_host(name)
    cloud.register_image(DiskImage("img", size=1 * GiB))
    tpl = VmTemplate(name="t", vcpus=1, memory=memory, image="img",
                     dirty_rate=dirty_rate)
    vm = cloud.instantiate(tpl)
    cluster.run()
    assert vm.state == OneState.RUNNING
    return cluster, cloud, vm


def other_host(cluster, cloud, vm):
    for rec in cloud.host_pool:
        if rec.host.name != vm.host_name:
            return rec.host.name
    raise AssertionError("no other host")


class TestPrecopy:
    def test_idle_vm_two_rounds(self):
        cluster, cloud, vm = cloud_with_running_vm(dirty_rate=0.0)
        dst = other_host(cluster, cloud, vm)
        p = cluster.engine.process(cloud.live_migrate(vm, dst, "precopy"))
        result = cluster.run(p)
        assert result.kind == "precopy"
        assert result.converged
        assert vm.state == OneState.RUNNING
        assert vm.host_name == dst
        # idle guest: round 1 moves all RAM, nothing dirtied, tiny stop-copy
        assert result.rounds == 1
        assert result.downtime < 0.5

    def test_downtime_much_smaller_than_total(self):
        cluster, cloud, vm = cloud_with_running_vm(dirty_rate=20 * MiB)
        dst = other_host(cluster, cloud, vm)
        p = cluster.engine.process(cloud.live_migrate(vm, dst, "precopy"))
        result = cluster.run(p)
        assert result.downtime < result.total_time / 5

    def test_dirtier_guest_more_rounds_and_bytes(self):
        def migrate(rate):
            cluster, cloud, vm = cloud_with_running_vm(dirty_rate=rate)
            dst = other_host(cluster, cloud, vm)
            p = cluster.engine.process(cloud.live_migrate(vm, dst, "precopy"))
            return cluster.run(p)

        calm = migrate(5 * MiB)
        busy = migrate(60 * MiB)
        assert busy.rounds >= calm.rounds
        assert busy.bytes_transferred > calm.bytes_transferred

    def test_non_convergent_guest_hits_round_cap_or_stops(self):
        # dirty faster than the ~112 MB/s effective link
        cluster, cloud, vm = cloud_with_running_vm(dirty_rate=400 * MiB)
        dst = other_host(cluster, cloud, vm)
        p = cluster.engine.process(cloud.live_migrate(vm, dst, "precopy"))
        result = cluster.run(p)
        # still completes (stop-and-copy forces it) but reports non-convergence
        assert vm.host_name == dst
        assert not result.converged

    def test_memory_accounting_moves(self):
        cluster, cloud, vm = cloud_with_running_vm()
        src = vm.host_name
        dst = other_host(cluster, cloud, vm)
        p = cluster.engine.process(cloud.live_migrate(vm, dst, "precopy"))
        cluster.run(p)
        assert cluster.host(src).memory_used == 0
        assert cluster.host(dst).memory_used == vm.domain.memory

    def test_placement_history_records_migration(self):
        cluster, cloud, vm = cloud_with_running_vm()
        dst = other_host(cluster, cloud, vm)
        p = cluster.engine.process(cloud.live_migrate(vm, dst, "precopy"))
        cluster.run(p)
        assert vm.placements[-1].reason == "migrate"
        assert vm.placements[-1].host == dst
        assert vm.placements[-2].end is not None

    def test_log_records_figures_8_to_10_events(self):
        """The web UI shows: submitted -> migrating -> successful."""
        cluster, cloud, vm = cloud_with_running_vm()
        dst = other_host(cluster, cloud, vm)
        p = cluster.engine.process(cloud.live_migrate(vm, dst, "precopy"))
        cluster.run(p)
        kinds = [r.kind for r in cloud.log.records(source="one.migration")]
        assert kinds[0] == "migrate_start"
        assert kinds[-1] == "migrate_done"

    def test_migrate_requires_running(self):
        cluster, cloud, vm = cloud_with_running_vm()
        cluster.engine.process(cloud.shutdown_vm(vm))
        cluster.run()
        with pytest.raises(LifecycleError):
            cloud.live_migrate(vm, "node2")

    def test_migrate_to_same_host_rejected(self):
        cluster, cloud, vm = cloud_with_running_vm()
        hv = cloud.host_record(vm.host_name).hypervisor
        with pytest.raises(MigrationError):
            next(precopy_migrate(cluster, vm.domain, hv, hv))

    def test_migrate_to_full_host_rejected(self):
        cluster, cloud, vm = cloud_with_running_vm()
        dst = other_host(cluster, cloud, vm)
        dst_host = cluster.host(dst)
        dst_host.allocate_memory(dst_host.memory_free)  # fill it
        hv_src = cloud.host_record(vm.host_name).hypervisor
        hv_dst = cloud.host_record(dst).hypervisor
        with pytest.raises(MigrationError):
            next(precopy_migrate(cluster, vm.domain, hv_src, hv_dst))


class TestPostcopy:
    def test_postcopy_downtime_tiny_and_constant(self):
        cluster, cloud, vm = cloud_with_running_vm(dirty_rate=60 * MiB)
        dst = other_host(cluster, cloud, vm)
        p = cluster.engine.process(cloud.live_migrate(vm, dst, "postcopy"))
        result = cluster.run(p)
        assert result.kind == "postcopy"
        assert result.downtime < 0.5
        assert result.degradation_time > 0
        assert vm.host_name == dst

    def test_postcopy_beats_precopy_downtime_for_dirty_guest(self):
        def run(kind):
            cluster, cloud, vm = cloud_with_running_vm(dirty_rate=100 * MiB)
            dst = other_host(cluster, cloud, vm)
            p = cluster.engine.process(cloud.live_migrate(vm, dst, kind))
            return cluster.run(p)

        pre = run("precopy")
        post = run("postcopy")
        assert post.downtime < pre.downtime

    def test_postcopy_total_bytes_is_single_pass(self):
        cluster, cloud, vm = cloud_with_running_vm(dirty_rate=100 * MiB)
        dst = other_host(cluster, cloud, vm)
        p = cluster.engine.process(cloud.live_migrate(vm, dst, "postcopy"))
        result = cluster.run(p)
        inflate = 1.0 / cluster.cal.migration.link_efficiency
        assert result.bytes_transferred < (vm.domain.memory + 16 * MiB) * inflate


class TestMigrationKnobs:
    def test_unknown_kind_rejected(self):
        cluster, cloud, vm = cloud_with_running_vm()
        with pytest.raises(Exception):
            cloud.live_migrate(vm, other_host(cluster, cloud, vm), kind="warp")

    def test_round_cap_bounds_rounds(self):
        cal = Calibration(migration=MigrationModel(max_precopy_rounds=3))
        cluster = Cluster(3, cal=cal)
        cloud = OpenNebula(cluster)
        for name in cluster.host_names[1:]:
            cloud.add_host(name)
        cloud.register_image(DiskImage("img", size=1 * GiB))
        tpl = VmTemplate(name="t", vcpus=1, memory=1 * GiB, image="img",
                         dirty_rate=400 * MiB)
        vm = cloud.instantiate(tpl)
        cluster.run()
        dst = [n for n in cluster.host_names[1:] if n != vm.host_name][0]
        p = cluster.engine.process(cloud.live_migrate(vm, dst, "precopy"))
        result = cluster.run(p)
        assert result.rounds <= 3
