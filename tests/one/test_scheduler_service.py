import pytest

from repro.common.errors import ConfigError, PlacementError
from repro.common.units import GiB, MiB
from repro.hardware import Cluster
from repro.one import (
    CapacityManager,
    MonitoringService,
    OneState,
    OpenNebula,
    Role,
    ServiceManager,
    ServiceTemplate,
    VmTemplate,
    free_memory_at_least,
    host_name_in,
    rank_free_memory,
)
from repro.virt import DiskImage


def make_cloud(n_hosts=4, **kw):
    cluster = Cluster(n_hosts)
    cloud = OpenNebula(cluster, **kw)
    for name in cluster.host_names[1:]:
        cloud.add_host(name)
    cloud.register_image(DiskImage("img", size=1 * GiB))
    return cluster, cloud


def tpl(**kw):
    d = dict(name="t", vcpus=1, memory=256 * MiB, image="img")
    d.update(kw)
    return VmTemplate(**d)


class TestCapacityManager:
    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            CapacityManager("roulette")

    def test_requirement_filters_hosts(self):
        cluster, cloud = make_cloud()
        t = tpl(requirements=(host_name_in("node3"),))
        vm = cloud.instantiate(t)
        cluster.run()
        assert vm.host_name == "node3"

    def test_unsatisfiable_requirement(self):
        cluster, cloud = make_cloud()
        t = tpl(requirements=(host_name_in("ghost"),))
        vm = cloud.instantiate(t)
        cluster.run(until=20)
        assert vm.state is OneState.PENDING

    def test_free_memory_requirement(self):
        cluster, cloud = make_cloud()
        # require 100 GiB headroom: impossible on 8 GiB hosts
        t = tpl(requirements=(free_memory_at_least(100 * GiB),))
        vm = cloud.instantiate(t)
        cluster.run(until=20)
        assert vm.state is OneState.PENDING

    def test_template_rank_overrides_policy(self):
        cluster, cloud = make_cloud(placement_policy="packing")
        # pre-load node1 so it has the least free memory
        cluster.host("node1").allocate_memory(4 * GiB)
        t = tpl(rank=rank_free_memory)
        vm = cloud.instantiate(t)
        cluster.run()
        assert vm.host_name in ("node2", "node3")

    def test_dead_host_skipped(self):
        cluster, cloud = make_cloud()
        for name in ("node1", "node2"):
            cluster.host(name).alive = False
        vm = cloud.instantiate(tpl())
        cluster.run()
        assert vm.host_name == "node3"

    def test_no_host_raises_placement_error_directly(self):
        cluster, cloud = make_cloud()
        cm = CapacityManager()
        vm = cloud.instantiate(tpl(memory=10**15))
        with pytest.raises(PlacementError):
            cm.select_host(vm, cloud.host_pool)


class TestPlacementHeadroom:
    def test_marginal_vm_fits_without_headroom(self):
        cluster, cloud = make_cloud()
        vm = cloud.instantiate(tpl(memory=7 * GiB))
        cluster.run()
        assert vm.state is OneState.RUNNING

    def test_headroom_rejects_the_marginal_vm(self):
        # 25% headroom on 8 GiB hosts keeps 2 GiB free: the same 7 GiB VM
        # that fits above is refused and stays PENDING
        cluster, cloud = make_cloud(placement_headroom=0.25)
        vm = cloud.instantiate(tpl(memory=7 * GiB))
        cluster.run(until=20)
        assert vm.state is OneState.PENDING

    def test_pool_fills_only_to_the_headroom_line(self):
        # 50% headroom -> 4 GiB usable per 8 GiB host; 2 GiB VMs pack two
        # per host across 3 compute hosts, so the seventh never places
        cluster, cloud = make_cloud(placement_headroom=0.5)
        vms = [cloud.instantiate(tpl(name=f"vm{i}", memory=2 * GiB))
               for i in range(7)]
        cluster.run(until=120)
        states = [vm.state for vm in vms]
        assert states.count(OneState.RUNNING) == 6
        assert states.count(OneState.PENDING) == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            CapacityManager(headroom=1.0)
        with pytest.raises(ConfigError):
            CapacityManager(headroom=-0.1)


class TestServiceManager:
    def web_db_template(self):
        db = Role("db", tpl(name="db", memory=512 * MiB))
        web = Role("web", tpl(name="web"), cardinality=2, depends_on=("db",))
        return ServiceTemplate("shop", roles=[web, db])

    def test_boot_order_respects_dependencies(self):
        st = self.web_db_template()
        order = [r.name for r in st.boot_order()]
        assert order.index("db") < order.index("web")

    def test_cycle_detected(self):
        a = Role("a", tpl(), depends_on=("b",))
        b = Role("b", tpl(), depends_on=("a",))
        with pytest.raises(ConfigError):
            ServiceTemplate("bad", roles=[a, b]).boot_order()

    def test_deploy_brings_up_all_roles(self):
        cluster, cloud = make_cloud()
        mgr = ServiceManager(cloud)
        p = cluster.engine.process(mgr.deploy(self.web_db_template()))
        service = cluster.run(p)
        assert service.healthy
        assert len(service.vms_by_role["web"]) == 2
        assert len(service.vms_by_role["db"]) == 1

    def test_db_running_before_web_boots(self):
        cluster, cloud = make_cloud()
        mgr = ServiceManager(cloud)
        p = cluster.engine.process(mgr.deploy(self.web_db_template()))
        cluster.run(p)
        db_vm = mgr.services["shop"].vms_by_role["db"][0]
        web_vm = mgr.services["shop"].vms_by_role["web"][0]
        db_running = db_vm.lifecycle.time_entered(OneState.RUNNING)
        web_prolog = web_vm.lifecycle.time_entered(OneState.PROLOG)
        assert db_running <= web_prolog

    def test_context_directory_delivered(self):
        cluster, cloud = make_cloud()
        mgr = ServiceManager(cloud)
        p = cluster.engine.process(mgr.deploy(self.web_db_template()))
        service = cluster.run(p)
        web_vm = service.vms_by_role["web"][0]
        assert web_vm.context["service"] == "shop"
        assert web_vm.context["roles"]["db"] == service.role_ips("db")

    def test_teardown_shuts_all_down(self):
        cluster, cloud = make_cloud()
        mgr = ServiceManager(cloud)
        p = cluster.engine.process(mgr.deploy(self.web_db_template()))
        service = cluster.run(p)
        p2 = cluster.engine.process(mgr.teardown("shop"))
        cluster.run(p2)
        assert all(vm.state is OneState.DONE for vm in service.vms)
        assert "shop" not in mgr.services

    def test_double_deploy_rejected(self):
        cluster, cloud = make_cloud()
        mgr = ServiceManager(cloud)
        p = cluster.engine.process(mgr.deploy(self.web_db_template()))
        cluster.run(p)
        with pytest.raises(ConfigError):
            mgr.deploy(self.web_db_template())

    def test_teardown_unknown_service(self):
        _, cloud = make_cloud()
        mgr = ServiceManager(cloud)
        with pytest.raises(ConfigError):
            mgr.teardown("nope")

    def test_bad_cardinality(self):
        with pytest.raises(ConfigError):
            Role("r", tpl(), cardinality=0)


class TestMonitoring:
    def test_poll_populates_history(self):
        cluster, cloud = make_cloud()
        mon = MonitoringService(cloud, period=10)
        cloud.instantiate(tpl())
        cluster.run()
        p = cluster.engine.process(mon.run(sweeps=3))
        cluster.run(p)
        for rec in cloud.host_pool:
            assert len(mon.history[rec.host.name]) == 3

    def test_snapshot_lists_all_hosts(self):
        cluster, cloud = make_cloud()
        mon = MonitoringService(cloud)
        vm = cloud.instantiate(tpl())
        cluster.run()
        p = cluster.engine.process(mon.poll_once())
        cluster.run(p)
        snap = mon.snapshot()
        for name in cluster.host_names[1:]:
            assert name in snap
        assert "VMS" in snap

    def test_vm_table_shows_state_and_ip(self):
        cluster, cloud = make_cloud()
        vm = cloud.instantiate(tpl())
        cluster.run()
        mon = MonitoringService(cloud)
        table = mon.vm_table()
        assert "RUNNING" in table
        assert vm.context["ip"] in table

    def test_latest_none_before_poll(self):
        _, cloud = make_cloud()
        mon = MonitoringService(cloud)
        assert mon.latest("node1") is None


class TestIntervalUtilisation:
    def test_interval_util_reflects_recent_load(self):
        from repro.common.units import GHz

        cluster, cloud = make_cloud()
        mon = MonitoringService(cloud, period=10)
        host = cluster.host("node1")

        def core_burner():
            # 8 x 1 s chunks: work *completes* inside the sweep window
            # (the busy ledger is credited at chunk completion)
            for _ in range(8):
                yield cluster.engine.process(host.compute(host.cpu_hz))

        def burn():
            yield cluster.engine.timeout(0.0)
            for _ in range(host.cores):
                cluster.engine.process(core_burner())

        def flow():
            yield cluster.engine.process(mon.poll_once())
            yield cluster.engine.process(burn())
            yield cluster.engine.timeout(10.0)
            yield cluster.engine.process(mon.poll_once())

        cluster.run(cluster.engine.process(flow()))
        assert mon.interval_util["node1"] > 0.7
        assert mon.interval_util.get("node2", 0.0) < 0.1

    def test_no_interval_before_second_sweep(self):
        cluster, cloud = make_cloud()
        mon = MonitoringService(cloud)
        cluster.run(cluster.engine.process(mon.poll_once()))
        assert mon.interval_util == {}
