import pytest

from repro.common.errors import AuthError, ConfigError
from repro.common.units import GiB, MiB
from repro.hardware import Cluster
from repro.one import (
    AclRule,
    AclService,
    OneState,
    OpenNebula,
    UserPool,
    VmTemplate,
)
from repro.virt import DiskImage, KvmVirtio, VirtualMachine, WorkKind


def make_cloud(n_hosts=4, **kw):
    cluster = Cluster(n_hosts)
    cloud = OpenNebula(cluster, **kw)
    for name in cluster.host_names[1:]:
        cloud.add_host(name)
    cloud.register_image(DiskImage("img", size=1 * GiB))
    return cluster, cloud


def tpl(**kw):
    d = dict(name="t", vcpus=1, memory=512 * MiB, image="img")
    d.update(kw)
    return VmTemplate(**d)


class TestUserPool:
    def test_oneadmin_exists(self):
        pool = UserPool()
        assert pool.get("oneadmin").group == "oneadmin"

    def test_create_and_duplicate(self):
        pool = UserPool()
        pool.create("kuan")
        with pytest.raises(ConfigError):
            pool.create("kuan")

    def test_unknown_user(self):
        with pytest.raises(AuthError):
            UserPool().get("ghost")

    def test_negative_quota_rejected(self):
        pool = UserPool()
        with pytest.raises(ConfigError):
            pool.create("x", quota_vms=-1)


class TestAcl:
    def test_users_manage_own_only(self):
        pool = UserPool()
        pool.create("alice")
        pool.create("bob")
        acl = AclService(pool)
        assert acl.allowed("alice", "manage", "alice")
        assert not acl.allowed("alice", "manage", "bob")
        assert acl.allowed("oneadmin", "manage", "bob")

    def test_admin_action_restricted(self):
        pool = UserPool()
        pool.create("alice")
        acl = AclService(pool)
        assert not acl.allowed("alice", "admin", "alice")
        assert acl.allowed("oneadmin", "admin", "alice")

    def test_custom_rule(self):
        pool = UserPool()
        pool.create("op", group="operators")
        acl = AclService(pool)
        assert not acl.allowed("op", "admin", "someone")
        acl.add_rule(AclRule("@operators", "admin", "*"))
        assert acl.allowed("op", "admin", "someone")

    def test_require_raises(self):
        pool = UserPool()
        pool.create("alice")
        pool.create("bob")
        acl = AclService(pool)
        with pytest.raises(AuthError):
            acl.require("alice", "manage", "bob")

    def test_bad_rule_validation(self):
        with pytest.raises(ConfigError):
            AclRule("x", "fly")
        with pytest.raises(ConfigError):
            AclRule("x", "use", scope="everywhere")


class TestQuotas:
    def test_vm_quota_enforced(self):
        cluster, cloud = make_cloud()
        cloud.users.create("kuan", quota_vms=2)
        cloud.instantiate(tpl(), owner="kuan")
        cloud.instantiate(tpl(), owner="kuan")
        with pytest.raises(AuthError, match="VM quota"):
            cloud.instantiate(tpl(), owner="kuan")

    def test_memory_quota_enforced(self):
        cluster, cloud = make_cloud()
        cloud.users.create("kuan", quota_memory=1 * GiB)
        cloud.instantiate(tpl(memory=768 * MiB), owner="kuan")
        with pytest.raises(AuthError, match="memory quota"):
            cloud.instantiate(tpl(memory=512 * MiB), owner="kuan")

    def test_quota_frees_after_shutdown(self):
        cluster, cloud = make_cloud()
        cloud.users.create("kuan", quota_vms=1)
        vm = cloud.instantiate(tpl(), owner="kuan")
        cluster.run()
        cluster.run(cluster.engine.process(cloud.shutdown_vm(vm)))
        cloud.instantiate(tpl(), owner="kuan")  # fits again

    def test_unknown_owner_rejected(self):
        _, cloud = make_cloud()
        with pytest.raises(AuthError):
            cloud.instantiate(tpl(), owner="ghost")

    def test_oneadmin_unlimited(self):
        cluster, cloud = make_cloud()
        for _ in range(5):
            cloud.instantiate(tpl())
        cluster.run()

    def test_manage_check_on_shutdown(self):
        cluster, cloud = make_cloud()
        cloud.users.create("alice")
        cloud.users.create("bob")
        vm = cloud.instantiate(tpl(), owner="alice")
        cluster.run()
        with pytest.raises(AuthError):
            cloud.shutdown_vm(vm, as_user="bob")
        cluster.run(cluster.engine.process(cloud.shutdown_vm(vm, as_user="alice")))
        assert vm.state is OneState.DONE


class TestHostFailure:
    def test_vms_resubmitted_and_redeployed(self):
        cluster, cloud = make_cloud(5)
        vms = [cloud.instantiate(tpl()) for _ in range(3)]
        cluster.run()
        victim_host = vms[0].host_name
        affected = cloud.fail_host(victim_host)
        assert vms[0] in affected
        cluster.run()
        # every affected VM is RUNNING again, elsewhere
        for vm in affected:
            assert vm.state is OneState.RUNNING
            assert vm.host_name != victim_host
        # the crash is visible in the history
        states = [s for _, s in affected[0].lifecycle.history]
        assert OneState.FAILED in states

    def test_memory_ledger_consistent_after_failure(self):
        cluster, cloud = make_cloud(5)
        vm = cloud.instantiate(tpl())
        cluster.run()
        rec = cloud.host_record(vm.host_name)
        cloud.fail_host(vm.host_name)
        assert rec.host.memory_used == 0

    def test_no_resubmit_leaves_failed(self):
        cluster, cloud = make_cloud(5)
        vm = cloud.instantiate(tpl())
        cluster.run()
        cloud.fail_host(vm.host_name, resubmit=False)
        cluster.run()
        assert vm.state is OneState.FAILED

    def test_dead_host_not_chosen_again(self):
        cluster, cloud = make_cloud(4)
        vm = cloud.instantiate(tpl())
        cluster.run()
        dead = vm.host_name
        cloud.fail_host(dead)
        cluster.run()
        for v in cloud.vm_pool.values():
            assert v.host_name != dead


class TestVirtioMode:
    def test_virtio_io_between_para_and_full(self):
        from repro.common.units import GHz
        from repro.virt import Kvm, XenPv

        def io_time(hv_cls):
            cluster = Cluster(1)
            hv = hv_cls(cluster.hosts[0])
            vm = VirtualMachine("g", vcpus=1, memory=256 * MiB,
                                image=DiskImage("i", size=1 * GiB))
            hv.define(vm)
            hv.start(vm)
            p = cluster.engine.process(vm.run_work(5 * GHz, WorkKind.IO))
            cluster.run(p)
            return cluster.now

        para, virtio, full = io_time(XenPv), io_time(KvmVirtio), io_time(Kvm)
        assert para <= virtio < full

    def test_virtio_cpu_matches_kvm(self):
        from repro.common.units import GHz
        from repro.virt import Kvm

        def cpu_time(hv_cls):
            cluster = Cluster(1)
            hv = hv_cls(cluster.hosts[0])
            vm = VirtualMachine("g", vcpus=1, memory=256 * MiB,
                                image=DiskImage("i", size=1 * GiB))
            hv.define(vm)
            hv.start(vm)
            p = cluster.engine.process(vm.run_work(5 * GHz, WorkKind.CPU))
            cluster.run(p)
            return cluster.now

        assert cpu_time(KvmVirtio) == cpu_time(Kvm)

    def test_cloud_can_enrol_virtio_hosts(self):
        cluster = Cluster(3)
        cloud = OpenNebula(cluster, hypervisor="kvm-virtio")
        rec = cloud.add_host("node1")
        assert rec.hypervisor.mode == "virtio"
