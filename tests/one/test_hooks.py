import pytest

from repro.common.errors import ConfigError
from repro.common.units import GiB, MiB
from repro.hardware import Cluster
from repro.one import HookManager, OneState, OpenNebula, VmTemplate
from repro.virt import DiskImage


def make_cloud(n_hosts=4):
    cluster = Cluster(n_hosts)
    cloud = OpenNebula(cluster)
    for name in cluster.host_names[1:]:
        cloud.add_host(name)
    cloud.register_image(DiskImage("img", size=1 * GiB))
    hooks = HookManager()
    hooks.install(cloud)
    return cluster, cloud, hooks


def tpl():
    return VmTemplate(name="t", vcpus=1, memory=256 * MiB, image="img")


class TestHookManager:
    def test_running_hook_fires_once_per_boot(self):
        cluster, cloud, hooks = make_cloud()
        fired = []
        hooks.register("on-running", OneState.RUNNING,
                       lambda vm, old, new: fired.append(vm.name))
        vm = cloud.instantiate(tpl())
        cluster.run()
        assert fired == [vm.name]
        assert hooks.records_for("on-running")[0].state == "running"

    def test_wildcard_hook_sees_every_transition(self):
        cluster, cloud, hooks = make_cloud()
        seen = []
        hooks.register("audit", "*", lambda vm, old, new: seen.append(new))
        vm = cloud.instantiate(tpl())
        cluster.run()
        cluster.run(cluster.engine.process(cloud.shutdown_vm(vm)))
        assert seen == [
            OneState.PROLOG, OneState.BOOT, OneState.RUNNING,
            OneState.SHUTDOWN, OneState.EPILOG, OneState.DONE,
        ]

    def test_string_state_registration(self):
        cluster, cloud, hooks = make_cloud()
        fired = []
        hooks.register("x", "running", lambda vm, o, n: fired.append(1))
        cloud.instantiate(tpl())
        cluster.run()
        assert fired == [1]

    def test_unknown_state_rejected(self):
        _, _, hooks = make_cloud()
        with pytest.raises(ConfigError):
            hooks.register("bad", "warping", lambda *a: None)

    def test_duplicate_name_rejected(self):
        _, _, hooks = make_cloud()
        hooks.register("h", "*", lambda *a: None)
        with pytest.raises(ConfigError):
            hooks.register("h", "*", lambda *a: None)

    def test_unregister(self):
        cluster, cloud, hooks = make_cloud()
        fired = []
        hooks.register("h", OneState.RUNNING, lambda *a: fired.append(1))
        hooks.unregister("h")
        cloud.instantiate(tpl())
        cluster.run()
        assert fired == []
        with pytest.raises(ConfigError):
            hooks.unregister("h")

    def test_failure_alert_hook(self):
        """The paper's [1]: proactive fault tolerance via a FAILED hook."""
        cluster, cloud, hooks = make_cloud(5)
        alerts = []
        hooks.register("pager", OneState.FAILED,
                       lambda vm, old, new: alerts.append((vm.name, old)))
        vm = cloud.instantiate(tpl())
        cluster.run()
        cloud.fail_host(vm.host_name)
        cluster.run()
        assert alerts == [(vm.name, OneState.RUNNING)]
        assert vm.state is OneState.RUNNING  # recovered elsewhere

    def test_hook_run_counter(self):
        cluster, cloud, hooks = make_cloud()
        h = hooks.register("count", "*", lambda *a: None)
        cloud.instantiate(tpl())
        cloud.instantiate(tpl())
        cluster.run()
        assert h.runs == 6  # 2 VMs x (prolog, boot, running)

    def test_double_install_rejected(self):
        cluster, cloud, hooks = make_cloud()
        with pytest.raises(ConfigError):
            hooks.install(cloud)
