import pytest

from repro.common.errors import ConfigError
from repro.common.units import GiB
from repro.hardware import Cluster
from repro.one import EconeApi, OneState, OpenNebula
from repro.virt import DiskImage


def make_api(n_hosts=4):
    cluster = Cluster(n_hosts)
    cloud = OpenNebula(cluster)
    for name in cluster.host_names[1:]:
        cloud.add_host(name)
    cloud.register_image(DiskImage("ami-video", size=1 * GiB))
    return cluster, cloud, EconeApi(cloud)


class TestRunInstances:
    def test_run_and_describe(self):
        cluster, cloud, api = make_api()
        ids = api.run_instances("ami-video", "m1.small", count=2)
        assert len(ids) == 2
        cluster.run()
        desc = api.describe_instances()
        assert all(d.state == "running" for d in desc)
        assert all(d.private_ip for d in desc)
        assert {d.instance_id for d in desc} == set(ids)

    def test_pending_before_dispatch(self):
        cluster, cloud, api = make_api()
        api.run_instances("ami-video")
        desc = api.describe_instances()
        assert desc[0].state == "pending"

    def test_unknown_type_rejected(self):
        _, _, api = make_api()
        with pytest.raises(ConfigError):
            api.run_instances("ami-video", "t2.nano")

    def test_bad_count(self):
        _, _, api = make_api()
        with pytest.raises(ConfigError):
            api.run_instances("ami-video", count=0)

    def test_instance_type_shapes(self):
        cluster, cloud, api = make_api()
        (iid,) = api.run_instances("ami-video", "m1.large")
        cluster.run()
        vm = api._vm(iid)
        assert vm.template.vcpus == 2


class TestTerminateAndMigrate:
    def test_terminate(self):
        cluster, cloud, api = make_api()
        ids = api.run_instances("ami-video", count=2)
        cluster.run()
        p = cluster.engine.process(api.terminate_instances(*ids))
        cluster.run(p)
        assert all(d.state == "terminated" for d in api.describe_instances())

    def test_migrate_instance_moves_host(self):
        cluster, cloud, api = make_api()
        (iid,) = api.run_instances("ami-video")
        cluster.run()
        src = api.describe_instances()[0].host
        dst = [n for n in cluster.host_names[1:] if n != src][0]
        p = cluster.engine.process(api.migrate_instance(iid, dst))
        result = cluster.run(p)
        assert api.describe_instances()[0].host == dst
        assert result.downtime >= 0

    def test_unknown_instance(self):
        _, _, api = make_api()
        with pytest.raises(ConfigError):
            api.migrate_instance("i-deadbeef", "node1")


class TestKeypairsImagesTags:
    def test_keypair_lifecycle(self):
        _, _, api = make_api()
        material = api.create_key_pair("deploy")
        assert "deploy" in material
        assert api.describe_key_pairs() == ["deploy"]
        with pytest.raises(ConfigError):
            api.create_key_pair("deploy")
        api.delete_key_pair("deploy")
        assert api.describe_key_pairs() == []
        with pytest.raises(ConfigError):
            api.delete_key_pair("deploy")

    def test_launch_with_key_injects_context(self):
        cluster, cloud, api = make_api()
        api.create_key_pair("deploy")
        (iid,) = api.run_instances("ami-video", key_name="deploy")
        cluster.run()
        vm = api._vm(iid)
        assert vm.context["ssh_key"] == "deploy"

    def test_launch_with_unknown_key_rejected(self):
        _, _, api = make_api()
        with pytest.raises(ConfigError):
            api.run_instances("ami-video", key_name="ghost")

    def test_describe_images(self):
        _, _, api = make_api()
        images = api.describe_images()
        assert images[0]["image_id"] == "ami-video"
        assert images[0]["format"] == "qcow2"

    def test_tags(self):
        cluster, cloud, api = make_api()
        (iid,) = api.run_instances("ami-video")
        api.create_tags(iid, role="web", env="prod")
        api.create_tags(iid, env="staging")
        assert api.describe_tags(iid) == {"role": "web", "env": "staging"}
        with pytest.raises(ConfigError):
            api.create_tags("i-ffffffff", x="y")

    def test_reboot(self):
        cluster, cloud, api = make_api()
        (iid,) = api.run_instances("ami-video")
        cluster.run()
        host_before = api.describe_instances()[0].host
        t0 = cluster.now
        cluster.run(cluster.engine.process(api.reboot_instances(iid)))
        assert cluster.now - t0 > 10  # shutdown + boot time passed
        desc = api.describe_instances()[0]
        assert desc.state == "running"
        assert desc.host == host_before

    def test_reboot_pending_rejected(self):
        cluster, cloud, api = make_api()
        (iid,) = api.run_instances("ami-video")
        with pytest.raises(ConfigError):
            cluster.run(cluster.engine.process(api.reboot_instances(iid)))
