import pytest

from repro.common.errors import ConfigError
from repro.common.units import GiB
from repro.hardware import Cluster
from repro.one import (
    DescribeInstancesResult,
    EconeApi,
    ImageDescription,
    KeyPairInfo,
    OneState,
    OpenNebula,
    Reservation,
    TagDescription,
)
from repro.virt import DiskImage


def make_api(n_hosts=4):
    cluster = Cluster(n_hosts)
    cloud = OpenNebula(cluster)
    for name in cluster.host_names[1:]:
        cloud.add_host(name)
    cloud.register_image(DiskImage("ami-video", size=1 * GiB))
    return cluster, cloud, EconeApi(cloud)


class TestRunInstances:
    def test_run_and_describe(self):
        cluster, cloud, api = make_api()
        res = api.run_instances("ami-video", "m1.small", count=2)
        assert isinstance(res, Reservation)
        assert res.reservation_id.startswith("r-")
        assert len(res.instance_ids) == 2
        cluster.run()
        page = api.describe_instances()
        assert isinstance(page, DescribeInstancesResult)
        assert page.next_token is None
        assert all(d.state == "running" for d in page.instances)
        assert all(d.private_ip for d in page.instances)
        assert {d.instance_id for d in page.instances} == set(res.instance_ids)

    def test_pending_before_dispatch(self):
        cluster, cloud, api = make_api()
        api.run_instances("ami-video")
        page = api.describe_instances()
        assert page.instances[0].state == "pending"

    def test_unknown_type_rejected(self):
        _, _, api = make_api()
        with pytest.raises(ConfigError):
            api.run_instances("ami-video", "t2.nano")

    def test_bad_count(self):
        _, _, api = make_api()
        with pytest.raises(ConfigError):
            api.run_instances("ami-video", count=0)

    def test_instance_type_shapes(self):
        cluster, cloud, api = make_api()
        (iid,) = api.run_instances("ami-video", "m1.large").instance_ids
        cluster.run()
        vm = api._vm(iid)
        assert vm.template.vcpus == 2


class TestDescribeFilters:
    def test_filter_by_state(self):
        cluster, cloud, api = make_api()
        res = api.run_instances("ami-video", count=2)
        cluster.run()
        p = cluster.engine.process(
            api.terminate_instances(res.instance_ids[0]))
        cluster.run(p)
        running = api.describe_instances({"state": "running"})
        assert [d.instance_id for d in running.instances] == [
            res.instance_ids[1]]
        gone = api.describe_instances({"state": "terminated"})
        assert [d.instance_id for d in gone.instances] == [
            res.instance_ids[0]]

    def test_filter_by_type_and_image(self):
        cluster, cloud, api = make_api()
        cloud.register_image(DiskImage("ami-other", size=1 * GiB))
        small = api.run_instances("ami-video", "m1.small")
        large = api.run_instances("ami-other", "m1.large")
        cluster.run()
        by_type = api.describe_instances({"instance-type": "m1.large"})
        assert {d.instance_id for d in by_type} == set(large.instance_ids)
        by_image = api.describe_instances({"image-id": "ami-video"})
        assert {d.instance_id for d in by_image} == set(small.instance_ids)

    def test_filter_accepts_alternatives(self):
        cluster, cloud, api = make_api()
        api.run_instances("ami-video", "m1.small")
        api.run_instances("ami-video", "m1.large")
        api.run_instances("ami-video", "c1.medium")
        cluster.run()
        page = api.describe_instances(
            {"instance-type": ["m1.small", "c1.medium"]})
        assert {d.instance_type for d in page} == {"m1.small", "c1.medium"}

    def test_filter_by_tag(self):
        cluster, cloud, api = make_api()
        res = api.run_instances("ami-video", count=3)
        web, db, spare = res.instance_ids
        api.create_tags(web, role="web")
        api.create_tags(db, role="db")
        cluster.run()
        page = api.describe_instances({"tag:role": "web"})
        assert [d.instance_id for d in page] == [web]
        none = api.describe_instances({"tag:role": "cache"})
        assert len(none) == 0

    def test_unknown_filter_rejected(self):
        _, _, api = make_api()
        api.run_instances("ami-video")
        with pytest.raises(ConfigError):
            api.describe_instances({"flavour": "m1.small"})

    def test_pagination_walks_all_rows(self):
        cluster, cloud, api = make_api()
        res = api.run_instances("ami-video", count=5)
        cluster.run()
        seen, token = [], None
        pages = 0
        while True:
            page = api.describe_instances(max_results=2, next_token=token)
            assert len(page) <= 2
            seen.extend(d.instance_id for d in page)
            pages += 1
            if page.next_token is None:
                break
            token = page.next_token
        assert pages == 3
        assert seen == sorted(res.instance_ids)
        assert len(set(seen)) == 5

    def test_pagination_composes_with_filters(self):
        cluster, cloud, api = make_api()
        api.run_instances("ami-video", "m1.small", count=3)
        api.run_instances("ami-video", "c1.medium", count=2)
        cluster.run()
        first = api.describe_instances(
            {"instance-type": "m1.small"}, max_results=2)
        assert len(first) == 2 and first.next_token is not None
        rest = api.describe_instances(
            {"instance-type": "m1.small"}, max_results=2,
            next_token=first.next_token)
        assert len(rest) == 1 and rest.next_token is None
        assert all(d.instance_type == "m1.small"
                   for d in (*first, *rest))

    def test_bad_token_rejected(self):
        _, _, api = make_api()
        api.run_instances("ami-video")
        with pytest.raises(ConfigError):
            api.describe_instances(next_token="not-a-number")
        with pytest.raises(ConfigError):
            api.describe_instances(next_token="99")
        with pytest.raises(ConfigError):
            api.describe_instances(max_results=0)

    def test_rows_are_frozen(self):
        cluster, cloud, api = make_api()
        api.run_instances("ami-video")
        page = api.describe_instances()
        with pytest.raises(AttributeError):
            page.instances[0].state = "hacked"
        with pytest.raises(AttributeError):
            page.next_token = "1"


class TestTerminateAndMigrate:
    def test_terminate(self):
        cluster, cloud, api = make_api()
        res = api.run_instances("ami-video", count=2)
        cluster.run()
        p = cluster.engine.process(
            api.terminate_instances(*res.instance_ids))
        cluster.run(p)
        assert all(d.state == "terminated"
                   for d in api.describe_instances())

    def test_migrate_instance_moves_host(self):
        cluster, cloud, api = make_api()
        (iid,) = api.run_instances("ami-video").instance_ids
        cluster.run()
        src = api.describe_instances().instances[0].host
        dst = [n for n in cluster.host_names[1:] if n != src][0]
        p = cluster.engine.process(api.migrate_instance(iid, dst))
        result = cluster.run(p)
        assert api.describe_instances().instances[0].host == dst
        assert result.downtime >= 0

    def test_unknown_instance(self):
        _, _, api = make_api()
        with pytest.raises(ConfigError):
            api.migrate_instance("i-deadbeef", "node1")


class TestKeypairsImagesTags:
    def test_keypair_lifecycle(self):
        _, _, api = make_api()
        kp = api.create_key_pair("deploy")
        assert isinstance(kp, KeyPairInfo)
        assert "deploy" in kp.material
        assert kp.fingerprint
        assert [k.name for k in api.describe_key_pairs()] == ["deploy"]
        with pytest.raises(ConfigError):
            api.create_key_pair("deploy")
        api.delete_key_pair("deploy")
        assert api.describe_key_pairs() == ()
        with pytest.raises(ConfigError):
            api.delete_key_pair("deploy")

    def test_launch_with_key_injects_context(self):
        cluster, cloud, api = make_api()
        api.create_key_pair("deploy")
        res = api.run_instances("ami-video", key_name="deploy")
        assert res.key_name == "deploy"
        cluster.run()
        vm = api._vm(res.instance_ids[0])
        assert vm.context["ssh_key"] == "deploy"

    def test_launch_with_unknown_key_rejected(self):
        _, _, api = make_api()
        with pytest.raises(ConfigError):
            api.run_instances("ami-video", key_name="ghost")

    def test_describe_images(self):
        _, _, api = make_api()
        images = api.describe_images()
        assert isinstance(images[0], ImageDescription)
        assert images[0].image_id == "ami-video"
        assert images[0].format == "qcow2"

    def test_tags(self):
        cluster, cloud, api = make_api()
        (iid,) = api.run_instances("ami-video").instance_ids
        api.create_tags(iid, role="web", env="prod")
        api.create_tags(iid, env="staging")
        assert api.describe_tags(iid) == (
            TagDescription(iid, "env", "staging"),
            TagDescription(iid, "role", "web"),
        )
        with pytest.raises(ConfigError):
            api.create_tags("i-ffffffff", x="y")

    def test_describe_all_tags(self):
        cluster, cloud, api = make_api()
        res = api.run_instances("ami-video", count=2)
        a, b = res.instance_ids
        api.create_tags(a, role="web")
        api.create_tags(b, role="db")
        rows = api.describe_tags()
        assert {(t.instance_id, t.value) for t in rows} == {
            (a, "web"), (b, "db")}

    def test_reboot(self):
        cluster, cloud, api = make_api()
        (iid,) = api.run_instances("ami-video").instance_ids
        cluster.run()
        host_before = api.describe_instances().instances[0].host
        t0 = cluster.now
        cluster.run(cluster.engine.process(api.reboot_instances(iid)))
        assert cluster.now - t0 > 10  # shutdown + boot time passed
        desc = api.describe_instances().instances[0]
        assert desc.state == "running"
        assert desc.host == host_before

    def test_reboot_pending_rejected(self):
        cluster, cloud, api = make_api()
        (iid,) = api.run_instances("ami-video").instance_ids
        with pytest.raises(ConfigError):
            cluster.run(cluster.engine.process(api.reboot_instances(iid)))
