import pytest

from repro.common.errors import ConfigError, LifecycleError
from repro.common.units import GiB, MiB
from repro.hardware import Cluster
from repro.one import OneState, OpenNebula, VmTemplate
from repro.virt import DiskImage


def make_cloud(n_hosts=4, **kw):
    cluster = Cluster(n_hosts)
    cloud = OpenNebula(cluster, **kw)
    for name in cluster.host_names[1:]:
        cloud.add_host(name)
    cloud.register_image(DiskImage("ubuntu-10.04", size=2 * GiB))
    return cluster, cloud


def small_template(**kw):
    defaults = dict(name="tiny", vcpus=1, memory=512 * MiB, image="ubuntu-10.04")
    defaults.update(kw)
    return VmTemplate(**defaults)


class TestEnrollment:
    def test_front_end_cannot_be_compute(self):
        cluster = Cluster(2)
        cloud = OpenNebula(cluster)
        with pytest.raises(ConfigError):
            cloud.add_host(cluster.host_names[0])

    def test_double_enroll_rejected(self):
        cluster = Cluster(2)
        cloud = OpenNebula(cluster)
        cloud.add_host("node1")
        with pytest.raises(ConfigError):
            cloud.add_host("node1")

    def test_unknown_front_end(self):
        with pytest.raises(ConfigError):
            OpenNebula(Cluster(1), front_end="ghost")

    def test_hypervisor_kind_per_host(self):
        cluster = Cluster(3)
        cloud = OpenNebula(cluster, hypervisor="kvm")
        kvm_rec = cloud.add_host("node1")
        xen_rec = cloud.add_host("node2", hypervisor="xen")
        assert kvm_rec.hypervisor.mode == "full"
        assert xen_rec.hypervisor.mode == "para"


class TestDeployFlow:
    def test_instantiate_goes_pending_then_running(self):
        cluster, cloud = make_cloud()
        vm = cloud.instantiate(small_template())
        assert vm.state == OneState.PENDING
        cluster.run()
        assert vm.state == OneState.RUNNING
        assert vm.host_name in cluster.host_names[1:]
        assert vm.context["ip"].startswith("192.168.122.")

    def test_lifecycle_passes_through_prolog_and_boot(self):
        cluster, cloud = make_cloud()
        vm = cloud.instantiate(small_template())
        cluster.run()
        states = [s for _, s in vm.lifecycle.history]
        assert states == [
            OneState.PENDING, OneState.PROLOG, OneState.BOOT, OneState.RUNNING
        ]

    def test_unknown_image_rejected_at_submit(self):
        _, cloud = make_cloud()
        with pytest.raises(ConfigError):
            cloud.instantiate(small_template(image="missing"))

    def test_dispatch_happens_after_interval(self):
        cluster, cloud = make_cloud()
        vm = cloud.instantiate(small_template())
        cluster.run(until=cloud.sched_interval - 0.1)
        assert vm.state == OneState.PENDING
        cluster.run()
        assert vm.state == OneState.RUNNING

    def test_driver_trace_sequence(self):
        cluster, cloud = make_cloud()
        cloud.instantiate(small_template())
        cluster.run()
        tm_actions = cloud.trace.actions("tm.ssh")
        vmm_actions = cloud.trace.actions("vmm.full")
        assert tm_actions == ["prolog"]
        assert vmm_actions == ["deploy"]

    def test_unplaceable_vm_stays_pending(self):
        cluster, cloud = make_cloud()
        huge = small_template(name="huge", memory=10**15)
        vm = cloud.instantiate(huge)
        cluster.run(until=30)
        assert vm.state == OneState.PENDING
        assert len(cloud.log.records(kind="no_placement")) >= 1

    def test_many_vms_spread_with_striping(self):
        cluster, cloud = make_cloud(4, placement_policy="striping")
        vms = [cloud.instantiate(small_template()) for _ in range(6)]
        cluster.run()
        hosts = [vm.host_name for vm in vms]
        # 6 VMs over 3 compute hosts -> 2 each
        assert sorted(hosts.count(h) for h in set(hosts)) == [2, 2, 2]

    def test_packing_fills_one_host_first(self):
        cluster, cloud = make_cloud(4, placement_policy="packing")
        vms = [cloud.instantiate(small_template()) for _ in range(3)]
        cluster.run()
        hosts = {vm.host_name for vm in vms}
        assert len(hosts) == 1

    def test_ips_are_unique(self):
        cluster, cloud = make_cloud()
        vms = [cloud.instantiate(small_template()) for _ in range(5)]
        cluster.run()
        ips = [vm.context["ip"] for vm in vms]
        assert len(set(ips)) == 5


class TestShutdownFlow:
    def test_shutdown_to_done(self):
        cluster, cloud = make_cloud()
        vm = cloud.instantiate(small_template())
        cluster.run()
        cluster.engine.process(cloud.shutdown_vm(vm))
        cluster.run()
        assert vm.state == OneState.DONE
        assert vm.host_name is None
        # memory returned to the host
        assert all(r.host.memory_used == 0 for r in cloud.host_pool)

    def test_shutdown_requires_running(self):
        _, cloud = make_cloud()
        vm = cloud.instantiate(small_template())
        with pytest.raises(LifecycleError):
            cloud.shutdown_vm(vm)

    def test_vm_lookup(self):
        cluster, cloud = make_cloud()
        vm = cloud.instantiate(small_template())
        assert cloud.vm(vm.id) is vm
        with pytest.raises(ConfigError):
            cloud.vm(999)


class TestSuspendResume:
    def test_suspend_resume_cycle(self):
        cluster, cloud = make_cloud()
        vm = cloud.instantiate(small_template())
        cluster.run()
        cluster.engine.process(cloud.suspend_vm(vm))
        cluster.run()
        assert vm.state == OneState.SUSPENDED
        cluster.engine.process(cloud.resume_vm(vm))
        cluster.run()
        assert vm.state == OneState.RUNNING

    def test_resume_requires_suspended(self):
        cluster, cloud = make_cloud()
        vm = cloud.instantiate(small_template())
        cluster.run()
        with pytest.raises(LifecycleError):
            cloud.resume_vm(vm)
