import pytest

from repro.common.errors import LifecycleError
from repro.one.lifecycle import (
    ACTIVE_STATES,
    TRANSITIONS,
    LifecycleTracker,
    OneState,
)


def tracker():
    t = {"now": 0.0}
    lt = LifecycleTracker(lambda: t["now"])
    return lt, t


class TestDfa:
    def test_initial_state_pending(self):
        lt, _ = tracker()
        assert lt.state == OneState.PENDING

    def test_happy_path_deploy(self):
        lt, _ = tracker()
        for s in [OneState.PROLOG, OneState.BOOT, OneState.RUNNING]:
            lt.to(s)
        assert lt.state == OneState.RUNNING
        assert lt.is_active

    def test_full_life(self):
        lt, _ = tracker()
        path = [
            OneState.PROLOG, OneState.BOOT, OneState.RUNNING,
            OneState.MIGRATE, OneState.RUNNING,
            OneState.SAVE, OneState.SUSPENDED, OneState.RESUME, OneState.RUNNING,
            OneState.SHUTDOWN, OneState.EPILOG, OneState.DONE,
        ]
        for s in path:
            lt.to(s)
        assert lt.is_final
        assert not lt.is_active

    def test_illegal_transition_rejected(self):
        lt, _ = tracker()
        with pytest.raises(LifecycleError):
            lt.to(OneState.RUNNING)  # PENDING -> RUNNING skips stages

    def test_done_is_terminal(self):
        lt, _ = tracker()
        for s in [OneState.PROLOG, OneState.BOOT, OneState.RUNNING,
                  OneState.SHUTDOWN, OneState.EPILOG, OneState.DONE]:
            lt.to(s)
        for s in OneState:
            with pytest.raises(LifecycleError):
                lt.to(s)

    def test_failed_can_resubmit(self):
        lt, _ = tracker()
        lt.to(OneState.PROLOG)
        lt.to(OneState.FAILED)
        lt.to(OneState.PENDING)
        assert lt.state == OneState.PENDING

    def test_history_timestamps(self):
        lt, t = tracker()
        t["now"] = 2.0
        lt.to(OneState.PROLOG)
        t["now"] = 5.0
        lt.to(OneState.BOOT)
        assert lt.time_entered(OneState.PROLOG) == 2.0
        assert lt.time_entered(OneState.BOOT) == 5.0
        assert lt.time_entered(OneState.DONE) is None

    def test_every_transition_target_is_a_known_state(self):
        for src, targets in TRANSITIONS.items():
            assert isinstance(src, OneState)
            for t in targets:
                assert t in TRANSITIONS

    def test_every_active_state_can_eventually_finish(self):
        """From any active state, DONE or FAILED is reachable (no traps)."""
        for start in ACTIVE_STATES:
            seen = set()
            frontier = {start}
            while frontier:
                s = frontier.pop()
                seen.add(s)
                frontier |= TRANSITIONS[s] - seen
            assert OneState.DONE in seen or OneState.FAILED in seen, start
