"""The cProfile wrapper behind the kernel fast-path work."""

import pytest

from repro.obs import HotSpot, ProfileReport, profile_call, profiling
from repro.sim import Engine


def busy(n=200):
    def inner(k):
        return sum(range(k))
    return [inner(i) for i in range(n)]


class TestProfileCall:
    def test_returns_result_and_report(self):
        result, report = profile_call(busy, 100)
        assert len(result) == 100
        assert isinstance(report, ProfileReport)
        assert report.total_calls > 100
        assert report.hotspots

    def test_hotspots_sorted_by_exclusive_time(self):
        _, report = profile_call(busy)
        tottimes = [h.tottime for h in report.hotspots]
        assert tottimes == sorted(tottimes, reverse=True)

    def test_captures_named_functions(self):
        _, report = profile_call(busy)
        names = [h.function for h in report.hotspots]
        assert any("inner" in n for n in names)

    def test_exceptions_propagate_with_profiler_stopped(self):
        with pytest.raises(ValueError, match="boom"):
            profile_call(lambda: (_ for _ in ()).throw(ValueError("boom")).__next__())

    def test_profiles_a_simulation_storm(self):
        eng = Engine()

        def storm():
            for i in range(50):
                eng.call_later(float(i % 3), lambda: None)
            eng.run()

        _, report = profile_call(storm)
        assert any("core.py" in h.function for h in report.hotspots)


class TestProfilingContext:
    def test_report_fills_on_exit(self):
        with profiling() as report:
            busy(50)
        assert report.total_calls > 0
        assert report.hotspots

    def test_body_exception_propagates(self):
        with pytest.raises(RuntimeError):
            with profiling() as report:
                raise RuntimeError("storm died")
        # the report still digested what ran before the raise
        assert isinstance(report, ProfileReport)


class TestReportShapes:
    def test_top_limits_rows(self):
        _, report = profile_call(busy)
        assert len(report.top(3)) == 3

    def test_table_renders(self):
        _, report = profile_call(busy, 20)
        text = report.table(limit=5, title="storm hot spots")
        assert "storm hot spots" in text
        assert "tottime" in text

    def test_as_dict_is_json_ready(self):
        import json

        _, report = profile_call(busy, 20)
        digest = report.as_dict(limit=4)
        assert set(digest) == {"total_calls", "total_time_s", "hotspots"}
        assert len(digest["hotspots"]) == 4
        assert json.dumps(digest)

    def test_hotspot_as_dict(self):
        h = HotSpot("core.py:1:run", 10, 0.5, 1.25)
        assert h.as_dict() == {
            "function": "core.py:1:run", "calls": 10,
            "tottime_s": 0.5, "cumtime_s": 1.25,
        }
