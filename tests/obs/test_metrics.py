import math

import pytest

from repro.common.errors import ConfigError
from repro.obs import (
    DEFAULT_BUCKETS,
    ClusterMetrics,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        c = Counter("requests_total")
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_labelled_family_requires_labels(self):
        c = Counter("requests_total", labelnames=("route",))
        with pytest.raises(ConfigError):
            c.inc()
        c.labels(route="/").inc()
        assert c.labels(route="/").value == 1

    def test_label_mismatch_rejected(self):
        c = Counter("requests_total", labelnames=("route",))
        with pytest.raises(ConfigError):
            c.labels(method="GET")
        with pytest.raises(ConfigError):
            c.labels(route="/", method="GET")

    def test_children_are_stable(self):
        c = Counter("requests_total", labelnames=("route",))
        a = c.labels(route="/a")
        b = c.labels(route="/b")
        a.inc()
        assert c.labels(route="/a") is a
        assert b.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("pending")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4


class TestHistogramPercentiles:
    def test_empty(self):
        h = Histogram("latency")
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0
        assert h.count == 0

    def test_single_sample(self):
        h = Histogram("latency")
        h.observe(0.25)
        for p in (0, 50, 99, 100):
            assert h.percentile(p) == 0.25

    def test_known_distribution(self):
        # 1..100: p50 interpolates between ranks 49 and 50 (0-indexed)
        h = Histogram("latency")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(95) == pytest.approx(95.05)
        assert h.percentile(99) == pytest.approx(99.01)
        assert h.mean == pytest.approx(50.5)

    def test_interpolation_between_ranks(self):
        h = Histogram("latency")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        # rank = 0.5 * 3 = 1.5 -> halfway between 2 and 3
        assert h.percentile(50) == pytest.approx(2.5)
        assert h.percentile(25) == pytest.approx(1.75)

    def test_order_independent(self):
        a, b = Histogram("x"), Histogram("x")
        for v in (5.0, 1.0, 3.0):
            a.observe(v)
        for v in (1.0, 3.0, 5.0):
            b.observe(v)
        assert a.percentile(50) == b.percentile(50) == 3.0

    def test_out_of_range_rejected(self):
        h = Histogram("latency")
        with pytest.raises(ConfigError):
            h.percentile(101)
        with pytest.raises(ConfigError):
            h.percentile(-1)

    def test_bucket_counts_cumulative(self):
        h = Histogram("latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        counts = dict(h.bucket_counts())
        assert counts[0.1] == 1
        assert counts[1.0] == 3
        assert counts[10.0] == 4
        assert counts[math.inf] == 5

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigError):
            Histogram("latency", buckets=(1.0, 0.1))

    def test_default_buckets_end_with_inf(self):
        assert DEFAULT_BUCKETS[-1] == math.inf


class TestRegistry:
    def test_get_or_create_shares_families(self):
        reg = MetricsRegistry()
        a = reg.counter("uploads_total", "help")
        b = reg.counter("uploads_total")
        assert a is b
        a.inc()
        assert reg.get("uploads_total").value == 1

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", labels=("route",))
        with pytest.raises(ConfigError):
            reg.counter("x", labels=("method",))

    def test_bad_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.counter("bad name!")

    def test_contains(self):
        reg = MetricsRegistry()
        reg.gauge("pending")
        assert "pending" in reg
        assert "missing" not in reg
        with pytest.raises(ConfigError):
            reg.get("missing")


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "operations", labels=("op",)) \
            .labels(op="read").inc(3)
        reg.gauge("pending", "queue depth").set(2)
        text = reg.render_prometheus()
        assert "# HELP ops_total operations" in text
        assert "# TYPE ops_total counter" in text
        assert 'ops_total{op="read"} 3' in text
        assert "# TYPE pending gauge" in text
        assert "pending 2" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = reg.render_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 0.55" in text
        assert "lat_seconds_count 2" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x", labels=("path",)).labels(path='a"b\\c\nd').inc()
        text = reg.render_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_deterministic_output(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b_total").inc(2)
            reg.histogram("a_seconds").observe(0.3)
            reg.gauge("c").set(1)
            return reg.render_prometheus()

        assert build() == build()


class TestClusterMetricsReport:
    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("uploads_total", labels=("outcome",)) \
            .labels(outcome="published").inc(3)
        lat = reg.histogram("req_seconds", labels=("route",))
        for v in (0.1, 0.2, 0.3):
            lat.labels(route="/a").observe(v)
        for v in (1.0, 2.0):
            lat.labels(route="/b").observe(v)
        reg.gauge("pending").set(7)
        return reg

    def test_counter_and_gauge_lookup(self):
        obs = ClusterMetrics.from_registry(self.make_registry())
        assert obs.counter("uploads_total", outcome="published") == 3
        assert obs.gauge("pending") == 7
        with pytest.raises(ConfigError):
            obs.counter("uploads_total", outcome="missing")

    def test_histogram_summary(self):
        obs = ClusterMetrics.from_registry(self.make_registry())
        s = obs.histogram("req_seconds", route="/a")
        assert s.count == 3
        assert s.p50 == pytest.approx(0.2)

    def test_percentiles_merge_children(self):
        obs = ClusterMetrics.from_registry(self.make_registry())
        merged = obs.percentiles("req_seconds")
        assert merged.count == 5
        assert merged.p50 == pytest.approx(0.3)
        with pytest.raises(ConfigError):
            obs.percentiles("missing_seconds")

    def test_snapshot_is_frozen_in_time(self):
        reg = self.make_registry()
        obs = ClusterMetrics.from_registry(reg)
        reg.get("uploads_total").labels(outcome="published").inc(10)
        assert obs.counter("uploads_total", outcome="published") == 3

    def test_to_json_shape(self):
        obs = ClusterMetrics.from_registry(self.make_registry())
        blob = obs.to_json()
        assert blob["counters"]['uploads_total{outcome="published"}'] == 3
        assert blob["gauges"]["pending"] == 7
        route_a = blob["histograms"]['req_seconds{route="/a"}']
        assert route_a["count"] == 3
        assert set(route_a) == {
            "name", "labels", "count", "total", "mean", "p50", "p95", "p99"}
