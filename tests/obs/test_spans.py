import json

import pytest

from repro.common.errors import ConfigError
from repro.common.events import EventLog
from repro.common.trace import to_chrome_trace
from repro.obs import Span, Tracer
from repro.sim import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def tracer(engine):
    return Tracer(clock=lambda: engine.now)


class TestManualSpans:
    def test_start_end(self, engine, tracer):
        span = tracer.start_span("op", source="web")
        engine.run(engine.timeout(2.0))
        tracer.end_span(span)
        assert span.finished
        assert span.duration == pytest.approx(2.0)
        assert span.status == "ok"

    def test_parent_defaults_to_none_outside_trace(self, tracer):
        span = tracer.start_span("op")
        assert span.parent_id is None
        assert tracer.roots() == [span]

    def test_double_end_rejected(self, tracer):
        span = tracer.start_span("op")
        tracer.end_span(span)
        with pytest.raises(ConfigError):
            tracer.end_span(span)

    def test_duration_requires_finish(self, tracer):
        span = tracer.start_span("op")
        with pytest.raises(ConfigError):
            span.duration


class TestTraceWrapper:
    def test_needs_a_generator(self, tracer):
        with pytest.raises(ConfigError):
            tracer.trace("op", lambda: None)

    def test_return_value_passes_through(self, engine, tracer):
        def flow():
            yield engine.timeout(1.0)
            return 42

        p = engine.process(tracer.trace("op", flow(), source="test"))
        assert engine.run(p) == 42
        (span,) = tracer.spans(name="op")
        assert span.duration == pytest.approx(1.0)

    def test_nesting_across_process_boundaries(self, engine, tracer):
        def inner():
            yield engine.timeout(1.0)

        def outer():
            # child generator built inside the parent's executing frame
            yield engine.process(tracer.trace("inner", inner()))

        engine.run(engine.process(tracer.trace("outer", outer(), source="a")))
        (o,) = tracer.spans(name="outer")
        (i,) = tracer.spans(name="inner")
        assert i.parent_id == o.span_id
        assert i.source == "a"  # inherited from the parent span
        assert tracer.children(o) == [i]
        assert [s.name for s in tracer.subtree(o)] == ["outer", "inner"]

    def test_concurrent_processes_do_not_misparent(self, engine, tracer):
        """Span context must not leak between interleaved processes."""
        def leaf(delay):
            yield engine.timeout(delay)

        def worker(name, delay):
            yield engine.timeout(delay)  # suspend before building the child
            yield engine.process(tracer.trace(f"{name}.leaf", leaf(delay)))

        a = engine.process(tracer.trace("a", worker("a", 1.0)))
        b = engine.process(tracer.trace("b", worker("b", 1.5)))
        engine.run(engine.all_of([a, b]))
        (sa,) = tracer.spans(name="a")
        (sb,) = tracer.spans(name="b")
        (la,) = tracer.spans(name="a.leaf")
        (lb,) = tracer.spans(name="b.leaf")
        assert la.parent_id == sa.span_id
        assert lb.parent_id == sb.span_id

    def test_exception_sets_status_and_propagates(self, engine, tracer):
        class Boom(RuntimeError):
            pass

        def flow():
            yield engine.timeout(1.0)
            raise Boom("dead")

        p = engine.process(tracer.trace("op", flow()))
        with pytest.raises(Boom):
            engine.run(p)
        (span,) = tracer.spans(name="op")
        assert span.finished
        assert span.status == "Boom"

    def test_thrown_exception_reaches_inner_handler(self, engine, tracer):
        """Failures injected by the kernel must still hit model try/except."""
        def flow():
            evt = engine.event()

            def _failer():
                yield engine.timeout(1.0)
                evt.fail(RuntimeError("injected"))

            engine.process(_failer())
            try:
                yield evt
            except RuntimeError:
                yield engine.timeout(1.0)
                return "recovered"
            return "unreachable"

        p = engine.process(tracer.trace("op", flow()))
        assert engine.run(p) == "recovered"
        (span,) = tracer.spans(name="op")
        assert span.status == "ok"
        assert span.duration == pytest.approx(2.0)

    def test_labels_recorded(self, engine, tracer):
        def flow():
            yield engine.timeout(0.1)

        engine.run(engine.process(
            tracer.trace("op", flow(), source="web", route="/x", n=3)))
        (span,) = tracer.spans(name="op")
        assert span.labels == {"route": "/x", "n": 3}

    def test_queries(self, engine, tracer):
        def flow():
            yield engine.timeout(0.1)

        engine.run(engine.process(tracer.trace("op", flow(), source="web")))
        assert len(tracer) == 1
        assert tracer.spans(source="web")
        assert tracer.spans(source="hdfs") == []
        span = next(iter(tracer))
        assert tracer.get(span.span_id) is span
        with pytest.raises(ConfigError):
            tracer.get(999)
        tracer.clear()
        assert len(tracer) == 0


class TestChromeTraceExport:
    def run_upload_like_tree(self, engine, tracer):
        """outer -> (writer, two parallel converts) like a portal upload."""
        def leaf(delay):
            yield engine.timeout(delay)

        def outer():
            yield engine.process(tracer.trace("write", leaf(1.0),
                                              source="hdfs"))
            procs = [
                engine.process(tracer.trace("convert", leaf(2.0),
                                            source="transcode", seg=i))
                for i in range(2)
            ]
            yield engine.all_of(procs)

        engine.run(engine.process(
            tracer.trace("upload", outer(), source="web")))

    def test_nested_begin_end_events(self, engine, tracer):
        log = EventLog(clock=lambda: engine.now)
        self.run_upload_like_tree(engine, tracer)
        blob = json.loads(to_chrome_trace(log, tracer=tracer))
        events = blob["traceEvents"]
        spans = [e for e in events if e["ph"] in ("B", "E")]
        assert spans, "expected B/E duration events"

        # per tid, B/E must balance like parentheses
        by_tid = {}
        for e in spans:
            by_tid.setdefault(e["tid"], []).append(e)
        for tid, evs in by_tid.items():
            evs.sort(key=lambda e: (e["ts"], 0 if e["ph"] == "E" else 1))
            depth = 0
            for e in evs:
                depth += 1 if e["ph"] == "B" else -1
                assert depth >= 0, f"unbalanced events on tid {tid}"
            assert depth == 0

        # the B events carry the span tree: upload is the convert's ancestor
        begins = {e["args"]["span_id"]: e for e in spans if e["ph"] == "B"}
        upload = next(e for e in begins.values() if e["name"] == "upload")
        write = next(e for e in begins.values() if e["name"] == "write")
        converts = [e for e in begins.values() if e["name"] == "convert"]
        assert len(converts) == 2
        assert write["args"]["parent_id"] == upload["args"]["span_id"]
        assert all(c["args"]["parent_id"] == upload["args"]["span_id"]
                   for c in converts)
        # the upload span's B comes before its children's on the timeline
        assert upload["ts"] <= min(write["ts"], *[c["ts"] for c in converts])

    def test_parallel_siblings_get_separate_lanes(self, engine, tracer):
        def leaf(delay):
            yield engine.timeout(delay)

        def outer():
            # staggered overlap: [0, 2] and [1, 3] can never nest
            first = engine.process(
                tracer.trace("convert", leaf(2.0), source="transcode", seg=0))
            yield engine.timeout(1.0)
            second = engine.process(
                tracer.trace("convert", leaf(2.0), source="transcode", seg=1))
            yield engine.all_of([first, second])

        engine.run(engine.process(
            tracer.trace("upload", outer(), source="web")))
        log = EventLog(clock=lambda: engine.now)
        blob = json.loads(to_chrome_trace(log, tracer=tracer))
        begins = [e for e in blob["traceEvents"] if e["ph"] == "B"]
        conv_tids = {e["tid"] for e in begins if e["name"] == "convert"}
        assert len(conv_tids) == 2

    def test_unfinished_spans_are_skipped(self, engine, tracer):
        tracer.start_span("open", source="web")
        log = EventLog(clock=lambda: engine.now)
        blob = json.loads(to_chrome_trace(log, tracer=tracer))
        assert not [e for e in blob["traceEvents"] if e["ph"] in ("B", "E")]

    def test_log_records_still_emitted_as_instants(self, engine, tracer):
        log = EventLog(clock=lambda: engine.now)
        log.emit("web.portal", "hello", "hi there")
        self.run_upload_like_tree(engine, tracer)
        blob = json.loads(to_chrome_trace(log, tracer=tracer))
        instants = [e for e in blob["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        # span lanes are appended after log-source threads
        span_tids = {e["tid"] for e in blob["traceEvents"]
                     if e["ph"] in ("B", "E")}
        assert min(span_tids) > instants[0]["tid"]
