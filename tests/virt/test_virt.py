import pytest

from repro.common.errors import ConfigError, DriverError, LifecycleError
from repro.common.units import GHz, MiB
from repro.hardware import Cluster
from repro.virt import (
    BareMetal,
    DirtyPageModel,
    DiskImage,
    Emulator,
    ImageStore,
    Kvm,
    VirtualMachine,
    VmState,
    WorkKind,
    XenPv,
    make_hypervisor,
)


IMG = DiskImage("ubuntu-10.04", size=2048 * MiB)


def make_vm(name="vm0", memory=512 * MiB):
    return VirtualMachine(name, vcpus=1, memory=memory, image=IMG)


@pytest.fixture
def cluster():
    return Cluster(2)


class TestDiskImage:
    def test_valid(self):
        img = DiskImage("x", size=100, fmt="raw")
        assert img.fmt == "raw"

    def test_bad_size(self):
        with pytest.raises(ConfigError):
            DiskImage("x", size=0)

    def test_bad_format(self):
        with pytest.raises(ConfigError):
            DiskImage("x", size=1, fmt="vmdk")


class TestImageStore:
    def test_register_and_get(self, cluster):
        store = ImageStore(cluster, "node0")
        store.register(IMG)
        assert store.get("ubuntu-10.04") is IMG
        assert "ubuntu-10.04" in store
        assert store.list_images() == [IMG]

    def test_duplicate_rejected(self, cluster):
        store = ImageStore(cluster, "node0")
        store.register(IMG)
        with pytest.raises(DriverError):
            store.register(IMG)

    def test_missing_image(self, cluster):
        store = ImageStore(cluster, "node0")
        with pytest.raises(DriverError):
            store.get("nope")

    def test_unknown_host(self, cluster):
        with pytest.raises(ConfigError):
            ImageStore(cluster, "ghost")

    def test_clone_costs_transfer_plus_write(self, cluster):
        store = ImageStore(cluster, "node0")
        store.register(IMG)
        p = cluster.engine.process(store.clone_to("ubuntu-10.04", "node1"))
        img = cluster.run(p)
        assert img is IMG
        cal = cluster.cal
        expected = (
            IMG.size / cal.nic_rate
            + cal.net_latency
            + cal.disk_seek_time
            + IMG.size / cal.disk_write_rate
        )
        assert cluster.now == pytest.approx(expected, rel=1e-3)


class TestLifecycle:
    def test_define_start_stop(self, cluster):
        hv = Kvm(cluster.hosts[0])
        vm = make_vm()
        hv.define(vm)
        assert vm.state == VmState.DEFINED
        assert cluster.hosts[0].memory_used == vm.memory
        hv.start(vm)
        assert vm.state == VmState.RUNNING
        hv.shutdown(vm)
        hv.undefine(vm)
        assert cluster.hosts[0].memory_used == 0
        assert vm.hypervisor is None

    def test_double_define_rejected(self, cluster):
        hv = Kvm(cluster.hosts[0])
        vm = make_vm()
        hv.define(vm)
        with pytest.raises(LifecycleError):
            hv.define(vm)

    def test_define_on_two_hosts_rejected(self, cluster):
        hv0, hv1 = Kvm(cluster.hosts[0]), Kvm(cluster.hosts[1])
        vm = make_vm()
        hv0.define(vm)
        with pytest.raises(LifecycleError):
            hv1.define(vm)

    def test_pause_resume(self, cluster):
        hv = Kvm(cluster.hosts[0])
        vm = make_vm()
        hv.define(vm)
        hv.start(vm)
        hv.pause(vm)
        assert vm.state == VmState.PAUSED
        hv.resume(vm)
        assert vm.state == VmState.RUNNING

    def test_undefine_running_rejected(self, cluster):
        hv = Kvm(cluster.hosts[0])
        vm = make_vm()
        hv.define(vm)
        hv.start(vm)
        with pytest.raises(LifecycleError):
            hv.undefine(vm)

    def test_bad_state_transitions(self, cluster):
        hv = Kvm(cluster.hosts[0])
        vm = make_vm()
        hv.define(vm)
        with pytest.raises(LifecycleError):
            hv.pause(vm)  # not running
        with pytest.raises(LifecycleError):
            hv.resume(vm)

    def test_eject_adopt_moves_memory_accounting(self, cluster):
        hv0, hv1 = Kvm(cluster.hosts[0]), Kvm(cluster.hosts[1])
        vm = make_vm()
        hv0.define(vm)
        hv0.start(vm)
        hv0.eject(vm)
        assert cluster.hosts[0].memory_used == 0
        hv1.adopt(vm, VmState.RUNNING)
        assert cluster.hosts[1].memory_used == vm.memory
        assert vm.host_name == "node1"

    def test_memory_capacity_enforced(self, cluster):
        hv = Kvm(cluster.hosts[0])
        big = make_vm("big", memory=cluster.hosts[0].memory + 1)
        with pytest.raises(Exception):
            hv.define(big)

    def test_foreign_vm_operations_rejected(self, cluster):
        hv0, hv1 = Kvm(cluster.hosts[0]), Kvm(cluster.hosts[1])
        vm = make_vm()
        hv0.define(vm)
        with pytest.raises(LifecycleError):
            hv1.start(vm)

    def test_bad_vm_shape(self):
        with pytest.raises(LifecycleError):
            VirtualMachine("bad", vcpus=0, memory=1, image=IMG)


class TestOverheads:
    def run_work(self, hv_cls, kind, cycles=1 * GHz):
        cluster = Cluster(1)
        # Make exits negligible irrelevant by using a big batch.
        host = cluster.hosts[0]
        hv = hv_cls(host)
        vm = make_vm()
        hv.define(vm)
        hv.start(vm)
        p = cluster.engine.process(vm.run_work(cycles, kind))
        cluster.run(p)
        return cluster.now

    def test_ordering_cpu(self):
        bare = self.run_work(BareMetal, WorkKind.CPU)
        para = self.run_work(XenPv, WorkKind.CPU)
        full = self.run_work(Kvm, WorkKind.CPU)
        emul = self.run_work(Emulator, WorkKind.CPU)
        assert bare < para < full < emul

    def test_ordering_io(self):
        bare = self.run_work(BareMetal, WorkKind.IO)
        para = self.run_work(XenPv, WorkKind.IO)
        full = self.run_work(Kvm, WorkKind.IO)
        assert bare < para < full

    def test_io_penalty_exceeds_cpu_penalty_for_full_virt(self):
        cpu_ratio = self.run_work(Kvm, WorkKind.CPU) / self.run_work(BareMetal, WorkKind.CPU)
        io_ratio = self.run_work(Kvm, WorkKind.IO) / self.run_work(BareMetal, WorkKind.IO)
        assert io_ratio > cpu_ratio

    def test_work_requires_running_state(self, cluster):
        hv = Kvm(cluster.hosts[0])
        vm = make_vm()
        hv.define(vm)
        with pytest.raises(LifecycleError):
            vm.run_work(100)

    def test_factory(self, cluster):
        assert isinstance(make_hypervisor("kvm", cluster.hosts[0]), Kvm)
        assert isinstance(make_hypervisor("xen", cluster.hosts[1]), XenPv)
        with pytest.raises(LifecycleError):
            make_hypervisor("vmware", cluster.hosts[0])

    def test_memory_committed(self, cluster):
        hv = Kvm(cluster.hosts[0])
        for i in range(3):
            vm = make_vm(f"vm{i}", memory=100 * MiB)
            hv.define(vm)
        assert hv.memory_committed() == 300 * MiB


class TestDirtyPageModel:
    def test_dirtying_is_rate_bound_for_short_rounds(self):
        m = DirtyPageModel(memory=1024 * MiB, dirty_rate=100 * MiB, wws_fraction=0.25)
        assert m.dirtied_during(1.0) == pytest.approx(100 * MiB)

    def test_dirtying_saturates_near_wws(self):
        m = DirtyPageModel(memory=1024 * MiB, dirty_rate=100 * MiB, wws_fraction=0.1)
        long_round = m.dirtied_during(1000.0)
        assert long_round < 1024 * MiB
        assert long_round <= m.memory

    def test_never_exceeds_memory(self):
        m = DirtyPageModel(memory=64 * MiB, dirty_rate=10**12, wws_fraction=1.0)
        assert m.dirtied_during(100.0) <= 64 * MiB

    def test_zero_time_zero_dirty(self):
        m = DirtyPageModel(memory=64 * MiB, dirty_rate=100)
        assert m.dirtied_during(0.0) == 0.0

    def test_pages_rounds_up(self):
        m = DirtyPageModel(memory=64 * MiB, dirty_rate=0)
        assert m.pages(1) == 1
        assert m.pages(4096) == 1
        assert m.pages(4097) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            DirtyPageModel(memory=0, dirty_rate=1)
        with pytest.raises(ConfigError):
            DirtyPageModel(memory=1, dirty_rate=-1)
        with pytest.raises(ConfigError):
            DirtyPageModel(memory=1, dirty_rate=1, wws_fraction=2.0)
