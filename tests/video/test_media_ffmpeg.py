import pytest
from hypothesis import given, strategies as st

from repro.common.calibration import Calibration
from repro.common.errors import MediaError, TranscodeError
from repro.common.units import Mbps
from repro.hardware import Cluster
from repro.video import (
    R_360P,
    R_720P,
    FFmpeg,
    Resolution,
    VideoFile,
)


def clip(duration=120.0, name="upload.avi", container="avi", vcodec="mpeg4",
         bitrate=4 * Mbps, **kw):
    return VideoFile(
        name=name, container=container, vcodec=vcodec, acodec="mp3",
        duration=duration, resolution=R_720P, fps=25.0, bitrate=bitrate, **kw
    )


class TestVideoFile:
    def test_size_scales_with_duration_and_bitrate(self):
        short = clip(duration=60)
        long = clip(duration=120)
        assert long.size == pytest.approx(2 * short.size, rel=0.01)

    def test_gop_count(self):
        v = clip(duration=10.0)  # gop 2s
        assert v.gop_count == 5

    def test_partial_last_gop(self):
        v = clip(duration=9.5)
        assert v.gop_count == 5

    def test_container_codec_compatibility(self):
        with pytest.raises(MediaError):
            clip(container="webm", vcodec="h264")

    def test_unknown_codec(self):
        with pytest.raises(MediaError):
            clip(vcodec="av1")

    def test_byte_offset_monotone(self):
        v = clip()
        assert v.byte_offset_of(0) == 0
        assert v.byte_offset_of(v.duration) == v.size
        assert v.byte_offset_of(30) < v.byte_offset_of(60)

    def test_byte_offset_out_of_range(self):
        with pytest.raises(MediaError):
            clip().byte_offset_of(1e9)

    def test_bad_resolution(self):
        with pytest.raises(MediaError):
            Resolution(0, 100)

    def test_content_id_defaults_to_name(self):
        v = clip(name="x.avi")
        assert v.content_id == "x.avi"


class TestFFmpegCosts:
    def setup_method(self):
        self.ff = FFmpeg(Calibration())

    def test_probe_fields(self):
        info = self.ff.probe(clip())
        assert info["vcodec"] == "mpeg4"
        assert info["resolution"] == "1280x720"
        assert info["gops"] == 60

    def test_h264_encode_costlier_than_mpeg4(self):
        src = clip()
        h264 = self.ff.transcode_cycles(src, "h264", R_720P)
        mpeg4 = self.ff.transcode_cycles(src, "mpeg4", R_720P)
        assert h264 > mpeg4

    def test_downscale_cheaper(self):
        src = clip()
        big = self.ff.transcode_cycles(src, "h264", R_720P)
        small = self.ff.transcode_cycles(src, "h264", R_360P)
        assert small < big


class TestTranscodeProcess:
    def test_transcode_produces_target_format(self):
        cluster = Cluster(1)
        ff = FFmpeg(cluster.cal)
        src = clip()
        p = cluster.engine.process(
            ff.transcode(cluster.hosts[0], src, vcodec="h264", container="flv"))
        out = cluster.run(p)
        assert out.vcodec == "h264"
        assert out.container == "flv"
        assert out.duration == src.duration
        assert out.content_id == src.content_id
        assert cluster.now > 0

    def test_longer_clip_takes_longer(self):
        def t(duration):
            cluster = Cluster(1)
            ff = FFmpeg(cluster.cal)
            p = cluster.engine.process(
                ff.transcode(cluster.hosts[0], clip(duration=duration),
                             vcodec="h264", container="flv"))
            cluster.run(p)
            return cluster.now

        assert t(240) > t(60)

    def test_incompatible_target_rejected(self):
        cluster = Cluster(1)
        ff = FFmpeg(cluster.cal)
        with pytest.raises(TranscodeError):
            ff.transcode(cluster.hosts[0], clip(), vcodec="h264", container="webm")


class TestSplitConcat:
    def setup_method(self):
        self.ff = FFmpeg(Calibration())

    def test_split_partitions_gops(self):
        src = clip(duration=60)  # 30 gops
        segs = self.ff.split(src, 4)
        assert len(segs) == 4
        assert segs[0].gop_start == 0
        assert segs[-1].gop_end == src.gop_end
        for a, b in zip(segs, segs[1:]):
            assert a.gop_end == b.gop_start

    def test_split_durations_sum(self):
        src = clip(duration=61.0)  # partial last gop
        segs = self.ff.split(src, 5)
        assert sum(s.duration for s in segs) == pytest.approx(src.duration)

    def test_concat_restores_original_geometry(self):
        src = clip(duration=60)
        merged = self.ff.concat(self.ff.split(src, 6))
        assert merged.duration == pytest.approx(src.duration)
        assert merged.gop_start == src.gop_start
        assert merged.gop_end == src.gop_end
        assert merged.content_id == src.content_id

    def test_concat_detects_gap(self):
        src = clip(duration=60)
        segs = self.ff.split(src, 4)
        with pytest.raises(TranscodeError, match="gap"):
            self.ff.concat([segs[0], segs[2], segs[3]])

    def test_concat_detects_duplicate(self):
        src = clip(duration=60)
        segs = self.ff.split(src, 4)
        with pytest.raises(TranscodeError, match="overlap"):
            self.ff.concat(segs + [segs[1]])

    def test_concat_rejects_mixed_content(self):
        a = self.ff.split(clip(name="a.avi"), 2)
        b = self.ff.split(clip(name="b.avi"), 2)
        with pytest.raises(TranscodeError, match="contents"):
            self.ff.concat([a[0], b[1]])

    def test_concat_rejects_mixed_codecs(self):
        src = clip(duration=60)
        segs = self.ff.split(src, 2)
        import dataclasses
        other = dataclasses.replace(segs[1], vcodec="flv1")
        with pytest.raises(TranscodeError, match="disagree"):
            self.ff.concat([segs[0], other])

    def test_concat_handles_out_of_order_input(self):
        src = clip(duration=60)
        segs = self.ff.split(src, 3)
        merged = self.ff.concat([segs[2], segs[0], segs[1]])
        assert merged.duration == pytest.approx(src.duration)

    def test_too_many_segments(self):
        with pytest.raises(TranscodeError):
            self.ff.split(clip(duration=4), 10)  # only 2 gops

    def test_empty_concat(self):
        with pytest.raises(TranscodeError):
            self.ff.concat([])

    @given(st.integers(min_value=1, max_value=30),
           st.floats(min_value=10.0, max_value=600.0))
    def test_property_split_concat_roundtrip(self, n, duration):
        src = clip(duration=duration)
        if n > src.gop_count:
            return
        segs = self.ff.split(src, n)
        merged = self.ff.concat(segs)
        assert merged.gop_count == src.gop_count
        assert merged.duration == pytest.approx(src.duration)
        assert sum(s.duration for s in segs) == pytest.approx(src.duration)
