import pytest

from repro.common.errors import StreamingError
from repro.common.units import Mbps, MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.video import R_720P, ReplicaStreamer, VideoFile


def movie(duration=30.0):
    return VideoFile(
        name="m.flv", container="flv", vcodec="h264", acodec="aac",
        duration=duration, resolution=R_720P, fps=25.0, bitrate=2 * Mbps,
    )


def make_env(replication=3, n_hosts=7):
    cluster = Cluster(n_hosts)
    fs = Hdfs(cluster, replication=replication, block_size=64 * MiB)
    vid = movie()
    cluster.run(cluster.engine.process(
        fs.client("node1").write_synthetic("/pub/m.flv", vid.size)))
    return cluster, fs, vid


class TestReplicaSelection:
    def test_client_local_replica_preferred(self):
        cluster, fs, vid = make_env()
        rs = ReplicaStreamer(fs, "/pub/m.flv")
        holders = rs.replica_holders()
        assert rs.pick_server(holders[0]) == holders[0]

    def test_least_loaded_chosen_for_remote_client(self):
        cluster, fs, vid = make_env()
        rs = ReplicaStreamer(fs, "/pub/m.flv")
        holders = rs.replica_holders()
        outsider = next(h for h in cluster.host_names if h not in holders)
        rs.active_sessions[holders[0]] = 5
        pick = rs.pick_server(outsider)
        assert pick in holders
        assert pick != holders[0]

    def test_sessions_balance_across_replicas(self):
        cluster, fs, vid = make_env()
        rs = ReplicaStreamer(fs, "/pub/m.flv")
        holders = set(rs.replica_holders())
        outsiders = [h for h in cluster.host_names if h not in holders][:2]
        procs = [
            cluster.engine.process(
                rs.open_session(outsiders[i % len(outsiders)], vid,
                                watch_plan=[(0.0, 5.0)]))
            for i in range(6)
        ]
        done = cluster.engine.run(cluster.engine.all_of(procs))
        served_by = [done[p][0] for p in procs]
        # more than one replica did work
        assert len(set(served_by)) >= 2
        assert sum(rs.sessions_served.values()) == 6
        assert all(v == 0 for v in rs.active_sessions.values())

    def test_playback_report_returned(self):
        cluster, fs, vid = make_env()
        rs = ReplicaStreamer(fs, "/pub/m.flv")
        host, report = cluster.run(cluster.engine.process(
            rs.open_session("node1", vid, watch_plan=[(0.0, 10.0)])))
        assert report.watched_seconds == pytest.approx(10.0, abs=0.5)
        assert host in rs.replica_holders()

    def test_dead_replicas_excluded(self):
        cluster, fs, vid = make_env()
        rs = ReplicaStreamer(fs, "/pub/m.flv")
        holders = rs.replica_holders()
        victim = holders[0]
        fs.kill_datanode(victim)
        fs.namenode.dead_datanodes.add(victim)
        assert victim not in rs.replica_holders()
        assert rs.pick_server("node1") != victim

    def test_all_replicas_dead(self):
        cluster, fs, vid = make_env(replication=1)
        rs = ReplicaStreamer(fs, "/pub/m.flv")
        (only,) = rs.replica_holders()
        fs.kill_datanode(only)
        fs.namenode.dead_datanodes.add(only)
        with pytest.raises(StreamingError):
            rs.pick_server("node1")

    def test_missing_file(self):
        cluster, fs, _ = make_env()
        with pytest.raises(Exception):
            ReplicaStreamer(fs, "/nope")
