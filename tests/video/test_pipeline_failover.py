"""Transcode-segment failover: worker crashes mid-conversion (chaos layer)."""

import pytest

from repro.common.errors import TranscodeError
from repro.common.retry import RetryPolicy
from repro.common.units import Mbps
from repro.hardware import Cluster
from repro.video import R_720P, DistributedTranscoder, VideoFile


def clip(duration=600.0, name="upload.avi"):
    return VideoFile(
        name=name, container="avi", vcodec="mpeg4", acodec="mp3",
        duration=duration, resolution=R_720P, fps=25.0, bitrate=4 * Mbps,
    )


def make_transcoder(n_hosts=5, **kw):
    cluster = Cluster(n_hosts)
    tx = DistributedTranscoder(
        cluster, cluster.host_names[1:], ingest_host="node0", **kw)
    return cluster, tx


def crash_later(cluster, host, at):
    def _chaos():
        yield cluster.engine.timeout(at)
        cluster.host(host).fail()
    cluster.engine.process(_chaos())


class TestSegmentFailover:
    def test_worker_crash_midconvert_still_completes(self):
        cluster, tx = make_transcoder()
        src = clip()
        conv = cluster.engine.process(
            tx.convert_distributed(src, vcodec="h264", container="flv"))
        # let split+scatter finish, then kill a worker mid-transcode
        crash_later(cluster, "node2", at=30.0)
        report = cluster.run(conv)
        assert report.output.vcodec == "h264"
        assert report.output.duration == pytest.approx(src.duration)
        assert report.output.content_id == src.content_id
        failovers = cluster.log.records(source="video.pipeline",
                                        kind="segment_failover")
        assert failovers  # the dead worker's segment was retried elsewhere

    def test_output_matches_healthy_run(self):
        src = clip()
        healthy_cluster, healthy_tx = make_transcoder()
        healthy = healthy_cluster.run(healthy_cluster.engine.process(
            healthy_tx.convert_distributed(src, vcodec="h264", container="flv")))
        cluster, tx = make_transcoder()
        conv = cluster.engine.process(
            tx.convert_distributed(src, vcodec="h264", container="flv"))
        crash_later(cluster, "node3", at=30.0)
        survived = cluster.run(conv)
        assert survived.output.vcodec == healthy.output.vcodec
        assert survived.output.duration == pytest.approx(healthy.output.duration)
        assert survived.output.gop_count == healthy.output.gop_count
        # the crashed run paid for the failover
        assert survived.total_time > healthy.total_time

    def test_two_of_four_workers_die(self):
        cluster, tx = make_transcoder()
        src = clip()
        conv = cluster.engine.process(
            tx.convert_distributed(src, vcodec="h264", container="flv"))
        crash_later(cluster, "node2", at=25.0)
        crash_later(cluster, "node4", at=35.0)
        report = cluster.run(conv)
        assert report.output.duration == pytest.approx(src.duration)

    def test_all_workers_dead_raises_transcode_error(self):
        cluster, tx = make_transcoder(4)
        src = clip(duration=300.0)
        conv = cluster.engine.process(
            tx.convert_distributed(src, vcodec="h264", container="flv"))
        for i, host in enumerate(("node1", "node2", "node3")):
            crash_later(cluster, host, at=20.0 + i)
        with pytest.raises(TranscodeError):
            cluster.run(conv)

    def test_retries_exhausted_raises_transcode_error(self):
        # a 1-attempt policy cannot absorb any failure
        cluster, tx = make_transcoder(
            retry=RetryPolicy(max_attempts=1, base_delay=0.1))
        src = clip()
        conv = cluster.engine.process(
            tx.convert_distributed(src, vcodec="h264", container="flv"))
        crash_later(cluster, "node2", at=30.0)
        with pytest.raises(TranscodeError, match="retries exhausted"):
            cluster.run(conv)

    def test_custom_retry_policy_is_used(self):
        cluster, tx = make_transcoder(retry=RetryPolicy(max_attempts=6))
        assert tx.retry.max_attempts == 6
