import pytest

from repro.common.errors import StreamingError
from repro.common.units import Mbps
from repro.hardware import Cluster
from repro.video import (
    R_360P,
    R_480P,
    R_720P,
    StreamingServer,
    VideoFile,
    adaptive_play,
    probe_bandwidth,
    select_rendition,
)


def ladder(duration=60.0):
    def rung(name, res, rate):
        return VideoFile(
            name=f"m-{name}.flv", container="flv", vcodec="h264",
            acodec="aac", duration=duration, resolution=res, fps=25.0,
            bitrate=rate, content_id="m",
        )

    return {
        "720p": rung("720p", R_720P, 4 * Mbps),
        "480p": rung("480p", R_480P, 2 * Mbps),
        "360p": rung("360p", R_360P, 1 * Mbps),
    }


def make_env(client_mbps):
    cluster = Cluster(1)
    cluster.add_host("client", nic_rate=client_mbps * Mbps)
    return cluster, StreamingServer(cluster, "node0")


class TestSelection:
    def test_fast_client_gets_720p(self):
        assert select_rendition(ladder(), 10 * Mbps) == "720p"

    def test_mid_client_gets_480p(self):
        assert select_rendition(ladder(), 3 * Mbps) == "480p"

    def test_slow_client_falls_back_to_lowest(self):
        assert select_rendition(ladder(), 0.2 * Mbps) == "360p"

    def test_safety_factor_matters(self):
        # 4.2 Mb/s media rate at bw 5 Mb/s: fits without safety, not with 0.8
        assert select_rendition(ladder(), 5 * Mbps, safety=1.0) == "720p"
        assert select_rendition(ladder(), 5 * Mbps, safety=0.8) == "480p"

    def test_empty_ladder_rejected(self):
        with pytest.raises(StreamingError):
            select_rendition({}, 1 * Mbps)


class TestProbe:
    def test_probe_close_to_nic_rate(self):
        cluster, server = make_env(8)
        bw = cluster.run(cluster.engine.process(
            probe_bandwidth(server, "client")))
        assert bw == pytest.approx(8 * Mbps, rel=0.1)


class TestAdaptivePlay:
    def run_for(self, client_mbps):
        cluster, server = make_env(client_mbps)
        quality, report = cluster.run(cluster.engine.process(
            adaptive_play(server, "client", ladder(duration=30.0))))
        return quality, report

    def test_fast_client_plays_720p_smoothly(self):
        quality, report = self.run_for(16)
        assert quality == "720p"
        assert report.smooth

    def test_slow_client_downshifts_and_stays_smooth(self):
        quality, report = self.run_for(2)
        assert quality == "360p"
        assert report.smooth

    def test_mid_client(self):
        quality, report = self.run_for(4)
        assert quality == "480p"
        assert report.smooth

    def test_abr_prevents_stalls_vs_fixed_720p(self):
        from repro.video import PlaybackSession

        cluster, server = make_env(2)
        fixed = cluster.run(cluster.engine.process(
            PlaybackSession(server, "client", ladder(30.0)["720p"]).run()))
        _, adaptive = self.run_for(2)
        assert fixed.rebuffer_count > 0
        assert adaptive.rebuffer_count == 0
