import pytest

from repro.common.errors import StreamingError, TranscodeError
from repro.common.units import Mbps
from repro.hardware import Cluster
from repro.video import (
    R_720P,
    DistributedTranscoder,
    PlaybackSession,
    StreamingServer,
    VideoFile,
)


def clip(duration=600.0, name="upload.avi", bitrate=4 * Mbps):
    return VideoFile(
        name=name, container="avi", vcodec="mpeg4", acodec="mp3",
        duration=duration, resolution=R_720P, fps=25.0, bitrate=bitrate,
    )


def make_transcoder(n_hosts=5):
    cluster = Cluster(n_hosts)
    workers = cluster.host_names[1:]
    return cluster, DistributedTranscoder(cluster, workers, ingest_host="node0")


class TestDistributedConversion:
    def test_output_equivalent_to_single_node(self):
        cluster, tx = make_transcoder()
        src = clip()
        single = cluster.run(cluster.engine.process(
            tx.convert_single_node(src, vcodec="h264", container="flv")))
        cluster2, tx2 = make_transcoder()
        dist = cluster2.run(cluster2.engine.process(
            tx2.convert_distributed(src, vcodec="h264", container="flv")))
        assert dist.output.vcodec == single.output.vcodec == "h264"
        assert dist.output.duration == pytest.approx(single.output.duration)
        assert dist.output.gop_count == single.output.gop_count
        assert dist.output.content_id == src.content_id

    def test_c1_distributed_faster_for_long_videos(self):
        """Claim C1: parallel conversion beats a single node."""
        src = clip(duration=1800)  # 30 min upload
        cluster, tx = make_transcoder(5)
        single = cluster.run(cluster.engine.process(
            tx.convert_single_node(src, vcodec="h264", container="flv")))
        cluster2, tx2 = make_transcoder(5)
        dist = cluster2.run(cluster2.engine.process(
            tx2.convert_distributed(src, vcodec="h264", container="flv")))
        assert dist.total_time < single.total_time
        # with 4 workers, expect a healthy speedup (not necessarily 4x)
        assert single.total_time / dist.total_time > 2.0

    def test_speedup_grows_with_workers(self):
        src = clip(duration=1800)

        def t(n_workers):
            cluster = Cluster(n_workers + 1)
            tx = DistributedTranscoder(
                cluster, cluster.host_names[1:], ingest_host="node0")
            report = cluster.run(cluster.engine.process(
                tx.convert_distributed(src, vcodec="h264", container="flv")))
            return report.total_time

        assert t(4) < t(2) < t(1)

    def test_short_clips_get_weaker_speedup(self):
        """Fixed split/scatter/merge overheads erode the gain on tiny clips."""

        def speedup(duration, n_segments):
            src = clip(duration=duration)
            cluster, tx = make_transcoder(5)
            single = cluster.run(cluster.engine.process(
                tx.convert_single_node(src, vcodec="h264", container="flv")))
            cluster2, tx2 = make_transcoder(5)
            dist = cluster2.run(cluster2.engine.process(
                tx2.convert_distributed(src, vcodec="h264", container="flv",
                                        n_segments=n_segments)))
            return single.total_time / dist.total_time

        assert speedup(6.0, 3) < speedup(1800.0, 4)

    def test_stage_times_recorded(self):
        cluster, tx = make_transcoder()
        report = cluster.run(cluster.engine.process(
            tx.convert_distributed(clip(), vcodec="h264", container="flv")))
        assert set(report.stage_times) == {"split", "convert", "merge"}
        assert report.stage_times["convert"] > report.stage_times["split"]
        assert report.segments == 4

    def test_explicit_segment_count(self):
        cluster, tx = make_transcoder()
        report = cluster.run(cluster.engine.process(
            tx.convert_distributed(clip(), vcodec="h264", container="flv",
                                   n_segments=8)))
        assert report.segments == 8

    def test_bad_workers(self):
        cluster = Cluster(2)
        with pytest.raises(TranscodeError):
            DistributedTranscoder(cluster, [])
        with pytest.raises(TranscodeError):
            DistributedTranscoder(cluster, ["ghost"])


class TestStreaming:
    def setup_session(self, bitrate=1 * Mbps, duration=60.0, plan=None):
        cluster = Cluster(2)
        video = VideoFile(
            name="movie.flv", container="flv", vcodec="h264", acodec="aac",
            duration=duration, resolution=R_720P, fps=25.0, bitrate=bitrate,
        )
        server = StreamingServer(cluster, "node0")
        session = PlaybackSession(server, "node1", video, watch_plan=plan)
        return cluster, session

    def test_smooth_playback_when_bandwidth_ample(self):
        cluster, session = self.setup_session(bitrate=1 * Mbps)
        report = cluster.run(cluster.engine.process(session.run()))
        assert report.smooth
        assert report.rebuffer_time == 0
        assert report.watched_seconds == pytest.approx(60.0, abs=0.1)
        assert report.startup_delay > 0

    def test_rebuffering_when_bitrate_exceeds_bandwidth(self):
        cluster, session = self.setup_session(bitrate=200 * Mbps)  # > 1 Gb/s link? no: 200Mbps < 1Gbps
        # throttle the client NIC instead
        cluster2 = Cluster(1)
        cluster2.add_host("slowclient", nic_rate=0.5 * Mbps * 8 / 8)
        video = VideoFile(
            name="movie.flv", container="flv", vcodec="h264", acodec="aac",
            duration=30.0, resolution=R_720P, fps=25.0, bitrate=2 * Mbps,
        )
        server = StreamingServer(cluster2, "node0")
        session2 = PlaybackSession(server, "slowclient", video)
        report = cluster2.run(cluster2.engine.process(session2.run()))
        assert report.rebuffer_count > 0
        assert report.rebuffer_time > 0

    def test_seek_issues_new_range_request(self):
        """Figure 23: the time bar can be dragged to any point."""
        cluster, session = self.setup_session(
            duration=120.0, plan=[(0.0, 10.0), (90.0, 10.0)])
        report = cluster.run(cluster.engine.process(session.run()))
        assert len(report.seek_latencies) == 1
        assert report.seek_latencies[0] > 0
        kinds = [e.kind for e in report.events]
        assert "seek" in kinds
        assert report.watched_seconds == pytest.approx(20.0, abs=0.5)

    def test_startup_delay_scales_with_buffer_fill(self):
        slow_bitrate = 1 * Mbps
        fast_bitrate = 8 * Mbps
        d1 = self.run_startup(slow_bitrate)
        d2 = self.run_startup(fast_bitrate)
        assert d2 > d1  # more bytes to prefill at higher bitrate

    def run_startup(self, bitrate):
        cluster, session = self.setup_session(bitrate=bitrate, duration=30.0)
        return cluster.run(cluster.engine.process(session.run())).startup_delay

    def test_bad_watch_plan(self):
        cluster, _ = self.setup_session()
        video = VideoFile(
            name="m.flv", container="flv", vcodec="h264", acodec="aac",
            duration=10.0, resolution=R_720P, fps=25.0, bitrate=1 * Mbps,
        )
        server = StreamingServer(cluster, "node0")
        with pytest.raises(StreamingError):
            PlaybackSession(server, "node1", video, watch_plan=[(99.0, 5.0)])

    def test_unknown_hosts(self):
        cluster = Cluster(1)
        with pytest.raises(StreamingError):
            StreamingServer(cluster, "ghost")
