import pytest

from repro.common.calibration import Calibration
from repro.common.errors import TranscodeError
from repro.common.units import Mbps
from repro.hardware import Cluster
from repro.video import (
    DEFAULT_LADDER,
    R_720P,
    DistributedTranscoder,
    FFmpeg,
    Thumbnail,
    VideoFile,
    extract_thumbnail,
    make_renditions,
)


def clip(duration=120.0):
    return VideoFile(
        name="up.avi", container="avi", vcodec="mpeg4", acodec="mp3",
        duration=duration, resolution=R_720P, fps=25.0, bitrate=4 * Mbps,
    )


def make_tx(n_hosts=5):
    cluster = Cluster(n_hosts)
    return cluster, DistributedTranscoder(cluster, cluster.host_names[1:],
                                          ingest_host="node0")


class TestLadder:
    def test_all_rungs_produced(self):
        cluster, tx = make_tx()
        reports = cluster.run(cluster.engine.process(
            make_renditions(tx, clip())))
        assert set(reports) == {"720p", "480p", "360p"}
        for rung in DEFAULT_LADDER:
            out = reports[rung.name].output
            assert out.resolution == rung.resolution
            assert out.bitrate == rung.bitrate
            assert out.vcodec == "h264"
            assert out.duration == pytest.approx(clip().duration)

    def test_lower_rungs_smaller(self):
        cluster, tx = make_tx()
        reports = cluster.run(cluster.engine.process(
            make_renditions(tx, clip())))
        assert (reports["360p"].output.size
                < reports["480p"].output.size
                < reports["720p"].output.size)

    def test_full_ladder_slower_than_single_rung(self):
        def total_time(ladder):
            cluster, tx = make_tx()
            cluster.run(cluster.engine.process(
                make_renditions(tx, clip(), ladder)))
            return cluster.now

        assert total_time(DEFAULT_LADDER) > total_time(DEFAULT_LADDER[:1])

    def test_empty_ladder_rejected(self):
        cluster, tx = make_tx()
        with pytest.raises(TranscodeError):
            make_renditions(tx, clip(), ())


class TestThumbnail:
    def test_extract(self):
        cluster = Cluster(1)
        ff = FFmpeg(cluster.cal)
        t = cluster.run(cluster.engine.process(
            extract_thumbnail(ff, cluster.hosts[0], clip(), at_time=30.0)))
        assert isinstance(t, Thumbnail)
        assert (t.width, t.height) == (320, 180)
        assert t.size > 0
        assert t.name.endswith(".jpg")
        assert cluster.now > 0

    def test_out_of_range_time(self):
        cluster = Cluster(1)
        ff = FFmpeg(Calibration())
        with pytest.raises(TranscodeError):
            extract_thumbnail(ff, cluster.hosts[0], clip(), at_time=1e9)

    def test_thumbnail_cheap_compared_to_transcode(self):
        cluster = Cluster(1)
        ff = FFmpeg(cluster.cal)
        cluster.run(cluster.engine.process(
            extract_thumbnail(ff, cluster.hosts[0], clip(), at_time=5.0)))
        thumb_time = cluster.now
        cluster2 = Cluster(1)
        ff2 = FFmpeg(cluster2.cal)
        cluster2.run(cluster2.engine.process(
            ff2.transcode(cluster2.hosts[0], clip(), vcodec="h264",
                          container="flv")))
        assert thumb_time < cluster2.now / 10
