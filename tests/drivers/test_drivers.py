import pytest

from repro.common.errors import ConfigError, DriverError
from repro.common.units import MiB
from repro.drivers import (
    CallTrace,
    InformationDriver,
    TransferDriver,
    VmmDriver,
)
from repro.hardware import Cluster
from repro.virt import DiskImage, ImageStore, Kvm, VirtualMachine, VmState


IMG = DiskImage("base", size=1024 * MiB)


def setup_cluster(n=2):
    c = Cluster(n)
    trace = CallTrace(c.engine)
    store = ImageStore(c, "node0")
    store.register(IMG)
    return c, trace, store


def make_vm(name="vm0"):
    return VirtualMachine(name, vcpus=1, memory=512 * MiB, image=IMG)


class TestVmmDriver:
    def test_deploy_boots_vm(self):
        c, trace, _ = setup_cluster()
        vmm = VmmDriver(Kvm(c.hosts[1]), trace)
        vm = make_vm()
        p = c.engine.process(vmm.deploy(vm))
        c.run(p)
        assert vm.state == VmState.RUNNING
        assert vm.host_name == "node1"
        assert c.now == pytest.approx(VmmDriver.BOOT_TIME)
        assert trace.actions() == ["deploy"]

    def test_shutdown_releases_host(self):
        c, trace, _ = setup_cluster()
        vmm = VmmDriver(Kvm(c.hosts[1]), trace)
        vm = make_vm()

        def flow():
            yield c.engine.process(vmm.deploy(vm))
            yield c.engine.process(vmm.shutdown(vm))

        c.run(c.engine.process(flow()))
        assert vm.state == VmState.SHUTOFF
        assert c.hosts[1].memory_used == 0
        assert trace.actions("vmm.full") == ["deploy", "shutdown"]

    def test_cancel_is_fast(self):
        c, trace, _ = setup_cluster()
        vmm = VmmDriver(Kvm(c.hosts[1]), trace)
        vm = make_vm()

        def flow():
            yield c.engine.process(vmm.deploy(vm))
            t0 = c.engine.now
            yield c.engine.process(vmm.cancel(vm))
            return c.engine.now - t0

        dt = c.run(c.engine.process(flow()))
        assert dt == pytest.approx(VmmDriver.CANCEL_TIME)
        assert vm.hypervisor is None

    def test_save_restore_roundtrip(self):
        c, trace, _ = setup_cluster()
        vmm = VmmDriver(Kvm(c.hosts[1]), trace)
        vm = make_vm()

        def flow():
            yield c.engine.process(vmm.deploy(vm))
            yield c.engine.process(vmm.save(vm))
            assert vm.state == VmState.PAUSED
            yield c.engine.process(vmm.restore(vm))
            assert vm.state == VmState.RUNNING

        c.run(c.engine.process(flow()))
        # RAM written then read from the host disk
        assert c.hosts[1].disk.bytes_written == vm.memory
        assert c.hosts[1].disk.bytes_read == vm.memory

    def test_restore_unsaved_rejected(self):
        c, trace, _ = setup_cluster()
        vmm = VmmDriver(Kvm(c.hosts[1]), trace)
        vm = make_vm()

        def flow():
            yield c.engine.process(vmm.deploy(vm))
            yield c.engine.process(vmm.restore(vm))

        with pytest.raises(DriverError):
            c.run(c.engine.process(flow()))


class TestTransferDriver:
    def test_ssh_prolog_copies_bytes(self):
        c, trace, store = setup_cluster()
        tm = TransferDriver(store, trace, strategy="ssh")
        p = c.engine.process(tm.prolog(IMG, "node1"))
        c.run(p)
        assert c.network.bytes_delivered == pytest.approx(IMG.size)
        assert trace.actions("tm.ssh") == ["prolog"]

    def test_shared_prolog_is_constant_cost(self):
        c, trace, store = setup_cluster()
        tm = TransferDriver(store, trace, strategy="shared")
        p = c.engine.process(tm.prolog(IMG, "node1"))
        c.run(p)
        assert c.network.bytes_delivered == 0
        assert c.now < 1.0

    def test_shared_beats_ssh(self):
        def prolog_time(strategy):
            c, trace, store = setup_cluster()
            tm = TransferDriver(store, trace, strategy=strategy)
            c.run(c.engine.process(tm.prolog(IMG, "node1")))
            return c.now

        assert prolog_time("shared") < prolog_time("ssh")

    def test_epilog_recorded(self):
        c, trace, store = setup_cluster()
        tm = TransferDriver(store, trace)
        c.run(c.engine.process(tm.epilog(IMG, "node1")))
        assert trace.actions() == ["epilog"]

    def test_move_ssh_transfers(self):
        c, trace, store = setup_cluster(3)
        tm = TransferDriver(store, trace, strategy="ssh")
        c.run(c.engine.process(tm.move(IMG, "node1", "node2")))
        assert c.network.bytes_delivered == pytest.approx(IMG.size)

    def test_unknown_strategy(self):
        c, trace, store = setup_cluster()
        with pytest.raises(ConfigError):
            TransferDriver(store, trace, strategy="rsync")


class TestInformationDriver:
    def test_poll_reports_memory_and_vms(self):
        c, trace, _ = setup_cluster()
        hv = Kvm(c.hosts[1])
        im = InformationDriver(hv, trace)
        vmm = VmmDriver(hv, trace)
        vm = make_vm()

        def flow():
            yield c.engine.process(vmm.deploy(vm))
            metrics = yield c.engine.process(im.poll())
            return metrics

        m = c.run(c.engine.process(flow()))
        assert m.host == "node1"
        assert m.running_vms == 1
        assert m.mem_used == vm.memory
        assert 0 <= m.mem_util <= 1
        assert m.alive

    def test_trace_records_poll(self):
        c, trace, _ = setup_cluster()
        im = InformationDriver(Kvm(c.hosts[0]), trace)
        c.run(c.engine.process(im.poll()))
        assert trace.actions("im.kvm") == ["poll"]
        assert trace.for_target("node0")[0].action == "poll"
