"""Schedule fuzzing of the real storms: reports must survive shuffles.

The determinism smoke tests prove a seeded run replays bit-identically
under FIFO tie-breaking; these prove the stronger property that no
*report* depends on the tie-breaking at all.  Each storm is re-run under
K=8 permuted schedules (plus the FIFO baseline) and its report signature
must come out bit-identical every time.

Signatures are over the *reports* (MTTR, recoveries, action logs,
convergence episodes), not raw event logs: same-timestamp log records
legitimately permute under a shuffled schedule, results must not.
"""

from __future__ import annotations

from repro.analysis import HistoryRecorder, check_history
from repro.chaos import ChaosMonkey, KillActiveNameNode, ReconcileStorm
from repro.hardware import Cluster
from repro.sim import fuzz_schedules
from repro.stack import build_ha_cloud, build_reconciled_cloud

#: shuffled schedules per storm (the PR-9 acceptance floor)
SHUFFLES = 8


def _chaos_storm(shuffle_seed: "int | None") -> dict:
    cluster = Cluster(6, seed=21)
    if shuffle_seed is not None:
        cluster.engine.enable_schedule_shuffle(shuffle_seed)
    monkey = ChaosMonkey(cluster)
    scenarios = monkey.random_scenarios(8, horizon=120.0)
    for s in scenarios:
        if s.kind == "host_crash":
            host = cluster.host(s.host)
            monkey.watch("hardware", s.host, lambda h=host: h.alive,
                         since=s.at)
    report = cluster.run(monkey.unleash(scenarios))
    cluster.run()
    return {
        "faults": [(f.time, f.kind, f.target, f.detail)
                   for f in report.faults],
        "recoveries": sorted((r.layer, r.target, r.injected_at,
                              r.recovered_at) for r in report.recoveries),
        "mttr": report.mttr_by_layer(),
        "end": cluster.engine.now,
    }


def _failover_storm(shuffle_seed: "int | None") -> dict:
    vc = build_ha_cloud(n_hosts=8, seed=5)
    if shuffle_seed is not None:
        vc.engine.enable_schedule_shuffle(shuffle_seed)
    engine = vc.engine
    recorder = HistoryRecorder(lambda: engine.now)
    client = vc.fs.client("node3")
    client.recorder = recorder
    acked: dict[str, bytes] = {}

    def traffic():
        for i in range(12):
            yield engine.timeout(8.0)
            payload = bytes([i % 251]) * 512
            yield from client.write_file(f"/fuzz/f{i}", payload)
            acked[f"/fuzz/f{i}"] = payload

    engine.process(traffic(), name="traffic")
    vc.chaos.unleash([KillActiveNameNode(at=30.0, recover_after=60.0)])
    vc.run(until=400.0)
    vc.stop_background()
    vc.run()
    history = check_history(recorder, final_keys=set(acked))
    # Op *latencies* are excluded on purpose: an RPC landing at the same
    # instant as the promotion legitimately takes the designed retry path
    # under one tie-break and not the other.  Everything client-visible
    # about the run -- op order, outcomes, values, the consistency
    # verdict, failover count and MTTR -- must still be bit-identical.
    ops = tuple((op.index, op.client, op.kind, op.key, op.outcome,
                 op.value, op.error) for op in recorder.ops)
    return {
        "failovers": vc.failover.failovers,
        "epoch": vc.ha.epoch,
        "acked": sorted(acked),
        "history_ok": history.ok,
        "violations": tuple((v.rule, v.key, v.detail) for v in
                            history.violations),
        "ops": ops,
        "mttr": vc.chaos.report.mttr_by_layer(),
        "end": engine.now,
    }


def _reconcile_storm(shuffle_seed: "int | None") -> dict:
    vc = build_reconciled_cloud(seed=7, autoscale=False)
    if shuffle_seed is not None:
        vc.engine.enable_schedule_shuffle(shuffle_seed)
    vc.run(until=60.0)
    storm = ReconcileStorm(crash="node2", isolated=("node5",), at=0.0,
                           heal_after=180.0)
    done = vc.chaos.unleash([storm])
    vc.run(done)
    vc.run(until=vc.engine.now + 600.0)
    rec = vc.reconciler
    sig = {
        "open_pools": rec.report.open_pools(),
        "actions": rec.actions.signature(),
        "convergence": rec.report.signature(),
        "mttr": vc.chaos.report.mttr_by_layer(),
        "end": vc.engine.now,
    }
    vc.stop_background()
    vc.cluster.run()
    return sig


def test_chaos_storm_report_is_shuffle_invariant():
    report = fuzz_schedules(_chaos_storm, shuffles=SHUFFLES, seed=3)
    assert report.ok, report.summary()


def test_failover_storm_report_is_shuffle_invariant():
    report = fuzz_schedules(_failover_storm, shuffles=SHUFFLES, seed=1)
    assert report.ok, report.summary()


def test_reconcile_storm_report_is_shuffle_invariant():
    report = fuzz_schedules(_reconcile_storm, shuffles=SHUFFLES, seed=1)
    assert report.ok, report.summary()


def test_chaos_storm_is_race_clean_under_the_sanitizer():
    """The dynamic sanitizer agrees: no unordered same-time access pairs."""
    cluster = Cluster(6, seed=21)
    san = cluster.engine.enable_sanitizer()
    monkey = ChaosMonkey(cluster)
    scenarios = monkey.random_scenarios(8, horizon=120.0)
    cluster.run(monkey.unleash(scenarios))
    cluster.run()
    cluster.engine.disable_sanitizer()
    assert san.ok, san.report()
