"""ReconcileStorm: compound chaos vs the self-healing control plane."""

import pytest

from repro.common.errors import ConfigError
from repro.chaos import ReconcileStorm
from repro.stack import build_reconciled_cloud


def run_storm(seed, *, autoscale=False, settle=60.0, tail=600.0):
    vc = build_reconciled_cloud(seed=seed, autoscale=autoscale)
    vc.run(until=settle)
    storm = ReconcileStorm(crash="node2", isolated=("node5",), at=0.0,
                           heal_after=180.0)
    done = vc.chaos.unleash([storm])
    vc.run(done)
    vc.run(until=vc.engine.now + tail)
    return vc


class TestScenarioValidation:
    def test_rejects_empty_partition(self):
        with pytest.raises(ConfigError):
            ReconcileStorm(crash="node2", isolated=())

    def test_rejects_crash_host_in_partition(self):
        with pytest.raises(ConfigError):
            ReconcileStorm(crash="node2", isolated=("node2",))

    def test_children_compose_primitives(self):
        storm = ReconcileStorm(crash="node2", isolated=("node5",))
        kinds = [c.kind for c in storm.children()]
        assert kinds == ["host_crash", "partition",
                         "overload_storm", "overload_storm"]


class TestConvergence:
    def test_fleet_reconverges_with_zero_manual_calls(self):
        vc = run_storm(seed=7)
        rec = vc.reconciler
        # every pool is back on spec
        assert rec.report.open_pools() == []
        counts = rec.actions.counts()
        assert counts.get("replace", 0) >= 1, counts
        # the dead host's members were replaced elsewhere
        spec = rec.spec
        assert len(vc.lb.backends) == spec.pool("web").replicas
        assert len(vc.fs.datanodes) == spec.pool("datanodes").replicas
        assert (len(vc.portal.transcoder.workers)
                == spec.pool("transcode").replicas)
        # convergence times are measured and finite
        assert rec.report.convergence_times()
        assert rec.report.max_convergence_time() > 0.0
        vc.stop_background()
        vc.cluster.run()

    def test_engine_drains_after_storm(self):
        vc = run_storm(seed=7, tail=100.0)
        vc.stop_background()
        vc.cluster.run()        # hangs if any zombie loop survives


class TestUpgradeUnderFire:
    def test_crashed_surge_member_triggers_rollback(self):
        vc = build_reconciled_cloud(seed=9, autoscale=False)
        vc.run(until=60.0)
        rec = vc.reconciler
        assert rec.report.open_pools() == []
        rec.apply(rec.spec.with_version("web", "v2"))
        # run until the surge replica exists, then kill its host
        for _ in range(40):
            vc.run(until=vc.engine.now + rec.period)
            surge = [m for m in rec.adapters["web"].members()
                     if m.version == "v2"]
            if surge:
                break
        assert surge, "upgrade never surged"
        vc.chaos.crash_host(surge[0].host)
        vc.run(until=vc.engine.now + 20 * rec.period)
        kinds = rec.actions.counts()
        assert kinds.get("rollback", 0) == 1, kinds
        # pool reconverged on the last good version, v2 is banned
        assert rec.report.open_pools() == []
        members = rec.adapters["web"].members()
        assert all(m.version == "v1" for m in members)
        assert kinds.get("upgrade_done", 0) == 0
        vc.stop_background()
        vc.cluster.run()

    def test_healthy_upgrade_completes(self):
        vc = build_reconciled_cloud(seed=9, autoscale=False)
        vc.run(until=60.0)
        rec = vc.reconciler
        rec.apply(rec.spec.with_version("transcode", "v2"))
        vc.run(until=vc.engine.now + 30 * rec.period)
        assert rec.actions.counts().get("upgrade_done", 0) == 1
        members = rec.adapters["transcode"].members()
        assert all(m.version == "v2" for m in members)
        assert rec.report.open_pools() == []
        vc.stop_background()
        vc.cluster.run()


class TestDeterminism:
    def test_identical_seeds_give_identical_logs(self):
        def signatures(seed):
            vc = run_storm(seed, autoscale=True, tail=300.0)
            rec = vc.reconciler
            out = (rec.actions.signature(), rec.report.signature())
            vc.stop_background()
            vc.cluster.run()
            return out

        assert signatures(13) == signatures(13)

    def test_different_seeds_still_converge(self):
        vc = run_storm(seed=21)
        assert vc.reconciler.report.open_pools() == []
        vc.stop_background()
        vc.cluster.run()
