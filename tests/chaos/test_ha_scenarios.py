"""HA chaos scenarios end to end: kill-active, partition-active, flapping.

Every run drives real client traffic through the failover and feeds the
:mod:`repro.analysis.history` checker -- zero acknowledged-write loss and
zero stale reads are hard assertions, not just "it didn't crash".
"""

import pytest

from repro.analysis import HistoryRecorder, check_history
from repro.chaos import (
    ChaosMonkey,
    FailoverFlap,
    KillActiveNameNode,
    PartitionActiveNameNode,
)
from repro.common.errors import ConfigError
from repro.hardware import Cluster
from repro.stack import build_ha_cloud


def run_with_traffic(scenarios, *, seed=0, until=400.0, writes=16):
    """Build an HA cloud, run *scenarios* against seeded traffic, and
    return ``(vc, report, acked_paths)`` after checking the history."""
    vc = build_ha_cloud(n_hosts=8, seed=seed)
    engine = vc.engine
    recorder = HistoryRecorder(lambda: engine.now)
    client = vc.fs.client("node3")
    client.recorder = recorder
    acked = {}

    def traffic():
        for i in range(writes):
            yield engine.timeout(8.0)
            payload = bytes([i % 251]) * 512
            yield from client.write_file(f"/chaos/f{i}", payload)
            acked[f"/chaos/f{i}"] = payload
            if i % 3 == 2:
                yield from client.read_file(f"/chaos/f{i - 1}")

    engine.process(traffic(), name="traffic")
    done = vc.chaos.unleash(scenarios)
    vc.run(until=until)
    assert done.is_alive is False  # every scenario ran to completion
    vc.stop_background()
    vc.run()
    report = check_history(recorder, final_keys=set(acked))
    return vc, report, acked


class TestKillActive:
    def test_kill_active_fails_over_and_loses_nothing(self):
        vc, report, acked = run_with_traffic(
            [KillActiveNameNode(at=30.0, recover_after=60.0)])
        assert vc.failover.failovers == 1
        assert vc.ha.epoch == 2
        assert len(acked) == 16
        assert report.ok, report.violations
        for path in acked:
            assert vc.fs.namenode.exists(path)
        assert vc.chaos.report.faults  # the injection was logged

    def test_recovered_host_rejoins_as_standby(self):
        vc, report, _ = run_with_traffic(
            [KillActiveNameNode(at=30.0, recover_after=30.0)])
        assert report.ok
        # the rebooted node holds the standby role of the new epoch
        assert vc.ha.standby_host != vc.ha.active_host
        assert vc.cluster.host(vc.ha.standby_host).alive


class TestPartitionActive:
    def test_partition_fails_over_without_split_brain(self):
        vc, report, acked = run_with_traffic(
            [PartitionActiveNameNode(at=30.0, heal_after=60.0)], seed=3)
        assert vc.failover.failovers == 1
        assert report.ok, report.violations
        for path in acked:
            assert vc.fs.namenode.exists(path)
        # the deposed active never committed anything after the fence:
        # both namespaces agree on every surviving path
        for host, nn in vc.ha.nodes():
            assert set(acked) <= set(nn.namespace) or nn is vc.ha.standby


class TestFailoverFlap:
    def test_flap_respects_min_interval_guard(self):
        vc, report, acked = run_with_traffic(
            [FailoverFlap(at=30.0, cycles=2, interval=80.0)],
            until=500.0)
        assert report.ok, report.violations
        # each crash promotes once; the guard prevents extra ping-pong
        assert vc.failover.failovers == 2
        assert vc.ha.epoch == 3
        for path in acked:
            assert vc.fs.namenode.exists(path)

    def test_scenario_validation(self):
        with pytest.raises(ConfigError):
            FailoverFlap(at=-1.0)
        with pytest.raises(ConfigError):
            FailoverFlap(at=0.0, cycles=0)
        with pytest.raises(ConfigError):
            FailoverFlap(at=0.0, interval=0.0)
        with pytest.raises(ConfigError):
            KillActiveNameNode(at=0.0, recover_after=0.0)
        with pytest.raises(ConfigError):
            PartitionActiveNameNode(at=0.0, heal_after=-2.0)


class TestPrimitivesRequirePair:
    def test_ha_primitives_need_a_pair(self):
        cluster = Cluster(4)
        monkey = ChaosMonkey(cluster)
        with pytest.raises(ConfigError):
            monkey.crash_active_namenode()
        with pytest.raises(ConfigError):
            monkey.partition_active_namenode()


class TestDeterminism:
    def test_same_seed_same_history_signature(self):
        sigs = []
        for _ in range(2):
            vc = build_ha_cloud(n_hosts=8, seed=42)
            engine = vc.engine
            recorder = HistoryRecorder(lambda: engine.now)
            client = vc.fs.client("node2")
            client.recorder = recorder

            def traffic():
                for i in range(8):
                    yield engine.timeout(7.0)
                    yield from client.write_file(f"/d{i}", bytes([i]) * 256)

            engine.process(traffic(), name="traffic")
            vc.chaos.unleash([KillActiveNameNode(at=20.0, recover_after=40.0)])
            vc.run(until=200.0)
            vc.stop_background()
            vc.run()
            sigs.append(recorder.signature())
        assert sigs[0] == sigs[1]
