"""Overload storms: saturation as a first-class, reproducible fault."""

import pytest

from repro.chaos import ChaosMonkey, OverloadStorm, StormStats
from repro.common.errors import ConfigError
from repro.common.units import MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.web import VideoPortal


def make_stack(seed=0, overload=True, **overload_kw):
    cluster = Cluster(6, seed=seed)
    fs = Hdfs(cluster, namenode_host="node0",
              datanode_hosts=cluster.host_names[1:], block_size=16 * MiB,
              replication=2)
    portal = VideoPortal(cluster, fs, web_host="node1",
                         transcode_workers=cluster.host_names[2:])
    if overload:
        overload_kw.setdefault("capacity", 4)
        overload_kw.setdefault("queue_capacity", 4)
        portal.enable_overload_control(**overload_kw)
    monkey = ChaosMonkey(cluster, fs=fs, portal=portal)
    return cluster, portal, monkey


class TestStormStats:
    def test_every_offer_lands_in_exactly_one_bucket(self):
        s = StormStats(duration=10.0)
        s.record("playback", 200, 0.1)
        s.record("playback", 429, 0.0)
        s.record("playback", 503, 0.0)
        s.record("search", 504, 0.0)
        s.record("search", 500, 0.2)
        s.record("search", 0, 1.0)       # raised, not a graceful refusal
        assert s.offered == {"playback": 3, "search": 3}
        assert s.completed == {"playback": 1}
        assert s.rejected == {"playback": 2, "search": 1}
        assert s.failed == {"search": 2}

    def test_goodput_and_mean_latency(self):
        s = StormStats(duration=5.0)
        s.record("playback", 200, 0.2)
        s.record("playback", 200, 0.4)
        assert s.goodput("playback") == pytest.approx(0.4)
        assert s.goodput("search") == 0.0
        assert s.mean_latency("playback") == pytest.approx(0.3)
        assert s.mean_latency("search") is None

    def test_summary_renders_a_table(self):
        s = StormStats(duration=5.0)
        s.record("playback", 200, 0.2)
        out = s.summary()
        assert "GOODPUT/S" in out
        assert "playback" in out


class TestOverloadStormPrimitive:
    def test_storm_accounts_every_request(self):
        cluster, _, monkey = make_stack(
            rate_limits={("GET", "/search"): 2.0})
        stats = cluster.run(monkey.overload_storm(duration=20.0, rate=10.0))
        offered = sum(stats.offered.values())
        assert offered > 0
        settled = (sum(stats.completed.values())
                   + sum(stats.rejected.values())
                   + sum(stats.failed.values()))
        assert settled == offered
        # the tight search bucket must have refused some of the flood
        assert stats.rejected.get("search", 0) > 0
        assert stats.duration == 20.0

    def test_storm_lands_in_the_report(self):
        cluster, _, monkey = make_stack()
        cluster.run(monkey.overload_storm(duration=5.0, rate=4.0))
        assert len(monkey.report.storms) == 1
        assert monkey.report.fault_counts()["overload_storm"] == 1

    def test_same_seed_same_storm(self):
        def run_once():
            cluster, _, monkey = make_stack(
                seed=7, capacity=2, queue_capacity=2,
                rate_limits={("GET", "/search"): 3.0})
            return cluster.run(
                monkey.overload_storm(duration=15.0, rate=12.0))

        a, b = run_once(), run_once()
        assert a.offered == b.offered
        assert a.completed == b.completed
        assert a.rejected == b.rejected
        assert a.failed == b.failed

    def test_different_seed_different_arrivals(self):
        def run_once(seed):
            cluster, _, monkey = make_stack(seed=seed)
            return cluster.run(
                monkey.overload_storm(duration=15.0, rate=12.0))

        assert run_once(1).offered != run_once(2).offered

    def test_mix_weights_skew_the_classes(self):
        cluster, _, monkey = make_stack()
        stats = cluster.run(monkey.overload_storm(
            duration=20.0, rate=10.0, mix={"playback": 9.0, "search": 1.0}))
        assert stats.offered.get("playback", 0) > stats.offered.get("search", 0)

    def test_validation(self):
        cluster, _, monkey = make_stack()
        with pytest.raises(ConfigError):
            cluster.run(monkey.overload_storm(duration=0.0, rate=5.0))
        with pytest.raises(ConfigError):
            cluster.run(monkey.overload_storm(duration=5.0, rate=0.0))
        with pytest.raises(ConfigError, match="without factories"):
            cluster.run(monkey.overload_storm(
                duration=5.0, rate=5.0, mix={"upload": 1.0}))
        bare = ChaosMonkey(Cluster(2))
        with pytest.raises(ConfigError, match="needs a portal"):
            bare.overload_storm(duration=5.0, rate=5.0)


class TestOverloadStormScenario:
    def test_scheduled_storm_via_unleash(self):
        cluster, _, monkey = make_stack()
        report = cluster.run(monkey.unleash([
            OverloadStorm(at=3.0, duration=10.0, rate=8.0),
        ]))
        assert len(report.storms) == 1
        storm_faults = [f for f in report.faults
                        if f.kind == "overload_storm"]
        assert storm_faults[0].time == pytest.approx(3.0)

    def test_scenario_validation(self):
        with pytest.raises(ConfigError):
            OverloadStorm(at=-1.0, duration=5.0, rate=5.0)
        with pytest.raises(ConfigError):
            OverloadStorm(at=0.0, duration=0.0, rate=5.0)
        with pytest.raises(ConfigError):
            OverloadStorm(at=0.0, duration=5.0, rate=-1.0)
