"""Determinism smoke tests: the dynamic counterpart of DET01/DET02.

The static analyzer proves no code *reads* the wall clock or unseeded
randomness; these tests prove the property that enforcement buys -- a
seeded chaos run replays bit-identically: same scenarios, same event
log (every record, in order), same fault timeline, same MTTR report.
"""

from __future__ import annotations

from repro.chaos import ChaosMonkey
from repro.common.rng import RngStream
from repro.hardware import Cluster
from repro.hdfs.placement import PlacementPolicy


def _chaos_run(seed: int):
    """One seeded chaos storm over a bare cluster, watchers included."""
    cluster = Cluster(6, seed=seed)
    monkey = ChaosMonkey(cluster)
    scenarios = monkey.random_scenarios(8, horizon=120.0)
    for s in scenarios:
        if s.kind == "host_crash":
            host = cluster.host(s.host)
            monkey.watch("hardware", s.host, lambda h=host: h.alive, since=s.at)
    run = monkey.unleash(scenarios)
    report = cluster.run(run)
    cluster.run()   # drain remaining watchers / recovery timers

    log = [
        (r.time, r.source, r.kind, r.message, sorted(r.data.items()))
        for r in cluster.log
    ]
    scenario_sig = [
        (s.kind, getattr(s, "host", getattr(s, "vm_name", "")), s.at)
        for s in scenarios
    ]
    faults = [(f.time, f.kind, f.target, f.detail) for f in report.faults]
    recoveries = [
        (r.layer, r.target, r.injected_at, r.recovered_at)
        for r in report.recoveries
    ]
    return {
        "scenarios": scenario_sig,
        "log": log,
        "faults": faults,
        "recoveries": recoveries,
        "mttr": report.mttr_by_layer(),
        "end": cluster.engine.now,
    }


def test_chaos_run_is_bit_identical_under_fixed_seed():
    first = _chaos_run(21)
    second = _chaos_run(21)
    assert first["scenarios"] == second["scenarios"]
    assert first["faults"] == second["faults"]
    assert first["recoveries"] == second["recoveries"]
    assert first["mttr"] == second["mttr"]
    assert first["end"] == second["end"]
    # the strongest form: the full event log, record for record
    assert first["log"] == second["log"]


def test_chaos_run_varies_with_seed():
    assert _chaos_run(21)["log"] != _chaos_run(22)["log"]


def test_placement_choices_are_bit_identical_under_seed():
    def draws(seed: int) -> list[list[str]]:
        policy = PlacementPolicy(RngStream(seed, "hdfs").child("placement"))
        nodes = [f"node{i}" for i in range(8)]
        out = []
        for i in range(50):
            out.append(policy.choose_targets(3, nodes,
                                             writer_host=f"node{i % 8}"))
            out.append([policy.choose_rereplication_target(
                nodes, {f"node{i % 8}"})])
        return out

    assert draws(11) == draws(11)
    assert draws(11) != draws(12)


def test_random_scenarios_are_bit_identical_under_seed():
    def storm(seed: int):
        monkey = ChaosMonkey(Cluster(4, seed=seed))
        return [
            (s.kind, s.host, s.at) for s in
            monkey.random_scenarios(12, horizon=300.0)
        ]

    assert storm(5) == storm(5)
    assert storm(5) != storm(6)
