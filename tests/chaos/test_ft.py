"""FaultToleranceHook: dead-host detection and VM resurrection."""

import pytest

from repro import build_video_cloud
from repro.chaos import HostCrash, VmKill
from repro.one import OneState
from repro.one.ft import RESTORE_TIMEOUT


@pytest.fixture()
def stack():
    vc = build_video_cloud(5, seed=3, fault_tolerance=True)
    yield vc
    vc.stop_background()
    vc.cluster.run()


def vm_on(vc, host):
    return next(vm for vm in vc.cloud.vm_pool.values()
                if vm.state is OneState.RUNNING and vm.host_name == host)


class TestVmResurrection:
    def test_crashed_hosts_vm_redeployed_elsewhere(self, stack):
        vc = stack
        victim_vm = vm_on(vc, "node2")
        t0 = vc.engine.now
        vc.chaos.unleash([HostCrash("node2", at=1.0)])
        vc.cluster.run(t0 + 120.0)
        assert "node2" in vc.ft.down
        assert victim_vm.name in vc.ft.restored
        assert victim_vm.state is OneState.RUNNING
        assert victim_vm.host_name != "node2"
        assert vc.cluster.log.records(source="one.ft", kind="ft_host_failed")
        assert vc.cluster.log.records(source="one.ft", kind="ft_vm_restored")

    def test_recovery_recorded_in_chaos_report(self, stack):
        vc = stack
        t0 = vc.engine.now
        vc.chaos.unleash([HostCrash("node3", at=1.0)])
        vc.cluster.run(t0 + 120.0)
        iaas = [r for r in vc.chaos.report.recoveries if r.layer == "iaas"]
        assert len(iaas) == 1
        assert iaas[0].ttr > 0
        assert vc.chaos.report.mttr("iaas") > 0

    def test_rebooted_host_rejoins_pool(self, stack):
        vc = stack
        t0 = vc.engine.now
        vc.chaos.unleash([HostCrash("node2", at=1.0, recover_after=60.0)])
        vc.cluster.run(t0 + 150.0)
        assert "node2" not in vc.ft.down
        assert vc.cluster.log.records(source="one.ft", kind="ft_host_recovered")

    def test_vm_kill_resubmitted_and_watched(self, stack):
        vc = stack
        victim_vm = vm_on(vc, "node4")
        t0 = vc.engine.now
        vc.chaos.unleash([VmKill(victim_vm.name, at=1.0)])
        vc.cluster.run(t0 + 120.0)
        assert victim_vm.state is OneState.RUNNING
        iaas = [r for r in vc.chaos.report.recoveries
                if r.layer == "iaas" and r.target == victim_vm.name]
        assert len(iaas) == 1 and iaas[0].ttr > 0

    def test_all_vms_running_after_double_failure(self, stack):
        vc = stack
        t0 = vc.engine.now
        vc.chaos.unleash([
            HostCrash("node2", at=1.0),
            HostCrash("node4", at=10.0),
        ])
        vc.cluster.run(t0 + 300.0)
        states = {vm.name: vm.state for vm in vc.cloud.vm_pool.values()}
        assert all(s is OneState.RUNNING for s in states.values()), states
        hosts = {vm.host_name for vm in vc.cloud.vm_pool.values()}
        assert "node2" not in hosts and "node4" not in hosts
        assert len(vc.ft.restored) == 2


class TestRestoreGiveUp:
    """A VM that never comes back must not be tracked (or counted) forever."""

    def _strand_vms(self, vc):
        """Crash all compute hosts but node1: some resubmitted VMs can
        never place again and stay PENDING past the restore deadline."""
        t0 = vc.engine.now
        vc.chaos.unleash([
            HostCrash(h, at=1.0) for h in ("node2", "node3", "node4", "node5")])
        vc.cluster.run(t0 + RESTORE_TIMEOUT + 30.0)

    def test_restore_timeout_gives_up_without_false_recovery(self):
        vc = build_video_cloud(6, seed=7, fault_tolerance=True)
        self._strand_vms(vc)
        failed = vc.cluster.log.records(source="one.ft", kind="ft_restore_failed")
        assert failed, "hook never gave up on the unplaceable VM"
        stranded = {r.data["vm"] for r in failed}
        # gave-up VMs are not claimed as restored, by the hook or the report
        assert not stranded & set(vc.ft.restored)
        assert not stranded & {
            r.target for r in vc.chaos.report.recoveries if r.layer == "iaas"}
        for vm in vc.cloud.vm_pool.values():
            if vm.name in stranded:
                assert vm.state is not OneState.RUNNING
        # tracking stopped: nothing keeps polling, so the engine drains
        vc.stop_background()
        vc.cluster.run()

    def test_host_failure_handled_again_after_give_up(self):
        vc = build_video_cloud(6, seed=7, fault_tolerance=True)
        self._strand_vms(vc)
        down_events = [
            r for r in vc.cluster.log.records(source="one.ft",
                                              kind="ft_host_failed")
            if r.data["host"] == "node2"]
        assert len(down_events) == 1
        # the host reboots, rejoins, then dies a second time: the hook
        # must treat that as a fresh failure, not stale give-up state
        t0 = vc.engine.now
        vc.chaos.recover_host("node2")
        vc.cluster.run(t0 + 60.0)
        assert "node2" not in vc.ft.down
        t1 = vc.engine.now
        vc.chaos.unleash([HostCrash("node2", at=1.0)])
        vc.cluster.run(t1 + 60.0)
        assert "node2" in vc.ft.down
        down_events = [
            r for r in vc.cluster.log.records(source="one.ft",
                                              kind="ft_host_failed")
            if r.data["host"] == "node2"]
        assert len(down_events) == 2
        vc.stop_background()
        vc.cluster.run()


class TestHookLifecycle:
    def test_start_is_idempotent(self, stack):
        vc = stack
        proc = vc.ft._proc
        vc.ft.start()
        assert vc.ft._proc is proc

    def test_stop_lets_engine_drain(self):
        vc = build_video_cloud(5, seed=3, fault_tolerance=True)
        vc.stop_background()
        vc.cluster.run()  # would never return if the loops kept ticking

    def test_drain_with_unplaceable_vm(self):
        """Catastrophic loss leaves a VM nothing can host; stop_background
        must still let the engine drain (the dispatch retry tick would
        otherwise run forever)."""
        vc = build_video_cloud(6, seed=7, fault_tolerance=True)
        t0 = vc.engine.now
        vc.chaos.unleash([
            HostCrash(h, at=1.0) for h in ("node2", "node3", "node4", "node5")])
        vc.cluster.run(t0 + 60.0)
        vc.stop_background()
        vc.cluster.run()
        states = {vm.state for vm in vc.cloud.vm_pool.values()}
        assert OneState.PENDING in states  # the one that never fit
