"""Fail-slow fault family: injection, restoration, seeding, fuzz."""

import pytest

from repro.chaos import (
    ChaosMonkey,
    CpuThrottle,
    DiskStall,
    FailSlowStorm,
    IntermittentLatency,
    NicDegrade,
    SEVERITY_RANGES,
    draw_factor,
)
from repro.common.errors import ConfigError, FaultInjectionError
from repro.common.failslow import FAIL_SLOW_KINDS, SEVERITIES, validate_fail_slow
from repro.common.rng import RngStream
from repro.common.units import MiB
from repro.hardware import Cluster
from repro.hdfs import Hdfs
from repro.mapreduce import FaultModel
from repro.sim import fuzz_schedules


def make_monkey(n_hosts=4, seed=0):
    cluster = Cluster(n_hosts, seed=seed)
    return cluster, ChaosMonkey(cluster)


class TestVocabulary:
    def test_unknown_kind_names_the_valid_set(self):
        with pytest.raises(FaultInjectionError, match="disk_stall"):
            validate_fail_slow("disk_melt", "mild")

    def test_unknown_severity_names_the_valid_set(self):
        with pytest.raises(FaultInjectionError, match="severe"):
            validate_fail_slow("disk_stall", "catastrophic")

    def test_scenarios_validate_at_construction(self):
        with pytest.raises(FaultInjectionError):
            DiskStall(host="node1", at=0.0, duration=10.0, severity="apocalyptic")
        with pytest.raises(ConfigError):
            DiskStall(host="node1", at=-1.0, duration=10.0)
        with pytest.raises(ConfigError):
            NicDegrade(host="node1", at=0.0, duration=0.0)
        with pytest.raises(ConfigError):
            IntermittentLatency(host="node1", at=0.0, duration=10.0, period=0.0)
        with pytest.raises(ConfigError):
            FailSlowStorm(victims=(), at=0.0, duration=10.0)
        with pytest.raises(FaultInjectionError):
            FailSlowStorm(victims=("node1",), at=0.0, duration=10.0,
                          kinds=("disk_melt",))

    def test_fault_model_rejects_bad_fail_slow_config(self):
        with pytest.raises(FaultInjectionError):
            FaultModel(fail_slow_kinds=("disk_melt",))
        with pytest.raises(FaultInjectionError):
            FaultModel(fail_slow_severity="apocalyptic")
        with pytest.raises(ConfigError):
            FaultModel(fail_slow_rate=0.5, fail_slow_kinds=())


class TestSeverityDraws:
    def test_draws_stay_inside_the_calibrated_range(self):
        rng = RngStream(7)
        for kind in FAIL_SLOW_KINDS:
            for severity in SEVERITIES:
                low, high = SEVERITY_RANGES[kind][severity]
                for _ in range(50):
                    assert low <= draw_factor(rng, kind, severity) <= high

    def test_same_seed_same_draws(self):
        a = [draw_factor(RngStream(3).child(f"d{i}"), "disk_stall", "severe")
             for i in range(10)]
        b = [draw_factor(RngStream(3).child(f"d{i}"), "disk_stall", "severe")
             for i in range(10)]
        assert a == b

    def test_severity_grades_are_ordered(self):
        for kind in ("disk_stall", "cpu_throttle", "intermittent_latency"):
            mild = SEVERITY_RANGES[kind]["mild"]
            severe = SEVERITY_RANGES[kind]["severe"]
            assert mild[1] <= severe[0] or mild[0] < severe[0]
        # nic_degrade is a capacity *fraction*: severe is the smallest
        assert (SEVERITY_RANGES["nic_degrade"]["severe"][1]
                <= SEVERITY_RANGES["nic_degrade"]["mild"][0])


class TestInjection:
    def test_disk_stall_applies_and_restores(self):
        cluster, monkey = make_monkey()
        done = monkey.unleash([
            DiskStall(host="node1", at=5.0, duration=10.0, severity="severe")])
        cluster.engine.run(until=cluster.engine.timeout(6.0))
        low, high = SEVERITY_RANGES["disk_stall"]["severe"]
        assert low <= cluster.host("node1").disk.slowdown <= high
        cluster.run(done)
        assert cluster.host("node1").disk.slowdown == 1.0

    def test_cpu_throttle_applies_and_restores(self):
        cluster, monkey = make_monkey()
        done = monkey.unleash([
            CpuThrottle(host="node2", at=0.0, duration=5.0, severity="moderate")])
        cluster.engine.run(until=cluster.engine.timeout(1.0))
        low, high = SEVERITY_RANGES["cpu_throttle"]["moderate"]
        assert low <= cluster.host("node2").cpu_throttle <= high
        cluster.run(done)
        assert cluster.host("node2").cpu_throttle == 1.0

    def test_nic_degrade_applies_and_restores(self):
        cluster, monkey = make_monkey()
        done = monkey.unleash([
            NicDegrade(host="node3", at=0.0, duration=5.0, severity="severe")])
        cluster.engine.run(until=cluster.engine.timeout(1.0))
        low, high = SEVERITY_RANGES["nic_degrade"]["severe"]
        assert low <= cluster.network.link_factor("node3") <= high
        cluster.run(done)
        assert cluster.network.link_factor("node3") == 1.0

    def test_intermittent_latency_flaps_and_clears(self):
        cluster, monkey = make_monkey()
        done = monkey.unleash([IntermittentLatency(
            host="node1", at=0.0, duration=10.0, severity="severe", period=4.0)])
        engine = cluster.engine
        engine.run(until=engine.timeout(1.0))
        assert cluster.network.extra_latency("node1") > 0.0   # on-phase
        engine.run(until=engine.timeout(2.0))                 # t=3: off-phase
        assert cluster.network.extra_latency("node1") == 0.0
        engine.run(until=engine.timeout(2.0))                 # t=5: on again
        assert cluster.network.extra_latency("node1") > 0.0
        cluster.run(done)
        assert cluster.network.extra_latency("node1") == 0.0

    def test_storm_hits_every_victim_then_restores_all(self):
        cluster, monkey = make_monkey(6)
        victims = ("node1", "node2", "node3")
        done = monkey.unleash([FailSlowStorm(
            victims=victims, at=0.0, duration=20.0, severity="severe")])
        cluster.engine.run(until=cluster.engine.timeout(2.0))
        degraded = 0
        for v in victims:
            host = cluster.host(v)
            if (host.disk.slowdown > 1.0 or host.cpu_throttle > 1.0
                    or cluster.network.link_factor(v) < 1.0
                    or cluster.network.extra_latency(v) > 0.0):
                degraded += 1
        assert degraded == len(victims)
        cluster.run(done)
        for v in victims:
            host = cluster.host(v)
            assert host.disk.slowdown == 1.0
            assert host.cpu_throttle == 1.0
            assert cluster.network.link_factor(v) == 1.0
            assert cluster.network.extra_latency(v) == 0.0


class TestScenarioGeneration:
    def test_fail_slow_scenarios_are_seed_deterministic(self):
        def gen(seed):
            cluster, monkey = make_monkey(6, seed=seed)
            return [(s.kind, s.host, s.at, s.duration, s.severity)
                    for s in monkey.fail_slow_scenarios(10, horizon=100.0)]
        assert gen(5) == gen(5)
        assert gen(5) != gen(6)

    def test_generated_scenarios_respect_the_vocabulary(self):
        _, monkey = make_monkey(6)
        for s in monkey.fail_slow_scenarios(20, horizon=100.0):
            assert s.kind in FAIL_SLOW_KINDS
            assert s.severity in SEVERITIES
            assert 0.0 <= s.at < 100.0

    def test_kind_and_severity_filters(self):
        _, monkey = make_monkey(6)
        out = monkey.fail_slow_scenarios(
            15, horizon=50.0, kinds=("disk_stall",), severities=("severe",))
        assert all(s.kind == "disk_stall" and s.severity == "severe"
                   for s in out)

    def test_fault_model_draws_fail_slow_scenarios(self):
        _, monkey = make_monkey(6, seed=2)
        fault = FaultModel(fail_slow_rate=0.9, fail_slow_severity="mild")
        out = monkey.scenarios_from_fault_model(
            fault, monkey.cluster.host_names, horizon=60.0)
        gray = [s for s in out if s.kind in FAIL_SLOW_KINDS]
        assert gray, "0.9 rate over 6 hosts drew nothing"
        assert all(s.severity == "mild" for s in gray)


def _gray_read_run(shuffle_seed):
    """One seeded fail-slow storm over hedged HDFS reads -> signature."""
    cluster = Cluster(6, seed=13)
    if shuffle_seed is not None:
        cluster.engine.enable_schedule_shuffle(shuffle_seed)
    engine = cluster.engine
    fs = Hdfs(cluster, replication=3)
    fs.enable_gray_detection()
    fs.enable_hedged_reads()
    monkey = ChaosMonkey(cluster)
    client = fs.client("node0")
    cluster.run(engine.process(
        client.write_synthetic("/fuzz/video", 24 * MiB)))
    fs.start()
    engine.run(until=engine.timeout(60.0))   # prime trackers + detectors

    monkey.unleash([FailSlowStorm(
        victims=("node1", "node2"), at=5.0, duration=40.0,
        severity="severe")])

    durations = []
    suspects: list[str] = []

    def traffic():
        for _ in range(12):
            yield engine.timeout(5.0)
            t0 = engine.now
            yield from client.read_file("/fuzz/video")
            durations.append(round(engine.now - t0, 9))

    def sampler():
        # mid-storm: exact phi values are continuous functions of the
        # arrival instants and legitimately wobble under a shuffled
        # schedule; the *verdicts* (suspect or not at the quarantine
        # threshold) must not
        yield engine.timeout(35.0)
        suspects.extend(t for t in fs.detectors.targets()
                        if fs.detectors.suspect(t, 8.0))

    engine.process(traffic(), name="gray-traffic")
    engine.process(sampler(), name="gray-sampler")
    engine.run(until=engine.timeout(80.0))
    fs.stop()
    cluster.run()
    hedge = fs.hedge
    return {
        "durations": tuple(durations),
        "hedged": hedge.budget.spent,
        "denied": hedge.budget.denied,
        "suspects": tuple(suspects),
        "dead": sorted(fs.namenode.dead_datanodes),
        "end": engine.now,
    }


def test_fail_slow_storm_report_is_shuffle_invariant():
    report = fuzz_schedules(_gray_read_run, shuffles=8, seed=2)
    assert report.ok, report.summary()
