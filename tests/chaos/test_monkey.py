"""ChaosMonkey unit tests: primitives, scenarios, watchers, reporting."""

import pytest

from repro.chaos import (
    ChaosMonkey,
    ChaosReport,
    DiskSlowdown,
    HostCrash,
    LinkCut,
    LinkDegradation,
    NetworkPartition,
    VmKill,
)
from repro.common.errors import ConfigError
from repro.hardware import Cluster
from repro.mapreduce import FaultModel


def make_monkey(n_hosts=4, seed=0):
    cluster = Cluster(n_hosts, seed=seed)
    return cluster, ChaosMonkey(cluster)


class TestScenarioValidation:
    def test_negative_start_time(self):
        with pytest.raises(ConfigError):
            HostCrash("node1", at=-1.0)

    def test_nonpositive_recovery_delays(self):
        with pytest.raises(ConfigError):
            HostCrash("node1", at=0.0, recover_after=0.0)
        with pytest.raises(ConfigError):
            LinkCut("node1", at=0.0, restore_after=-5.0)

    def test_degradation_factor_bounds(self):
        with pytest.raises(ConfigError):
            LinkDegradation("node1", factor=1.5, at=0.0)
        with pytest.raises(ConfigError):
            DiskSlowdown("node1", factor=0.5, at=0.0)

    def test_empty_partition(self):
        with pytest.raises(ConfigError):
            NetworkPartition(isolated=(), at=0.0)


class TestUnleash:
    def test_host_crash_and_reboot_on_schedule(self):
        cluster, monkey = make_monkey()
        host = cluster.host("node1")
        run = monkey.unleash([HostCrash("node1", at=5.0, recover_after=10.0)])

        def probe():
            yield cluster.engine.timeout(6.0)
            assert not host.alive
            yield cluster.engine.timeout(10.0)  # t = 16 > 5 + 10
            assert host.alive

        p = cluster.engine.process(probe())
        report = cluster.run(run)
        cluster.run(p)
        assert report is monkey.report
        assert report.fault_counts() == {"host_crash": 1, "host_recover": 1}
        assert [f.time for f in report.faults] == pytest.approx([5.0, 15.0])

    def test_concurrent_scenarios(self):
        cluster, monkey = make_monkey()
        report = cluster.run(monkey.unleash([
            LinkCut("node1", at=2.0, restore_after=3.0),
            DiskSlowdown("node2", 4.0, at=1.0, restore_after=2.0),
            NetworkPartition(("node3",), at=4.0, heal_after=1.0),
        ]))
        kinds = report.fault_counts()
        assert kinds["link_cut"] == 1 and kinds["link_restore"] == 1
        assert kinds["disk_slowdown"] == 1 and kinds["disk_restore"] == 1
        assert kinds["partition"] == 1 and kinds["partition_heal"] == 1
        # everything was undone
        assert cluster.network.reachable("node0", "node1")
        assert cluster.network.reachable("node0", "node3")
        assert cluster.host("node2").disk.slowdown == 1.0

    def test_degradation_applied_then_restored(self):
        cluster, monkey = make_monkey()
        run = monkey.unleash([
            LinkDegradation("node1", factor=0.25, at=1.0, restore_after=4.0)])

        def probe():
            yield cluster.engine.timeout(2.0)
            assert cluster.network.link_factor("node1") == pytest.approx(0.25)

        p = cluster.engine.process(probe())
        cluster.run(run)
        cluster.run(p)
        assert cluster.network.link_factor("node1") == pytest.approx(1.0)

    def test_every_injection_is_logged_under_chaos_source(self):
        cluster, monkey = make_monkey()
        cluster.run(monkey.unleash([HostCrash("node1", at=0.5)]))
        assert cluster.log.records(source="chaos", kind="chaos_host_crash")

    def test_kill_vm_requires_cloud(self):
        cluster, monkey = make_monkey()
        with pytest.raises(ConfigError, match="cloud"):
            monkey.kill_vm("ghost-vm")


class TestScenarioGeneration:
    def test_random_scenarios_sorted_and_seeded(self):
        cluster1, m1 = make_monkey(seed=42)
        cluster2, m2 = make_monkey(seed=42)
        s1 = m1.random_scenarios(10, horizon=100.0)
        s2 = m2.random_scenarios(10, horizon=100.0)
        assert s1 == s2  # bit-reproducible from the cluster seed
        assert [s.at for s in s1] == sorted(s.at for s in s1)
        assert all(0 <= s.at < 100.0 for s in s1)
        cluster3, m3 = make_monkey(seed=43)
        assert m3.random_scenarios(10, horizon=100.0) != s1

    def test_random_scenarios_validation(self):
        _, monkey = make_monkey()
        with pytest.raises(ConfigError):
            monkey.random_scenarios(-1, horizon=10.0)
        with pytest.raises(ConfigError):
            monkey.random_scenarios(3, horizon=0.0)
        with pytest.raises(ConfigError):
            monkey.random_scenarios(3, horizon=10.0, kinds=("meteor_strike",))

    def test_scenarios_from_fault_model(self):
        _, monkey = make_monkey()
        none = monkey.scenarios_from_fault_model(
            FaultModel(), ["node1", "node2"], horizon=50.0)
        assert none == []
        _, eager = make_monkey(seed=5)
        crashes = eager.scenarios_from_fault_model(
            FaultModel(tracker_crash_rate=0.999), ["node1", "node2", "node3"],
            horizon=50.0)
        assert len(crashes) == 3
        assert all(isinstance(s, HostCrash) for s in crashes)
        assert [s.at for s in crashes] == sorted(s.at for s in crashes)


class TestWatchers:
    def test_watch_records_positive_ttr(self):
        cluster, monkey = make_monkey()
        state = {"ok": True}

        def fault():
            yield cluster.engine.timeout(9.5)
            state["ok"] = False
            yield cluster.engine.timeout(7.0)
            state["ok"] = True

        cluster.engine.process(fault())
        w = monkey.watch("test", "thing", lambda: state["ok"], since=8.0)
        rec = cluster.run(w)
        assert rec is not None
        assert rec.layer == "test"
        assert rec.injected_at == 8.0
        assert rec.ttr > 0
        assert rec.recovered_at >= 16.5

    def test_armed_watcher_ignores_healthy_prefault_state(self):
        """A watcher armed for a future fault must not see the healthy
        pre-fault state (or pre-fault flapping) as an instant recovery."""
        cluster, monkey = make_monkey()
        state = {"ok": True}

        def flap():  # transient unrelated degradation before the fault
            yield cluster.engine.timeout(2.0)
            state["ok"] = False
            yield cluster.engine.timeout(1.0)
            state["ok"] = True
            # the real fault
            yield cluster.engine.timeout(17.0)  # t = 20
            state["ok"] = False
            yield cluster.engine.timeout(5.0)   # t = 25
            state["ok"] = True

        cluster.engine.process(flap())
        rec = cluster.run(monkey.watch("test", "thing", lambda: state["ok"],
                                       since=19.0))
        assert rec.ttr > 0
        assert rec.recovered_at >= 25.0

    def test_watch_timeout_records_nothing(self):
        cluster, monkey = make_monkey()

        def fault():
            yield cluster.engine.timeout(1.0)

        cluster.engine.process(fault())
        rec = cluster.run(monkey.watch(
            "test", "thing", lambda: False, timeout=5.0))
        assert rec is None
        assert monkey.report.recoveries == []
        assert cluster.log.records(source="chaos", kind="watch_timeout")


class TestReport:
    def test_mttr_math(self):
        r = ChaosReport()
        r.record_recovery("hdfs", "replication", 10.0, 40.0)
        r.record_recovery("iaas", "vm-1", 10.0, 80.0)
        r.record_recovery("iaas", "vm-2", 10.0, 100.0)
        assert r.mttr("hdfs") == pytest.approx(30.0)
        assert r.mttr("iaas") == pytest.approx(80.0)
        assert r.mttr() == pytest.approx(63.333333)
        assert r.mttr("video") is None
        assert r.mttr_by_layer() == {
            "hdfs": pytest.approx(30.0), "iaas": pytest.approx(80.0)}

    def test_summary_table(self):
        r = ChaosReport()
        r.record_fault(1.0, "host_crash", "node1")
        r.record_recovery("iaas", "vm-1", 1.0, 31.0)
        text = r.summary()
        assert "chaos report (1 faults injected)" in text
        assert "iaas" in text and "30.00" in text
