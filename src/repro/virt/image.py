"""Disk images and the image datastore.

OpenNebula keeps master images in a datastore on the front-end and clones
them to hosts when a VM is deployed (its *transfer manager* drivers).  Here
an :class:`ImageStore` lives on a named host; cloning an image to another
host costs a network transfer plus a destination disk write, which is
exactly the "prolog" stage of the OpenNebula VM lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..common.errors import ConfigError, DriverError
from ..hardware import Cluster


@dataclass(frozen=True)
class DiskImage:
    """An immutable master image (e.g. 'ubuntu-10.04.qcow2')."""

    name: str
    size: int              # bytes
    fmt: str = "qcow2"     # qcow2 | raw
    os_type: str = "linux"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigError(f"image {self.name}: size must be > 0")
        if self.fmt not in ("qcow2", "raw"):
            raise ConfigError(f"image {self.name}: unknown format {self.fmt}")


class ImageStore:
    """Master-image repository living on one host (the front-end)."""

    def __init__(self, cluster: Cluster, host_name: str) -> None:
        if host_name not in cluster.host_names:
            raise ConfigError(f"image store host {host_name} not in cluster")
        self.cluster = cluster
        self.host_name = host_name
        self._images: dict[str, DiskImage] = {}

    def register(self, image: DiskImage) -> DiskImage:
        if image.name in self._images:
            raise DriverError(f"image {image.name} already registered")
        self._images[image.name] = image
        return image

    def get(self, name: str) -> DiskImage:
        try:
            return self._images[name]
        except KeyError:
            raise DriverError(f"no image named {name!r} in datastore") from None

    def __contains__(self, name: str) -> bool:
        return name in self._images

    def list_images(self) -> list[DiskImage]:
        return sorted(self._images.values(), key=lambda i: i.name)

    def clone_to(self, image_name: str, dst_host: str) -> Generator:
        """Process: copy a master image to *dst_host* (network + disk write)."""
        image = self.get(image_name)
        cluster = self.cluster

        def _clone():
            yield cluster.network.transfer(self.host_name, dst_host, image.size)
            yield cluster.engine.process(cluster.host(dst_host).disk.write(image.size))
            return image

        return _clone()
