"""Virtualization substrate: VMs, images, hypervisors, dirty-page model."""

from .dirty import DirtyPageModel
from .hypervisor import (
    HYPERVISOR_TYPES,
    BareMetal,
    Emulator,
    Hypervisor,
    Kvm,
    KvmVirtio,
    XenPv,
    make_hypervisor,
)
from .image import DiskImage, ImageStore
from .vm import VirtualMachine, VmState, WorkKind

__all__ = [
    "BareMetal",
    "DirtyPageModel",
    "DiskImage",
    "Emulator",
    "HYPERVISOR_TYPES",
    "Hypervisor",
    "ImageStore",
    "Kvm",
    "KvmVirtio",
    "VirtualMachine",
    "VmState",
    "WorkKind",
    "XenPv",
    "make_hypervisor",
]
