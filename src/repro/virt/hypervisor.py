"""Hypervisor models: KVM (hardware-assisted full virt), Xen (para-virt),
a pure emulator, and bare metal as the baseline.

Each hypervisor runs on one :class:`~repro.hardware.PhysicalHost`, owns the
guest domains placed there, and charges guest work the virtualization
overhead of its mode (Section II.B of the paper; constants in
:mod:`repro.common.calibration` with sources).

The overhead model is multiplicative on duration plus a fixed per-batch
exit cost -- full virtualization pays more VM exits on I/O, which is what
makes para-virtualized I/O faster in the paper's discussion.
"""

from __future__ import annotations

from typing import Generator

from ..common.calibration import Calibration
from ..common.errors import CapacityError, LifecycleError
from ..hardware import PhysicalHost
from .vm import VirtualMachine, VmState, WorkKind


class Hypervisor:
    """Base class; subclasses pin down the virtualization mode."""

    #: human name of the virtualization mode ("full", "para", "emul", "bare")
    mode: str = "bare"

    def __init__(self, host: PhysicalHost, cal: Calibration | None = None) -> None:
        self.host = host
        self.cal = cal or host.cal
        self.domains: dict[str, VirtualMachine] = {}

    # -- overheads ---------------------------------------------------------------

    def overhead(self, kind: WorkKind) -> float:
        """Multiplicative time factor for this mode and work kind."""
        v = self.cal.virt
        table = {
            ("bare", WorkKind.CPU): v.cpu_bare,
            ("bare", WorkKind.IO): v.io_bare,
            ("para", WorkKind.CPU): v.cpu_para,
            ("para", WorkKind.IO): v.io_para,
            ("full", WorkKind.CPU): v.cpu_full,
            ("full", WorkKind.IO): v.io_full,
            ("emul", WorkKind.CPU): v.cpu_emul,
            ("emul", WorkKind.IO): v.io_emul,
            # KVM with virtio drivers: hardware-assisted CPU, para-style I/O
            ("virtio", WorkKind.CPU): v.cpu_full,
            ("virtio", WorkKind.IO): v.io_para,
        }
        return table[(self.mode, kind)]

    def exit_cost(self, kind: WorkKind) -> float:
        """Fixed per-batch trap cost (seconds); bare metal pays none."""
        if self.mode == "bare":
            return 0.0
        # I/O batches cause many more exits than CPU batches.
        mult = 8.0 if kind == WorkKind.IO else 1.0
        return self.cal.virt.exit_cost * mult

    # -- domain lifecycle ---------------------------------------------------------

    def define(self, vm: VirtualMachine) -> None:
        """Place *vm* on this hypervisor (allocates guest RAM on the host)."""
        if vm.name in self.domains:
            raise LifecycleError(f"domain {vm.name} already defined on {self.host.name}")
        if vm.hypervisor is not None:
            raise LifecycleError(f"domain {vm.name} is already placed elsewhere")
        self.host.allocate_memory(vm.memory)
        self.domains[vm.name] = vm
        vm.hypervisor = self
        vm.state = VmState.DEFINED

    def start(self, vm: VirtualMachine) -> None:
        self._require_mine(vm)
        vm.require_state(VmState.DEFINED, VmState.SHUTOFF)
        vm.state = VmState.RUNNING

    def pause(self, vm: VirtualMachine) -> None:
        self._require_mine(vm)
        vm.require_state(VmState.RUNNING)
        vm.state = VmState.PAUSED

    def resume(self, vm: VirtualMachine) -> None:
        self._require_mine(vm)
        vm.require_state(VmState.PAUSED)
        vm.state = VmState.RUNNING

    def shutdown(self, vm: VirtualMachine) -> None:
        self._require_mine(vm)
        vm.require_state(VmState.RUNNING, VmState.PAUSED)
        vm.state = VmState.SHUTOFF

    def undefine(self, vm: VirtualMachine) -> None:
        """Remove the domain and release its RAM."""
        self._require_mine(vm)
        if vm.state == VmState.RUNNING:
            raise LifecycleError(f"cannot undefine running domain {vm.name}")
        del self.domains[vm.name]
        self.host.free_memory(vm.memory)
        vm.hypervisor = None
        # state stays SHUTOFF/DEFINED as it was; a re-define resets it.

    def eject(self, vm: VirtualMachine) -> None:
        """Forcibly detach a domain (migration handoff / host failure)."""
        self._require_mine(vm)
        del self.domains[vm.name]
        self.host.free_memory(vm.memory)
        vm.hypervisor = None

    def adopt(self, vm: VirtualMachine, state: VmState) -> None:
        """Attach an ejected domain (migration destination side)."""
        if vm.name in self.domains or vm.hypervisor is not None:
            raise LifecycleError(f"cannot adopt {vm.name}: already placed")
        self.host.allocate_memory(vm.memory)
        self.domains[vm.name] = vm
        vm.hypervisor = self
        vm.state = state

    # -- guest execution ------------------------------------------------------------

    def execute(self, vm: VirtualMachine, cycles: float, kind: WorkKind) -> Generator:
        """Process: run guest *cycles*, charged with this mode's overhead."""
        self._require_mine(vm)
        if cycles < 0:
            raise CapacityError(f"negative guest cycles: {cycles}")
        factor = self.overhead(kind)
        fixed = self.exit_cost(kind)
        host = self.host
        engine = host.engine

        def _run():
            vm.require_state(VmState.RUNNING)
            if fixed:
                yield engine.timeout(fixed)
            yield engine.process(host.compute(cycles, overhead=factor))
            vm.cpu_seconds_run += cycles * factor / host.cpu_hz
            return cycles

        return _run()

    def memory_committed(self) -> int:
        return sum(vm.memory for vm in self.domains.values())

    def _require_mine(self, vm: VirtualMachine) -> None:
        if self.domains.get(vm.name) is not vm:
            raise LifecycleError(
                f"domain {vm.name} is not managed by hypervisor on {self.host.name}"
            )


class BareMetal(Hypervisor):
    """No virtualization: the baseline for overhead comparisons (E01)."""

    mode = "bare"


class Kvm(Hypervisor):
    """KVM: hardware-assisted *full* virtualization (kvm.ko + qemu-kvm)."""

    mode = "full"


class XenPv(Hypervisor):
    """Xen in para-virtualized mode: modified guest, hypercall ABI."""

    mode = "para"


class Emulator(Hypervisor):
    """Pure software emulation (plain QEMU): the slow extreme of Figure 1."""

    mode = "emul"


class KvmVirtio(Hypervisor):
    """KVM with virtio paravirtual device drivers.

    What production KVM clouds of the paper's era actually deployed: full
    (hardware-assisted) CPU virtualization plus para-virtualized I/O paths,
    recovering most of the full-virt I/O penalty (Zhang et al., NPC'10).
    """

    mode = "virtio"


HYPERVISOR_TYPES: dict[str, type[Hypervisor]] = {
    "bare": BareMetal,
    "kvm": Kvm,
    "kvm-virtio": KvmVirtio,
    "xen": XenPv,
    "emul": Emulator,
}


def make_hypervisor(kind: str, host: PhysicalHost, cal: Calibration | None = None) -> Hypervisor:
    """Factory: build a hypervisor of *kind* ('kvm', 'xen', 'bare', 'emul')."""
    try:
        cls = HYPERVISOR_TYPES[kind]
    except KeyError:
        raise LifecycleError(
            f"unknown hypervisor kind {kind!r}; choose from {sorted(HYPERVISOR_TYPES)}"
        ) from None
    return cls(host, cal)
