"""The virtual machine object as the hypervisor sees it.

A :class:`VirtualMachine` is a bundle of vCPUs, guest RAM, a disk image and
a dirty-page model.  It executes *guest work* (CPU- or I/O-bound cycle
batches) through whatever hypervisor currently hosts it, paying that
hypervisor's virtualization overhead -- this is the mechanism behind the
paper's full- vs para-virtualization comparison (Section II.B).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Generator

from ..common.errors import LifecycleError
from .dirty import DirtyPageModel
from .image import DiskImage

if TYPE_CHECKING:  # pragma: no cover
    from .hypervisor import Hypervisor


class VmState(enum.Enum):
    """Hypervisor-level (libvirt-ish) domain states."""

    DEFINED = "defined"
    RUNNING = "running"
    PAUSED = "paused"
    SHUTOFF = "shutoff"


class WorkKind(enum.Enum):
    """Whether a guest work batch is CPU-bound or I/O-bound."""

    CPU = "cpu"
    IO = "io"


class VirtualMachine:
    """A guest domain."""

    def __init__(
        self,
        name: str,
        *,
        vcpus: int,
        memory: int,
        image: DiskImage,
        dirty: DirtyPageModel | None = None,
    ) -> None:
        if vcpus < 1 or memory <= 0:
            raise LifecycleError(f"vm {name}: bad shape vcpus={vcpus} memory={memory}")
        self.name = name
        self.vcpus = vcpus
        self.memory = memory
        self.image = image
        self.dirty = dirty or DirtyPageModel(memory=memory, dirty_rate=0.0)
        self.state = VmState.DEFINED
        self.hypervisor: "Hypervisor | None" = None
        self.cpu_seconds_run = 0.0

    @property
    def host_name(self) -> str | None:
        return self.hypervisor.host.name if self.hypervisor else None

    def require_state(self, *allowed: VmState) -> None:
        if self.state not in allowed:
            raise LifecycleError(
                f"vm {self.name}: operation requires state in "
                f"{[s.value for s in allowed]}, but is {self.state.value}"
            )

    def run_work(self, cycles: float, kind: WorkKind = WorkKind.CPU) -> Generator:
        """Process: execute a batch of guest cycles through the hypervisor."""
        self.require_state(VmState.RUNNING)
        assert self.hypervisor is not None
        return self.hypervisor.execute(self, cycles, kind)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<VM {self.name} {self.state.value} vcpus={self.vcpus} "
            f"mem={self.memory} on={self.host_name}>"
        )
