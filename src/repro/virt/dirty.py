"""Writable-working-set model of guest memory dirtying.

Live pre-copy migration (Clark et al., NSDI'05 -- reference [20] of the
paper) iteratively re-sends pages the guest dirtied during the previous
round.  Convergence depends on the guest's *dirty rate* relative to link
bandwidth and on the size of its hot "writable working set" (WWS): pages
rewritten so fast they are only worth sending in the final stop-and-copy.

The model here is the standard analytic one used by migration simulators:

* the guest dirties pages at ``dirty_rate`` bytes/s while running;
* dirtying concentrates on a hot set of ``wws_bytes``; a round of duration
  *t* therefore leaves ``min(wws_bytes + cold_spill, dirty_rate * t)``
  bytes dirty for the next round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..common.errors import ConfigError


@dataclass
class DirtyPageModel:
    """Per-VM memory-write behaviour."""

    memory: int              # total guest RAM, bytes
    dirty_rate: float        # bytes/s dirtied while the guest runs
    wws_fraction: float = 0.1  # hot-set size as a fraction of RAM
    page_size: int = 4096

    def __post_init__(self) -> None:
        if self.memory <= 0:
            raise ConfigError("DirtyPageModel: memory must be > 0")
        if self.dirty_rate < 0:
            raise ConfigError("DirtyPageModel: dirty_rate must be >= 0")
        if not 0.0 <= self.wws_fraction <= 1.0:
            raise ConfigError("DirtyPageModel: wws_fraction outside [0,1]")

    @property
    def wws_bytes(self) -> float:
        return self.memory * self.wws_fraction

    def dirtied_during(self, seconds: float) -> float:
        """Bytes left dirty after the guest ran for *seconds* during a round.

        Bounded above by total RAM (a page dirty twice is still one page)
        and concentrated on the WWS: writes beyond the hot set touch cold
        pages with probability ~5%, saturating exponentially toward (but
        never reaching) total RAM.  This preserves the convergent/divergent
        dichotomy that matters for pre-copy.
        """
        if seconds <= 0:
            return 0.0
        raw = self.dirty_rate * seconds
        hot = self.wws_bytes
        if raw <= hot:
            return float(raw)
        cold_span = self.memory - hot
        if cold_span <= 0:
            return float(min(raw, self.memory))
        cold_budget = (raw - hot) * 0.05
        cold = cold_span * -math.expm1(-cold_budget / cold_span)
        return float(min(self.memory, hot + cold))

    def pages(self, nbytes: float) -> int:
        """Whole pages covering *nbytes*."""
        return int(-(-nbytes // self.page_size))
