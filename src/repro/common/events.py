"""Structured event log.

Every subsystem appends :class:`LogRecord` entries to a shared
:class:`EventLog` -- the simulated analogue of OpenNebula's ``oned.log`` plus
Hadoop's job history.  Tests and benches assert on the log instead of
scraping stdout, and examples render it to show "what the web UI showed"
(e.g. the live-migration screenshots, Figures 8-10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class LogRecord:
    """One timestamped event."""

    time: float
    source: str          # component name, e.g. "one.core", "hdfs.namenode"
    kind: str            # machine-matchable event kind, e.g. "vm_state"
    message: str         # human-readable line
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time:12.6f}] {self.source:<16} {self.kind:<20} {self.message}"


class EventLog:
    """Append-only in-memory log with simple filtering helpers."""

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._records: list[LogRecord] = []
        self._clock = clock or (lambda: 0.0)
        self._subscribers: list[Callable[[LogRecord], None]] = []

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulation clock after construction."""
        self._clock = clock

    def emit(self, source: str, kind: str, message: str, **data: Any) -> LogRecord:
        rec = LogRecord(self._clock(), source, kind, message, data)
        self._records.append(rec)
        for fn in self._subscribers:
            fn(rec)
        return rec

    def subscribe(self, fn: Callable[[LogRecord], None]) -> None:
        """Invoke *fn* for every future record (used by the monitoring UI)."""
        self._subscribers.append(fn)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def records(
        self,
        *,
        source: str | None = None,
        kind: str | None = None,
        since: float | None = None,
    ) -> list[LogRecord]:
        """Filtered view of the log."""
        out = []
        for r in self._records:
            if source is not None and r.source != source:
                continue
            if kind is not None and r.kind != kind:
                continue
            if since is not None and r.time < since:
                continue
            out.append(r)
        return out

    def count(self, *, source: str | None = None, kind: str | None = None) -> int:
        """Number of records matching the filters."""
        return len(self.records(source=source, kind=kind))

    def between(self, start: float, end: float) -> list[LogRecord]:
        """Records with ``start <= time < end`` (a bounded chaos window)."""
        return [r for r in self._records if start <= r.time < end]

    def last(self, kind: str) -> LogRecord | None:
        """Most recent record of *kind*, or None."""
        for r in reversed(self._records):
            if r.kind == kind:
                return r
        return None

    def tail(self, n: int = 20) -> list[LogRecord]:
        return self._records[-n:]
