"""Chrome-trace export of the event log and the span tree.

Dump a simulation's :class:`~repro.common.events.EventLog` -- and, when a
:class:`~repro.obs.Tracer` is passed, its span tree -- in the Trace Event
Format understood by ``chrome://tracing`` / Perfetto.  Log records become
instant events; spans become nested ``ph: "B"/"E"`` duration pairs, so
one upload renders as a flame: portal request -> FUSE write -> HDFS
pipeline -> transcode fan-out -> publish.

Perfetto requires B/E events on one thread row to be properly nested, but
a simulation runs sibling spans concurrently (the transcode fan-out).
Spans are therefore assigned to *lanes*: a span lands on its parent's
lane when it still nests there, otherwise on the first lane where every
already-placed span is either disjoint or fully enclosing/enclosed --
so every lane is a valid flame and parallelism shows up as extra rows.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from .events import EventLog

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.spans import Span, Tracer

#: microseconds per simulated second in the emitted trace
_SCALE = 1_000_000


def to_chrome_trace(log: EventLog, *, tracer: "Tracer | None" = None,
                    process_name: str = "repro") -> str:
    """Serialize *log* (and optionally *tracer*) as Trace Event JSON.

    Every log record becomes an instant event (`ph: "i"`) on its source's
    thread; sources are mapped to stable thread ids in first-seen order.
    Spans from *tracer* are emitted as balanced ``B``/``E`` pairs on lane
    threads appended after the log threads.
    """
    tids: dict[str, int] = {}
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": process_name},
    }]
    for rec in log:
        tid = tids.setdefault(rec.source, len(tids) + 1)
        events.append({
            "name": rec.kind,
            "cat": rec.source,
            "ph": "i",
            "s": "t",
            "pid": 1,
            "tid": tid,
            "ts": round(rec.time * _SCALE, 3),
            "args": {"message": rec.message, **_jsonable(rec.data)},
        })
    for source, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": source},
        })
    if tracer is not None:
        events.extend(_span_events(tracer, first_tid=len(tids) + 1))
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                      sort_keys=True)


def _span_events(tracer: "Tracer", first_tid: int) -> list[dict]:
    """Balanced B/E pairs for every finished span, grouped into lanes."""
    spans = [s for s in tracer if s.finished]
    if not spans:
        return []
    lane_of = _assign_lanes(tracer, spans)
    n_lanes = max(lane_of.values()) + 1

    # Per lane, order events by rebuilding the nesting forest and walking
    # it depth-first -- guarantees every E closes the most recent open B
    # even for zero-duration spans.
    events: list[dict] = []
    lane_names: dict[int, str] = {}
    for lane in range(n_lanes):
        members = sorted(
            (s for s in spans if lane_of[s.span_id] == lane),
            key=lambda s: (s.start, -s.duration, s.span_id),
        )
        lane_names[lane] = f"trace:{members[0].source or 'spans'}"
        stack: list["Span"] = []
        tid = first_tid + lane
        for span in members:
            while stack and not _encloses(stack[-1], span):
                events.append(_end_event(stack.pop(), tid))
            events.append(_begin_event(span, tid))
            stack.append(span)
        while stack:
            events.append(_end_event(stack.pop(), tid))
    for lane, name in lane_names.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1,
            "tid": first_tid + lane, "args": {"name": name},
        })
    return events


def _assign_lanes(tracer: "Tracer", spans: list["Span"]) -> dict[int, int]:
    """Greedy lane assignment keeping each lane properly nested."""
    lanes: list[list["Span"]] = []
    lane_of: dict[int, int] = {}
    for span in sorted(spans, key=lambda s: (s.start, -s.duration, s.span_id)):
        preferred: list[int] = []
        if span.parent_id is not None and span.parent_id in lane_of:
            preferred.append(lane_of[span.parent_id])
        preferred.extend(i for i in range(len(lanes)) if i not in preferred)
        placed = None
        for i in preferred:
            if all(_compatible(other, span) for other in lanes[i]):
                placed = i
                break
        if placed is None:
            lanes.append([])
            placed = len(lanes) - 1
        lanes[placed].append(span)
        lane_of[span.span_id] = placed
    return lane_of


def _encloses(outer: "Span", inner: "Span") -> bool:
    return outer.start <= inner.start and inner.end <= outer.end


def _compatible(a: "Span", b: "Span") -> bool:
    """True when *a* and *b* can share a lane: disjoint or strictly nested."""
    if a.end <= b.start or b.end <= a.start:
        return True
    return _encloses(a, b) or _encloses(b, a)


def _begin_event(span: "Span", tid: int) -> dict:
    return {
        "name": span.name,
        "cat": span.source or "span",
        "ph": "B",
        "pid": 1,
        "tid": tid,
        "ts": round(span.start * _SCALE, 3),
        "args": {"span_id": span.span_id,
                 "parent_id": span.parent_id,
                 "status": span.status,
                 **_jsonable(span.labels)},
    }


def _end_event(span: "Span", tid: int) -> dict:
    return {
        "name": span.name,
        "ph": "E",
        "pid": 1,
        "tid": tid,
        "ts": round(span.end * _SCALE, 3),
    }


def _jsonable(data: dict) -> dict:
    out = {}
    for k, v in data.items():
        if isinstance(v, (str, int, float, bool)) or v is None:
            out[k] = v
        else:
            out[k] = repr(v)
    return out
