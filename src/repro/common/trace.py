"""Chrome-trace export of the event log.

Dump a simulation's :class:`~repro.common.events.EventLog` in the Trace
Event Format understood by ``chrome://tracing`` / Perfetto, with one row
per component.  Useful for eyeballing cross-layer timing (a migration
riding over an HDFS write, say) without adding any instrumentation.
"""

from __future__ import annotations

import json

from .events import EventLog

#: microseconds per simulated second in the emitted trace
_SCALE = 1_000_000


def to_chrome_trace(log: EventLog, *, process_name: str = "repro") -> str:
    """Serialize *log* as a Trace Event Format JSON string.

    Every record becomes an instant event (`ph: "i"`) on its source's
    thread; sources are mapped to stable thread ids in first-seen order.
    """
    tids: dict[str, int] = {}
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": process_name},
    }]
    for rec in log:
        tid = tids.setdefault(rec.source, len(tids) + 1)
        events.append({
            "name": rec.kind,
            "cat": rec.source,
            "ph": "i",
            "s": "t",
            "pid": 1,
            "tid": tid,
            "ts": round(rec.time * _SCALE, 3),
            "args": {"message": rec.message, **_jsonable(rec.data)},
        })
    for source, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": source},
        })
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                      sort_keys=True)


def _jsonable(data: dict) -> dict:
    out = {}
    for k, v in data.items():
        if isinstance(v, (str, int, float, bool)) or v is None:
            out[k] = v
        else:
            out[k] = repr(v)
    return out
