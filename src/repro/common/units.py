"""Unit helpers and constants.

All sizes inside repro are plain integers in **bytes**, all durations plain
floats in **seconds**, all rates floats in **bytes/second** (or Hz for CPU).
These helpers exist so call sites read like the paper ("a 64 MiB block",
"a 1 Gb/s NIC") instead of raw powers of two.
"""

from __future__ import annotations

KB = 1000
MB = 1000**2
GB = 1000**3
TB = 1000**4

KiB = 1024
MiB = 1024**2
GiB = 1024**3
TiB = 1024**4

# Network rates are conventionally decimal bits/second.
Kbps = 1000 / 8.0
Mbps = 1000**2 / 8.0
Gbps = 1000**3 / 8.0

MHz = 1000.0**2
GHz = 1000.0**3

MS = 1e-3
US = 1e-6

MINUTE = 60.0
HOUR = 3600.0


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary prefixes, two decimals)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.2f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_rate(bytes_per_s: float) -> str:
    """Human-readable transfer rate in decimal bits/second."""
    bits = bytes_per_s * 8.0
    for unit in ("b/s", "Kb/s", "Mb/s", "Gb/s"):
        if abs(bits) < 1000.0 or unit == "Gb/s":
            return f"{bits:.2f} {unit}"
        bits /= 1000.0
    raise AssertionError("unreachable")


def fmt_duration(seconds: float) -> str:
    """Human-readable duration: us/ms/s/min as appropriate."""
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"
