"""Plain-text result tables for the benchmark harness.

Benches print the same kind of rows the paper's evaluation shows on screen.
Kept dependency-free and deterministic (no terminal-width probing).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
    floatfmt: str = ".3f",
) -> str:
    """Render an aligned ASCII table.

    Floats are formatted with *floatfmt*; everything else with ``str``.
    """
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, bool):
                cells.append("yes" if cell else "no")
            elif isinstance(cell, float):
                cells.append(format(cell, floatfmt))
            else:
                cells.append(str(cell))
        rendered.append(cells)

    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, c in enumerate(cells):
            widths[i] = max(widths[i], len(c))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out: list[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for cells in rendered:
        out.append(line(cells))
    return "\n".join(out)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                **kw: Any) -> None:  # pragma: no cover - I/O shim
    print(format_table(headers, rows, **kw))
    print()
