"""Exception hierarchy shared by every repro subsystem.

Each layer raises a subclass of :class:`ReproError` so callers can catch at
whatever granularity they need (``except ReproError`` at the top of a bench,
``except HdfsError`` inside the filesystem bridge, and so on).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigError(ReproError):
    """Invalid configuration value (negative capacity, unknown policy, ...)."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly."""


class CapacityError(ReproError):
    """A resource request exceeded what a host/pool can ever satisfy."""


class PlacementError(ReproError):
    """The capacity manager could not place a VM on any host."""


class LifecycleError(ReproError):
    """An operation is illegal in the VM's (or job's) current state."""


class DriverError(ReproError):
    """A virtualization/transfer/information driver operation failed."""


class MigrationError(ReproError):
    """Live migration could not start or complete."""


class FaultInjectionError(ReproError):
    """An injected fault (chaos engineering) made the operation fail."""


class DeadlineExceeded(ReproError):
    """A request/operation outlived its time budget (:mod:`repro.resilience`)."""


class OverloadError(ReproError):
    """Base for saturation-regime refusals: work shed instead of queued."""


class CircuitOpenError(OverloadError):
    """A circuit breaker is open: the downstream dependency is ejected."""


class AdmissionShedError(OverloadError):
    """An admission controller shed this work (queue full, cheaper class)."""


class RateLimitError(OverloadError):
    """A token bucket refused the request; carries the advertised wait.

    *retry_after* is the simulated seconds until the bucket can serve a
    request of the same cost again.
    """

    def __init__(self, message: str = "", *, retry_after: float = 0.0) -> None:
        super().__init__(message or "rate limited")
        self.retry_after = retry_after


class PartitionError(ReproError):
    """A transfer crossed a cut or partitioned network link."""


class HdfsError(ReproError):
    """Base for distributed-filesystem errors."""


class FileNotFoundInHdfs(HdfsError):
    """Requested path does not exist in the namespace."""


class FileAlreadyExists(HdfsError):
    """Create was called on an existing path without overwrite."""


class ReplicationError(HdfsError):
    """Not enough live DataNodes to satisfy a replication factor."""


class SafeModeError(HdfsError):
    """Mutation attempted while the NameNode is in safe mode."""


class FencedError(HdfsError):
    """A journal write carried a fencing epoch that has been superseded.

    Raised to a deposed active NameNode (and through it, to clients)
    once a newer writer has promised a higher epoch to a majority of
    journal nodes -- the write provably cannot commit.
    """


class QuorumLostError(HdfsError):
    """Fewer than a majority of journal nodes acknowledged an operation."""


class StandbyError(HdfsError):
    """The contacted NameNode cannot serve: down, deposed, or standby."""


class MapReduceError(ReproError):
    """Job submission/execution failure in the MapReduce layer."""


class TaskFailedError(MapReduceError):
    """A map or reduce attempt exhausted its retries."""


class ReconcileError(ReproError):
    """Invalid fleet spec or reconciler state transition."""


class SearchError(ReproError):
    """Indexing or query-parsing failure in the search engine."""


class MediaError(ReproError):
    """Invalid media file, codec, or container operation."""


class TranscodeError(MediaError):
    """A conversion step failed (bad segment boundaries, codec mismatch...)."""


class StreamingError(MediaError):
    """Playback session error (seek out of range, no such rendition...)."""


class WebError(ReproError):
    """Base for the web/portal layer."""


class HttpError(WebError):
    """Carries an HTTP status code (plus response headers) for the web model.

    *headers* are copied verbatim onto the error response; *retry_after*
    becomes a ``Retry-After`` header when the error is rendered into a
    response (the single formatting code path lives in
    ``repro.web.server.Response.json_error``).
    """

    def __init__(self, status: int, message: str = "",
                 *, retry_after: float | None = None,
                 headers: dict[str, str] | None = None) -> None:
        super().__init__(message or f"HTTP {status}")
        self.status = status
        self.retry_after = retry_after
        self.headers: dict[str, str] = dict(headers or {})


class AuthError(WebError):
    """Registration/login/session failure."""


class DatabaseError(WebError):
    """The mini relational engine rejected a statement."""
