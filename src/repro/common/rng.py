"""Seeded random streams.

Every stochastic component receives a :class:`RngStream` rather than calling
``numpy.random`` globals, so two runs with the same seed are bit-identical
and components do not perturb each other's randomness when one of them adds
an extra draw.

Streams are derived from a root seed plus a label using
``numpy.random.SeedSequence.spawn``-style key derivation, so e.g. the HDFS
placement stream is independent of the transcoder's noise stream.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np


class RngStream:
    """A labelled, independently seeded wrapper around numpy's Generator."""

    def __init__(self, seed: int, label: str = "root") -> None:
        self.seed = int(seed)
        self.label = label
        # Derive a child seed from (seed, label) deterministically.
        ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(_label_key(label),))
        self._gen = np.random.Generator(np.random.PCG64(ss))

    def child(self, label: str) -> "RngStream":
        """Derive an independent stream for a subcomponent."""
        return RngStream(self.seed, f"{self.label}/{label}")

    # -- thin delegation; only what the library actually uses ---------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self._gen.normal(mean, std))

    def lognormal_factor(self, sigma: float) -> float:
        """A multiplicative noise factor with median 1.0."""
        return float(self._gen.lognormal(mean=0.0, sigma=sigma))

    def exponential(self, mean: float) -> float:
        return float(self._gen.exponential(mean))

    def randint(self, low: int, high: int) -> int:
        """Integer in [low, high) like ``Generator.integers``."""
        return int(self._gen.integers(low, high))

    def choice(self, seq: Iterable[Any], k: int | None = None,
               replace: bool = True) -> Any:
        """Choose one element (k=None) or a list of k elements from *seq*."""
        seq = list(seq)
        if k is None:
            return seq[int(self._gen.integers(0, len(seq)))]
        idx = self._gen.choice(len(seq), size=k, replace=replace)
        return [seq[int(i)] for i in idx]

    def shuffle(self, seq: list) -> list:
        """Return a new shuffled copy of *seq*."""
        out = list(seq)
        self._gen.shuffle(out)
        return out

    def pareto_size(self, shape: float, scale: float) -> float:
        """Heavy-tailed size draw (video sizes, page popularity)."""
        return float((self._gen.pareto(shape) + 1.0) * scale)

    def zipf_rank(self, a: float, n: int) -> int:
        """A rank in [0, n) with Zipf(a) popularity (rank 0 most popular)."""
        while True:
            r = int(self._gen.zipf(a))
            if r <= n:
                return r - 1


def _label_key(label: str) -> int:
    """Stable 63-bit key from a label (Python's hash() is salted; avoid it)."""
    h = 1469598103934665603  # FNV-1a 64-bit offset basis
    for ch in label.encode("utf-8"):
        h ^= ch
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h >> 1
