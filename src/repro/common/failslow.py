"""The fail-slow (gray-failure) fault vocabulary.

Lives in :mod:`repro.common` so both the chaos layer (which injects the
faults) and the MapReduce fault model (which only *configures* them, and
may not import chaos under the layering rules) validate against one
shared set of names.  The calibrated severity ranges and the scenario
classes stay in :mod:`repro.chaos.failslow`.
"""

from __future__ import annotations

from .errors import FaultInjectionError

#: the fail-slow kinds every layer agrees on
FAIL_SLOW_KINDS = ("disk_stall", "nic_degrade", "cpu_throttle",
                   "intermittent_latency")

#: severity grades, mildest first
SEVERITIES = ("mild", "moderate", "severe")


def validate_fail_slow(kind: str, severity: str) -> None:
    """Reject unknown kinds/severities with an actionable message."""
    if kind not in FAIL_SLOW_KINDS:
        raise FaultInjectionError(
            f"unknown fail-slow kind {kind!r} "
            f"(choose from {', '.join(FAIL_SLOW_KINDS)})")
    if severity not in SEVERITIES:
        raise FaultInjectionError(
            f"unknown fail-slow severity {severity!r} for {kind} "
            f"(choose from {', '.join(SEVERITIES)})")
