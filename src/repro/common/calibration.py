"""Cost-model calibration constants, centralised.

Every duration the simulator produces traces back to a constant in this
module.  The values are taken from public measurements of the same software
generation as the paper (2010-2012 era Linux/KVM/Xen/Hadoop clusters) and
are documented inline.  Absolute numbers need not match the authors' testbed
-- the reproduction targets *shapes* (speedups, crossovers, orderings) --
but using era-plausible constants keeps magnitudes sane.

All constants are plain attributes of a dataclass so a bench can override a
single knob (``cal = Calibration(nic_rate=10 * Gbps)``) without monkey
patching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .units import MB, MS, US, Gbps, GHz, MiB


@dataclass(frozen=True)
class VirtOverheads:
    """Relative slowdown factors per virtualization mode.

    Sources: Barham et al. SOSP'03 (Xen), the KVM whitepaper (Qumranet 2006)
    and Zhang et al. NPC'10 (KVM I/O) -- all cited by the paper itself.
    Values are multiplicative *time* factors versus bare metal (>= 1.0).
    """

    # CPU-bound work: hardware-assisted full virt (KVM w/ VT-x) is cheap,
    # para-virt (Xen PV) slightly cheaper, pure emulation terrible.
    cpu_bare: float = 1.00
    cpu_para: float = 1.03
    cpu_full: float = 1.08
    cpu_emul: float = 6.00

    # I/O-bound work: this is where full virt paid heavily in 2012
    # (trap-and-emulate of device access) and para-virt's virtio-style
    # drivers shine.
    io_bare: float = 1.00
    io_para: float = 1.12
    io_full: float = 1.45
    io_emul: float = 9.00

    # Fixed per-hypercall / per-exit cost, seconds.
    exit_cost: float = 4 * US


@dataclass(frozen=True)
class MigrationModel:
    """Pre-copy / post-copy live-migration parameters.

    Clark et al. NSDI'05 report iterative pre-copy with a stop-and-copy
    threshold; Hines et al. VEE'09 describe post-copy.  Both papers are
    cited by the reproduced paper.
    """

    # Fraction of the migration link usable for page transfer.
    link_efficiency: float = 0.9
    # Stop-and-copy when remaining dirty set falls below this many bytes...
    stop_copy_threshold: int = 32 * MiB
    # ...or after this many pre-copy rounds.
    max_precopy_rounds: int = 30
    # Fixed costs of suspend/resume and of (de)activating the VM on each end.
    suspend_cost: float = 30 * MS
    resume_cost: float = 20 * MS
    # Post-copy: per remote page-fault round trip.
    postcopy_fault_cost: float = 0.5 * MS
    page_size: int = 4096


@dataclass(frozen=True)
class HadoopModel:
    """HDFS + MapReduce timing parameters (Hadoop 0.20/1.x era)."""

    block_size: int = 64 * MiB
    replication: int = 3
    heartbeat_interval: float = 3.0
    # NameNode declares a DataNode dead after this silence (real default 630 s
    # is impractically long for benches; scaled down, same mechanism).
    datanode_timeout: float = 30.0
    # Fixed cost to launch a task attempt (JVM spawn in real Hadoop).
    task_launch_overhead: float = 1.0
    # Per-record CPU cost of running user map/reduce code, seconds/byte.
    map_cpu_per_byte: float = 8e-9
    reduce_cpu_per_byte: float = 10e-9
    sort_cpu_per_byte: float = 4e-9
    # Text indexing (tokenize + posting construction) is far heavier than a
    # plain scan: ~20 MB/s/core for Lucene-era analyzers.
    index_cpu_per_byte: float = 5e-8
    # Scheduler heartbeat (TaskTracker -> JobTracker).
    tracker_heartbeat: float = 1.0


@dataclass(frozen=True)
class VideoModel:
    """FFmpeg-like transcode + streaming parameters.

    x264 'medium' on a ~2.7 GHz 2012 Xeon encodes 720p H.264 at roughly
    40-70 fps single-threaded; we express cost as CPU cycles per output
    pixel so duration scales with resolution, frame rate and clip length.
    """

    encode_cycles_per_pixel: dict[str, float] = field(
        default_factory=lambda: {
            "h264": 220.0,   # x264 medium
            "mpeg4": 90.0,   # much cheaper, worse compression
            "vp8": 260.0,
            "flv1": 60.0,
            "copy": 0.0,
        }
    )
    decode_cycles_per_pixel: dict[str, float] = field(
        default_factory=lambda: {
            "h264": 40.0,
            "mpeg4": 20.0,
            "vp8": 45.0,
            "flv1": 15.0,
            "raw": 0.0,
        }
    )
    # Container remux cost per byte (copy codec): essentially I/O bound.
    remux_cpu_per_byte: float = 0.5e-9
    # Fixed per-invocation startup (process spawn, probe, header parse).
    ffmpeg_startup: float = 0.35
    # Segment merge cost per byte (concat demuxer).
    merge_cpu_per_byte: float = 0.4e-9
    # Player model (Flowplayer-style progressive HTTP).
    player_initial_buffer: float = 2.0   # seconds of media buffered before play
    player_rebuffer_low: float = 0.5     # stall when buffer falls below
    player_seek_probe: float = 1        # byte-range probes issued per seek


@dataclass(frozen=True)
class WebModel:
    """Lighttpd / MySQL-ish request cost parameters.

    The paper chose Lighttpd for its small memory/CPU footprint; we model a
    per-request CPU cost and per-connection memory so the bench can show the
    footprint gap against a heavyweight preforking server.
    """

    lighttpd_request_cpu: float = 0.15 * MS
    lighttpd_conn_memory: int = 96 * 1024
    apache_prefork_request_cpu: float = 0.4 * MS
    apache_prefork_conn_memory: int = 8 * MiB
    php_page_cpu: float = 2.5 * MS
    db_point_query_cpu: float = 0.2 * MS
    db_scan_cpu_per_row: float = 2e-6


@dataclass(frozen=True)
class Calibration:
    """Bundle of every cost model, with era-plausible defaults."""

    cpu_hz: float = 2.7 * GHz            # per core
    cores_per_host: int = 4
    host_memory: int = 8 * 1024 * MiB
    disk_read_rate: float = 110 * MB     # bytes/s, 7200rpm SATA streaming
    disk_write_rate: float = 90 * MB
    disk_seek_time: float = 8 * MS
    nic_rate: float = 1 * Gbps           # bytes/s
    net_latency: float = 0.2 * MS        # one-way, same rack

    virt: VirtOverheads = field(default_factory=VirtOverheads)
    migration: MigrationModel = field(default_factory=MigrationModel)
    hadoop: HadoopModel = field(default_factory=HadoopModel)
    video: VideoModel = field(default_factory=VideoModel)
    web: WebModel = field(default_factory=WebModel)


DEFAULT_CALIBRATION = Calibration()
