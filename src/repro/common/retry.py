"""Capped exponential backoff for simulated operations.

Recovery paths across the stack (transcode-segment failover, chaos
scenarios, clients talking to a degraded service) share one retry
discipline: attempt, back off exponentially from ``base_delay`` up to
``max_delay``, give up after ``max_attempts``.  Delays burn *simulated*
time, so retried flows contend realistically with everything else on the
engine, and the whole schedule stays deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator

from .errors import ConfigError, ReproError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..sim import Engine


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try and how long to wait between tries."""

    max_attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1.0")

    def delay(self, retry_index: int) -> float:
        """Backoff before retry number *retry_index* (0-based), capped."""
        if retry_index < 0:
            raise ConfigError(f"negative retry index {retry_index}")
        return min(self.base_delay * self.multiplier ** retry_index, self.max_delay)


#: retries only fire on simulated failures, never programming errors
DEFAULT_RETRY_ON: tuple[type[BaseException], ...] = (ReproError,)


def retry_process(
    engine: Engine,
    make_attempt: Callable[[int], Generator],
    *,
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = DEFAULT_RETRY_ON,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> Generator:
    """Process: run ``make_attempt(k)`` until one attempt succeeds.

    *make_attempt* is called with the 0-based attempt number and must
    return a fresh process generator each time.  Exceptions in *retry_on*
    trigger a backoff and a new attempt; anything else (and the final
    failure once attempts are exhausted) propagates to the caller.
    *on_retry(next_attempt, exc)* is invoked before each backoff -- use it
    to log or to rotate to a different target host.
    """
    pol = policy or RetryPolicy()

    def _run():
        attempt = 0
        while True:
            try:
                result = yield engine.process(make_attempt(attempt))
                return result
            except retry_on as exc:
                attempt += 1
                if attempt >= pol.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                delay = pol.delay(attempt - 1)
                if delay > 0:
                    yield engine.timeout(delay)

    return _run()
