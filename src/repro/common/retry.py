"""Capped exponential backoff for simulated operations.

Recovery paths across the stack (transcode-segment failover, chaos
scenarios, clients talking to a degraded service) share one retry
discipline: attempt, back off exponentially from ``base_delay`` up to
``max_delay``, give up after ``max_attempts``.  Delays burn *simulated*
time, so retried flows contend realistically with everything else on the
engine, and the whole schedule stays deterministic.

The discipline is budget-aware.  With an ``rng`` the backoff uses *full
jitter* (``uniform(0, capped_delay)`` from a seeded
:class:`~repro.common.rng.RngStream` -- DET02-clean) so synchronized
failures do not retry in lockstep.  With a ``deadline`` the loop never
sleeps past the caller's budget and never starts an attempt after it
expires -- retries stop when the work is no longer wanted, which is what
keeps a brief brown-out from snowballing into a retry storm.  With a
``breaker`` every attempt is gated through a
:class:`~repro.resilience.CircuitBreaker` and outcomes are reported back
to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator

from .errors import ConfigError, DeadlineExceeded, OverloadError, ReproError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..resilience import CircuitBreaker, Deadline
    from ..sim import Engine
    from .rng import RngStream


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try and how long to wait between tries."""

    max_attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1.0")

    def delay(self, retry_index: int, rng: "RngStream | None" = None) -> float:
        """Backoff before retry number *retry_index* (0-based), capped.

        With *rng*, applies full jitter: a seeded uniform draw over
        ``[0, capped_delay]``.
        """
        if retry_index < 0:
            raise ConfigError(f"negative retry index {retry_index}")
        capped = min(self.base_delay * self.multiplier ** retry_index,
                     self.max_delay)
        if rng is not None:
            return rng.uniform(0.0, capped)
        return capped


#: retries only fire on simulated failures, never programming errors
DEFAULT_RETRY_ON: tuple[type[BaseException], ...] = (ReproError,)

#: never retried even when matched by *retry_on*: these mean "stop",
#: not "try again" -- retrying them is exactly the retry-storm anti-pattern
NEVER_RETRY: tuple[type[BaseException], ...] = (DeadlineExceeded, OverloadError)


def retry_process(
    engine: Engine,
    make_attempt: Callable[[int], Generator],
    *,
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = DEFAULT_RETRY_ON,
    on_retry: Callable[[int, BaseException], None] | None = None,
    rng: "RngStream | None" = None,
    deadline: "Deadline | None" = None,
    breaker: "CircuitBreaker | None" = None,
) -> Generator:
    """Process: run ``make_attempt(k)`` until one attempt succeeds.

    *make_attempt* is called with the 0-based attempt number and must
    return a fresh process generator each time.  Exceptions in *retry_on*
    trigger a backoff and a new attempt; anything else (and the final
    failure once attempts are exhausted) propagates to the caller.
    *on_retry(next_attempt, exc)* is invoked before each backoff -- use it
    to log or to rotate to a different target host.

    *rng* enables full-jitter backoff; *deadline* caps cumulative sleep at
    the caller's budget (the last error is re-raised rather than sleeping
    into an expired deadline); *breaker* gates every attempt and hears
    about its outcome.  :class:`DeadlineExceeded` and
    :class:`OverloadError` raised *inside* an attempt always propagate --
    budget and shedding signals must never be retried against.
    """
    pol = policy or RetryPolicy()

    def _run():
        attempt = 0
        while True:
            if deadline is not None:
                deadline.check(f"retry attempt {attempt}")
            if breaker is not None:
                breaker.check(f"retry attempt {attempt}")
            try:
                result = yield engine.process(make_attempt(attempt))
            except NEVER_RETRY:
                raise
            except retry_on as exc:
                if breaker is not None:
                    breaker.record_failure()
                attempt += 1
                if attempt >= pol.max_attempts:
                    raise
                delay = pol.delay(attempt - 1, rng)
                if deadline is not None and delay >= deadline.remaining():
                    raise  # no budget left to back off and try again
                if on_retry is not None:
                    on_retry(attempt, exc)
                if delay > 0:
                    yield engine.timeout(delay)
            else:
                if breaker is not None:
                    breaker.record_success()
                return result

    return _run()
