"""Deterministic ID generation.

Simulations must be reproducible, so IDs are issued by per-prefix counters
rather than UUIDs.  Each :class:`IdFactory` is owned by one top-level object
(an engine, a cloud, a NameNode) and hands out ids like ``vm-0``, ``vm-1``,
``blk-0`` in allocation order.
"""

from __future__ import annotations

from collections import defaultdict


class IdFactory:
    """Issues monotonically increasing string ids per prefix."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = defaultdict(int)

    def next(self, prefix: str) -> str:
        """Return ``"<prefix>-<n>"`` where n counts calls with this prefix."""
        n = self._counters[prefix]
        self._counters[prefix] = n + 1
        return f"{prefix}-{n}"

    def next_int(self, prefix: str) -> int:
        """Return the bare integer counter for callers that want numeric ids."""
        n = self._counters[prefix]
        self._counters[prefix] = n + 1
        return n

    def peek(self, prefix: str) -> int:
        """Number of ids issued so far for *prefix* (does not allocate)."""
        return self._counters[prefix]
