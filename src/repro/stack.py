"""The full stack of Figure 14, assembled: IaaS -> PaaS -> SaaS.

:func:`build_video_cloud` stands up, in order:

1. a simulated physical cluster (hosts + network);
2. **IaaS** -- an OpenNebula cloud on a KVM host pool; one VM per compute
   host is deployed as a "hadoop-node" service (the paper's virtual
   cluster);
3. **PaaS** -- HDFS across the compute hosts (the DataNodes live where
   the VMs run) plus the MapReduce trackers;
4. **SaaS** -- the VOC portal (Lighttpd/PHP/MySQL analogues, FUSE mount,
   FFmpeg pipeline, Nutch search, Flowplayer streaming).

Everything shares one event engine, so cross-layer experiments compose --
e.g. live-migrating a VM while an upload converts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .chaos import ChaosMonkey
from .common.calibration import Calibration
from .common.errors import ConfigError
from .common.units import GiB, MiB
from .hardware import Cluster
from .hdfs import Hdfs
from .one import (
    FaultToleranceHook,
    MonitoringService,
    OpenNebula,
    Role,
    ServiceManager,
    ServiceTemplate,
    VmTemplate,
)
from .one.lifecycle import OneState
from .sim import Engine, Event
from .virt import DiskImage
from .web import VideoPortal


@dataclass
class VideoCloud:
    """Handles to every layer of the deployed stack."""

    cluster: Cluster
    cloud: OpenNebula
    services: ServiceManager
    fs: Hdfs
    portal: VideoPortal
    monitoring: MonitoringService | None = None
    ft: FaultToleranceHook | None = None
    chaos: ChaosMonkey | None = None

    @property
    def engine(self) -> Engine:
        return self.cluster.engine

    def run(self, until: float | Event | None = None) -> Any:
        return self.cluster.run(until)

    def stop_background(self) -> None:
        """Stop every periodic loop so the engine can drain to idle."""
        if self.ft is not None:
            self.ft.stop()
        self.fs.stop()
        # chaos can leave VMs that will never place again; without this the
        # dispatch retry tick keeps the engine alive forever
        self.cloud.stop_scheduler()


def build_video_cloud(
    n_hosts: int = 6,
    *,
    seed: int = 0,
    cal: Calibration | None = None,
    hypervisor: str = "kvm",
    replication: int = 2,
    block_size: int = 32 * MiB,
    deploy_vms: bool = True,
    fault_tolerance: bool = False,
) -> VideoCloud:
    """Stand the whole paper stack up; returns once everything is RUNNING.

    The front-end is host 0 (OpenNebula + NameNode); the web tier runs on
    host 1; hosts 1..n-1 are compute/DataNodes and transcoding workers.
    With ``deploy_vms`` the IaaS layer first boots one guest per compute
    host (drains simulated time for image staging + boot, as on the real
    testbed); disable it for benches that only need the upper layers.

    With ``fault_tolerance`` the stack also gets its failure machinery:
    HDFS heartbeats + replication monitor are started, a MonitoringService
    polls the host pool, the OpenNebula FT hook resurrects VMs of dead
    hosts, and a seeded ChaosMonkey (sharing the hook's report) is handed
    back for fault injection.  Call ``stop_background()`` afterwards so
    the engine can drain.
    """
    if n_hosts < 4:
        raise ConfigError("the full stack needs at least 4 hosts")
    cluster = Cluster(n_hosts, seed=seed, cal=cal)
    front = cluster.host_names[0]
    compute = cluster.host_names[1:]

    cloud = OpenNebula(cluster, front_end=front, hypervisor=hypervisor)
    for name in compute:
        cloud.add_host(name)
    cloud.register_image(DiskImage("ubuntu-10.04-hadoop", size=2 * GiB))
    services = ServiceManager(cloud)

    if deploy_vms:
        node_tpl = VmTemplate(
            name="hadoop-node", vcpus=2, memory=2 * GiB,
            image="ubuntu-10.04-hadoop", dirty_rate=8 * MiB,
        )
        service = ServiceTemplate(
            "video-cloud",
            roles=[Role("hadoop", node_tpl, cardinality=len(compute))],
        )
        deploy = cluster.engine.process(services.deploy(service))
        cluster.run(deploy)

    fs = Hdfs(
        cluster, namenode_host=front, datanode_hosts=compute,
        replication=replication, block_size=block_size,
    )
    portal = VideoPortal(
        cluster, fs, web_host=compute[0], transcode_workers=compute[1:] or compute,
    )

    def _scheduler_health() -> str | None:
        dead = [r.host.name for r in cloud.host_pool if not r.host.alive]
        pending = len(cloud.vms_in_state(OneState.PENDING))
        if dead:
            return f"{len(dead)} compute host(s) down: {', '.join(sorted(dead))}"
        if pending:
            return f"{pending} VM(s) stuck PENDING"
        return None

    portal.add_health_provider("scheduler", _scheduler_health)
    monitoring = None
    ft = None
    chaos = None
    if fault_tolerance:
        fs.start()
        monitoring = MonitoringService(cloud, period=cluster.cal.hadoop.heartbeat_interval)
        chaos = ChaosMonkey(cluster, cloud=cloud, fs=fs, portal=portal)
        ft = FaultToleranceHook(cloud, monitoring, report=chaos.report)
        ft.start()
    return VideoCloud(cluster=cluster, cloud=cloud, services=services,
                      fs=fs, portal=portal, monitoring=monitoring,
                      ft=ft, chaos=chaos)
