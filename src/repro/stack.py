"""The full stack of Figure 14, assembled: IaaS -> PaaS -> SaaS.

:func:`build_video_cloud` stands up, in order:

1. a simulated physical cluster (hosts + network);
2. **IaaS** -- an OpenNebula cloud on a KVM host pool; one VM per compute
   host is deployed as a "hadoop-node" service (the paper's virtual
   cluster);
3. **PaaS** -- HDFS across the compute hosts (the DataNodes live where
   the VMs run) plus the MapReduce trackers;
4. **SaaS** -- the VOC portal (Lighttpd/PHP/MySQL analogues, FUSE mount,
   FFmpeg pipeline, Nutch search, Flowplayer streaming).

Everything shares one event engine, so cross-layer experiments compose --
e.g. live-migrating a VM while an upload converts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .chaos import ChaosMonkey
from .common.calibration import Calibration
from .common.errors import ConfigError
from .common.units import GiB, MiB
from .hardware import Cluster
from .hdfs import HaNameNodePair, Hdfs
from .one import (
    FaultToleranceHook,
    MonitoringService,
    OpenNebula,
    Role,
    ServiceManager,
    ServiceTemplate,
    VmTemplate,
)
from .one.lifecycle import OneState
from .reconcile import (
    AutoscalePolicy,
    Autoscaler,
    DataNodePoolAdapter,
    FailoverController,
    FleetSpec,
    HealthPolicy,
    PoolSpec,
    Reconciler,
    TranscodePoolAdapter,
    WebReplicaPoolAdapter,
    queue_depth_signal,
    shed_rate_signal,
)
from .sim import Engine, Event
from .virt import DiskImage
from .web import LoadBalancer, VideoPortal


@dataclass
class VideoCloud:
    """Handles to every layer of the deployed stack."""

    cluster: Cluster
    cloud: OpenNebula
    services: ServiceManager
    fs: Hdfs
    portal: VideoPortal
    monitoring: MonitoringService | None = None
    ft: FaultToleranceHook | None = None
    chaos: ChaosMonkey | None = None
    lb: LoadBalancer | None = None
    reconciler: Reconciler | None = None
    ha: HaNameNodePair | None = None
    failover: FailoverController | None = None

    @property
    def engine(self) -> Engine:
        return self.cluster.engine

    def run(self, until: float | Event | None = None) -> Any:
        return self.cluster.run(until)

    def stop_background(self) -> None:
        """Stop every periodic loop so the engine can drain to idle."""
        if self.reconciler is not None:
            self.reconciler.stop()
        if self.lb is not None:
            self.lb.stop_probes()
        if self.failover is not None:
            self.failover.stop()
        if self.ft is not None:
            self.ft.stop()
        self.fs.stop()
        # chaos can leave VMs that will never place again; without this the
        # dispatch retry tick keeps the engine alive forever
        self.cloud.stop_scheduler()


def build_video_cloud(
    n_hosts: int = 6,
    *,
    seed: int = 0,
    cal: Calibration | None = None,
    hypervisor: str = "kvm",
    replication: int = 2,
    block_size: int = 32 * MiB,
    deploy_vms: bool = True,
    fault_tolerance: bool = False,
) -> VideoCloud:
    """Stand the whole paper stack up; returns once everything is RUNNING.

    The front-end is host 0 (OpenNebula + NameNode); the web tier runs on
    host 1; hosts 1..n-1 are compute/DataNodes and transcoding workers.
    With ``deploy_vms`` the IaaS layer first boots one guest per compute
    host (drains simulated time for image staging + boot, as on the real
    testbed); disable it for benches that only need the upper layers.

    With ``fault_tolerance`` the stack also gets its failure machinery:
    HDFS heartbeats + replication monitor are started, a MonitoringService
    polls the host pool, the OpenNebula FT hook resurrects VMs of dead
    hosts, and a seeded ChaosMonkey (sharing the hook's report) is handed
    back for fault injection.  Call ``stop_background()`` afterwards so
    the engine can drain.
    """
    if n_hosts < 4:
        raise ConfigError("the full stack needs at least 4 hosts")
    cluster = Cluster(n_hosts, seed=seed, cal=cal)
    front = cluster.host_names[0]
    compute = cluster.host_names[1:]

    cloud = OpenNebula(cluster, front_end=front, hypervisor=hypervisor)
    for name in compute:
        cloud.add_host(name)
    cloud.register_image(DiskImage("ubuntu-10.04-hadoop", size=2 * GiB))
    services = ServiceManager(cloud)

    if deploy_vms:
        node_tpl = VmTemplate(
            name="hadoop-node", vcpus=2, memory=2 * GiB,
            image="ubuntu-10.04-hadoop", dirty_rate=8 * MiB,
        )
        service = ServiceTemplate(
            "video-cloud",
            roles=[Role("hadoop", node_tpl, cardinality=len(compute))],
        )
        deploy = cluster.engine.process(services.deploy(service))
        cluster.run(deploy)

    fs = Hdfs(
        cluster, namenode_host=front, datanode_hosts=compute,
        replication=replication, block_size=block_size,
    )
    portal = VideoPortal(
        cluster, fs, web_host=compute[0], transcode_workers=compute[1:] or compute,
    )

    def _scheduler_health() -> str | None:
        dead = [r.host.name for r in cloud.host_pool if not r.host.alive]
        pending = len(cloud.vms_in_state(OneState.PENDING))
        if dead:
            return f"{len(dead)} compute host(s) down: {', '.join(sorted(dead))}"
        if pending:
            return f"{pending} VM(s) stuck PENDING"
        return None

    portal.add_health_provider("scheduler", _scheduler_health)
    monitoring = None
    ft = None
    chaos = None
    if fault_tolerance:
        fs.start()
        monitoring = MonitoringService(cloud, period=cluster.cal.hadoop.heartbeat_interval)
        chaos = ChaosMonkey(cluster, cloud=cloud, fs=fs, portal=portal)
        ft = FaultToleranceHook(cloud, monitoring, report=chaos.report)
        ft.start()
    return VideoCloud(cluster=cluster, cloud=cloud, services=services,
                      fs=fs, portal=portal, monitoring=monitoring,
                      ft=ft, chaos=chaos)


def build_reconciled_cloud(
    n_hosts: int = 8,
    *,
    seed: int = 0,
    cal: Calibration | None = None,
    web_replicas: int = 2,
    datanodes: int | None = None,
    transcode_pool: int = 2,
    replication: int = 2,
    reconcile_period: float = 5.0,
    autoscale: bool = True,
    admission_capacity: int = 16,
) -> VideoCloud:
    """The self-healing variant: the fault-tolerant stack plus the
    closed-loop control plane of :mod:`repro.reconcile`.

    On top of :func:`build_video_cloud` (``fault_tolerance=True``,
    ``deploy_vms=False``) this stands up a :class:`~repro.web.LoadBalancer`
    in front of the portal, declares a :class:`~repro.reconcile.FleetSpec`
    with three pools (web replicas, HDFS DataNodes, transcode workers),
    and starts a :class:`~repro.reconcile.Reconciler` that converges the
    observed fleet onto the spec each *reconcile_period* -- replacing dead
    members, scaling on admission-controller pressure (*autoscale*), and
    rolling upgrades when the spec's version moves.  Only some hosts are
    seeded into each pool so the reconciler has headroom to scale and to
    place replacements.
    """
    if n_hosts < 6:
        raise ConfigError("the reconciled stack needs at least 6 hosts")
    vc = build_video_cloud(
        n_hosts, seed=seed, cal=cal, replication=replication,
        deploy_vms=False, fault_tolerance=True,
    )
    cluster, cloud, fs, portal = vc.cluster, vc.cloud, vc.fs, vc.portal
    compute = cluster.host_names[1:]
    # no per-request budget: bulk uploads legitimately run long, and the
    # autoscaler (not a deadline) is the pressure-relief mechanism here
    portal.enable_overload_control(capacity=admission_capacity,
                                   request_budget=None)

    # the web tier moves behind a load balancer; the primary server
    # becomes backend #1 and the reconciler grows the pool from there
    lb = LoadBalancer(cluster)
    lb.add_backend(portal.web_host, portal.server)
    portal.frontend = lb

    # trim the transcode pool to its declared size (build_video_cloud
    # seeds every compute host); the reconciler owns it from here on
    del portal.transcoder.workers[transcode_pool:]

    n_dn = (datanodes if datanodes is not None
            else max(replication, len(compute) - 2))
    if not replication <= n_dn <= len(compute):
        raise ConfigError(
            f"datanodes {n_dn} outside [{replication}, {len(compute)}]")
    for name in list(fs.datanodes)[n_dn:]:
        fs.drop_datanode(name)

    spec = FleetSpec(pools=(
        PoolSpec(name="web", replicas=web_replicas, version="v1",
                 min_replicas=1, max_replicas=len(compute),
                 health=HealthPolicy(unhealthy_after=2,
                                     hung_after=12 * reconcile_period,
                                     backoff_base=reconcile_period)),
        PoolSpec(name="datanodes", replicas=n_dn, version="v1",
                 min_replicas=replication, max_replicas=len(compute)),
        PoolSpec(name="transcode", replicas=transcode_pool, version="v1",
                 min_replicas=1, max_replicas=len(compute)),
    ))
    adapters = {
        "web": WebReplicaPoolAdapter(portal, lb, "web", compute),
        "datanodes": DataNodePoolAdapter(fs, "datanodes", compute),
        "transcode": TranscodePoolAdapter(portal, "transcode", compute),
    }
    autoscalers = []
    if autoscale:
        engine = cluster.engine
        autoscalers = [
            Autoscaler(AutoscalePolicy(pool="web", high=8.0, low=1.0,
                                       up_after=2, down_after=6,
                                       cooldown=6 * reconcile_period),
                       queue_depth_signal(cluster.metrics)),
            Autoscaler(AutoscalePolicy(pool="transcode", high=0.5, low=0.05,
                                       up_after=2, down_after=6,
                                       cooldown=6 * reconcile_period),
                       shed_rate_signal(cluster.metrics,
                                        lambda: engine.now)),
        ]
    reconciler = Reconciler(
        cluster, spec, adapters, autoscalers=autoscalers,
        period=reconcile_period, cloud=cloud,
    )
    reconciler.start()
    vc.lb = lb
    vc.reconciler = reconciler
    return vc


def enable_gray_tolerance(
    vc: VideoCloud,
    *,
    phi_threshold: float = 8.0,
    quarantine_sweeps: int = 2,
    probation: float = 60.0,
    hedge_ratio: float = 0.2,
    hedge_burst: float = 8.0,
    probe_bytes: int = 4 * MiB,
    lb_probe_interval: float = 1.0,
    phi_dead_threshold: float = 12.0,
    phi_dead_sweeps: int = 2,
    breaker_latency: float | None = None,
) -> None:
    """Retrofit the gray-failure defences onto a running stack.

    Wires together the whole tail-tolerance story:

    * HDFS heartbeats become probes feeding a phi-accrual detector
      (:meth:`~repro.hdfs.Hdfs.enable_gray_detection`); DataNode *death*
      keys off the ungated liveness bank, so a slow-but-alive node is
      quarantined while only true silence condemns it;
    * block reads hedge against the EWMA tail
      (:meth:`~repro.hdfs.Hdfs.enable_hedged_reads`);
    * when the stack has a load balancer, backends get probe-fed
      suspicion gating and hedged GET dispatch;
    * when the stack has a reconciler, it watches both suspicion banks
      and quarantines slow nodes -- cordoned in the cloud, drained at
      the load balancer -- with automatic probation reinstatement.
    """
    fs = vc.fs
    bank = fs.enable_gray_detection(
        phi_dead_threshold=phi_dead_threshold,
        phi_dead_sweeps=phi_dead_sweeps,
        probe_bytes=probe_bytes,
        breaker_latency=breaker_latency,
    )
    fs.enable_hedged_reads(ratio=hedge_ratio, burst=hedge_burst)
    if vc.reconciler is not None:
        vc.reconciler.watch_suspicion(
            "datanodes-gray", bank, threshold=phi_threshold,
            sweeps=quarantine_sweeps, probation=probation,
        )
    if vc.lb is not None:
        lb = vc.lb
        lb_bank = lb.enable_gray_gate(
            threshold=phi_threshold, interval=lb_probe_interval,
            probe_from=fs.namenode_host,
        )
        lb.enable_hedged_dispatch(ratio=hedge_ratio, burst=hedge_burst)
        if vc.reconciler is not None:

            def _drain(name: str) -> None:
                if name in lb.backends and name not in lb.draining:
                    lb.drain(name)

            def _undrain(name: str) -> None:
                if name in lb.backends:
                    lb.undrain(name)

            vc.reconciler.watch_suspicion(
                "web-gray", lb_bank, threshold=phi_threshold,
                sweeps=quarantine_sweeps, probation=probation,
                on_quarantine=_drain, on_reinstate=_undrain,
            )


def enable_namenode_ha(
    vc: VideoCloud,
    *,
    standby_host: str | None = None,
    journal_hosts: tuple[str, ...] | None = None,
    policy: HealthPolicy | None = None,
    tail_period: float = 1.0,
    period: float = 1.0,
    min_interval: float = 30.0,
) -> HaNameNodePair:
    """Retrofit NameNode HA onto a running stack.

    Stands up a standby NameNode (default: the last host, which the
    NameNode and web tier both avoid), a three-node journal quorum
    (default: NameNode host + standby + the first other compute host),
    the standby tailer, and a :class:`~repro.reconcile.FailoverController`
    wired into the reconciler's action log when one exists.  The portal
    gains an ``hdfs-ha`` health probe and any ChaosMonkey is pointed at
    the pair so ``KillActiveNameNode``-style scenarios can resolve the
    active at fire time.
    """
    if vc.ha is not None:
        raise ConfigError("NameNode HA is already enabled on this stack")
    names = vc.cluster.host_names
    active = vc.fs.namenode_host
    if standby_host is None:
        standby_host = names[-1]
    if journal_hosts is None:
        others = [h for h in names if h not in (active, standby_host)]
        if not others:
            raise ConfigError("no spare host to complete a 3-node quorum")
        journal_hosts = (active, standby_host, others[0])
    pair = HaNameNodePair(vc.fs, standby_host=standby_host,
                          journal_hosts=journal_hosts,
                          tail_period=tail_period)
    pair.start()
    actions = vc.reconciler.actions if vc.reconciler is not None else None
    controller = FailoverController(pair, policy=policy, period=period,
                                    actions=actions,
                                    min_interval=min_interval)
    controller.start()

    def _ha_health() -> str | None:
        reason = pair.active_quorum_degraded()
        if reason is not None:
            return reason
        if not pair.caught_up():
            return "standby lagging behind the journal quorum"
        return None

    vc.portal.add_health_provider("hdfs-ha", _ha_health)
    if vc.chaos is not None:
        vc.chaos.ha = pair
    vc.ha = pair
    vc.failover = controller
    return pair


def build_ha_cloud(
    n_hosts: int = 8,
    *,
    seed: int = 0,
    cal: Calibration | None = None,
    replication: int = 2,
    block_size: int = 32 * MiB,
    standby_host: str | None = None,
    journal_hosts: tuple[str, ...] | None = None,
    tail_period: float = 1.0,
    failover_period: float = 1.0,
    min_interval: float = 30.0,
) -> VideoCloud:
    """The highly-available variant: fault-tolerant stack + NameNode HA.

    :func:`build_video_cloud` with ``fault_tolerance=True`` (heartbeats,
    replication monitor, FT hook, chaos monkey) and ``deploy_vms=False``,
    then :func:`enable_namenode_ha` on top.  The returned cloud's
    ``vc.ha`` / ``vc.failover`` give direct handles on the pair and its
    controller; ``stop_background()`` tears all of it down.
    """
    if n_hosts < 5:
        raise ConfigError("the HA stack needs at least 5 hosts")
    vc = build_video_cloud(
        n_hosts, seed=seed, cal=cal, replication=replication,
        block_size=block_size, deploy_vms=False, fault_tolerance=True,
    )
    enable_namenode_ha(
        vc, standby_host=standby_host, journal_hosts=journal_hosts,
        tail_period=tail_period, period=failover_period,
        min_interval=min_interval,
    )
    return vc
