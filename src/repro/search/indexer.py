"""Index construction: sequential baseline vs MapReduce (claim C2).

Documents are stored in HDFS as *crawl segments*: one JSON document per
line.  The MapReduce builder runs a real job whose mapper analyzes each
document and emits (term, posting) pairs and whose reducer assembles the
postings lists -- "input distributed application of Map/Reduce to search
index ... by using HDFS as searching index storage database" (Section IV).
The sequential baseline does the same analysis on one host with no
parallelism; the bench compares their build times on identical corpora.
"""

from __future__ import annotations

import json
from typing import Any, Generator, Iterable

from ..common.errors import SearchError
from ..hdfs import Hdfs
from ..mapreduce import JobTracker, MapReduceJob
from .analyzer import analyze
from .index import Document, InvertedIndex, Posting


def doc_to_line(doc: Document) -> str:
    return json.dumps(
        {"id": doc.doc_id, "fields": doc.fields, "stored": doc.stored},
        sort_keys=True,
    )


def line_to_doc(line: str) -> Document:
    try:
        d = json.loads(line)
        return Document(d["id"], d["fields"], d.get("stored", {}))
    except (ValueError, KeyError) as exc:
        raise SearchError(f"corrupt crawl segment line: {exc}") from exc


def write_crawl_segment(
    fs: Hdfs, docs: list[Document], path: str, host: str | None = None
) -> Generator:
    """Process: serialize *docs* as a JSONL crawl segment into HDFS."""
    data = ("\n".join(doc_to_line(d) for d in docs) + "\n").encode("utf-8")
    return fs.client(host).write_file(path, data)


def _index_mapper(_offset: Any, line: str) -> Iterable[tuple[str, list]]:
    doc = line_to_doc(line)
    for fname, text in doc.fields.items():
        by_term: dict[str, list[int]] = {}
        for term, pos in analyze(text):
            by_term.setdefault(term, []).append(pos)
        for term, positions in by_term.items():
            yield term, [doc.doc_id, fname, len(positions), positions]


def _index_reducer(term: str, values: list[list]) -> Iterable[tuple[str, list]]:
    # sort for determinism: postings ordered by (doc, field)
    yield term, sorted(values, key=lambda v: (v[0], v[1]))


def index_job(segment_paths: list[str], *, num_reduces: int = 2) -> MapReduceJob:
    """The index-construction job (no combiner: postings do not pre-aggregate)."""
    return MapReduceJob(
        name="nutch-index",
        input_paths=segment_paths,
        mapper=_index_mapper,
        reducer=_index_reducer,
        num_reduces=num_reduces,
    )


def assemble_index(
    job_output: dict[str, list], docs: Iterable[Document]
) -> InvertedIndex:
    """Build an InvertedIndex from job output + the document set."""
    idx = InvertedIndex()
    for doc in docs:
        lengths = {fname: len(analyze(text)) for fname, text in doc.fields.items()}
        idx.register_doc(doc, lengths)
    for term, postings in job_output.items():
        for doc_id, fname, tf, positions in postings:
            idx.add_posting(term, Posting(doc_id, fname, tf, tuple(positions)))
    idx.finalize()
    return idx


def build_index_mapreduce(
    fs: Hdfs,
    segment_paths: list[str],
    *,
    tracker_hosts: list[str] | None = None,
    num_reduces: int = 2,
) -> Generator:
    """Process: distributed index build.  Returns (index, JobResult)."""
    jt = JobTracker(fs, tracker_hosts)
    engine = fs.engine

    def _flow():
        job = index_job(segment_paths, num_reduces=num_reduces)
        job.map_cpu_per_byte = fs.cluster.cal.hadoop.index_cpu_per_byte
        result = yield engine.process(jt.submit(job))
        # Reload the documents (metadata came through the job's real output;
        # the doc store itself is read from the segments).
        reader = fs.client(fs.namenode_host)
        docs: list[Document] = []
        for path in segment_paths:
            data = yield engine.process(reader.read_file(path))
            for line in data.decode("utf-8").splitlines():
                if line.strip():
                    docs.append(line_to_doc(line))
        index = assemble_index(result.output, docs)
        return index, result

    return _flow()


def build_index_sequential(
    fs: Hdfs, segment_paths: list[str], host: str | None = None
) -> Generator:
    """Process: single-node baseline build.  Returns (index, duration)."""
    engine = fs.engine
    host_name = host or fs.namenode_host
    node = fs.cluster.host(host_name)
    had = fs.cluster.cal.hadoop

    def _flow():
        started = engine.now
        reader = fs.client(host_name)
        index = InvertedIndex()
        total_bytes = 0
        for path in segment_paths:
            data = yield engine.process(reader.read_file(path))
            total_bytes += len(data)
            for line in data.decode("utf-8").splitlines():
                if line.strip():
                    index.add(line_to_doc(line))
        # same per-byte analysis + sort costs as the cluster pays, serially
        cpu = total_bytes * (
            had.index_cpu_per_byte + had.sort_cpu_per_byte + had.reduce_cpu_per_byte
        )
        yield engine.process(node.compute_seconds(cpu))
        index.finalize()
        return index, engine.now - started

    return _flow()


def save_index(fs: Hdfs, index: InvertedIndex, path: str, host: str | None = None) -> Generator:
    """Process: persist an index segment into HDFS (real bytes)."""
    return fs.client(host).write_file(path, index.to_bytes())


def load_index(fs: Hdfs, path: str, host: str | None = None) -> Generator:
    """Process: load an index segment from HDFS."""
    engine = fs.engine

    def _flow():
        data = yield engine.process(fs.client(host).read_file(path))
        return InvertedIndex.from_bytes(data)

    return _flow()
