"""Lucene-classic TF-IDF scoring with field boosts.

score(q, d) = sum over query terms t of
    sqrt(tf(t, d, f)) * idf(t)^2 * boost(f) / sqrt(field_length)

summed over fields f, with idf(t) = 1 + ln(N / (df + 1)) -- the practical
scoring function of Lucene 2.x/3.x, which is what Nutch used in 2012.
"""

from __future__ import annotations

import math

from .index import InvertedIndex

#: default per-field boosts for the video portal's documents
DEFAULT_BOOSTS: dict[str, float] = {
    "title": 2.5,
    "tags": 1.8,
    "description": 1.0,
    "uploader": 0.8,
}


def idf(index: InvertedIndex, term: str) -> float:
    n = index.doc_count
    df = index.doc_frequency(term)
    return 1.0 + math.log((n + 1) / (df + 1))


def score_term(
    index: InvertedIndex,
    term: str,
    boosts: dict[str, float] | None = None,
) -> dict[str, float]:
    """Partial scores per doc for one term."""
    boosts = boosts if boosts is not None else DEFAULT_BOOSTS
    w_idf = idf(index, term) ** 2
    scores: dict[str, float] = {}
    for p in index.postings.get(term, []):
        boost = boosts.get(p.field, 1.0)
        length = index.field_lengths.get((p.doc_id, p.field), 1) or 1
        partial = math.sqrt(p.tf) * w_idf * boost / math.sqrt(length)
        scores[p.doc_id] = scores.get(p.doc_id, 0.0) + partial
    return scores


def combine(*term_scores: dict[str, float]) -> dict[str, float]:
    """Sum partial scores; a doc scores on whatever terms it matches (OR)."""
    out: dict[str, float] = {}
    for scores in term_scores:
        for doc_id, s in scores.items():
            out[doc_id] = out.get(doc_id, 0.0) + s
    return out


def coordination_factor(matched: int, total: int) -> float:
    """Lucene's coord(): reward docs matching more of the query terms."""
    return matched / total if total else 1.0
