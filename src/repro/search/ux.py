"""Search UX helpers: highlighting, pagination, suggestions, related docs.

The conveniences a real video-site search box layers over the core index:
result-page pagination, query-term highlighting in snippets, "did you
mean" spelling suggestions from the index's own vocabulary, and
more-like-this related-video lookup (the sidebar of every video site).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..common.errors import SearchError
from .analyzer import analyze_terms, strip_plural
from .index import InvertedIndex
from .query import SearchHit, execute
from .scoring import idf


def highlight(text: str, query: str, *, pre: str = "<b>", post: str = "</b>") -> str:
    """Wrap every word of *text* whose stem matches a query term."""
    terms = set(analyze_terms(query))
    if not terms:
        return text

    def mark(m: re.Match) -> str:
        word = m.group(0)
        if strip_plural(word.lower()) in terms:
            return f"{pre}{word}{post}"
        return word

    return re.sub(r"[A-Za-z0-9']+", mark, text)


@dataclass(frozen=True)
class ResultPage:
    hits: list[SearchHit]
    page: int
    per_page: int
    total_hits: int

    @property
    def total_pages(self) -> int:
        return max(1, -(-self.total_hits // self.per_page))

    @property
    def has_next(self) -> bool:
        return self.page < self.total_pages

    @property
    def has_prev(self) -> bool:
        return self.page > 1


def paginate(index: InvertedIndex, query: str, *, page: int = 1,
             per_page: int = 10) -> ResultPage:
    """Page *page* (1-based) of the results for *query*."""
    if page < 1 or per_page < 1:
        raise SearchError(f"bad pagination page={page} per_page={per_page}")
    all_hits = execute(index, query, limit=10**9)
    start = (page - 1) * per_page
    return ResultPage(
        hits=all_hits[start:start + per_page],
        page=page, per_page=per_page, total_hits=len(all_hits),
    )


def _edit_distance(a: str, b: str, cap: int = 3) -> int:
    """Levenshtein with an early-exit cap."""
    if abs(len(a) - len(b)) > cap:
        return cap + 1
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        cur = [i]
        best = i
        for j, cb in enumerate(b, 1):
            cur.append(min(prev[j] + 1, cur[-1] + 1, prev[j - 1] + (ca != cb)))
            best = min(best, cur[-1])
        if best > cap:
            return cap + 1
        prev = cur
    return prev[-1]


def suggest(index: InvertedIndex, query: str, *, max_distance: int = 2) -> str | None:
    """"Did you mean": replace unknown query terms with the closest indexed
    term (ties broken by document frequency).  Returns the corrected query
    or None when every term is already known / nothing close exists."""
    words = query.split()
    vocabulary = index.terms()
    if not vocabulary:
        return None
    changed = False
    corrected: list[str] = []
    for word in words:
        stems = analyze_terms(word)
        if not stems or stems[0] in index.postings:
            corrected.append(word)
            continue
        term = stems[0]
        best: tuple[int, int, str] | None = None
        for cand in vocabulary:
            d = _edit_distance(term, cand, cap=max_distance)
            if d > max_distance:
                continue
            key = (d, -index.doc_frequency(cand), cand)
            if best is None or key < best:
                best = key
        if best is None:
            corrected.append(word)
        else:
            corrected.append(best[2])
            changed = True
    return " ".join(corrected) if changed else None


def more_like_this(index: InvertedIndex, doc_id: str, *, limit: int = 5,
                   max_terms: int = 6) -> list[SearchHit]:
    """Related documents: query built from the doc's highest-TF-IDF terms."""
    doc = index.docs.get(doc_id)
    if doc is None:
        raise SearchError(f"no document {doc_id!r}")
    weights: dict[str, float] = {}
    for term, postings in index.postings.items():
        for p in postings:
            if p.doc_id == doc_id:
                weights[term] = weights.get(term, 0.0) + p.tf * idf(index, term)
    top = sorted(weights, key=lambda t: (-weights[t], t))[:max_terms]
    if not top:
        return []
    hits = execute(index, " ".join(top), limit=limit + 1)
    return [h for h in hits if h.doc_id != doc_id][:limit]
