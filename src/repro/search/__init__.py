"""Nutch/Lucene analogue: analyzer, inverted index, TF-IDF, crawler,
sequential + MapReduce index builders, query execution."""

from .analyzer import STOPWORDS, analyze, analyze_terms, strip_plural
from .crawler import FETCH_COST, CrawlResult, Page, Site, StaticSite, crawl
from .engine import QUERY_COST, SearchEngine
from .index import Document, InvertedIndex, Posting
from .indexer import (
    assemble_index,
    build_index_mapreduce,
    build_index_sequential,
    doc_to_line,
    index_job,
    line_to_doc,
    load_index,
    save_index,
    write_crawl_segment,
)
from .query import Clause, ParsedQuery, SearchHit, execute, parse_query
from .scoring import DEFAULT_BOOSTS, combine, coordination_factor, idf, score_term
from .ux import (
    ResultPage,
    highlight,
    more_like_this,
    paginate,
    suggest,
)

__all__ = [
    "Clause",
    "CrawlResult",
    "DEFAULT_BOOSTS",
    "Document",
    "FETCH_COST",
    "InvertedIndex",
    "Page",
    "ParsedQuery",
    "Posting",
    "ResultPage",
    "QUERY_COST",
    "STOPWORDS",
    "SearchEngine",
    "SearchHit",
    "Site",
    "StaticSite",
    "analyze",
    "analyze_terms",
    "assemble_index",
    "build_index_mapreduce",
    "build_index_sequential",
    "combine",
    "coordination_factor",
    "crawl",
    "doc_to_line",
    "execute",
    "highlight",
    "idf",
    "more_like_this",
    "paginate",
    "suggest",
    "index_job",
    "line_to_doc",
    "load_index",
    "parse_query",
    "save_index",
    "score_term",
    "strip_plural",
    "write_crawl_segment",
]
