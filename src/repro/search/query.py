"""Query parsing and execution.

Supports the syntax the portal's search box needs:

* bare terms            -- OR semantics with coord() reward (Lucene default)
* ``"quoted phrases"``  -- positional match within a single field
* ``field:term``        -- restrict a term to one field
* ``+term``             -- required term (MUST)
* ``-term``             -- excluded term (MUST_NOT)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..common.errors import SearchError
from .analyzer import analyze_terms
from .index import InvertedIndex
from .scoring import combine, coordination_factor, score_term

_CLAUSE = re.compile(r'(?P<req>[+-])?(?:(?P<field>\w+):)?(?:"(?P<phrase>[^"]*)"|(?P<term>\S+))')


@dataclass
class Clause:
    terms: list[str]
    phrase: bool = False
    field_name: str | None = None
    required: bool = False
    prohibited: bool = False


@dataclass
class ParsedQuery:
    clauses: list[Clause] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.clauses


def parse_query(text: str) -> ParsedQuery:
    """Parse the search-box string into clauses."""
    if text is None:
        raise SearchError("query is None")
    q = ParsedQuery()
    for m in _CLAUSE.finditer(text.strip()):
        raw = m.group("phrase") if m.group("phrase") is not None else m.group("term")
        if raw is None:
            continue
        terms = analyze_terms(raw)
        if not terms:
            continue
        q.clauses.append(
            Clause(
                terms=terms,
                phrase=m.group("phrase") is not None and len(terms) > 1,
                field_name=m.group("field"),
                required=m.group("req") == "+",
                prohibited=m.group("req") == "-",
            )
        )
    return q


@dataclass(frozen=True)
class SearchHit:
    doc_id: str
    score: float
    title: str
    snippet: str


def _phrase_docs(index: InvertedIndex, terms: list[str], field_name: str | None) -> set[str]:
    """Docs containing *terms* consecutively in one field."""
    first = index.postings.get(terms[0], [])
    candidates: set[str] = set()
    for p0 in first:
        if field_name and p0.field != field_name:
            continue
        starts = set(p0.positions)
        doc, fld = p0.doc_id, p0.field
        ok_starts = starts
        good = True
        for off, term in enumerate(terms[1:], start=1):
            match = None
            for p in index.postings.get(term, []):
                if p.doc_id == doc and p.field == fld:
                    match = p
                    break
            if match is None:
                good = False
                break
            ok_starts = {s for s in ok_starts if s + off in set(match.positions)}
            if not ok_starts:
                good = False
                break
        if good and ok_starts:
            candidates.add(doc)
    return candidates


def _clause_scores(index: InvertedIndex, clause: Clause, boosts) -> dict[str, float]:
    partials = []
    for term in clause.terms:
        scores = score_term(index, term, boosts)
        if clause.field_name:
            allowed = {
                p.doc_id
                for p in index.postings.get(term, [])
                if p.field == clause.field_name
            }
            scores = {d: s for d, s in scores.items() if d in allowed}
        partials.append(scores)
    total = combine(*partials)
    if clause.phrase:
        docs = _phrase_docs(index, clause.terms, clause.field_name)
        total = {d: s * 1.5 for d, s in total.items() if d in docs}  # phrase boost
    return total


def execute(
    index: InvertedIndex,
    query: "ParsedQuery | str",
    *,
    limit: int = 10,
    boosts: dict[str, float] | None = None,
) -> list[SearchHit]:
    """Run a query, returning ranked hits (deterministic tie-break by doc id)."""
    if isinstance(query, str):
        query = parse_query(query)
    if query.is_empty:
        return []

    positive = [c for c in query.clauses if not c.prohibited]
    negative = [c for c in query.clauses if c.prohibited]
    if not positive:
        return []

    clause_results = [_clause_scores(index, c, boosts) for c in positive]
    total = combine(*clause_results)

    # MUST: drop docs missing a required clause
    for c, scores in zip(positive, clause_results):
        if c.required:
            total = {d: s for d, s in total.items() if d in scores}
    # MUST_NOT: drop docs matching a prohibited clause
    for c in negative:
        bad = _clause_scores(index, c, boosts).keys()
        total = {d: s for d, s in total.items() if d not in bad}

    n_clauses = len(positive)
    ranked = []
    for doc_id, s in total.items():
        matched = sum(1 for scores in clause_results if doc_id in scores)
        ranked.append((s * coordination_factor(matched, n_clauses), doc_id))
    ranked.sort(key=lambda t: (-t[0], t[1]))

    hits = []
    for s, doc_id in ranked[:limit]:
        doc = index.docs[doc_id]
        title = doc.fields.get("title", doc_id)
        desc = doc.fields.get("description", "")
        hits.append(SearchHit(doc_id, s, title, desc[:120]))
    return hits
