"""The inverted index: positional postings + document store.

A document has named *fields* (title, description, tags, uploader ...);
each field is analyzed separately and postings record (doc, field, term
frequency, positions).  Segments are immutable once built and can be
merged (Nutch/Lucene's segment model) and serialized to bytes for storage
in HDFS.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..common.errors import SearchError
from .analyzer import analyze


@dataclass(frozen=True)
class Posting:
    """One (document, field) occurrence list for a term."""

    doc_id: str
    field: str
    tf: int
    positions: tuple[int, ...]


@dataclass
class Document:
    """A document to index: id + text fields + opaque stored attributes."""

    doc_id: str
    fields: dict[str, str]
    stored: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise SearchError("document needs a non-empty id")
        if not self.fields:
            raise SearchError(f"document {self.doc_id}: no fields")


class InvertedIndex:
    """One index segment."""

    def __init__(self) -> None:
        self.postings: dict[str, list[Posting]] = {}
        self.docs: dict[str, Document] = {}
        self.field_lengths: dict[tuple[str, str], int] = {}  # (doc, field) -> tokens

    # -- building ----------------------------------------------------------------

    def add(self, doc: Document) -> None:
        if doc.doc_id in self.docs:
            raise SearchError(f"duplicate document id {doc.doc_id}")
        self.docs[doc.doc_id] = doc
        for fname, text in doc.fields.items():
            terms = analyze(text)
            self.field_lengths[(doc.doc_id, fname)] = len(terms)
            by_term: dict[str, list[int]] = {}
            for term, pos in terms:
                by_term.setdefault(term, []).append(pos)
            for term, positions in by_term.items():
                self.postings.setdefault(term, []).append(
                    Posting(doc.doc_id, fname, len(positions), tuple(positions))
                )

    def add_posting(self, term: str, posting: Posting) -> None:
        """Low-level insert used by the MapReduce index builder."""
        self.postings.setdefault(term, []).append(posting)

    def register_doc(self, doc: Document, lengths: dict[str, int]) -> None:
        """Register a document without re-analyzing (MapReduce builder)."""
        self.docs[doc.doc_id] = doc
        for fname, n in lengths.items():
            self.field_lengths[(doc.doc_id, fname)] = n

    def merge(self, other: "InvertedIndex") -> None:
        """Absorb *other* (used for segment merging)."""
        dup = self.docs.keys() & other.docs.keys()
        if dup:
            raise SearchError(f"merge would duplicate documents: {sorted(dup)[:3]}")
        self.docs.update(other.docs)
        self.field_lengths.update(other.field_lengths)
        for term, posts in other.postings.items():
            self.postings.setdefault(term, []).extend(posts)

    def finalize(self) -> None:
        """Sort postings for deterministic scoring/iteration."""
        for posts in self.postings.values():
            posts.sort(key=lambda p: (p.doc_id, p.field))

    # -- stats -----------------------------------------------------------------------

    @property
    def doc_count(self) -> int:
        return len(self.docs)

    def doc_frequency(self, term: str) -> int:
        return len({p.doc_id for p in self.postings.get(term, [])})

    def terms(self) -> list[str]:
        return sorted(self.postings)

    # -- serialization (real bytes, goes into HDFS) -------------------------------------

    def to_bytes(self) -> bytes:
        payload = {
            "docs": {
                d.doc_id: {"fields": d.fields, "stored": d.stored}
                for d in self.docs.values()
            },
            "lengths": {f"{k[0]}\x00{k[1]}": v for k, v in self.field_lengths.items()},
            "postings": {
                term: [[p.doc_id, p.field, p.tf, list(p.positions)] for p in posts]
                for term, posts in self.postings.items()
            },
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "InvertedIndex":
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise SearchError(f"corrupt index segment: {exc}") from exc
        idx = cls()
        for doc_id, d in payload["docs"].items():
            idx.docs[doc_id] = Document(doc_id, d["fields"], d["stored"])
        for key, v in payload["lengths"].items():
            doc_id, fname = key.split("\x00")
            idx.field_lengths[(doc_id, fname)] = v
        for term, posts in payload["postings"].items():
            idx.postings[term] = [
                Posting(doc_id, fname, tf, tuple(positions))
                for doc_id, fname, tf, positions in posts
            ]
        idx.finalize()
        return idx
