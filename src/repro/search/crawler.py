"""The crawler: Nutch's fetch/parse cycle over a site.

"Set Nutch searching engine renew indexed material every certain time in
order to maintain corresponding to the latest material that is new
uploaded videos" (Section III): the crawler walks the portal's pages,
turns each video page into a :class:`Document`, and hands the batch to the
indexer.  Sites are anything satisfying the small :class:`Site` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Protocol

from ..common.errors import SearchError
from ..sim import Engine
from .index import Document

#: simulated cost of one fetch+parse (HTTP round trip + HTML parsing)
FETCH_COST = 0.05


@dataclass(frozen=True)
class Page:
    """A fetched page."""

    url: str
    document: Document | None       # None for non-indexable pages
    links: tuple[str, ...] = ()


class Site(Protocol):  # pragma: no cover - structural type
    """What the crawler needs from a crawl target."""

    def seed_urls(self) -> list[str]: ...

    def fetch(self, url: str) -> Page: ...


@dataclass
class CrawlResult:
    documents: list[Document] = field(default_factory=list)
    pages_fetched: int = 0
    duration: float = 0.0
    frontier_exhausted: bool = True


def crawl(engine: Engine, site: Site, *, max_pages: int = 10_000) -> Generator:
    """Process: BFS crawl of *site*.  Returns a CrawlResult."""
    if max_pages < 1:
        raise SearchError("max_pages must be >= 1")

    def _flow():
        started = engine.now
        result = CrawlResult()
        seen: set[str] = set()
        frontier: list[str] = list(site.seed_urls())
        while frontier and result.pages_fetched < max_pages:
            url = frontier.pop(0)
            if url in seen:
                continue
            seen.add(url)
            yield engine.timeout(FETCH_COST)
            page = site.fetch(url)
            result.pages_fetched += 1
            if page.document is not None:
                result.documents.append(page.document)
            for link in page.links:
                if link not in seen:
                    frontier.append(link)
        result.frontier_exhausted = not frontier
        result.duration = engine.now - started
        return result

    return _flow()


class StaticSite:
    """An in-memory site, for tests and standalone examples."""

    def __init__(self, pages: dict[str, Page], seeds: list[str]) -> None:
        self._pages = pages
        self._seeds = seeds

    def seed_urls(self) -> list[str]:
        return list(self._seeds)

    def fetch(self, url: str) -> Page:
        try:
            return self._pages[url]
        except KeyError:
            raise SearchError(f"404: {url}") from None
