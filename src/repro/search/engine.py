"""The search engine façade: crawl -> index -> query.

Ties the Nutch-like pieces together the way the portal uses them: crawl
the site, write a crawl segment into HDFS, build the index with MapReduce,
persist the segment, answer queries.  Re-crawls produce fresh segments
that are merged -- the "renew indexed material every certain time"
behaviour of Section III.
"""

from __future__ import annotations

from typing import Generator

from ..common.errors import SearchError
from ..hdfs import Hdfs
from ..sim import Interrupt, Process
from .crawler import Site, crawl
from .index import InvertedIndex
from .indexer import (
    build_index_mapreduce,
    save_index,
    write_crawl_segment,
)
from .query import SearchHit, execute

#: per-query simulated cost (parse + postings scan; index is memory-resident)
QUERY_COST = 0.01


class SearchEngine:
    """A deployed Nutch-like engine over one HDFS instance."""

    def __init__(
        self,
        fs: Hdfs,
        *,
        index_dir: str = "/nutch",
        tracker_hosts: list[str] | None = None,
        num_reduces: int = 2,
    ) -> None:
        self.fs = fs
        self.engine = fs.engine
        self.index_dir = index_dir.rstrip("/")
        self.tracker_hosts = tracker_hosts
        self.num_reduces = num_reduces
        self.index = InvertedIndex()
        self._generation = 0
        self.last_build_duration: float | None = None
        self._refresher: Process | None = None
        self._refresher_stop = False
        self.refresh_count = 0

    def refresh(self, site: Site, *, max_pages: int = 10_000) -> Generator:
        """Process: crawl *site*, index new documents, persist the segment.

        Returns (n_new_documents, build_duration).
        """
        engine = self.engine
        fs = self.fs

        def _flow():
            result = yield engine.process(crawl(engine, site, max_pages=max_pages))
            known = set(self.index.docs)
            fresh = [d for d in result.documents if d.doc_id not in known]
            if not fresh:
                return 0, 0.0
            gen = self._generation
            self._generation += 1
            seg_path = f"{self.index_dir}/segments/seg-{gen:05d}"
            yield engine.process(write_crawl_segment(fs, fresh, seg_path))
            built, job_result = yield engine.process(
                build_index_mapreduce(
                    fs, [seg_path],
                    tracker_hosts=self.tracker_hosts,
                    num_reduces=self.num_reduces,
                )
            )
            self.index.merge(built)
            self.index.finalize()
            idx_path = f"{self.index_dir}/index/segment-{gen:05d}"
            yield engine.process(save_index(fs, built, idx_path))
            self.last_build_duration = job_result.duration
            fs.cluster.log.emit(
                "nutch", "index_refreshed",
                f"indexed {len(fresh)} new docs in {job_result.duration:.1f} s "
                f"(total {self.index.doc_count})",
                new=len(fresh), total=self.index.doc_count,
            )
            return len(fresh), job_result.duration

        return _flow()

    def start_periodic_refresh(self, site: Site, interval: float,
                               *, max_pages: int = 10_000) -> None:
        """Re-crawl + re-index *site* every *interval* seconds.

        "Set Nutch searching engine renew indexed material every certain
        time in order to maintain corresponding to the latest material
        that is new uploaded videos" (Section III).  Idempotent; stop with
        :meth:`stop_periodic_refresh` so the engine can drain.
        """
        if interval <= 0:
            raise SearchError("refresh interval must be > 0")
        if self._refresher is not None and self._refresher.is_alive:
            return
        self._refresher_stop = False
        engine = self.engine

        def _loop():
            try:
                while not self._refresher_stop:
                    yield engine.timeout(interval)
                    if self._refresher_stop:
                        return
                    yield engine.process(self.refresh(site, max_pages=max_pages))
                    self.refresh_count += 1
            except Interrupt:
                pass

        self._refresher = engine.process(_loop(), name="nutch-refresher")

    def stop_periodic_refresh(self) -> None:
        self._refresher_stop = True
        proc = self._refresher
        self._refresher = None
        if proc is not None and proc.is_alive and proc.started:
            proc.interrupt("stop")

    def search(self, query: str, *, limit: int = 10) -> Generator:
        """Process: answer a query against the current index."""
        if query is None:
            raise SearchError("query is None")
        engine = self.engine

        def _flow():
            yield engine.timeout(QUERY_COST)
            return execute(self.index, query, limit=limit)

        return _flow()

    def search_now(self, query: str, *, limit: int = 10) -> list[SearchHit]:
        """Zero-cost synchronous search (for tests / UI rendering)."""
        return execute(self.index, query, limit=limit)
