"""Text analysis: tokenizer, stopwords, light stemming.

The Lucene-style analysis chain Nutch uses: lower-case word tokens, a
small English stopword list, and an s-stripping stemmer so "videos"
matches "video".  Positions are preserved for phrase queries.
"""

from __future__ import annotations

import re

_WORD = re.compile(r"[a-z0-9']+")

STOPWORDS = frozenset(
    """a an and are as at be but by for if in into is it no not of on or
    such that the their then there these they this to was will with""".split()
)


def strip_plural(token: str) -> str:
    """Very light stemming: sses -> ss, ies -> y, trailing s dropped."""
    if len(token) > 4 and token.endswith("sses"):
        return token[:-2]
    if len(token) > 3 and token.endswith("ies"):
        return token[:-3] + "y"
    if len(token) > 3 and token.endswith("s") and not token.endswith("ss"):
        return token[:-1]
    return token


def analyze(text: str, *, stem: bool = True) -> list[tuple[str, int]]:
    """Tokenize *text* into (term, position) pairs, dropping stopwords.

    Positions count pre-stopword tokens, as Lucene does, so phrases with
    elided stopwords keep a gap.
    """
    out: list[tuple[str, int]] = []
    for pos, raw in enumerate(_WORD.findall(text.lower())):
        if raw in STOPWORDS:
            continue
        term = strip_plural(raw) if stem else raw
        out.append((term, pos))
    return out


def analyze_terms(text: str, *, stem: bool = True) -> list[str]:
    """Terms only (for queries and quick checks)."""
    return [t for t, _ in analyze(text, stem=stem)]
