"""repro: a full reproduction of "On Construction of Cloud IaaS Using KVM
and OpenNebula for Video Services" (ICPPW 2012) on a simulated cluster.

The package mirrors the paper's stack:

* :mod:`repro.sim`        -- deterministic discrete-event kernel
* :mod:`repro.hardware`   -- hosts, disks, max-min-fair network
* :mod:`repro.virt`       -- VMs, images, KVM/Xen hypervisor models
* :mod:`repro.drivers`    -- libvirt-like VMM / transfer / info drivers
* :mod:`repro.one`        -- the OpenNebula analogue (core, scheduler,
  live migration, services, monitoring, EC2 facade)
* :mod:`repro.hdfs`       -- NameNode / DataNodes / replicated writes
* :mod:`repro.mapreduce`  -- JobTracker / TaskTrackers, real user code
* :mod:`repro.search`     -- Nutch/Lucene-like crawler, index, queries
* :mod:`repro.video`      -- FFmpeg-like tool, parallel conversion,
  progressive streaming + player
* :mod:`repro.fusehdfs`   -- FUSE bridge mounting HDFS
* :mod:`repro.web`        -- Lighttpd/MySQL analogues + the VOC portal
* :mod:`repro.chaos`      -- seeded fault injection + recovery reporting
* :func:`repro.build_video_cloud` -- the whole Figure 14 stack in one call
"""

from .chaos import ChaosMonkey, ChaosReport
from .common.calibration import DEFAULT_CALIBRATION, Calibration
from .hardware import Cluster
from .stack import (
    VideoCloud,
    build_ha_cloud,
    build_video_cloud,
    enable_namenode_ha,
)

__version__ = "1.0.0"

__all__ = [
    "Calibration",
    "ChaosMonkey",
    "ChaosReport",
    "Cluster",
    "DEFAULT_CALIBRATION",
    "VideoCloud",
    "__version__",
    "build_ha_cloud",
    "build_video_cloud",
    "enable_namenode_ha",
]
