"""Flow-level network model with max-min fair bandwidth sharing.

Hosts hang off a non-blocking switch; each host contributes an uplink and a
downlink of ``nic_rate`` bytes/s.  A transfer is a *flow* crossing two links
(source uplink, destination downlink).  Whenever the flow set changes the
model recomputes max-min fair rates by progressive filling and reschedules
the next completion -- the standard fluid approximation used by cluster
simulators, which preserves exactly the effects the paper's claims depend
on: N parallel transfers into one node share its downlink, while transfers
to distinct nodes run at full rate.

Loopback transfers (src == dst) bypass the NIC at memory-copy speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..common.calibration import Calibration
from ..common.errors import PartitionError, SimulationError
from ..sim import Engine, Event
from .host import PhysicalHost

LOOPBACK_RATE = 5_000_000_000.0  # bytes/s, memcpy-ish


@dataclass
class _Link:
    capacity: float
    flows: set = field(default_factory=set)


class Flow:
    """One in-flight transfer."""

    __slots__ = ("src", "dst", "size", "remaining", "rate", "done", "links", "started")

    def __init__(self, src: str, dst: str, size: float, done: Event, links: tuple, started: float) -> None:
        self.src = src
        self.dst = dst
        self.size = size
        self.remaining = float(size)
        self.rate = 0.0
        self.done = done
        self.links = links
        self.started = started


class Network:
    """The cluster fabric.  Attach hosts, then ``transfer`` between them."""

    def __init__(self, engine: Engine, cal: Calibration) -> None:
        self.engine = engine
        self.cal = cal
        self._links: dict[str, _Link] = {}
        self._flows: set[Flow] = set()
        self._hosts: dict[str, PhysicalHost] = {}
        self._last_update = 0.0
        self._timer_token = 0
        self.bytes_delivered = 0.0
        self._cut: set[str] = set()
        self._partition: set[str] | None = None
        self._base_rate: dict[str, float] = {}
        self._extra_latency: dict[str, float] = {}

    # -- topology -----------------------------------------------------------------

    def attach(self, host: PhysicalHost, nic_rate: float | None = None) -> None:
        """Register *host* with an uplink and a downlink."""
        if host.name in self._hosts:
            raise SimulationError(f"host {host.name} already attached")
        rate = nic_rate if nic_rate is not None else self.cal.nic_rate
        self._links[f"{host.name}:up"] = _Link(rate)
        self._links[f"{host.name}:down"] = _Link(rate)
        self._hosts[host.name] = host
        self._base_rate[host.name] = rate
        host.network = self

    def host(self, name: str) -> PhysicalHost:
        return self._hosts[name]

    @property
    def host_names(self) -> list[str]:
        return list(self._hosts)

    # -- fault injection ----------------------------------------------------------

    def reachable(self, src: str, dst: str) -> bool:
        """Whether a new flow src -> dst would currently get through."""
        if src == dst:
            return True
        if src in self._cut or dst in self._cut:
            return False
        if self._partition is not None and (src in self._partition) != (dst in self._partition):
            return False
        return True

    def cut(self, host: str) -> None:
        """Unplug *host* from the switch; its in-flight flows fail immediately."""
        if host not in self._hosts:
            raise SimulationError(f"cut of unknown host {host}")
        if host in self._cut:
            return
        self._cut.add(host)
        self._fail_flows(
            lambda f: f.src == host or f.dst == host,
            f"link to {host} was cut",
        )

    def restore(self, host: str) -> None:
        """Plug *host* back in at full NIC rate (clears any degradation too)."""
        if host not in self._hosts:
            raise SimulationError(f"restore of unknown host {host}")
        self._cut.discard(host)
        self.set_link_factor(host, 1.0)
        self.set_extra_latency(host, 0.0)

    def link_factor(self, host: str) -> float:
        """Current capacity fraction of *host*'s links (1.0 = nominal)."""
        return self._links[f"{host}:up"].capacity / self._base_rate[host]

    def set_link_factor(self, host: str, factor: float) -> None:
        """Degrade (or restore) *host*'s NIC to ``factor`` x nominal rate."""
        if host not in self._hosts:
            raise SimulationError(f"degrade of unknown host {host}")
        if not 0.0 < factor <= 1.0:
            raise SimulationError(f"link factor must be in (0, 1], got {factor}")
        capacity = self._base_rate[host] * factor
        self._advance()
        self._links[f"{host}:up"].capacity = capacity
        self._links[f"{host}:down"].capacity = capacity
        self._recompute_and_schedule()

    def extra_latency(self, host: str) -> float:
        """Injected per-packet latency currently added at *host* (seconds)."""
        return self._extra_latency.get(host, 0.0)

    def set_extra_latency(self, host: str, seconds: float) -> None:
        """Add *seconds* of propagation latency to every flow touching *host*.

        Models an intermittently flapping switch port or a congested
        top-of-rack queue: bandwidth is untouched, only latency grows.
        0.0 restores the nominal fabric latency.
        """
        if host not in self._hosts:
            raise SimulationError(f"latency injection on unknown host {host}")
        if seconds < 0:
            raise SimulationError(f"extra latency must be >= 0, got {seconds}")
        if seconds == 0.0:
            self._extra_latency.pop(host, None)
        else:
            self._extra_latency[host] = seconds

    def _latency(self, src: str, dst: str) -> float:
        """Propagation latency src -> dst including injected extras."""
        return (self.cal.net_latency
                + self._extra_latency.get(src, 0.0)
                + self._extra_latency.get(dst, 0.0))

    def partition(self, isolated: Iterable[str]) -> None:
        """Split the fabric: *isolated* hosts can only reach each other."""
        group = set(isolated)
        unknown = group - set(self._hosts)
        if unknown:
            raise SimulationError(f"partition of unknown hosts {sorted(unknown)}")
        self._partition = group
        self._fail_flows(
            lambda f: (f.src in group) != (f.dst in group),
            "network partitioned",
        )

    def heal_partition(self) -> None:
        """Rejoin the two sides of a partition (new flows only; failed stay failed)."""
        self._partition = None

    def _fail_flows(self, pred: Callable[[Flow], bool], reason: str) -> None:
        """Kill every in-flight flow matching *pred* with a PartitionError."""
        self._advance()
        victims = [f for f in self._flows if pred(f)]
        for f in victims:
            self._flows.discard(f)
            for lname in f.links:
                self._links[lname].flows.discard(f)
            f.done.fail(PartitionError(f"{f.src}->{f.dst}: {reason}"))
            # nobody may be waiting yet; defused failures still raise in waiters
            f.done.defuse()
        self._recompute_and_schedule()

    # -- transfers ------------------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: float) -> Event:
        """Start a flow of *nbytes* from *src* to *dst*; returns completion event.

        The event's value is the flow duration in seconds.
        """
        if src not in self._hosts or dst not in self._hosts:
            raise SimulationError(f"transfer between unknown hosts {src}->{dst}")
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        done = self.engine.event()
        if src == dst:
            # Loopback: latency-free memcpy, not subject to NIC contention.
            dur = nbytes / LOOPBACK_RATE

            def _loop():
                yield self.engine.timeout(dur)
                self.bytes_delivered += nbytes
                done.succeed(dur)

            self.engine.process(_loop(), name=f"loopback:{src}")
            return done

        if not self.reachable(src, dst):
            def _drop():
                yield self.engine.timeout(self.cal.net_latency)
                done.fail(PartitionError(f"{src}->{dst}: unreachable"))
                done.defuse()

            self.engine.process(_drop(), name=f"xfer-drop:{src}->{dst}")
            return done

        if nbytes == 0:
            dur = self._latency(src, dst)

            def _empty():
                yield self.engine.timeout(dur)
                done.succeed(dur)

            self.engine.process(_empty(), name=f"xfer0:{src}->{dst}")
            return done

        links = (f"{src}:up", f"{dst}:down")
        flow = Flow(src, dst, nbytes, done, links, self.engine.now)
        self._advance()
        self._flows.add(flow)
        for l in links:
            self._links[l].flows.add(flow)
        self._recompute_and_schedule()
        return done

    def active_flow_count(self) -> int:
        return len(self._flows)

    def flow_rate(self, src: str, dst: str) -> float:
        """Current aggregate rate of all flows src->dst (monitoring aid)."""
        return sum(f.rate for f in self._flows if f.src == src and f.dst == dst)

    # -- fluid model internals ----------------------------------------------------

    def _advance(self) -> None:
        """Account progress of every flow since the last rate change."""
        now = self.engine.now
        dt = now - self._last_update
        if dt > 0:
            for f in self._flows:
                f.remaining = max(0.0, f.remaining - f.rate * dt)
        self._last_update = now

    def _max_min_rates(self) -> None:
        """Progressive-filling max-min fairness over all links."""
        unfrozen: set[Flow] = set(self._flows)
        residual = {name: link.capacity for name, link in self._links.items()}
        for f in unfrozen:
            f.rate = 0.0
        while unfrozen:
            # fair share each link could give its unfrozen flows
            best_share = None
            best_link = None
            for name, link in self._links.items():
                n = sum(1 for f in link.flows if f in unfrozen)
                if n == 0:
                    continue
                share = residual[name] / n
                if best_share is None or share < best_share:
                    best_share = share
                    best_link = name
            if best_link is None:
                break
            # freeze every unfrozen flow crossing the bottleneck
            frozen_now = [f for f in self._links[best_link].flows if f in unfrozen]
            for f in frozen_now:
                f.rate = best_share
                unfrozen.discard(f)
                for lname in f.links:
                    residual[lname] -= best_share
            residual[best_link] = 0.0

    def _recompute_and_schedule(self) -> None:
        self._max_min_rates()
        self._timer_token += 1
        token = self._timer_token
        # earliest completion among active flows
        next_done = None
        for f in self._flows:
            if f.rate <= 0:
                continue
            t = f.remaining / f.rate
            if next_done is None or t < next_done:
                next_done = t
        if next_done is None:
            return
        # Flows this timer is responsible for finishing.  They are forced to
        # zero when it fires: float rounding can make `now + next_done == now`,
        # in which case _advance() sees dt == 0 and would never drain them,
        # rescheduling a zero-delay timer forever.
        expected = [
            f
            for f in self._flows
            if f.rate > 0 and f.remaining / f.rate <= next_done * (1 + 1e-9)
        ]

        def _timer():
            yield self.engine.timeout(next_done)
            if token != self._timer_token:
                return  # superseded by a newer rate change
            self._advance()
            for f in expected:
                f.remaining = 0.0
            finished = [f for f in self._flows if f.remaining <= 1e-9]
            for f in finished:
                self._flows.discard(f)
                for lname in f.links:
                    self._links[lname].flows.discard(f)
                self.bytes_delivered += f.size
                self._complete(f)
            self._recompute_and_schedule()

        self.engine.process(_timer(), name="net-timer")

    def _complete(self, flow: Flow) -> None:
        """Deliver the completion event after propagation latency."""
        latency = self._latency(flow.src, flow.dst)
        duration = self.engine.now - flow.started + latency

        def _finish():
            yield self.engine.timeout(latency)
            flow.done.succeed(duration)

        self.engine.process(_finish(), name=f"xfer-done:{flow.src}->{flow.dst}")
