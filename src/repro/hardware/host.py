"""Physical host model: CPU cores, memory, and a single-spindle disk.

A :class:`PhysicalHost` is what OpenNebula would call a *host* -- one entry
in its host pool.  CPU is a :class:`~repro.sim.Resource` with one slot per
core; memory is accounted (not time-shared) because placement decisions need
free-memory arithmetic; the disk is a FIFO spindle with seek + streaming
cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from ..common.calibration import Calibration
from ..common.errors import CapacityError, ConfigError
from ..sim import Engine, Event, Resource

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network


class Disk:
    """A single spindle: operations queue FIFO, each pays seek + size/rate."""

    def __init__(self, engine: Engine, cal: Calibration) -> None:
        self.engine = engine
        self.cal = cal
        self._spindle = Resource(engine, capacity=1)
        self.bytes_read = 0
        self.bytes_written = 0
        self.slowdown = 1.0  # >1.0 under an injected degradation

    def read(self, nbytes: int) -> Generator:
        """Process: sequential read of *nbytes*."""
        return self._io(nbytes, self.cal.disk_read_rate, is_write=False)

    def write(self, nbytes: int) -> Generator:
        """Process: sequential write of *nbytes*."""
        return self._io(nbytes, self.cal.disk_write_rate, is_write=True)

    def _io(self, nbytes: int, rate: float, is_write: bool) -> Generator:
        if nbytes < 0:
            raise CapacityError(f"negative I/O size: {nbytes}")
        with self._spindle.request() as req:
            yield req
            duration = (self.cal.disk_seek_time + nbytes / rate) * self.slowdown
            yield self.engine.timeout(duration)
        if is_write:
            self.bytes_written += nbytes
        else:
            self.bytes_read += nbytes

    def set_slowdown(self, factor: float) -> None:
        """Scale future I/O durations (1.0 restores nominal speed)."""
        if factor < 1.0:
            raise ConfigError(f"disk slowdown factor must be >= 1.0, got {factor}")
        self.slowdown = factor

    @property
    def queue_length(self) -> int:
        return self._spindle.queue_length


class PhysicalHost:
    """One node of the cluster.

    CPU work is expressed in *cycles* so virtualization overhead models can
    scale it; ``compute(cycles)`` claims one core for ``cycles / cpu_hz``
    seconds.  Memory is an explicit ledger used by the capacity manager.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        cal: Calibration,
        *,
        cores: int | None = None,
        cpu_hz: float | None = None,
        memory: int | None = None,
    ) -> None:
        self.engine = engine
        self.name = name
        self.cal = cal
        self.cores = cores if cores is not None else cal.cores_per_host
        self.cpu_hz = cpu_hz if cpu_hz is not None else cal.cpu_hz
        self.memory = memory if memory is not None else cal.host_memory
        if self.cores < 1 or self.cpu_hz <= 0 or self.memory <= 0:
            raise CapacityError(f"invalid host shape for {name}")

        self.cpu = Resource(engine, capacity=self.cores)
        self.cpu_throttle = 1.0  # >1.0 under an injected fail-slow throttle
        self.disk = Disk(engine, cal)
        self.network: "Network | None" = None  # set by Network.attach
        self._mem_used = 0
        self._busy_core_seconds = 0.0
        self.alive = True
        self._fail_listeners: list[Callable[["PhysicalHost"], None]] = []
        self._recover_listeners: list[Callable[["PhysicalHost"], None]] = []
        self._failure_watchers: list[Event] = []

    # -- failure / recovery -------------------------------------------------------

    def on_fail(self, fn: Callable[["PhysicalHost"], None]) -> None:
        """Call *fn(host)* whenever this host crashes (services cascade here)."""
        self._fail_listeners.append(fn)

    def on_recover(self, fn: Callable[["PhysicalHost"], None]) -> None:
        """Call *fn(host)* whenever this host comes back up."""
        self._recover_listeners.append(fn)

    def failure_event(self) -> Event:
        """Event that succeeds the instant this host dies.

        Already-dead hosts return an already-succeeded event, so racing
        ``any_of([work, host.failure_event()])`` is safe at any time.
        """
        ev = Event(self.engine)
        if not self.alive:
            ev.succeed(self)
        else:
            self._failure_watchers.append(ev)
        return ev

    def fail(self) -> None:
        """Crash the whole host: NIC goes dark, watchers fire, services cascade.

        Idempotent; recovery is explicit via :meth:`recover`.
        """
        if not self.alive:
            return
        self.alive = False
        if self.network is not None:
            self.network.cut(self.name)
        watchers, self._failure_watchers = self._failure_watchers, []
        for ev in watchers:
            if not ev.triggered:
                ev.succeed(self)
        for fn in list(self._fail_listeners):
            fn(self)

    def recover(self) -> None:
        """Bring the host back: restore the NIC and notify recovery listeners."""
        if self.alive:
            return
        self.alive = True
        if self.network is not None:
            self.network.restore(self.name)
        for fn in list(self._recover_listeners):
            fn(self)

    # -- memory ledger ---------------------------------------------------------

    @property
    def memory_used(self) -> int:
        return self._mem_used

    @property
    def memory_free(self) -> int:
        return self.memory - self._mem_used

    def allocate_memory(self, nbytes: int) -> None:
        if nbytes < 0:
            raise CapacityError("negative memory allocation")
        if nbytes > self.memory_free:
            raise CapacityError(
                f"{self.name}: need {nbytes} B, only {self.memory_free} B free"
            )
        self._mem_used += nbytes

    def free_memory(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self._mem_used:
            raise CapacityError(f"{self.name}: bad memory free of {nbytes}")
        self._mem_used -= nbytes

    # -- CPU ---------------------------------------------------------------------

    def set_cpu_throttle(self, factor: float) -> None:
        """Scale future compute durations (thermal throttle; 1.0 = nominal)."""
        if factor < 1.0:
            raise ConfigError(f"cpu throttle factor must be >= 1.0, got {factor}")
        self.cpu_throttle = factor

    def compute(self, cycles: float, overhead: float = 1.0) -> Generator:
        """Process: burn *cycles* of CPU on one core, scaled by *overhead*."""
        if cycles < 0:
            raise CapacityError(f"negative cycles: {cycles}")
        seconds = cycles * overhead * self.cpu_throttle / self.cpu_hz
        with self.cpu.request() as req:
            yield req
            yield self.engine.timeout(seconds)
            self._busy_core_seconds += seconds

    def compute_seconds(self, seconds: float, overhead: float = 1.0) -> Generator:
        """Process: hold one core for a fixed duration (already in seconds)."""
        return self.compute(seconds * self.cpu_hz, overhead)

    # -- monitoring ---------------------------------------------------------------

    def cpu_utilisation(self, window_start: float = 0.0) -> float:
        """Average fraction of total core-time spent busy since *window_start*."""
        elapsed = self.engine.now - window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_core_seconds / (elapsed * self.cores))

    def utilisation_since(self, busy_snapshot: float, t_snapshot: float) -> float:
        """Interval utilisation between a snapshot and now (for dashboards)."""
        elapsed = self.engine.now - t_snapshot
        if elapsed <= 0:
            return 0.0
        delta = self._busy_core_seconds - busy_snapshot
        return min(1.0, max(0.0, delta / (elapsed * self.cores)))

    @property
    def busy_core_seconds(self) -> float:
        return self._busy_core_seconds

    @property
    def running_tasks(self) -> int:
        return self.cpu.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PhysicalHost {self.name} cores={self.cores} mem={self.memory}>"
