"""Cluster builder: the simulated testbed everything runs on.

A :class:`Cluster` bundles the event engine, calibration, RNG root, event
log, a set of :class:`PhysicalHost` nodes and the :class:`Network` that
joins them -- the simulated equivalent of the paper's rack of KVM servers.
"""

from __future__ import annotations

from typing import Any

from ..common.calibration import DEFAULT_CALIBRATION, Calibration
from ..common.errors import ConfigError
from ..common.events import EventLog
from ..common.ids import IdFactory
from ..common.rng import RngStream
from ..obs import MetricsRegistry, Tracer
from ..sim import Engine, Event
from .host import PhysicalHost
from .network import Network


class Cluster:
    """N homogeneous hosts on one switch, plus shared simulation services."""

    def __init__(
        self,
        n_hosts: int,
        *,
        cal: Calibration | None = None,
        seed: int = 0,
        host_prefix: str = "node",
    ) -> None:
        if n_hosts < 1:
            raise ConfigError(f"cluster needs >= 1 host, got {n_hosts}")
        self.cal = cal or DEFAULT_CALIBRATION
        self.engine = Engine()
        self.rng = RngStream(seed, "cluster")
        self.ids = IdFactory()
        self.log = EventLog(clock=lambda: self.engine.now)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=lambda: self.engine.now)
        self.network = Network(self.engine, self.cal)
        self.hosts: list[PhysicalHost] = []
        for i in range(n_hosts):
            host = PhysicalHost(self.engine, f"{host_prefix}{i}", self.cal)
            self.network.attach(host)
            self.hosts.append(host)

    def add_host(
        self,
        name: str | None = None,
        *,
        cores: int | None = None,
        cpu_hz: float | None = None,
        memory: int | None = None,
        nic_rate: float | None = None,
    ) -> PhysicalHost:
        """Grow the pool (heterogeneous hosts allowed)."""
        if name is None:
            name = f"extra{self.ids.next_int('extra-host')}"
        host = PhysicalHost(
            self.engine, name, self.cal, cores=cores, cpu_hz=cpu_hz, memory=memory
        )
        self.network.attach(host, nic_rate=nic_rate)
        self.hosts.append(host)
        return host

    def host(self, name: str) -> PhysicalHost:
        for h in self.hosts:
            if h.name == name:
                return h
        raise ConfigError(f"no host named {name}")

    @property
    def host_names(self) -> list[str]:
        return [h.name for h in self.hosts]

    def run(self, until: float | Event | None = None) -> Any:
        """Convenience passthrough to the engine."""
        return self.engine.run(until)

    @property
    def now(self) -> float:
        return self.engine.now
