"""Simulated physical substrate: hosts, disks, network fabric, clusters."""

from .cluster import Cluster
from .host import Disk, PhysicalHost
from .network import LOOPBACK_RATE, Flow, Network

__all__ = ["Cluster", "Disk", "Flow", "LOOPBACK_RATE", "Network", "PhysicalHost"]
