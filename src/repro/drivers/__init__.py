"""libvirt-like driver layer: VMM, Transfer and Information drivers."""

from .base import CallTrace, DriverCall
from .im import POLL_COST, HostMetrics, InformationDriver
from .tm import SNAPSHOT_COST, TransferDriver
from .vmm import VmmDriver

__all__ = [
    "CallTrace",
    "DriverCall",
    "HostMetrics",
    "InformationDriver",
    "POLL_COST",
    "SNAPSHOT_COST",
    "TransferDriver",
    "VmmDriver",
]
