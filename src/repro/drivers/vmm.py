"""Virtual Machine Manager (VMM) driver -- the libvirt analogue.

One VMM driver instance manages the hypervisor of one host.  All operations
are simulation *processes* with era-plausible fixed costs (a 2012 KVM guest
boots its kernel in tens of seconds; defining/destroying a libvirt domain
is sub-second).
"""

from __future__ import annotations

from typing import Generator

from ..common.errors import DriverError
from ..virt import Hypervisor, VirtualMachine, VmState
from .base import CallTrace


class VmmDriver:
    """Deploy / shutdown / cancel / save / restore domains on one host."""

    #: seconds for the guest OS to boot after the domain is created
    BOOT_TIME = 25.0
    #: seconds for a clean guest shutdown
    SHUTDOWN_TIME = 8.0
    #: seconds to hard-destroy a domain
    CANCEL_TIME = 0.5
    #: rate at which guest RAM is written to / read from disk on save/restore
    #: is taken from the host's disk model.

    def __init__(self, hypervisor: Hypervisor, trace: CallTrace) -> None:
        self.hypervisor = hypervisor
        self.trace = trace
        self.name = f"vmm.{hypervisor.mode}"

    @property
    def host_name(self) -> str:
        return self.hypervisor.host.name

    # Each public method returns a generator to be wrapped in engine.process().

    def deploy(self, vm: VirtualMachine) -> Generator:
        """Define the domain and boot the guest."""
        engine = self.hypervisor.host.engine
        self.trace.record(self.name, "deploy", vm.name, host=self.host_name)
        self.hypervisor.define(vm)
        self.hypervisor.start(vm)
        yield engine.timeout(self.BOOT_TIME)
        return vm

    def shutdown(self, vm: VirtualMachine) -> Generator:
        """ACPI-style clean shutdown, then undefine."""
        engine = self.hypervisor.host.engine
        self.trace.record(self.name, "shutdown", vm.name, host=self.host_name)
        yield engine.timeout(self.SHUTDOWN_TIME)
        self.hypervisor.shutdown(vm)
        self.hypervisor.undefine(vm)

    def cancel(self, vm: VirtualMachine) -> Generator:
        """Hard destroy (qemu process kill)."""
        engine = self.hypervisor.host.engine
        self.trace.record(self.name, "cancel", vm.name, host=self.host_name)
        yield engine.timeout(self.CANCEL_TIME)
        if vm.state in (VmState.RUNNING, VmState.PAUSED):
            self.hypervisor.shutdown(vm)
        self.hypervisor.undefine(vm)

    def save(self, vm: VirtualMachine) -> Generator:
        """Suspend to disk: pause, then write guest RAM to the host disk."""
        host = self.hypervisor.host
        self.trace.record(self.name, "save", vm.name, host=self.host_name)
        self.hypervisor.pause(vm)
        yield host.engine.process(host.disk.write(vm.memory))
        return vm

    def restore(self, vm: VirtualMachine) -> Generator:
        """Resume from disk: read guest RAM back, then unpause."""
        host = self.hypervisor.host
        self.trace.record(self.name, "restore", vm.name, host=self.host_name)
        if vm.state is not VmState.PAUSED:
            raise DriverError(f"restore: {vm.name} is not saved/paused")
        yield host.engine.process(host.disk.read(vm.memory))
        self.hypervisor.resume(vm)
        return vm
