"""Information Manager (IM) driver.

Periodically polls each host for the metrics the OpenNebula web interface
displays (Figure 7: CPU utilisation, host loading, memory utilisation, VM
info).  The poll itself is a cheap remote command, so it costs a small
fixed time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..hardware import PhysicalHost
from ..virt import Hypervisor
from .base import CallTrace

POLL_COST = 0.05  # seconds per host probe (ssh + /proc scrape)


@dataclass(frozen=True)
class HostMetrics:
    """One monitoring sample for one host."""

    time: float
    host: str
    alive: bool
    cpu_util: float          # 0..1 average since boot
    mem_total: int
    mem_used: int
    running_vms: int

    @property
    def mem_util(self) -> float:
        return self.mem_used / self.mem_total if self.mem_total else 0.0


class InformationDriver:
    """Polls one host's hypervisor for metrics."""

    def __init__(self, hypervisor: Hypervisor, trace: CallTrace) -> None:
        self.hypervisor = hypervisor
        self.trace = trace
        self.name = "im.kvm" if hypervisor.mode == "full" else f"im.{hypervisor.mode}"

    @property
    def host(self) -> PhysicalHost:
        return self.hypervisor.host

    def poll(self) -> Generator:
        """Process: probe the host and return a :class:`HostMetrics` sample."""
        host = self.host
        engine = host.engine
        self.trace.record(self.name, "poll", host.name)
        yield engine.timeout(POLL_COST)
        return HostMetrics(
            time=engine.now,
            host=host.name,
            alive=host.alive,
            cpu_util=host.cpu_utilisation(),
            mem_total=host.memory,
            mem_used=host.memory_used,
            running_vms=len(self.hypervisor.domains),
        )
