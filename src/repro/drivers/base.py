"""Driver framework.

OpenNebula's core never touches a hypervisor directly: it goes through
pluggable *drivers* that "expose the basic functionality of the hypervisor"
(Section II.D, citing [18]).  We keep that separation: the core only sees
the three driver interfaces below, and every driver invocation is recorded
on a call trace so tests and the orchestration bench (E02) can assert the
exact sequence the core issued.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..sim import Engine


@dataclass(frozen=True)
class DriverCall:
    """One recorded driver invocation."""

    time: float
    driver: str       # e.g. "vmm.kvm", "tm.ssh", "im.kvm"
    action: str       # e.g. "deploy", "clone", "poll"
    target: str       # vm or host name
    detail: dict[str, Any] = field(default_factory=dict)


class CallTrace:
    """Shared, append-only trace of driver activity."""

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self.calls: list[DriverCall] = []

    def record(self, driver: str, action: str, target: str, **detail: Any) -> None:
        self.calls.append(DriverCall(self._engine.now, driver, action, target, detail))

    def actions(self, driver: str | None = None) -> list[str]:
        """Action names in order, optionally filtered by driver name."""
        return [c.action for c in self.calls if driver is None or c.driver == driver]

    def for_target(self, target: str) -> list[DriverCall]:
        return [c for c in self.calls if c.target == target]

    def __len__(self) -> int:
        return len(self.calls)
