"""Transfer Manager (TM) driver.

Moves VM disk images between the front-end datastore and hosts: the
*prolog* (clone the image to the deployment host before boot) and *epilog*
(clean up, or save the delta back) stages of OpenNebula's VM lifecycle.

Two strategies mirror the real TM drivers:

* ``ssh``    -- every deployment copies the full image over the wire;
* ``shared`` -- images live on shared storage (NFS), so the prolog only
  creates a qcow2 snapshot: constant small cost, no bulk transfer.
"""

from __future__ import annotations

from typing import Generator

from ..common.errors import ConfigError
from ..virt import DiskImage, ImageStore
from .base import CallTrace

SNAPSHOT_COST = 0.8  # seconds: qcow2 backing-file creation on shared storage


class TransferDriver:
    """Clones images to hosts; deletes them on epilog."""

    def __init__(self, store: ImageStore, trace: CallTrace, strategy: str = "ssh") -> None:
        if strategy not in ("ssh", "shared"):
            raise ConfigError(f"unknown TM strategy {strategy!r}")
        self.store = store
        self.trace = trace
        self.strategy = strategy
        self.name = f"tm.{strategy}"

    def prolog(self, image: DiskImage, dst_host: str) -> Generator:
        """Stage the image onto *dst_host*."""
        engine = self.store.cluster.engine
        self.trace.record(self.name, "prolog", dst_host, image=image.name)
        if self.strategy == "shared":
            yield engine.timeout(SNAPSHOT_COST)
        else:
            yield engine.process(self.store.clone_to(image.name, dst_host))

    def epilog(self, image: DiskImage, host: str) -> Generator:
        """Remove the per-VM image copy from *host*."""
        engine = self.store.cluster.engine
        self.trace.record(self.name, "epilog", host, image=image.name)
        # Deleting a file: constant metadata cost either way.
        yield engine.timeout(0.2)

    def move(self, image: DiskImage, src_host: str, dst_host: str) -> Generator:
        """Cold-move a deployed image between hosts (non-live migration)."""
        cluster = self.store.cluster
        self.trace.record(self.name, "move", dst_host, image=image.name, src=src_host)
        if self.strategy == "shared":
            yield cluster.engine.timeout(SNAPSHOT_COST)
        else:
            yield cluster.network.transfer(src_host, dst_host, image.size)
            yield cluster.engine.process(cluster.host(dst_host).disk.write(image.size))
