"""FUSE bridge: mount HDFS under a local path prefix.

"we use Virtual folder technology of FUSE to mount uploading folders on
HDFS to reach the goal of Cloud distributed storage" (Section IV).  The
web tier writes to what it believes is an ordinary directory (e.g.
``/var/www/uploads``); every operation is translated to HDFS client calls
-- plus the small user-kernel crossing cost FUSE imposes per operation.
"""

from __future__ import annotations

from typing import Generator

from ..common.errors import HdfsError
from ..hdfs import Hdfs, HdfsClient, INode

#: per-operation FUSE user<->kernel crossing overhead, seconds
FUSE_OP_COST = 0.0005


class HdfsMount:
    """A mounted view of HDFS rooted at *mount_point*."""

    def __init__(self, fs: Hdfs, host_name: str, *,
                 mount_point: str = "/mnt/hdfs", hdfs_root: str = "") -> None:
        if not mount_point.startswith("/") or mount_point.endswith("/"):
            raise HdfsError(f"bad mount point {mount_point!r}")
        self.fs = fs
        self.client: HdfsClient = fs.client(host_name)
        self.mount_point = mount_point
        self.hdfs_root = hdfs_root.rstrip("/")
        self.tracer = fs.cluster.tracer
        self._m_ops = fs.cluster.metrics.counter(
            "fuse_ops_total", "operations crossing the FUSE boundary",
            labels=("op",))

    # -- path translation -----------------------------------------------------

    def to_hdfs_path(self, local_path: str) -> str:
        if not local_path.startswith(self.mount_point + "/"):
            raise HdfsError(
                f"{local_path!r} is outside the mount at {self.mount_point}"
            )
        rel = local_path[len(self.mount_point):]
        return f"{self.hdfs_root}{rel}"

    def to_local_path(self, hdfs_path: str) -> str:
        root = self.hdfs_root
        if root and not hdfs_path.startswith(root + "/"):
            raise HdfsError(f"{hdfs_path!r} is outside the exported root {root}")
        rel = hdfs_path[len(root):]
        return f"{self.mount_point}{rel}"

    # -- POSIX-ish operations (all are simulation processes) ---------------------

    def write(self, local_path: str, data: bytes, replication: int | None = None) -> Generator:
        """Process: create a file through the mount."""
        path = self.to_hdfs_path(local_path)
        engine = self.fs.engine
        self._m_ops.labels(op="write").inc()

        def _op():
            yield engine.timeout(FUSE_OP_COST)
            inode = yield engine.process(
                self.client.write_file(path, data, replication=replication)
            )
            return inode

        return self.tracer.trace("fuse.write", _op(), source="fuse", path=path)

    def write_sized(self, local_path: str, length: int, replication: int | None = None) -> Generator:
        """Process: create a synthetic (sized) file through the mount."""
        path = self.to_hdfs_path(local_path)
        engine = self.fs.engine
        self._m_ops.labels(op="write").inc()

        def _op():
            yield engine.timeout(FUSE_OP_COST)
            inode = yield engine.process(
                self.client.write_synthetic(path, length, replication=replication)
            )
            return inode

        return self.tracer.trace("fuse.write", _op(), source="fuse", path=path)

    def read(self, local_path: str) -> Generator:
        """Process: read a file through the mount."""
        path = self.to_hdfs_path(local_path)
        engine = self.fs.engine
        self._m_ops.labels(op="read").inc()

        def _op():
            yield engine.timeout(FUSE_OP_COST)
            data = yield engine.process(self.client.read_file(path))
            return data

        return self.tracer.trace("fuse.read", _op(), source="fuse", path=path)

    def exists(self, local_path: str) -> bool:
        self._m_ops.labels(op="exists").inc()
        return self.client.exists(self.to_hdfs_path(local_path))

    def stat(self, local_path: str) -> INode:
        self._m_ops.labels(op="stat").inc()
        return self.client.stat(self.to_hdfs_path(local_path))

    def listdir(self, local_dir: str) -> list[str]:
        """Local paths of entries under *local_dir*."""
        self._m_ops.labels(op="listdir").inc()
        if local_dir == self.mount_point:
            hdfs_prefix = self.hdfs_root or "/"
        else:
            hdfs_prefix = self.to_hdfs_path(local_dir)
        return [self.to_local_path(p) for p in self.client.listdir(hdfs_prefix)]

    def remove(self, local_path: str) -> None:
        self._m_ops.labels(op="remove").inc()
        self.client.delete(self.to_hdfs_path(local_path))
