"""FUSE-like bridge exposing HDFS as a mounted directory tree."""

from .mount import FUSE_OP_COST, HdfsMount

__all__ = ["FUSE_OP_COST", "HdfsMount"]
