"""Video substrate: media model, FFmpeg-like tool, distributed conversion,
progressive streaming + player."""

from .abr import PROBE_BYTES, adaptive_play, probe_bandwidth, select_rendition
from .cdn import ReplicaStreamer
from .ffmpeg import FFmpeg
from .media import (
    AUDIO_CODECS,
    CONTAINER_CODECS,
    CONTAINER_OVERHEAD,
    CONTAINERS,
    R_1080P,
    R_360P,
    R_480P,
    R_720P,
    STANDARD_RESOLUTIONS,
    VIDEO_CODECS,
    Resolution,
    VideoFile,
)
from .pipeline import ConversionReport, DistributedTranscoder
from .renditions import (
    DEFAULT_LADDER,
    LADDER_BY_NAME,
    THUMB_RESOLUTION,
    Rendition,
    Thumbnail,
    extract_thumbnail,
    make_renditions,
)
from .streaming import PlaybackEvent, PlaybackReport, PlaybackSession, StreamingServer

__all__ = [
    "AUDIO_CODECS",
    "CONTAINERS",
    "CONTAINER_CODECS",
    "CONTAINER_OVERHEAD",
    "ConversionReport",
    "PROBE_BYTES",
    "adaptive_play",
    "probe_bandwidth",
    "select_rendition",
    "DEFAULT_LADDER",
    "DistributedTranscoder",
    "LADDER_BY_NAME",
    "Rendition",
    "ReplicaStreamer",
    "THUMB_RESOLUTION",
    "Thumbnail",
    "extract_thumbnail",
    "make_renditions",
    "FFmpeg",
    "PlaybackEvent",
    "PlaybackReport",
    "PlaybackSession",
    "R_1080P",
    "R_360P",
    "R_480P",
    "R_720P",
    "Resolution",
    "STANDARD_RESOLUTIONS",
    "StreamingServer",
    "VIDEO_CODECS",
    "VideoFile",
]
