"""Progressive HTTP streaming + the Flowplayer-style client (Figure 23).

The portal serves H.264/FLV over plain HTTP with range requests; the
player buffers a little, starts playing, and the time bar "can be moved
to streaming playback at any time" -- a seek issues a new range request
at the byte offset of the target time.  The session model tracks startup
delay, rebuffering stalls and seek latency under whatever bandwidth the
shared network fabric gives the flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from ..common.errors import StreamingError
from ..hardware import Cluster
from ..sim import Event
from .media import VideoFile


@dataclass
class PlaybackEvent:
    time: float          # simulation time
    kind: str            # play | stall | resume | seek | done
    position: float      # media position, seconds


@dataclass
class PlaybackReport:
    """Session metrics, the player's quality-of-experience view."""

    video: str
    startup_delay: float
    watched_seconds: float
    rebuffer_count: int
    rebuffer_time: float
    seek_latencies: list[float] = field(default_factory=list)
    events: list[PlaybackEvent] = field(default_factory=list)

    @property
    def smooth(self) -> bool:
        return self.rebuffer_count == 0


class StreamingServer:
    """Serves one host's videos over the shared network."""

    def __init__(self, cluster: Cluster, host_name: str) -> None:
        if host_name not in cluster.host_names:
            raise StreamingError(f"server host {host_name} not in cluster")
        self.cluster = cluster
        self.host_name = host_name

    def stream_range(self, client_host: str, nbytes: float) -> Event:
        """One range-request transfer to the client; returns the flow event."""
        return self.cluster.network.transfer(self.host_name, client_host, nbytes)


class PlaybackSession:
    """A Flowplayer-like client: buffer, play, seek, stall."""

    #: how far ahead the player requests data, in media-seconds per request
    CHUNK_SECONDS = 2.0

    def __init__(
        self,
        server: StreamingServer,
        client_host: str,
        video: VideoFile,
        *,
        watch_plan: list[tuple[float, float]] | None = None,
    ) -> None:
        """*watch_plan*: list of (start_position, watch_seconds) segments;
        each entry after the first is reached via a seek on the time bar.
        Default: watch the whole video from the start."""
        if client_host not in server.cluster.host_names:
            raise StreamingError(f"client host {client_host} not in cluster")
        self.server = server
        self.client_host = client_host
        self.video = video
        self.plan = watch_plan or [(0.0, video.duration)]
        for start, span in self.plan:
            if not 0 <= start <= video.duration or span < 0:
                raise StreamingError(f"bad watch plan entry ({start}, {span})")

    def run(self) -> Generator:
        """Process: execute the watch plan; returns a PlaybackReport."""
        cluster = self.server.cluster
        engine = cluster.engine
        video = self.video
        cal = cluster.cal.video
        media_rate = video.size / video.duration  # bytes per media-second

        def _session():
            events: list[PlaybackEvent] = []
            startup_delay = 0.0
            rebuffer_count = 0
            rebuffer_time = 0.0
            seek_latencies: list[float] = []
            watched = 0.0

            for i, (start, span) in enumerate(self.plan):
                span = min(span, video.duration - start)
                t_request = engine.now
                # initial (or post-seek) buffer fill
                buffered = min(cal.player_initial_buffer, span)
                if buffered > 0:
                    yield self.server.stream_range(
                        self.client_host, buffered * media_rate
                    )
                delay = engine.now - t_request
                if i == 0:
                    startup_delay = delay
                    events.append(PlaybackEvent(engine.now, "play", start))
                else:
                    seek_latencies.append(delay)
                    events.append(PlaybackEvent(engine.now, "seek", start))

                # play through the span in chunks: fetch next chunk while the
                # buffered media plays out; stall when the fetch is slower.
                position = start + buffered
                remaining = span - buffered
                while remaining > 0:
                    chunk = min(self.CHUNK_SECONDS, remaining)
                    t0 = engine.now
                    play_out = engine.timeout(buffered)
                    fetch = self.server.stream_range(
                        self.client_host, chunk * media_rate
                    )
                    yield engine.all_of([play_out, fetch])
                    fetch_time = engine.now - t0
                    stall = fetch_time - buffered
                    if stall > 1e-9:
                        rebuffer_count += 1
                        rebuffer_time += stall
                        events.append(PlaybackEvent(engine.now, "stall", position))
                        events.append(PlaybackEvent(engine.now, "resume", position))
                    watched += buffered
                    position += chunk
                    buffered = chunk
                    remaining -= chunk
                # drain the final buffer
                yield engine.timeout(buffered)
                watched += buffered
                events.append(PlaybackEvent(engine.now, "done", start + span))

            return PlaybackReport(
                video=video.name,
                startup_delay=startup_delay,
                watched_seconds=watched,
                rebuffer_count=rebuffer_count,
                rebuffer_time=rebuffer_time,
                seek_latencies=seek_latencies,
                events=events,
            )

        return _session()
