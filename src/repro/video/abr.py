"""Startup quality selection: pick the rendition the client can sustain.

With a multi-rendition ladder published per video, the player should not
hand a 4 Mb/s 720p stream to a 2 Mb/s client.  :func:`probe_bandwidth`
measures the client's effective throughput with a small range request
(what Flash players of the era did with a progressive-download probe),
and :func:`select_rendition` picks the highest rung that fits under a
safety factor.  :func:`adaptive_play` wires both in front of a
:class:`~repro.video.streaming.PlaybackSession`.
"""

from __future__ import annotations

from typing import Generator

from ..common.errors import StreamingError
from .media import VideoFile
from .streaming import PlaybackSession, StreamingServer

#: bytes fetched by the bandwidth probe
PROBE_BYTES = 512 * 1024
#: the chosen rendition's media rate must fit under bw * SAFETY
SAFETY = 0.8


def probe_bandwidth(server: StreamingServer, client_host: str) -> Generator:
    """Process: measure effective server->client throughput, bytes/s."""
    engine = server.cluster.engine

    def _probe():
        t0 = engine.now
        yield server.stream_range(client_host, PROBE_BYTES)
        elapsed = engine.now - t0
        if elapsed <= 0:
            raise StreamingError("bandwidth probe completed in zero time")
        return PROBE_BYTES / elapsed

    return _probe()


def select_rendition(
    renditions: dict[str, VideoFile], bandwidth: float, *, safety: float = SAFETY
) -> str:
    """Highest-rate rendition whose media rate fits under bandwidth*safety.

    Falls back to the lowest rung when nothing fits (better a struggling
    240p than nothing), matching every real player's behaviour.
    """
    if not renditions:
        raise StreamingError("no renditions to choose from")
    budget = bandwidth * safety

    def media_rate(v: VideoFile) -> float:
        return v.size / v.duration

    ranked = sorted(renditions.items(), key=lambda kv: media_rate(kv[1]))
    chosen = ranked[0][0]
    for name, video in ranked:
        if media_rate(video) <= budget:
            chosen = name
    return chosen


def adaptive_play(
    server: StreamingServer,
    client_host: str,
    renditions: dict[str, VideoFile],
    *,
    watch_plan: list[tuple[float, float]] | None = None,
    safety: float = SAFETY,
) -> Generator:
    """Process: probe, select, and play.  Returns (quality, PlaybackReport)."""
    engine = server.cluster.engine

    def _flow():
        bw = yield engine.process(probe_bandwidth(server, client_host))
        quality = select_rendition(renditions, bw, safety=safety)
        session = PlaybackSession(server, client_host, renditions[quality],
                                  watch_plan=watch_plan)
        report = yield engine.process(session.run())
        return quality, report

    return _flow()
