"""The FFmpeg-like tool: probe, transcode, split, concat.

Costs follow the calibration's cycles-per-pixel model: a transcode pays
process startup + decode of every input pixel + encode of every output
pixel on one core of the executing host, plus disk I/O for input and
output.  ``split`` cuts at GOP (keyframe) boundaries only -- cutting
elsewhere would need re-encoding, exactly why the paper's Figure 16
pipeline splits on keyframes -- and ``concat`` verifies the segments form
a gapless, duplicate-free, single-content sequence before remuxing.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Generator

from ..common.calibration import Calibration
from ..common.errors import MediaError, TranscodeError
from ..hardware import PhysicalHost
from .media import CONTAINER_CODECS, Resolution, VideoFile


class FFmpeg:
    """A stateless toolbox bound to a calibration."""

    def __init__(self, cal: Calibration) -> None:
        self.cal = cal

    # -- probe ------------------------------------------------------------------

    def probe(self, video: VideoFile) -> dict:
        """ffprobe-style metadata dict."""
        return {
            "name": video.name,
            "container": video.container,
            "vcodec": video.vcodec,
            "acodec": video.acodec,
            "duration": video.duration,
            "resolution": str(video.resolution),
            "fps": video.fps,
            "bitrate": video.bitrate,
            "size": video.size,
            "gops": video.gop_count,
        }

    # -- cost model ----------------------------------------------------------------

    def transcode_cycles(
        self, src: VideoFile, vcodec: str, resolution: Resolution
    ) -> float:
        """CPU cycles to convert *src* to (vcodec, resolution)."""
        v = self.cal.video
        try:
            dec = v.decode_cycles_per_pixel[src.vcodec]
            enc = v.encode_cycles_per_pixel[vcodec]
        except KeyError as exc:
            raise TranscodeError(f"no cost model for codec {exc}") from None
        pixels_in = src.pixels_total
        pixels_out = resolution.pixels * src.fps * src.duration
        return dec * pixels_in + enc * pixels_out

    # -- transcode -------------------------------------------------------------------

    def transcode(
        self,
        host: PhysicalHost,
        src: VideoFile,
        *,
        container: str | None = None,
        vcodec: str | None = None,
        resolution: Resolution | None = None,
        bitrate: float | None = None,
        name: str | None = None,
    ) -> Generator:
        """Process: convert *src* on *host*; returns the output VideoFile."""
        container = container or src.container
        vcodec = vcodec or src.vcodec
        resolution = resolution or src.resolution
        bitrate = bitrate if bitrate is not None else src.bitrate
        if vcodec not in CONTAINER_CODECS.get(container, ()):
            raise TranscodeError(f"{container} cannot carry {vcodec}")
        engine = host.engine
        v = self.cal.video
        out = replace(
            src,
            name=name or f"{src.name}.{vcodec}.{resolution.height}p.{container}",
            container=container,
            vcodec=vcodec,
            resolution=resolution,
            bitrate=bitrate,
        )

        def _run():
            yield engine.timeout(v.ffmpeg_startup)
            yield engine.process(host.disk.read(src.size))
            cycles = self.transcode_cycles(src, vcodec, resolution)
            yield engine.process(host.compute(cycles))
            yield engine.process(host.disk.write(out.size))
            return out

        return _run()

    # -- split / concat -----------------------------------------------------------------

    def split(self, src: VideoFile, n_segments: int) -> list[VideoFile]:
        """Cut *src* into *n_segments* keyframe-aligned segments (no re-encode)."""
        if n_segments < 1:
            raise TranscodeError(f"n_segments must be >= 1, got {n_segments}")
        gops = src.gop_count
        if n_segments > gops:
            raise TranscodeError(
                f"{src.name}: cannot cut {gops} GOPs into {n_segments} segments"
            )
        segments: list[VideoFile] = []
        per = gops / n_segments
        for i in range(n_segments):
            g0 = src.gop_start + math.floor(i * per)
            g1 = src.gop_start + math.floor((i + 1) * per) if i < n_segments - 1 else src.gop_end
            n_gops = g1 - g0
            # last GOP of the file may be short
            if g1 == src.gop_end:
                dur = src.duration - (g0 - src.gop_start) * src.gop_seconds
            else:
                dur = n_gops * src.gop_seconds
            segments.append(
                replace(
                    src,
                    name=f"{src.name}.part{i:03d}",
                    duration=dur,
                    gop_start=g0,
                    gop_end=g1,
                )
            )
        return segments

    def split_cost(self, src: VideoFile) -> float:
        """Seconds of CPU-ish work to split (container parse, no re-encode)."""
        return self.cal.video.ffmpeg_startup + src.size * self.cal.video.remux_cpu_per_byte

    def concat(self, segments: list[VideoFile], name: str | None = None) -> VideoFile:
        """Merge segments back into one file, verifying gapless continuity."""
        if not segments:
            raise TranscodeError("concat of zero segments")
        ordered = sorted(segments, key=lambda s: s.gop_start)
        first = ordered[0]
        for s in ordered[1:]:
            if s.content_id != first.content_id:
                raise TranscodeError(
                    f"concat mixes contents {first.content_id!r} and {s.content_id!r}"
                )
            if (s.vcodec, s.container, s.resolution) != (
                first.vcodec, first.container, first.resolution
            ):
                raise TranscodeError("concat segments disagree on codec/container/resolution")
        expected = first.gop_start
        for s in ordered:
            if s.gop_start != expected:
                verb = "gap" if s.gop_start > expected else "overlap"
                raise TranscodeError(
                    f"concat {verb} at GOP {expected} (segment {s.name} starts at {s.gop_start})"
                )
            expected = s.gop_end
        return replace(
            first,
            name=name or first.name.rsplit(".part", 1)[0],
            duration=sum(s.duration for s in ordered),
            gop_start=ordered[0].gop_start,
            gop_end=ordered[-1].gop_end,
        )

    def concat_cost(self, segments: list[VideoFile]) -> float:
        total = sum(s.size for s in segments)
        return self.cal.video.ffmpeg_startup + total * self.cal.video.merge_cpu_per_byte

    def run_split(self, host: PhysicalHost, src: VideoFile, n_segments: int) -> Generator:
        """Process: split on *host* (I/O + parse cost); returns segments."""
        engine = host.engine
        segments = self.split(src, n_segments)

        def _run():
            yield engine.process(host.disk.read(src.size))
            yield engine.timeout(self.split_cost(src))
            yield engine.process(host.disk.write(src.size))
            return segments

        return _run()

    def run_concat(self, host: PhysicalHost, segments: list[VideoFile],
                   name: str | None = None) -> Generator:
        """Process: concat on *host*; returns the merged file."""
        engine = host.engine
        out = self.concat(segments, name)

        def _run():
            total = sum(s.size for s in segments)
            yield engine.process(host.disk.read(total))
            yield engine.timeout(self.concat_cost(segments))
            yield engine.process(host.disk.write(out.size))
            return out

        return _run()
