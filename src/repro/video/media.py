"""Media model: codecs, containers, resolutions, video files, GOP structure.

A :class:`VideoFile` is described the way ffprobe would describe it --
container, codec, resolution, frame rate, bitrate, duration -- plus a
*content identity* and GOP (group-of-pictures) structure.  Real video
bytes are never materialised; instead every file knows its ``content_id``
and the half-open GOP range it covers, so splitting and merging can be
checked for *exact* correctness (no lost/duplicated/reordered frames)
without storing terabytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..common.errors import MediaError

#: video codecs the toolchain understands (cost constants live in calibration)
VIDEO_CODECS = ("h264", "mpeg4", "vp8", "flv1")
AUDIO_CODECS = ("aac", "mp3", "vorbis")
CONTAINERS = ("mp4", "avi", "flv", "mkv", "webm")

#: which video codecs each container legally carries
CONTAINER_CODECS: dict[str, tuple[str, ...]] = {
    "mp4": ("h264", "mpeg4"),
    "avi": ("mpeg4", "flv1"),
    "flv": ("flv1", "h264"),
    "mkv": ("h264", "mpeg4", "vp8"),
    "webm": ("vp8",),
}


@dataclass(frozen=True)
class Resolution:
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise MediaError(f"bad resolution {self.width}x{self.height}")

    @property
    def pixels(self) -> int:
        return self.width * self.height

    def __str__(self) -> str:
        return f"{self.width}x{self.height}"


#: the resolutions the portal offers; the paper's player serves 720p 16:9
R_1080P = Resolution(1920, 1080)
R_720P = Resolution(1280, 720)
R_480P = Resolution(854, 480)
R_360P = Resolution(640, 360)

STANDARD_RESOLUTIONS = {"1080p": R_1080P, "720p": R_720P, "480p": R_480P, "360p": R_360P}

#: container framing overhead on top of the elementary streams
CONTAINER_OVERHEAD = 0.01


@dataclass(frozen=True)
class VideoFile:
    """One media file (or segment of one)."""

    name: str
    container: str
    vcodec: str
    acodec: str
    duration: float              # seconds
    resolution: Resolution
    fps: float
    bitrate: float               # video bytes/second
    audio_bitrate: float = 16_000.0
    gop_seconds: float = 2.0
    content_id: str = ""
    gop_start: int = 0           # first GOP index (inclusive) of the content
    gop_end: int = -1            # last GOP index (exclusive); -1 = derive

    def __post_init__(self) -> None:
        if self.container not in CONTAINERS:
            raise MediaError(f"{self.name}: unknown container {self.container!r}")
        if self.vcodec not in VIDEO_CODECS:
            raise MediaError(f"{self.name}: unknown video codec {self.vcodec!r}")
        if self.acodec not in AUDIO_CODECS:
            raise MediaError(f"{self.name}: unknown audio codec {self.acodec!r}")
        if self.vcodec not in CONTAINER_CODECS[self.container]:
            raise MediaError(
                f"{self.name}: {self.container} cannot carry {self.vcodec}"
            )
        if self.duration <= 0 or self.fps <= 0 or self.bitrate <= 0:
            raise MediaError(f"{self.name}: non-positive duration/fps/bitrate")
        if self.gop_seconds <= 0:
            raise MediaError(f"{self.name}: gop_seconds must be > 0")
        if not self.content_id:
            object.__setattr__(self, "content_id", self.name)
        if self.gop_end < 0:
            object.__setattr__(self, "gop_end", self.gop_start + self.gop_count_of_duration)

    # -- derived geometry ----------------------------------------------------------

    @property
    def gop_count_of_duration(self) -> int:
        return max(1, math.ceil(self.duration / self.gop_seconds))

    @property
    def gop_count(self) -> int:
        return self.gop_end - self.gop_start

    @property
    def size(self) -> int:
        """Container size in bytes."""
        streams = (self.bitrate + self.audio_bitrate) * self.duration
        return int(streams * (1.0 + CONTAINER_OVERHEAD))

    @property
    def total_frames(self) -> int:
        return int(round(self.duration * self.fps))

    @property
    def pixels_total(self) -> float:
        return self.resolution.pixels * self.fps * self.duration

    def byte_offset_of(self, t: float) -> int:
        """Approximate byte offset of playback time *t* (for range requests)."""
        if not 0 <= t <= self.duration:
            raise MediaError(f"{self.name}: seek {t} outside [0, {self.duration}]")
        return int(self.size * (t / self.duration))

    def with_name(self, name: str) -> "VideoFile":
        return replace(self, name=name)
