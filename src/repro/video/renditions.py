"""Rendition ladders and thumbnails.

A production video site transcodes every upload into a ladder of
qualities (the paper's portal serves 720p; real deployments add lower
rungs for slow clients) and extracts poster thumbnails for the listing
pages.  Both are plain FFmpeg invocations on the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..common.errors import TranscodeError
from ..common.units import Mbps
from ..hardware import PhysicalHost
from .ffmpeg import FFmpeg
from .media import R_360P, R_480P, R_720P, Resolution, VideoFile
from .pipeline import ConversionReport, DistributedTranscoder


@dataclass(frozen=True)
class Rendition:
    """One rung of the quality ladder."""

    name: str
    resolution: Resolution
    bitrate: float          # video bytes/second
    vcodec: str = "h264"
    container: str = "flv"


#: the default ladder: the paper's 720p plus two lower rungs
DEFAULT_LADDER: tuple[Rendition, ...] = (
    Rendition("720p", R_720P, 4 * Mbps),
    Rendition("480p", R_480P, 2 * Mbps),
    Rendition("360p", R_360P, 1 * Mbps),
)

LADDER_BY_NAME = {r.name: r for r in DEFAULT_LADDER}


def make_renditions(
    transcoder: DistributedTranscoder,
    src: VideoFile,
    ladder: tuple[Rendition, ...] = DEFAULT_LADDER,
) -> Generator:
    """Process: convert *src* into every rung, concurrently.

    Each rung runs the full Figure 16 split/convert/merge pipeline; rungs
    share the worker pool, so total time is governed by the aggregate CPU.
    Returns ``dict[name, ConversionReport]``.
    """
    if not ladder:
        raise TranscodeError("empty rendition ladder")
    engine = transcoder.cluster.engine

    def _run():
        procs = {}
        for rung in ladder:
            procs[rung.name] = engine.process(
                transcoder.convert_distributed(
                    src, vcodec=rung.vcodec, container=rung.container,
                    resolution=rung.resolution, bitrate=rung.bitrate,
                )
            )
        done = yield engine.all_of(list(procs.values()))
        reports: dict[str, ConversionReport] = {}
        for name, proc in procs.items():
            report = done[proc]
            reports[name] = report
        return reports

    return _run()


@dataclass(frozen=True)
class Thumbnail:
    """A poster frame extracted from a video."""

    video: str
    at_time: float
    width: int
    height: int
    size: int              # JPEG bytes

    @property
    def name(self) -> str:
        return f"{self.video}.t{self.at_time:.0f}.jpg"


#: JPEG compression: ~0.15 byte/pixel at web quality
_JPEG_BYTES_PER_PIXEL = 0.15
#: thumbnail box
THUMB_RESOLUTION = Resolution(320, 180)


def extract_thumbnail(ffmpeg: FFmpeg, host: PhysicalHost, src: VideoFile,
                      at_time: float) -> Generator:
    """Process: seek to *at_time*, decode one GOP, scale, JPEG-encode.

    Returns a :class:`Thumbnail`.
    """
    if not 0 <= at_time <= src.duration:
        raise TranscodeError(
            f"thumbnail time {at_time} outside [0, {src.duration}]")
    engine = host.engine
    v = ffmpeg.cal.video

    def _run():
        yield engine.timeout(v.ffmpeg_startup)
        # read roughly one GOP's worth of container bytes near the seek point
        gop_bytes = src.size / src.gop_count
        yield engine.process(host.disk.read(int(gop_bytes)))
        # decode one GOP of frames + encode one JPEG
        gop_pixels = src.resolution.pixels * src.fps * src.gop_seconds
        dec = v.decode_cycles_per_pixel.get(src.vcodec, 40.0)
        cycles = dec * gop_pixels + 30.0 * THUMB_RESOLUTION.pixels
        yield engine.process(host.compute(cycles))
        size = int(THUMB_RESOLUTION.pixels * _JPEG_BYTES_PER_PIXEL)
        yield engine.process(host.disk.write(size))
        return Thumbnail(
            video=src.content_id, at_time=at_time,
            width=THUMB_RESOLUTION.width, height=THUMB_RESOLUTION.height,
            size=size,
        )

    return _run()
