"""Distributed parallel conversion: the Figure 16 pipeline (claim C1).

"we use FFmpeg to distribute videos to different hosts for uploading,
transfer files at the same time and later integrate with the previous.
It takes even less execution time than transferring files by FFmpeg on a
single node" (Section III).

Stages, exactly as the figure draws them:

1. **split** the uploaded file into keyframe-aligned segments on the
   ingest host;
2. **scatter** the segments to worker hosts over the network;
3. **convert** every segment in parallel (each worker runs FFmpeg);
4. **gather** converted segments back to the ingest host;
5. **merge** (concat) into the final file.

``convert_single_node`` is the baseline: one FFmpeg invocation on the
ingest host.  Both return a :class:`ConversionReport` with per-stage
timings so the bench can show the speedup curve and its overhead-driven
crossover for short clips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from ..common.errors import FaultInjectionError, PartitionError, TranscodeError
from ..common.retry import RetryPolicy, retry_process
from ..hardware import Cluster
from .ffmpeg import FFmpeg
from .media import Resolution, VideoFile


@dataclass
class ConversionReport:
    """What each conversion run reports."""

    output: VideoFile
    total_time: float
    mode: str                       # "single" | "distributed"
    workers: int = 1
    stage_times: dict[str, float] = field(default_factory=dict)
    segments: int = 1


class DistributedTranscoder:
    """Runs conversions over a set of worker hosts."""

    def __init__(
        self,
        cluster: Cluster,
        worker_hosts: list[str],
        *,
        ingest_host: str | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if not worker_hosts:
            raise TranscodeError("need at least one worker host")
        for h in worker_hosts:
            if h not in cluster.host_names:
                raise TranscodeError(f"worker host {h} not in cluster")
        self.cluster = cluster
        self.workers = list(worker_hosts)
        self.ingest = ingest_host or worker_hosts[0]
        if self.ingest not in cluster.host_names:
            raise TranscodeError(f"ingest host {self.ingest} not in cluster")
        self.ffmpeg = FFmpeg(cluster.cal)
        # Segment failover: a dead worker's segments are retried on the next
        # live worker with capped exponential backoff.
        self.retry = retry or RetryPolicy(max_attempts=4, base_delay=0.5, max_delay=8.0)
        self.tracer = cluster.tracer
        metrics = cluster.metrics
        self._m_seconds = metrics.histogram(
            "transcode_seconds", "whole-conversion wall time", labels=("mode",))
        self._m_stage = metrics.histogram(
            "transcode_stage_seconds", "per-stage wall time", labels=("stage",))
        self._m_segments = metrics.counter(
            "transcode_segments_total", "segments converted")
        self._m_failovers = metrics.counter(
            "transcode_failovers_total", "segments retried on another worker")

    # -- baseline ---------------------------------------------------------------

    def convert_single_node(
        self, src: VideoFile, *, vcodec: str, container: str,
        resolution: Resolution | None = None, bitrate: float | None = None,
    ) -> Generator:
        """Process: one-node conversion on the ingest host."""
        engine = self.cluster.engine
        host = self.cluster.host(self.ingest)

        def _run():
            t0 = engine.now
            out = yield engine.process(
                self.ffmpeg.transcode(
                    host, src, vcodec=vcodec, container=container,
                    resolution=resolution, bitrate=bitrate,
                    name=f"{src.content_id}.out",
                )
            )
            total = engine.now - t0
            self._m_seconds.labels(mode="single").observe(total)
            return ConversionReport(
                output=out, total_time=total, mode="single",
                stage_times={"convert": total},
            )

        return self.tracer.trace(
            "transcode.convert", _run(), source="transcode",
            mode="single", video=src.name)

    # -- the Figure 16 pipeline ------------------------------------------------------

    def convert_distributed(
        self, src: VideoFile, *, vcodec: str, container: str,
        resolution: Resolution | None = None, bitrate: float | None = None,
        n_segments: int | None = None,
    ) -> Generator:
        """Process: split / scatter / parallel convert / gather / merge."""
        engine = self.cluster.engine
        network = self.cluster.network
        ingest = self.cluster.host(self.ingest)
        n = n_segments if n_segments is not None else len(self.workers)
        if n < 1:
            raise TranscodeError("n_segments must be >= 1")

        def _run():
            t0 = engine.now
            stages: dict[str, float] = {}

            # 1. split at keyframes on the ingest host
            segments = yield engine.process(self.ffmpeg.run_split(ingest, src, n))
            stages["split"] = engine.now - t0
            self._m_stage.labels(stage="split").observe(stages["split"])

            # 2-4. per-segment: scatter -> convert -> gather, all overlapped.
            # A worker that dies mid-segment (chaos layer) fails the attempt
            # with FaultInjectionError; the segment fails over to the next
            # live worker under the transcoder's RetryPolicy.
            def attempt(segment: VideoFile, worker_name: str):
                worker = self.cluster.host(worker_name)
                if not worker.alive:
                    raise FaultInjectionError(f"worker {worker_name} is down")
                if worker_name != ingest.name:
                    yield network.transfer(ingest.name, worker_name, segment.size)
                    yield engine.process(worker.disk.write(segment.size))
                conv = engine.process(
                    self.ffmpeg.transcode(
                        worker, segment, vcodec=vcodec, container=container,
                        resolution=resolution, bitrate=bitrate,
                        name=f"{segment.name}.conv",
                    )
                )
                death = worker.failure_event()
                yield engine.any_of([conv, death])
                if not conv.triggered:
                    conv.defuse()  # abandoned; must not crash the engine later
                    raise FaultInjectionError(
                        f"worker {worker_name} died converting {segment.name}")
                out_seg = conv.value
                if worker_name != ingest.name:
                    yield network.transfer(worker_name, ingest.name, out_seg.size)
                    yield engine.process(ingest.disk.write(out_seg.size))
                return out_seg

            def handle(segment: VideoFile, home: int):
                def pick(k: int) -> str:
                    rotation = [self.workers[(home + j) % len(self.workers)]
                                for j in range(len(self.workers))]
                    alive = [w for w in rotation if self.cluster.host(w).alive]
                    if not alive:
                        raise TranscodeError("no live transcode workers")
                    return alive[k % len(alive)]

                def on_retry(k: int, exc: BaseException) -> None:
                    self.cluster.log.emit(
                        "video.pipeline", "segment_failover",
                        f"{segment.name}: attempt {k} after {exc}",
                        segment=segment.name, attempt=k, error=str(exc),
                    )
                    self._m_failovers.inc()

                def _h():
                    try:
                        out_seg = yield engine.process(retry_process(
                            engine,
                            lambda k: attempt(segment, pick(k)),
                            policy=self.retry,
                            retry_on=(FaultInjectionError, PartitionError),
                            on_retry=on_retry,
                        ))
                    except (FaultInjectionError, PartitionError) as exc:
                        raise TranscodeError(
                            f"{segment.name}: failover retries exhausted") from exc
                    self._m_segments.inc()
                    return out_seg

                return self.tracer.trace(
                    "transcode.segment", _h(), source="transcode",
                    segment=segment.name)

            t1 = engine.now
            procs = [
                engine.process(handle(seg, i))
                for i, seg in enumerate(segments)
            ]
            done = yield engine.all_of(procs)
            converted = [done[p] for p in procs]
            stages["convert"] = engine.now - t1
            self._m_stage.labels(stage="convert").observe(stages["convert"])

            # 5. merge on the ingest host
            t2 = engine.now
            out = yield engine.process(
                self.ffmpeg.run_concat(ingest, converted, name=f"{src.content_id}.out")
            )
            stages["merge"] = engine.now - t2
            self._m_stage.labels(stage="merge").observe(stages["merge"])

            total = engine.now - t0
            self._m_seconds.labels(mode="distributed").observe(total)
            self.cluster.log.emit(
                "video.pipeline", "conversion_done",
                f"{src.name}: {n} segments over {len(self.workers)} workers "
                f"in {total:.1f} s",
                video=src.name, segments=n, workers=len(self.workers), total=total,
            )
            return ConversionReport(
                output=out, total_time=total, mode="distributed",
                workers=len(self.workers), stage_times=stages, segments=n,
            )

        return self.tracer.trace(
            "transcode.convert", _run(), source="transcode",
            mode="distributed", video=src.name, segments=n)
