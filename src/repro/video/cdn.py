"""Replica-aware streaming: serve each viewer from an HDFS replica.

The paper stores published videos replicated in HDFS; serving every
stream from the single web host would waste that.  The
:class:`ReplicaStreamer` picks, per viewer, the DataNode replica that is
(a) local to the client when possible, else (b) the least-loaded replica
holder -- a miniature CDN built from what HDFS already provides.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Generator

from ..common.errors import StreamingError
from ..hdfs import Hdfs
from .media import VideoFile
from .streaming import PlaybackSession, StreamingServer


class ReplicaStreamer:
    """Load-balances playback sessions over a file's replica holders."""

    def __init__(self, fs: Hdfs, hdfs_path: str) -> None:
        self.fs = fs
        self.path = hdfs_path
        inode = fs.namenode.get_file(hdfs_path)
        if not inode.blocks:
            raise StreamingError(f"{hdfs_path}: empty file")
        self._servers: dict[str, StreamingServer] = {}
        self.active_sessions: dict[str, int] = defaultdict(int)
        self.sessions_served: dict[str, int] = defaultdict(int)

    def replica_holders(self) -> list[str]:
        inode = self.fs.namenode.get_file(self.path)
        holders = self.fs.namenode.locations(inode.blocks[0].block_id)
        return sorted(holders)

    def pick_server(self, client_host: str) -> str:
        """Client-local replica first; else least-loaded holder."""
        holders = self.replica_holders()
        if not holders:
            raise StreamingError(f"{self.path}: no live replica to stream from")
        if client_host in holders:
            return client_host
        return min(holders, key=lambda h: (self.active_sessions[h], h))

    def open_session(
        self,
        client_host: str,
        video: VideoFile,
        *,
        watch_plan: list[tuple[float, float]] | None = None,
    ) -> Generator:
        """Process: stream *video* to *client_host* from the chosen replica.

        Returns (serving_host, PlaybackReport).
        """
        engine = self.fs.engine

        def _run():
            # select at session start, so concurrent opens see each other
            server_host = self.pick_server(client_host)
            server = self._servers.get(server_host)
            if server is None:
                server = StreamingServer(self.fs.cluster, server_host)
                self._servers[server_host] = server
            session = PlaybackSession(server, client_host, video,
                                      watch_plan=watch_plan)
            self.active_sessions[server_host] += 1
            self.sessions_served[server_host] += 1
            try:
                report = yield engine.process(session.run())
            finally:
                self.active_sessions[server_host] -= 1
            return server_host, report

        return _run()
