"""The benchmark result harness: one shape, one publish call.

Every ``benchmarks/bench_*.py`` used to print its own ad-hoc tables and
hand-rolled ``show_json`` payloads; regression tooling had to know each
bench's private format.  PR 7 replaces that with :class:`BenchResult` --
name, params, metrics, seed, and (when measured) kernel events/sec --
published through a single :func:`emit` call that renders the human
tables *and* the machine-readable ``### BENCH_JSON <tag>`` block that
``benchmarks/snapshot.py`` archives into the committed ``BENCH_*.json``
trajectory files.

The first block of a process is preceded by an ``analyzer`` header naming
the invariant-checker version and rule count the tree passed, so archived
bench numbers stay attributable to an invariant set.

This module is wall-clock-aware by design (it *measures* the simulator,
it is not part of a simulation): :class:`KernelRate` divides the engine's
``events_dispatched`` delta by elapsed ``perf_counter`` time, which is
the events/sec figure the kernel fast-path work is judged by.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..analysis import ALL_CHECKS, ANALYZER_VERSION
from ..common.errors import ConfigError
from ..common.tables import format_table
from ..sim import Engine

__all__ = ["BenchResult", "KernelRate", "emit", "kernel_events_per_sec"]

#: emitted once per process, ahead of the first payload
_analyzer_header_emitted = False


@dataclass
class BenchResult:
    """One bench's published result: identity, inputs, outputs.

    *name* doubles as the ``BENCH_JSON`` tag (snake_case, e.g.
    ``e_chaos``); *params* are the experiment inputs worth archiving;
    *metrics* are the simulated outputs (the numbers that correspond to
    what the paper shows); *seed* pins reproducibility; *events_per_sec*
    is the wall-clock kernel throughput observed while producing them.
    """

    name: str
    params: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    events_per_sec: float | None = None
    #: wall-clock measurements (seconds).  Archived for the trajectory
    #: but -- like ``events_per_sec`` -- never compared by
    #: ``snapshot.py --check``, which gates on ``metrics`` only:
    #: simulated outputs must be deterministic, wall time never is.
    timings: dict[str, float] | None = None
    #: human-facing tables: (title, headers, rows)
    tables: list[tuple[str, Sequence[str], list[Sequence[Any]]]] = \
        field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ConfigError(
                f"BenchResult.name must be a snake_case tag, got {self.name!r}")

    def table(self, title: str, headers: Sequence[str],
              rows: Iterable[Sequence[Any]]) -> "BenchResult":
        """Attach a human-facing table (chainable)."""
        self.tables.append((title, list(headers), [list(r) for r in rows]))
        return self

    def payload(self) -> dict[str, Any]:
        """The JSON-ready block body archived by snapshot.py."""
        body: dict[str, Any] = {"params": self.params, "metrics": self.metrics}
        if self.seed is not None:
            body["seed"] = self.seed
        if self.events_per_sec is not None:
            body["events_per_sec"] = round(self.events_per_sec, 1)
        if self.timings is not None:
            body["timings"] = {k: round(v, 3)
                               for k, v in sorted(self.timings.items())}
        return body

    def render(self) -> str:
        """All attached tables as display text."""
        blocks = [format_table(headers, rows, title=title)
                  for title, headers, rows in self.tables]
        return "\n\n".join(blocks)


def emit(result: BenchResult,
         write: Callable[[str], None] = print) -> None:
    """Publish one result: tables first, then its ``BENCH_JSON`` block.

    Pytest benches call this through ``benchmarks/_util.publish`` (which
    routes around pytest's capture); scripts can call it directly.
    """
    global _analyzer_header_emitted
    rendered = result.render()
    if rendered:
        write("")
        write(rendered)
        write("")
    if not _analyzer_header_emitted:
        _analyzer_header_emitted = True
        header = {"analyzer_version": ANALYZER_VERSION,
                  "rule_count": len(ALL_CHECKS)}
        write(f"### BENCH_JSON analyzer {json.dumps(header, sort_keys=True)}")
    write(f"### BENCH_JSON {result.name} "
          f"{json.dumps(result.payload(), sort_keys=True)}")


class KernelRate:
    """Accumulates wall-clock kernel throughput across measured runs.

    >>> rate = KernelRate()
    >>> with rate.measure(engine):
    ...     engine.run()
    >>> result.events_per_sec = rate.events_per_sec
    """

    def __init__(self) -> None:
        self.events = 0
        self.seconds = 0.0

    @property
    def events_per_sec(self) -> float:
        if self.seconds <= 0.0:
            raise ConfigError("KernelRate: nothing measured yet")
        return self.events / self.seconds

    def measure(self, engine: Engine) -> "_Measurement":
        return _Measurement(self, engine)


class _Measurement:
    """Context manager: one timed window over an engine."""

    def __init__(self, rate: KernelRate, engine: Engine) -> None:
        self._rate = rate
        self._engine = engine
        self._events0 = 0
        self._t0 = 0.0

    def __enter__(self) -> "_Measurement":
        self._events0 = self._engine.events_dispatched
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._t0
        self._rate.seconds += elapsed
        self._rate.events += self._engine.events_dispatched - self._events0


def kernel_events_per_sec(engine: Engine, fn: Callable[[], Any],
                          ) -> tuple[Any, float]:
    """Run ``fn()`` and return ``(fn's result, kernel events/sec)``."""
    rate = KernelRate()
    with rate.measure(engine):
        result = fn()
    return result, rate.events_per_sec
