"""Portal load driver: replay a traffic workload against a VideoPortal.

Populates the portal from a :class:`~repro.bench.workloads.VideoCatalog`,
then replays :class:`TrafficEvent` streams as concurrent simulated users,
collecting per-action latency statistics -- the quantitative version of
the paper's "users can watch and search videos" demo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from ..common.errors import ConfigError
from ..web import VideoPortal
from .workloads import CatalogEntry, LatencyStats, TrafficEvent, VideoCatalog


@dataclass
class WorkloadReport:
    """What a load run produces."""

    stats: dict[str, LatencyStats] = field(default_factory=dict)
    errors: int = 0
    duration: float = 0.0
    events: int = 0

    def stat(self, action: str) -> LatencyStats:
        return self.stats.setdefault(action, LatencyStats())

    @property
    def throughput(self) -> float:
        return self.events / self.duration if self.duration else 0.0


class PortalDriver:
    """Seeds content and replays traffic."""

    def __init__(self, portal: VideoPortal, *, uploader: str = "seeduser") -> None:
        self.portal = portal
        self.cluster = portal.cluster
        self.engine = portal.engine
        self.uploader = uploader
        self.video_ids: list[int] = []   # indexed by popularity rank
        self._session: str | None = None

    # -- content seeding ----------------------------------------------------------

    def seed(self, catalog: VideoCatalog, *, reindex: bool = True) -> Generator:
        """Process: register the uploader and publish the whole catalog."""

        def _flow():
            run = self.engine.process
            resp = yield run(self.portal.request("POST", "/register", params={
                "username": self.uploader, "password": "secret99",
                "email": f"{self.uploader}@x.y"}))
            if not resp.ok:
                raise ConfigError(f"seed register failed: {resp.body}")
            _, token = self.portal.auth.outbox[-1]
            yield run(self.portal.request("POST", "/verify",
                                          params={"token": token}))
            resp = yield run(self.portal.request("POST", "/login", params={
                "username": self.uploader, "password": "secret99"}))
            self._session = resp.set_session

            by_rank: dict[int, int] = {}
            for entry in catalog.entries:
                resp = yield run(self.portal.request(
                    "POST", "/upload", session=self._session, params={
                        "title": entry.title, "description": entry.description,
                        "tags": entry.tags, "media": entry.media}))
                if not resp.ok:
                    raise ConfigError(f"seed upload failed: {resp.body}")
                by_rank[entry.popularity_rank] = resp.body["video_id"]
            self.video_ids = [by_rank[r] for r in sorted(by_rank)]
            if reindex:
                yield run(self.portal.refresh_search_index())
            return self.video_ids

        return _flow()

    # -- traffic replay --------------------------------------------------------------

    def replay(self, events: list[TrafficEvent],
               client_hosts: list[str]) -> Generator:
        """Process: replay *events* (each from a client host, round-robin).

        Returns a :class:`WorkloadReport`.
        """
        if not self.video_ids:
            raise ConfigError("seed() the portal before replaying traffic")
        if not client_hosts:
            raise ConfigError("need at least one client host")
        report = WorkloadReport()
        engine = self.engine

        def one_event(event: TrafficEvent, client: str):
            t0 = engine.now
            vid = self.video_ids[event.video_rank % len(self.video_ids)]
            try:
                if event.action == "browse":
                    resp = yield engine.process(self.portal.request(
                        "GET", "/", client_host=client))
                elif event.action == "search":
                    resp = yield engine.process(self.portal.request(
                        "GET", "/search", params={"q": event.query},
                        client_host=client))
                elif event.action == "watch":
                    resp = yield engine.process(self.portal.request(
                        "GET", f"/video/{vid}",
                        client_host=client))
                    if resp.ok:
                        session = self.portal.play(
                            vid, client,
                            watch_plan=[(0.0, event.watch_seconds)])
                        yield engine.process(session.run())
                else:  # comment
                    resp = yield engine.process(self.portal.request(
                        "POST", f"/video/{vid}/comment",
                        session=self._session, params={"text": "nice!"},
                        client_host=client))
                if not resp.ok:
                    report.errors += 1
            except Exception:  # noqa: BLE001 - load runs tolerate errors
                report.errors += 1
            finally:
                report.stat(event.action).add(engine.now - t0)

        def _flow():
            started = engine.now
            procs = []
            for i, event in enumerate(events):
                # honour arrival times
                delay = started + event.at - engine.now
                if delay > 0:
                    yield engine.timeout(delay)
                client = client_hosts[i % len(client_hosts)]
                procs.append(engine.process(one_event(event, client)))
            if procs:
                yield engine.all_of(procs)
            report.duration = engine.now - started
            report.events = len(events)
            return report

        return _flow()
