"""Workload generators: synthetic video catalogs and user traffic.

The paper's evaluation is a hand-driven demo; to *measure* the portal the
benches need repeatable load.  Two generators, both seeded:

* :class:`VideoCatalog` -- synthetic uploads with realistic shapes:
  log-normal durations (most clips are minutes, a few are hours), titles
  drawn from topic word pools, and Zipf popularity ranks;
* :class:`TrafficModel` -- a request mix over the portal (browse /
  search / watch / comment / upload) with Zipf-distributed video choice
  and exponential inter-arrivals, like real VoD traffic (the paper cites
  VoD demand studies [28-33]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import ConfigError
from ..common.rng import RngStream
from ..common.units import Mbps
from ..video import R_720P, VideoFile

_TOPICS = ["nobody", "wonder girls", "cloud lecture", "cat", "concert",
           "parody", "kvm tutorial", "hadoop talk", "music video", "news"]
_ADJ = ["official", "live", "HD", "full", "best", "new", "classic", "rare"]


@dataclass(frozen=True)
class CatalogEntry:
    """One synthetic upload."""

    title: str
    description: str
    tags: str
    media: VideoFile
    popularity_rank: int      # 0 = most popular


class VideoCatalog:
    """Deterministic synthetic catalog."""

    def __init__(self, n_videos: int, *, seed: int = 0,
                 mean_duration: float = 300.0) -> None:
        if n_videos < 1:
            raise ConfigError("catalog needs >= 1 video")
        self.rng = RngStream(seed, "catalog")
        self.entries: list[CatalogEntry] = []
        ranks = self.rng.shuffle(list(range(n_videos)))
        for i in range(n_videos):
            topic = _TOPICS[i % len(_TOPICS)]
            adj = _ADJ[self.rng.randint(0, len(_ADJ))]
            # log-normal-ish durations: median `mean_duration`, long tail
            duration = max(
                10.0, mean_duration * self.rng.lognormal_factor(0.7))
            media = VideoFile(
                name=f"upload-{i}.avi", container="avi", vcodec="mpeg4",
                acodec="mp3", duration=duration, resolution=R_720P,
                fps=25.0, bitrate=4 * Mbps,
            )
            self.entries.append(CatalogEntry(
                title=f"{topic} {adj} #{i}",
                description=f"a {adj} video about {topic}",
                tags=topic.split()[0],
                media=media,
                popularity_rank=ranks[i],
            ))

    def __len__(self) -> int:
        return len(self.entries)

    def by_popularity(self) -> list[CatalogEntry]:
        return sorted(self.entries, key=lambda e: e.popularity_rank)


@dataclass(frozen=True)
class TrafficEvent:
    """One user action against the portal."""

    at: float                    # arrival offset from workload start, seconds
    action: str                  # browse|search|watch|comment
    video_rank: int              # popularity rank of the target (watch/comment)
    query: str = ""              # search only
    watch_seconds: float = 30.0  # watch only


@dataclass
class TrafficMix:
    """Fractions of each action; must sum to 1."""

    browse: float = 0.30
    search: float = 0.25
    watch: float = 0.40
    comment: float = 0.05

    def __post_init__(self) -> None:
        total = self.browse + self.search + self.watch + self.comment
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"traffic mix sums to {total}, expected 1.0")


class TrafficModel:
    """Poisson arrivals, Zipf video popularity, configurable mix."""

    def __init__(self, *, rate_per_s: float = 1.0, zipf_a: float = 1.3,
                 mix: TrafficMix | None = None, seed: int = 0) -> None:
        if rate_per_s <= 0:
            raise ConfigError("rate must be > 0")
        self.rate = rate_per_s
        self.zipf_a = zipf_a
        self.mix = mix or TrafficMix()
        self.rng = RngStream(seed, "traffic")

    def events(self, n: int, n_videos: int) -> list[TrafficEvent]:
        """Generate *n* arrivals against a catalog of *n_videos*."""
        if n < 0 or n_videos < 1:
            raise ConfigError("bad events request")
        mix = self.mix
        out: list[TrafficEvent] = []
        t = 0.0
        for _ in range(n):
            t += self.rng.exponential(1.0 / self.rate)
            u = self.rng.uniform()
            rank = self.rng.zipf_rank(self.zipf_a, n_videos)
            if u < mix.browse:
                action, query = "browse", ""
            elif u < mix.browse + mix.search:
                action = "search"
                query = _TOPICS[rank % len(_TOPICS)].split()[0]
            elif u < mix.browse + mix.search + mix.watch:
                action, query = "watch", ""
            else:
                action, query = "comment", ""
            out.append(TrafficEvent(
                at=t, action=action, video_rank=rank, query=query,
                watch_seconds=10.0 + 50.0 * self.rng.uniform(),
            ))
        return out


@dataclass
class LatencyStats:
    """Latency aggregate for one action type."""

    samples: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        if not self.samples:
            return 0.0
        if not 0 <= p <= 100:
            raise ConfigError(f"percentile {p} outside [0, 100]")
        ordered = sorted(self.samples)
        k = min(len(ordered) - 1, int(round((p / 100) * (len(ordered) - 1))))
        return ordered[k]
