"""Workload generation + load driving for the benchmark harness."""

from .driver import PortalDriver, WorkloadReport
from .harness import BenchResult, KernelRate, emit, kernel_events_per_sec
from .workloads import (
    CatalogEntry,
    LatencyStats,
    TrafficEvent,
    TrafficMix,
    TrafficModel,
    VideoCatalog,
)

__all__ = [
    "BenchResult",
    "CatalogEntry",
    "KernelRate",
    "LatencyStats",
    "PortalDriver",
    "TrafficEvent",
    "TrafficMix",
    "TrafficModel",
    "VideoCatalog",
    "WorkloadReport",
    "emit",
    "kernel_events_per_sec",
]
