"""Workload generation + load driving for the benchmark harness."""

from .driver import PortalDriver, WorkloadReport
from .workloads import (
    CatalogEntry,
    LatencyStats,
    TrafficEvent,
    TrafficMix,
    TrafficModel,
    VideoCatalog,
)

__all__ = [
    "CatalogEntry",
    "LatencyStats",
    "PortalDriver",
    "TrafficEvent",
    "TrafficMix",
    "TrafficModel",
    "VideoCatalog",
    "WorkloadReport",
]
