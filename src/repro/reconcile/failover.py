"""Automatic NameNode failover: the ZKFC analogue for the HA pair.

Real HDFS pairs the QJM with ZooKeeper failover controllers that watch
NameNode health and trigger a fenced promotion.  Here the controller is
a reconciler-style loop: every *period* it probes whether the active can
still commit (host alive *and* a journal majority reachable --
:meth:`~repro.hdfs.ha.HaNameNodePair.active_quorum_degraded`), counts
consecutive bad probes against the pool's
:class:`~repro.reconcile.spec.HealthPolicy`, and once the streak passes
``unhealthy_after`` it promotes the standby.  The promotion itself is
the fence: :meth:`~repro.hdfs.ha.HaNameNodePair.promote` bumps the
quorum epoch, so even if the old active is merely partitioned (not
dead), its in-flight writes are rejected rather than split-braining.

A *min_interval* flap guard refuses back-to-back failovers so a bouncing
network cannot make the pair ping-pong, and every promotion is recorded
into the shared :class:`~repro.reconcile.reconciler.ActionLog` (kind
``failover``) plus an MTTR histogram measured from the first bad probe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..common.errors import ConfigError, QuorumLostError, StandbyError
from ..sim import Interrupt, Process
from .spec import HealthPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..hdfs.ha import HaNameNodePair
    from .reconciler import ActionLog

#: cost of the promote RPC exchange (fence + catch-up + role switch)
PROMOTE_RPC_COST = 0.25


class FailoverController:
    """Health-checks the HA pair and promotes the standby when needed."""

    def __init__(self, pair: "HaNameNodePair", *,
                 policy: HealthPolicy | None = None,
                 period: float = 1.0,
                 actions: "ActionLog | None" = None,
                 min_interval: float = 30.0) -> None:
        if period <= 0:
            raise ConfigError("period must be > 0")
        if min_interval < 0:
            raise ConfigError("min_interval must be >= 0")
        self.pair = pair
        self.policy = policy or HealthPolicy()
        self.period = period
        self.actions = actions
        self.min_interval = min_interval
        self.failovers = 0
        self.skipped = 0
        self.last_mttr: float | None = None
        self._streak = 0
        self._suspect_since: float | None = None
        self._last_failover: float | None = None
        self._proc: Process | None = None
        self._stop = False
        metrics = pair.fs.cluster.metrics
        self._m_mttr = metrics.histogram(
            "hdfs_ha_failover_mttr_seconds",
            "first bad health probe to completed promotion")
        self._m_skipped = metrics.counter(
            "hdfs_ha_failover_skipped_total",
            "promotions refused (no quorum, dead standby, or flap guard)")

    # -- one probe ----------------------------------------------------------------

    def check_once(self) -> str | None:
        """One health probe + (maybe) one promotion; returns the action.

        ``None`` means healthy, ``"suspect"`` a building streak,
        ``"failover"`` a completed promotion, ``"skipped"`` a promotion
        that was due but refused.
        """
        engine = self.pair.fs.engine
        reason = self.pair.active_quorum_degraded()
        if reason is None:
            self._streak = 0
            self._suspect_since = None
            return None
        if self._suspect_since is None:
            self._suspect_since = engine.now
        self._streak += 1
        if self._streak < self.policy.unhealthy_after:
            return "suspect"
        if (self._last_failover is not None
                and engine.now - self._last_failover < self.min_interval):
            return "suspect"  # flap guard: wait out the cool-down
        try:
            epoch = self.pair.promote()
        except (QuorumLostError, StandbyError) as exc:
            self.skipped += 1
            self._m_skipped.inc()
            self.pair.fs.cluster.log.emit(
                "reconcile.failover", "failover_skipped",
                f"promotion refused: {exc}", reason=str(exc))
            return "skipped"
        mttr = engine.now - (self._suspect_since or engine.now)
        self.failovers += 1
        self.last_mttr = mttr
        self._last_failover = engine.now
        self._m_mttr.observe(mttr)
        if self.actions is not None:
            self.actions.record(
                "hdfs-ha", "failover", member=self.pair.active_host,
                detail=f"epoch {epoch} after '{reason}', mttr {mttr:.2f}s")
        self._streak = 0
        self._suspect_since = None
        return "failover"

    # -- the loop ------------------------------------------------------------------

    def start(self) -> None:
        """Start the watch loop (idempotent; stop with :meth:`stop`)."""
        if self._proc is not None and self._proc.is_alive:
            return
        self._stop = False
        engine = self.pair.fs.engine

        def _loop():
            try:
                while not self._stop:
                    yield engine.timeout(self.period)
                    if self._stop:
                        return
                    if self._streak + 1 >= self.policy.unhealthy_after \
                            and self.pair.active_quorum_degraded() is not None:
                        # the promotion round-trip has a real cost; pay it
                        # before acting so MTTR includes the fence exchange
                        yield engine.timeout(PROMOTE_RPC_COST)
                    self.check_once()
            except Interrupt:
                pass

        self._proc = engine.process(_loop(), name="hdfs-ha-failover-controller")

    def stop(self) -> None:
        self._stop = True
        proc = self._proc
        self._proc = None
        if proc is not None and proc.is_alive and proc.started:
            proc.interrupt("stop")
