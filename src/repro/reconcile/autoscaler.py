"""Hysteresis autoscaling from the observability layer's own numbers.

"Cost-Efficient and Robust On-Demand Video Transcoding" (PAPERS.md)
resizes worker pools against deadline pressure; this module reproduces
the control shape on top of :mod:`repro.obs`: a signal (queue depth, p99
latency, shed rate -- all read from the shared metrics registry) is
compared against high/low watermarks, and only *sustained* pressure
(``up_after`` / ``down_after`` consecutive sweeps) plus a cooldown moves
the replica count.  The hysteresis is the point: a storm's first burst
must not whipsaw the pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..common.errors import ReconcileError
from ..obs import MetricsRegistry

#: a signal reads the world and returns one number for the control loop
Signal = Callable[[], float]


def queue_depth_signal(metrics: MetricsRegistry,
                       family: str = "admission_queued") -> Signal:
    """Total work queued across every admission controller."""
    return lambda: metrics.family_total(family)


def p99_latency_signal(metrics: MetricsRegistry,
                       family: str = "web_request_seconds") -> Signal:
    """Pooled p99 request latency in seconds."""
    return lambda: metrics.family_percentile(family, 99.0)


def shed_rate_signal(metrics: MetricsRegistry, clock: Callable[[], float],
                     family: str = "admission_shed_total") -> Signal:
    """Sheds per second since the previous reading (delta-based)."""
    state = {"total": 0.0, "at": clock()}

    def _rate() -> float:
        now = clock()
        total = metrics.family_total(family)
        dt = now - state["at"]
        rate = (total - state["total"]) / dt if dt > 0 else 0.0
        state["total"], state["at"] = total, now
        return rate

    return _rate


@dataclass(frozen=True)
class AutoscalePolicy:
    """Watermarks + hysteresis for one pool."""

    pool: str
    high: float                     # scale up while signal > high ...
    low: float                      # ... scale down while signal < low
    up_after: int = 2               # consecutive sweeps above high
    down_after: int = 4             # consecutive sweeps below low
    cooldown: float = 30.0          # seconds between scaling actions
    step: int = 1                   # replicas added/removed per action

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ReconcileError(
                f"autoscaler {self.pool}: low {self.low} > high {self.high}")
        if self.up_after < 1 or self.down_after < 1:
            raise ReconcileError("up_after/down_after must be >= 1")
        if self.cooldown < 0:
            raise ReconcileError("cooldown must be >= 0")
        if self.step < 1:
            raise ReconcileError("step must be >= 1")


class Autoscaler:
    """One pool's hysteresis loop; evaluated by the reconciler each sweep."""

    def __init__(self, policy: AutoscalePolicy, signal: Signal) -> None:
        self.policy = policy
        self.signal = signal
        self.above = 0              # consecutive sweeps above high
        self.below = 0              # consecutive sweeps below low
        self.last_action: float | None = None
        self.last_value = 0.0

    def evaluate(self, now: float, replicas: int) -> int:
        """The replica count this sweep wants (== *replicas* for no-op)."""
        value = self.signal()
        self.last_value = value
        if value > self.policy.high:
            self.above += 1
            self.below = 0
        elif value < self.policy.low:
            self.below += 1
            self.above = 0
        else:
            self.above = self.below = 0
        in_cooldown = (self.last_action is not None
                       and now - self.last_action < self.policy.cooldown)
        if in_cooldown:
            return replicas
        if self.above >= self.policy.up_after:
            self.above = 0
            self.last_action = now
            return replicas + self.policy.step
        if self.below >= self.policy.down_after:
            self.below = 0
            self.last_action = now
            return replicas - self.policy.step
        return replicas
