"""The self-healing control plane: declarative specs driven to convergence.

The paper's availability story is a *reactive* hook (``repro.one.ft``):
one failure mode, one remedy.  This package closes the loop instead — a
:class:`FleetSpec` declares what the fleet should look like (N portal
replicas, M DataNodes, a transcode pool, per-pool health policy), and a
:class:`Reconciler` process continuously diffs desired against observed
state and issues convergent actions: replace failed/flapping/hung
members (with exponential backoff and a crash-loop budget), scale pools
through a hysteresis :class:`Autoscaler` fed by the metrics registry,
and roll out version upgrades health-gated with automatic rollback.
"""

from .autoscaler import (
    Autoscaler,
    AutoscalePolicy,
    p99_latency_signal,
    queue_depth_signal,
    shed_rate_signal,
)
from .failover import PROMOTE_RPC_COST, FailoverController
from .pools import (
    DataNodePoolAdapter,
    MemberStatus,
    PoolAdapter,
    TranscodePoolAdapter,
    VmPoolAdapter,
    WebReplicaPoolAdapter,
)
from .reconciler import Action, ActionLog, ConvergenceReport, Reconciler
from .spec import FleetSpec, HealthPolicy, PoolSpec

__all__ = [
    "Action",
    "ActionLog",
    "Autoscaler",
    "AutoscalePolicy",
    "ConvergenceReport",
    "DataNodePoolAdapter",
    "FailoverController",
    "FleetSpec",
    "HealthPolicy",
    "PROMOTE_RPC_COST",
    "MemberStatus",
    "PoolAdapter",
    "PoolSpec",
    "Reconciler",
    "TranscodePoolAdapter",
    "VmPoolAdapter",
    "WebReplicaPoolAdapter",
    "p99_latency_signal",
    "queue_depth_signal",
    "shed_rate_signal",
]
