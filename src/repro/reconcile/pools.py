"""Pool adapters: the reconciler's uniform view over heterogeneous pools.

Each adapter translates between one substrate (OpenNebula VMs, HDFS
DataNodes, transcode workers, web replicas behind the load balancer) and
the reconciler's three verbs: *observe* (:meth:`PoolAdapter.members`),
*add* (:meth:`PoolAdapter.add_member`) and *remove*
(:meth:`PoolAdapter.remove_member`).  Adapters never decide anything --
policy (when to replace, how many to run, which version) lives entirely
in the reconciler; adapters only report and execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

from ..common.errors import ReconcileError
from ..one.lifecycle import OneState

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..hdfs import Hdfs
    from ..one import OpenNebula, VmTemplate
    from ..web import LoadBalancer, VideoPortal

#: member phases, in "how alive is it" order
PHASES = ("ready", "starting", "unhealthy", "stopping")


@dataclass(frozen=True)
class MemberStatus:
    """One pool member as observed this sweep."""

    name: str
    version: str
    phase: str                      # one of PHASES
    host: str | None = None
    reason: str = ""

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise ReconcileError(f"unknown member phase {self.phase!r}")


class PoolAdapter(Protocol):
    """What the reconciler needs from a pool."""

    def members(self) -> list[MemberStatus]:
        """Observed members, in a deterministic order."""
        ...

    def add_member(self, version: str) -> str | None:
        """Start one member at *version*; returns its name, or None when
        the substrate has no room (no candidate host, quota, ...)."""
        ...

    def remove_member(self, name: str, *, drain: bool) -> bool:
        """Remove member *name*.  With *drain* the member is allowed to
        hand off its state first; returns False while still draining
        (call again next sweep), True once the member is gone."""
        ...


def _free_hosts(candidates: list[str], taken: set[str],
                alive: "dict[str, bool]") -> list[str]:
    return [h for h in candidates if h not in taken and alive.get(h, False)]


class VmPoolAdapter:
    """A pool of OpenNebula VMs instantiated from one template.

    Membership is tagged through VM context (``context["pool"]``), so
    resubmitted or migrated VMs stay members and retired ones drop out.
    """

    def __init__(self, cloud: "OpenNebula", pool_name: str,
                 template: "VmTemplate", *, owner: str = "oneadmin") -> None:
        self.cloud = cloud
        self.pool_name = pool_name
        self.template = template
        self.owner = owner

    def members(self) -> list[MemberStatus]:
        out = []
        for vm in sorted(self.cloud.vm_pool.values(), key=lambda v: v.id):
            if vm.context.get("pool") != self.pool_name:
                continue
            state = vm.state
            if state in (OneState.DONE, OneState.FAILED, OneState.STOPPED):
                continue            # gone (retired / awaiting cleanup)
            if state in (OneState.SHUTDOWN, OneState.EPILOG):
                phase, reason = "stopping", state.value
            elif state in (OneState.PENDING, OneState.PROLOG, OneState.BOOT):
                phase, reason = "starting", state.value
            elif state is OneState.RUNNING:
                host = vm.host_name
                rec = self.cloud.host_record(host) if host else None
                if rec is not None and rec.host.alive:
                    phase, reason = "ready", ""
                else:
                    phase, reason = "unhealthy", f"host {host} down"
            else:                   # SAVE/SUSPENDED/RESUME/MIGRATE
                phase, reason = "starting", state.value
            out.append(MemberStatus(
                name=vm.name, version=str(vm.context.get("pool_version", "")),
                phase=phase, host=vm.host_name, reason=reason))
        return out

    def add_member(self, version: str) -> str | None:
        from ..common.errors import ReproError
        try:
            vm = self.cloud.instantiate(self.template, owner=self.owner)
        except ReproError:
            return None             # quota / ACL / image trouble: no room
        vm.context["pool"] = self.pool_name
        vm.context["pool_version"] = version
        return vm.name

    def remove_member(self, name: str, *, drain: bool) -> bool:
        for vm in self.cloud.vm_pool.values():
            if vm.name == name:
                break
        else:
            return True             # already gone
        if drain and vm.state is OneState.RUNNING:
            self.cloud.engine.process(
                self.cloud.shutdown_vm(vm), name=f"drain-{vm.name}")
            return True             # shutdown flow owns it from here
        self.cloud.retire_vm(vm, reason=f"reconcile:{self.pool_name}")
        return True


class DataNodePoolAdapter:
    """The HDFS DataNode pool: scale-up enrols, scale-down decommissions."""

    def __init__(self, fs: "Hdfs", pool_name: str,
                 candidate_hosts: list[str]) -> None:
        self.fs = fs
        self.pool_name = pool_name
        self.candidate_hosts = list(candidate_hosts)
        #: member -> version (datanodes have no intrinsic version)
        self.versions: dict[str, str] = {}

    def members(self) -> list[MemberStatus]:
        nn = self.fs.namenode
        out = []
        for name in self.fs.datanodes:
            dn = self.fs.datanodes[name]
            if name in nn.decommissioning:
                phase, reason = "stopping", "decommissioning"
            elif not dn.host.alive or not dn.alive:
                phase, reason = "unhealthy", "node down"
            elif name in nn.dead_datanodes:
                phase, reason = "unhealthy", "missed heartbeats"
            else:
                phase, reason = "ready", ""
            out.append(MemberStatus(
                name=name, version=self.versions.get(name, ""),
                phase=phase, host=name, reason=reason))
        return out

    def add_member(self, version: str) -> str | None:
        taken = set(self.fs.datanodes) | {self.fs.namenode_host}
        alive = {h: self.fs.cluster.host(h).alive for h in self.candidate_hosts}
        free = _free_hosts(self.candidate_hosts, taken, alive)
        if not free:
            return None
        name = free[0]
        self.fs.add_datanode(name)
        self.versions[name] = version
        return name

    def remove_member(self, name: str, *, drain: bool) -> bool:
        if name not in self.fs.datanodes:
            self.versions.pop(name, None)
            return True
        if drain:
            self.fs.start_decommission(name)
            done = self.fs.finish_decommission(name)
            if done:
                self.versions.pop(name, None)
            return done
        # hard removal (the node is already dead): drop it from the pool
        self.fs.drop_datanode(name)
        self.versions.pop(name, None)
        return True


class TranscodePoolAdapter:
    """The distributed transcoder's worker-host pool."""

    def __init__(self, portal: "VideoPortal", pool_name: str,
                 candidate_hosts: list[str]) -> None:
        self.portal = portal
        self.pool_name = pool_name
        self.candidate_hosts = list(candidate_hosts)
        self.versions: dict[str, str] = {}

    def members(self) -> list[MemberStatus]:
        out = []
        for name in self.portal.transcoder.workers:
            alive = self.portal.cluster.host(name).alive
            out.append(MemberStatus(
                name=name, version=self.versions.get(name, ""),
                phase="ready" if alive else "unhealthy", host=name,
                reason="" if alive else "host down"))
        return out

    def add_member(self, version: str) -> str | None:
        taken = set(self.portal.transcoder.workers)
        alive = {h: self.portal.cluster.host(h).alive
                 for h in self.candidate_hosts}
        free = _free_hosts(self.candidate_hosts, taken, alive)
        if not free:
            return None
        name = free[0]
        self.portal.transcoder.workers.append(name)
        self.versions[name] = version
        return name

    def remove_member(self, name: str, *, drain: bool) -> bool:
        if name in self.portal.transcoder.workers:
            self.portal.transcoder.workers.remove(name)
        self.versions.pop(name, None)
        return True                 # segment failover handles in-flight work


class WebReplicaPoolAdapter:
    """Portal web replicas behind the :class:`~repro.web.LoadBalancer`.

    Removal with *drain* is two-phase: first sweep marks the backend
    draining (no new requests; in-flight ones finish), the next sweep
    takes it out -- the admission controller's priority classes keep
    shedding order sane while capacity is reduced.
    """

    def __init__(self, portal: "VideoPortal", lb: "LoadBalancer",
                 pool_name: str, candidate_hosts: list[str]) -> None:
        self.portal = portal
        self.lb = lb
        self.pool_name = pool_name
        self.candidate_hosts = list(candidate_hosts)
        self.versions: dict[str, str] = {}

    def members(self) -> list[MemberStatus]:
        out = []
        for name, server in self.lb.backends.items():
            if name in self.lb.draining:
                phase, reason = "stopping", "draining"
            elif not server.host.alive:
                phase, reason = "unhealthy", "host down"
            else:
                phase, reason = "ready", ""
            out.append(MemberStatus(
                name=name, version=self.versions.get(name, ""),
                phase=phase, host=server.host.name, reason=reason))
        return out

    def add_member(self, version: str) -> str | None:
        taken = {s.host.name for s in self.lb.backends.values()}
        alive = {h: self.portal.cluster.host(h).alive
                 for h in self.candidate_hosts}
        free = _free_hosts(self.candidate_hosts, taken, alive)
        if not free:
            return None
        host = free[0]
        self.lb.add_backend(host, self.portal.build_replica(host))
        self.versions[host] = version
        return host

    def remove_member(self, name: str, *, drain: bool) -> bool:
        if name not in self.lb.backends:
            self.versions.pop(name, None)
            return True
        if drain and name not in self.lb.draining:
            self.lb.drain(name)
            return False            # give in-flight requests one sweep
        self.lb.remove_backend(name)
        self.versions.pop(name, None)
        return True
