"""Declarative fleet specification: what the cluster *should* look like.

Specs are frozen; "changing the spec" always means constructing a new
one (:meth:`FleetSpec.with_replicas` / :meth:`FleetSpec.with_version`)
and handing it to :meth:`~repro.reconcile.Reconciler.apply`.  That keeps
the reconciler's view of desired state immutable between sweeps, which
is what makes convergence reasoning (and the determinism tests) simple.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..common.errors import ReconcileError


@dataclass(frozen=True)
class HealthPolicy:
    """Per-pool health and replacement policy.

    *unhealthy_after* consecutive unhealthy sweeps condemn a member;
    *hung_after* seconds stuck in the ``starting`` phase count as
    unhealthy too (a VM that never reaches RUNNING, a DataNode that
    never heartbeats).  Replacement adds back off exponentially from
    *backoff_base* up to *backoff_max*, and after *crashloop_budget*
    replacements without ever converging the reconciler gives up on the
    pool until a new spec is applied -- a poison spec must not thrash
    the cluster forever.  *ready_sweeps* gates rolling upgrades: a new-
    version member must stay ready that many sweeps before the next old
    member is drained.
    """

    unhealthy_after: int = 2
    hung_after: float = 120.0
    backoff_base: float = 5.0
    backoff_max: float = 160.0
    crashloop_budget: int = 5
    ready_sweeps: int = 2

    def __post_init__(self) -> None:
        if self.unhealthy_after < 1:
            raise ReconcileError("unhealthy_after must be >= 1")
        if self.hung_after <= 0:
            raise ReconcileError("hung_after must be > 0")
        if self.backoff_base <= 0 or self.backoff_max < self.backoff_base:
            raise ReconcileError(
                "need 0 < backoff_base <= backoff_max, got "
                f"{self.backoff_base}/{self.backoff_max}")
        if self.crashloop_budget < 1:
            raise ReconcileError("crashloop_budget must be >= 1")
        if self.ready_sweeps < 1:
            raise ReconcileError("ready_sweeps must be >= 1")


@dataclass(frozen=True)
class PoolSpec:
    """Desired state of one member pool."""

    name: str
    replicas: int
    version: str = "v1"
    health: HealthPolicy = HealthPolicy()
    min_replicas: int = 1
    max_replicas: int = 16

    def __post_init__(self) -> None:
        if not self.name:
            raise ReconcileError("pool name must be non-empty")
        if self.min_replicas < 0 or self.max_replicas < self.min_replicas:
            raise ReconcileError(
                f"pool {self.name}: need 0 <= min_replicas <= max_replicas")
        if not self.min_replicas <= self.replicas <= self.max_replicas:
            raise ReconcileError(
                f"pool {self.name}: replicas {self.replicas} outside "
                f"[{self.min_replicas}, {self.max_replicas}]")
        if not self.version:
            raise ReconcileError(f"pool {self.name}: version must be non-empty")


@dataclass(frozen=True)
class FleetSpec:
    """Desired state of the whole fleet: a tuple of pools."""

    pools: tuple[PoolSpec, ...]

    def __post_init__(self) -> None:
        if not self.pools:
            raise ReconcileError("a fleet spec needs at least one pool")
        names = [p.name for p in self.pools]
        if len(set(names)) != len(names):
            raise ReconcileError(f"duplicate pool names in spec: {names}")

    def pool(self, name: str) -> PoolSpec:
        for p in self.pools:
            if p.name == name:
                return p
        raise ReconcileError(f"no pool {name!r} in spec")

    def _replaced(self, pool: PoolSpec) -> "FleetSpec":
        return FleetSpec(tuple(
            pool if p.name == pool.name else p for p in self.pools))

    def with_replicas(self, name: str, replicas: int) -> "FleetSpec":
        """A copy with pool *name* resized (clamped to its min/max)."""
        p = self.pool(name)
        clamped = max(p.min_replicas, min(p.max_replicas, replicas))
        return self._replaced(replace(p, replicas=clamped))

    def with_version(self, name: str, version: str) -> "FleetSpec":
        """A copy with pool *name* targeting a new member *version*."""
        return self._replaced(replace(self.pool(name), version=version))
