"""The reconciler: one control loop driving observed state to the spec.

Every sweep the loop re-observes each pool through its adapter and acts
on the diff, in a fixed order so runs are bit-reproducible:

1. finish pending (draining) removals;
2. condemn members that stayed unhealthy (or hung in ``starting``) past
   the pool's :class:`~repro.reconcile.spec.HealthPolicy`, remove them,
   and note their hosts (a host that keeps eating members is cordoned);
3. advance the rolling-upgrade state machine (surge one member at the
   new version, gate on ``ready_sweeps``, drain old members one at a
   time, roll back the moment a new-version member goes unhealthy);
4. fix the member count -- scale down surplus, or add replacements and
   scale-ups at the target version, under exponential backoff and the
   crash-loop budget;
5. score convergence for the :class:`ConvergenceReport`.

Autoscalers run before the pool loop and rewrite the spec's replica
counts; everything downstream just sees a new desired state -- scaling
is not a special case, it is merely a spec change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..common.errors import ReconcileError, ReproError
from ..hardware import Cluster, PhysicalHost
from ..resilience import FailureDetectorBank
from ..sim import Interrupt, Process
from ..sim import sanitizer as _sanitizer
from .autoscaler import Autoscaler
from .pools import MemberStatus, PoolAdapter
from .spec import FleetSpec, PoolSpec

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from typing import Callable

    from ..one import MonitoringService, OpenNebula

#: every kind an Action can carry (determinism tests pin this vocabulary)
ACTION_KINDS = (
    "spec_applied", "replace", "add", "remove", "scale_up", "scale_down",
    "upgrade_start", "upgrade_member", "upgrade_done", "rollback",
    "give_up", "cordon", "uncordon", "failover", "quarantine", "reinstate",
)


@dataclass(frozen=True)
class Action:
    """One convergent step the reconciler took."""

    time: float
    pool: str
    kind: str
    member: str = ""
    detail: str = ""


class ActionLog:
    """Ordered record of everything the reconciler did."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self.actions: list[Action] = []
        self._m_actions = cluster.metrics.counter(
            "reconcile_actions_total", "actions issued by the reconciler",
            labels=("kind",))

    def record(self, pool: str, kind: str, member: str = "",
               detail: str = "") -> Action:
        if kind not in ACTION_KINDS:
            raise ReconcileError(f"unknown action kind {kind!r}")
        action = Action(time=self._cluster.engine.now, pool=pool, kind=kind,
                        member=member, detail=detail)
        self.actions.append(action)
        self._m_actions.labels(kind=kind).inc()
        self._cluster.log.emit(
            "reconcile", f"reconcile_{kind}",
            f"[{pool}] {kind}" + (f" {member}" if member else "")
            + (f": {detail}" if detail else ""),
            pool=pool, member=member, detail=detail)
        return action

    def by_kind(self, kind: str) -> list[Action]:
        return [a for a in self.actions if a.kind == kind]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for a in self.actions:
            out[a.kind] = out.get(a.kind, 0) + 1
        return out

    def signature(self) -> tuple[tuple[float, str, str, str, str], ...]:
        """Bit-comparable identity of the whole log (determinism tests)."""
        return tuple((a.time, a.pool, a.kind, a.member, a.detail)
                     for a in self.actions)

    def __len__(self) -> int:
        return len(self.actions)


@dataclass
class DivergenceEpisode:
    """One excursion of a pool away from its spec."""

    pool: str
    started: float
    converged: float | None = None

    @property
    def duration(self) -> float | None:
        if self.converged is None:
            return None
        return self.converged - self.started


class ConvergenceReport:
    """Per-pool divergence episodes + convergence-time statistics."""

    def __init__(self) -> None:
        self.episodes: list[DivergenceEpisode] = []
        self._open: dict[str, DivergenceEpisode] = {}

    def note(self, pool: str, converged: bool, now: float) -> None:
        """Record this sweep's convergence verdict for *pool*."""
        episode = self._open.get(pool)
        if not converged and episode is None:
            episode = DivergenceEpisode(pool=pool, started=now)
            self._open[pool] = episode
            self.episodes.append(episode)
        elif converged and episode is not None:
            episode.converged = now
            del self._open[pool]

    def closed(self) -> list[DivergenceEpisode]:
        return [e for e in self.episodes if e.converged is not None]

    def open_pools(self) -> list[str]:
        return sorted(self._open)

    def convergence_times(self) -> list[float]:
        return [e.duration for e in self.closed() if e.duration is not None]

    def mean_convergence_time(self) -> float:
        times = self.convergence_times()
        return sum(times) / len(times) if times else 0.0

    def max_convergence_time(self) -> float:
        times = self.convergence_times()
        return max(times) if times else 0.0

    def signature(self) -> tuple[tuple[str, float, float | None], ...]:
        return tuple((e.pool, e.started, e.converged) for e in self.episodes)

    def as_dict(self) -> dict[str, object]:
        return {
            "episodes": len(self.episodes),
            "unconverged_pools": self.open_pools(),
            "mean_convergence_s": round(self.mean_convergence_time(), 3),
            "max_convergence_s": round(self.max_convergence_time(), 3),
        }


@dataclass
class _SuspicionWatch:
    """One phi-suspicion source the reconciler quarantines against."""

    name: str
    bank: FailureDetectorBank
    threshold: float
    sweeps: int
    probation: float
    on_quarantine: "Callable[[str], None] | None"
    on_reinstate: "Callable[[str], None] | None"
    cordon_hosts: bool
    streak: dict[str, int] = field(default_factory=dict)
    quarantined: dict[str, float] = field(default_factory=dict)
    calm_since: dict[str, float] = field(default_factory=dict)
    cordoned: set[str] = field(default_factory=set)


@dataclass
class _PoolState:
    """Mutable per-pool bookkeeping between sweeps."""

    streak: dict[str, int] = field(default_factory=dict)
    starting_since: dict[str, float] = field(default_factory=dict)
    pending: dict[str, bool] = field(default_factory=dict)  # name -> drain
    backoff: float = 0.0
    backoff_until: float = 0.0
    replace_count: int = 0
    gave_up: bool = False
    upgrade_active: bool = False
    ready_streak: int = 0
    last_good: str = ""
    bad_versions: set[str] = field(default_factory=set)


class Reconciler:
    """Drives every pool in a :class:`FleetSpec` toward its desired state."""

    def __init__(
        self,
        cluster: Cluster,
        spec: FleetSpec,
        adapters: dict[str, PoolAdapter],
        *,
        autoscalers: Iterable[Autoscaler] = (),
        period: float = 5.0,
        monitoring: "MonitoringService | None" = None,
        cloud: "OpenNebula | None" = None,
        cordon_after: int = 3,
        cordon_probation: float = 120.0,
    ) -> None:
        if period <= 0:
            raise ReconcileError("reconciler period must be > 0")
        self.cluster = cluster
        self.engine = cluster.engine
        self.adapters = dict(adapters)
        self.autoscalers = list(autoscalers)
        self.period = period
        self.monitoring = monitoring
        self.cloud = cloud
        self.cordon_after = cordon_after
        self.cordon_probation = cordon_probation
        self.actions = ActionLog(cluster)
        self.report = ConvergenceReport()
        self.sweeps = 0
        self._state: dict[str, _PoolState] = {}
        self._host_failures: dict[str, int] = {}
        self._cordoned_until: dict[str, float] = {}
        # event-driven liveness: hosts report back via on_recover/on_fail
        # listeners instead of the sweep polling host.alive, so an
        # uncordon decision never depends on same-timestamp dispatch
        # order between a sweep and the host's recovery event
        self._host_alive_since: dict[str, float] = {}
        self._watched_hosts: set[str] = set()
        self._suspicion: list[_SuspicionWatch] = []
        self._proc: Process | None = None
        self._stop = False
        metrics = cluster.metrics
        self._m_members = metrics.gauge(
            "reconcile_members", "observed members by phase",
            labels=("pool", "phase"))
        self._m_converged = metrics.gauge(
            "reconcile_converged", "1 when a pool matches its spec",
            labels=("pool",))
        self._m_convergence = metrics.histogram(
            "reconcile_convergence_seconds",
            "divergence episode durations")
        self._m_sweeps = metrics.counter(
            "reconcile_sweeps_total", "reconciler sweeps executed")
        self._m_quarantined = metrics.gauge(
            "reconcile_quarantined",
            "1 while a node sits in slow-node quarantine",
            labels=("pool", "host"))
        self.spec: FleetSpec = spec  # set for type; apply() validates
        self._applied = False
        self.apply(spec)

    # -- spec management ------------------------------------------------------

    def apply(self, spec: FleetSpec) -> None:
        """Install a new desired state.

        Give-up and version bans are reset only for pools whose spec
        actually changed (or that had given up): the operator speaking
        about one pool must not un-ban a version another pool rolled
        back from.
        """
        for pool in spec.pools:
            if pool.name not in self.adapters:
                raise ReconcileError(f"no adapter for pool {pool.name!r}")
        if _sanitizer.ACTIVE is not None:
            _sanitizer.ACTIVE.access(self, "spec", "w")
        previous = self.spec if self._applied else None
        self.spec = spec
        self._applied = True
        for pool in spec.pools:
            st = self._state.get(pool.name)
            if st is None:
                st = self._state[pool.name] = _PoolState(last_good=pool.version)
                self._adopt_unversioned(pool, st)
            else:
                prev = None
                if previous is not None:
                    try:
                        prev = previous.pool(pool.name)
                    except ReconcileError:
                        prev = None
                if prev == pool and not st.gave_up:
                    continue        # unchanged pool: keep its state
                st.gave_up = False
                st.replace_count = 0
                st.bad_versions.discard(pool.version)
            self.actions.record(
                pool.name, "spec_applied",
                detail=f"replicas={pool.replicas} version={pool.version}")

    def _adopt_unversioned(self, pool: PoolSpec, st: _PoolState) -> None:
        """Stamp pre-existing (unversioned) members with the spec version,
        so the first sweep does not read them as an upgrade in progress."""
        adapter = self.adapters[pool.name]
        adopt = getattr(adapter, "adopt", None)
        for m in adapter.members():
            if m.version:
                continue
            if adopt is not None:
                adopt(m.name, pool.version)
            else:
                versions = getattr(adapter, "versions", None)
                if versions is not None:
                    versions[m.name] = pool.version

    def _target_version(self, pool: PoolSpec, st: _PoolState) -> str:
        if pool.version in st.bad_versions:
            return st.last_good
        return pool.version

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Begin the sweep loop (idempotent)."""
        if self._proc is not None and self._proc.is_alive:
            return
        self._stop = False
        engine = self.engine

        def _loop():
            try:
                while not self._stop:
                    yield engine.timeout(self.period)
                    if self._stop:
                        return
                    if self.monitoring is not None:
                        yield engine.process(self.monitoring.poll_once())
                    self.sweep()
            except Interrupt:
                pass

        self._proc = engine.process(_loop(), name="reconciler")

    def stop(self) -> None:
        self._stop = True
        proc = self._proc
        self._proc = None
        if proc is not None and proc.is_alive and proc.started:
            proc.interrupt("stop")

    # -- one sweep ------------------------------------------------------------

    def sweep(self) -> None:
        """Diff desired vs observed for every pool and act on it."""
        if _sanitizer.ACTIVE is not None:
            # a sweep both reads the spec and may rewrite it (autoscaler)
            _sanitizer.ACTIVE.access(self, "spec", "w")
        now = self.engine.now
        self.sweeps += 1
        self._m_sweeps.inc()
        for scaler in self.autoscalers:
            pool = self.spec.pool(scaler.policy.pool)
            want = scaler.evaluate(now, pool.replicas)
            clamped = max(pool.min_replicas, min(pool.max_replicas, want))
            if clamped != pool.replicas:
                self.spec = self.spec.with_replicas(pool.name, clamped)
                kind = "scale_up" if clamped > pool.replicas else "scale_down"
                self.actions.record(
                    pool.name, kind,
                    detail=f"{pool.replicas}->{clamped} "
                           f"signal={scaler.last_value:.3f}")
        self._sweep_cordons(now)
        self._sweep_suspicion(now)
        for pool in self.spec.pools:
            self._reconcile_pool(pool, now)

    def _reconcile_pool(self, pool: PoolSpec, now: float) -> None:
        st = self._state[pool.name]
        adapter = self.adapters[pool.name]
        target = self._target_version(pool, st)

        # 1. finish removals still draining from earlier sweeps
        for name in sorted(st.pending):
            if adapter.remove_member(name, drain=st.pending[name]):
                del st.pending[name]

        # 2. health: update streaks, condemn, replace-remove
        members = adapter.members()
        # the pre-action verdict: a divergence episode opens the moment a
        # mismatch is *observed*, even if this very sweep repairs it
        self.report.note(
            pool.name, self._verdict(pool, st, members, target), now)
        self._update_streaks(pool, st, members, now)
        condemned = sorted(
            (m for m in members
             if m.phase != "stopping"
             and st.streak.get(m.name, 0) >= pool.health.unhealthy_after),
            key=lambda m: m.name)
        for m in condemned:
            if st.gave_up:
                break
            if not adapter.remove_member(m.name, drain=False):
                st.pending[m.name] = False
            st.streak.pop(m.name, None)
            st.starting_since.pop(m.name, None)
            self.actions.record(pool.name, "replace", member=m.name,
                                detail=m.reason or m.phase)
            st.replace_count += 1
            if m.host is not None:
                self._note_host_failure(m.host, now)
            if st.replace_count >= pool.health.crashloop_budget:
                st.gave_up = True
                self.actions.record(
                    pool.name, "give_up",
                    detail=f"{st.replace_count} replacements without "
                           f"convergence (budget "
                           f"{pool.health.crashloop_budget})")
        if condemned and not st.gave_up:
            # crash-loop backoff: first replacement is immediate, then
            # the re-adds wait base, 2*base, ... up to backoff_max
            st.backoff_until = max(st.backoff_until, now + st.backoff)
            st.backoff = (pool.health.backoff_base if st.backoff == 0
                          else min(pool.health.backoff_max, st.backoff * 2))

        # 3. rolling upgrade
        members = adapter.members()
        active = [m for m in members if m.phase != "stopping"]
        self._advance_upgrade(pool, st, adapter, active, now)

        # 4. count: scale down surplus / add up to desired (+ surge)
        members = adapter.members()
        active = [m for m in members if m.phase != "stopping"]
        old_left = [m for m in active if m.version != target]
        desired = pool.replicas + (1 if st.upgrade_active and old_left else 0)
        if len(active) > desired:
            # drop off-version members first, then non-ready, then the
            # highest names -- deterministic and upgrade-friendly
            victims = sorted(
                active,
                key=lambda m: (m.version == target, m.phase == "ready",
                               m.name))
            for m in victims[:len(active) - desired]:
                if not adapter.remove_member(m.name, drain=True):
                    st.pending[m.name] = True
                self.actions.record(pool.name, "remove", member=m.name,
                                    detail="surplus")
        elif (len(active) < desired and not st.gave_up
                and now >= st.backoff_until):
            for _ in range(desired - len(active)):
                name = adapter.add_member(target)
                if name is None:
                    self.cluster.log.emit(
                        "reconcile", "reconcile_no_capacity",
                        f"[{pool.name}] no room for another member",
                        pool=pool.name)
                    break
                self.actions.record(pool.name, "add", member=name,
                                    detail=f"version={target}")

        # 5. convergence verdict + metrics
        members = adapter.members()
        converged = self._verdict(pool, st, members, target)
        before = set(self.report.open_pools())
        self.report.note(pool.name, converged, now)
        if converged and pool.name in before:
            closed = [e for e in self.report.episodes
                      if e.pool == pool.name and e.converged == now]
            for e in closed:
                if e.duration is not None:
                    self._m_convergence.observe(e.duration)
        if converged:
            st.backoff = 0.0
            st.backoff_until = 0.0
            st.replace_count = 0
            st.gave_up = False
        self._m_converged.labels(pool=pool.name).set(1.0 if converged else 0.0)
        for phase in ("ready", "starting", "unhealthy", "stopping"):
            self._m_members.labels(pool=pool.name, phase=phase).set(
                sum(1 for m in members if m.phase == phase))

    def _verdict(self, pool: PoolSpec, st: _PoolState,
                 members: list[MemberStatus], target: str) -> bool:
        active = [m for m in members if m.phase != "stopping"]
        return (not st.upgrade_active
                and not st.pending
                and len(active) == pool.replicas
                and all(m.phase == "ready" for m in active)
                and all(m.version == target for m in active))

    # -- health bookkeeping ---------------------------------------------------

    def _update_streaks(self, pool: PoolSpec, st: _PoolState,
                        members: list[MemberStatus], now: float) -> None:
        seen = set()
        for m in members:
            seen.add(m.name)
            if m.phase == "unhealthy":
                st.streak[m.name] = st.streak.get(m.name, 0) + 1
                st.starting_since.pop(m.name, None)
            elif m.phase == "starting":
                since = st.starting_since.setdefault(m.name, now)
                if now - since > pool.health.hung_after:
                    st.streak[m.name] = max(
                        st.streak.get(m.name, 0) + 1,
                        pool.health.unhealthy_after)
            else:
                st.streak.pop(m.name, None)
                st.starting_since.pop(m.name, None)
        for name in list(st.streak):
            if name not in seen:
                del st.streak[name]
        for name in list(st.starting_since):
            if name not in seen:
                del st.starting_since[name]

    # -- rolling upgrades -----------------------------------------------------

    def _advance_upgrade(self, pool: PoolSpec, st: _PoolState,
                         adapter: PoolAdapter, active: list[MemberStatus],
                         now: float) -> None:
        target = self._target_version(pool, st)
        new = [m for m in active if m.version == target]
        old = [m for m in active if m.version != target]

        if not st.upgrade_active:
            if (old and target == pool.version
                    and len(active) == pool.replicas
                    and all(m.phase == "ready" for m in active)
                    and not st.pending and not st.gave_up):
                st.upgrade_active = True
                st.ready_streak = 0
                self.actions.record(
                    pool.name, "upgrade_start",
                    detail=f"{old[0].version or 'unversioned'}->{target} "
                           f"({len(old)} members)")
                name = adapter.add_member(target)
                if name is not None:
                    self.actions.record(pool.name, "upgrade_member",
                                        member=name, detail="surge")
            return

        # active upgrade: watch the new-version members like a hawk
        if any(m.phase == "unhealthy" for m in new) or (not new and old):
            st.bad_versions.add(pool.version)
            st.upgrade_active = False
            st.ready_streak = 0
            self.actions.record(
                pool.name, "rollback",
                detail=f"{pool.version} regressed; back to {st.last_good}")
            for m in sorted(new, key=lambda m: m.name):
                if not adapter.remove_member(m.name, drain=False):
                    st.pending[m.name] = False
                self.actions.record(pool.name, "remove", member=m.name,
                                    detail=f"bad version {pool.version}")
            return
        if not all(m.phase == "ready" for m in new):
            st.ready_streak = 0           # still booting; gate stays shut
            return
        st.ready_streak += 1
        if st.ready_streak < pool.health.ready_sweeps or st.pending:
            return
        if old:
            victim = sorted(old, key=lambda m: m.name)[0]
            if not adapter.remove_member(victim.name, drain=True):
                st.pending[victim.name] = True
            self.actions.record(pool.name, "upgrade_member",
                                member=victim.name, detail="drain old")
            st.ready_streak = 0
            return
        st.upgrade_active = False
        st.last_good = target
        self.actions.record(pool.name, "upgrade_done",
                            detail=f"all members at {target}")

    # -- slow-node (gray) quarantine ------------------------------------------

    def watch_suspicion(
        self,
        name: str,
        bank: FailureDetectorBank,
        *,
        threshold: float = 8.0,
        sweeps: int = 2,
        probation: float = 60.0,
        on_quarantine: "Callable[[str], None] | None" = None,
        on_reinstate: "Callable[[str], None] | None" = None,
        cordon_hosts: bool = True,
    ) -> None:
        """Quarantine nodes whose phi suspicion stays high without dying.

        Every sweep each target of *bank* is scored: suspicion at or
        above *threshold* for *sweeps* consecutive sweeps sends the node
        to quarantine -- its host is cordoned (no new placements) and
        the *on_quarantine* hook runs (wire it to drain traffic away).
        A quarantined node starts probation the moment its suspicion
        drops below the threshold; staying calm for *probation* seconds
        reinstates it automatically (uncordon + *on_reinstate*).
        Crash-failures stay with the binary cordon path -- this watcher
        is purely for the gray, slow-but-alive middle ground.
        """
        if threshold <= 0 or sweeps < 1 or probation <= 0:
            raise ReconcileError(
                "need threshold > 0, sweeps >= 1 and probation > 0")
        if any(w.name == name for w in self._suspicion):
            raise ReconcileError(f"suspicion watch {name!r} already exists")
        self._suspicion.append(_SuspicionWatch(
            name=name, bank=bank, threshold=threshold, sweeps=sweeps,
            probation=probation, on_quarantine=on_quarantine,
            on_reinstate=on_reinstate, cordon_hosts=cordon_hosts))

    def quarantined(self) -> dict[str, list[str]]:
        """Currently quarantined nodes, keyed by watch name."""
        return {w.name: sorted(w.quarantined) for w in self._suspicion}

    def _sweep_suspicion(self, now: float) -> None:
        for watch in self._suspicion:
            for target in sorted(watch.bank.targets()):
                phi = watch.bank.phi(target)
                if target in watch.quarantined:
                    if phi < watch.threshold:
                        since = watch.calm_since.setdefault(target, now)
                        if now - since >= watch.probation:
                            self._reinstate(watch, target)
                    else:
                        # suspicion flared again: probation starts over
                        watch.calm_since.pop(target, None)
                elif phi >= watch.threshold:
                    watch.streak[target] = watch.streak.get(target, 0) + 1
                    if watch.streak[target] >= watch.sweeps:
                        self._quarantine(watch, target, now, phi)
                else:
                    watch.streak.pop(target, None)

    def _quarantine(self, watch: _SuspicionWatch, target: str,
                    now: float, phi: float) -> None:
        watch.quarantined[target] = now
        watch.streak.pop(target, None)
        if watch.cordon_hosts and self.cloud is not None:
            try:
                self.cloud.cordon_host(target)
                watch.cordoned.add(target)
            except ReproError:
                pass  # not a compute host; traffic drain still applies
        self._m_quarantined.labels(pool=watch.name, host=target).set(1.0)
        self.actions.record(
            watch.name, "quarantine", member=target,
            detail=f"phi={min(phi, 999.0):.1f} over {watch.sweeps} sweeps")
        if watch.on_quarantine is not None:
            watch.on_quarantine(target)

    def _reinstate(self, watch: _SuspicionWatch, target: str) -> None:
        del watch.quarantined[target]
        watch.calm_since.pop(target, None)
        if target in watch.cordoned:
            watch.cordoned.discard(target)
            if self.cloud is not None:
                try:
                    self.cloud.uncordon_host(target)
                except ReproError:
                    pass
        self._m_quarantined.labels(pool=watch.name, host=target).set(0.0)
        self.actions.record(watch.name, "reinstate", member=target,
                            detail="probation served")
        if watch.on_reinstate is not None:
            watch.on_reinstate(target)

    # -- host quarantine ------------------------------------------------------

    def _note_host_failure(self, host: str, now: float) -> None:
        if self.cloud is None:
            return
        self._host_failures[host] = self._host_failures.get(host, 0) + 1
        if self._host_failures[host] < self.cordon_after:
            return
        if host in self._cordoned_until:
            return
        try:
            self.cloud.cordon_host(host)
        except ReproError:
            # hosts outside the compute pool (e.g. the front-end) cannot
            # be cordoned; just keep counting
            return
        host_obj = self.cluster.host(host)
        if host not in self._watched_hosts:
            self._watched_hosts.add(host)
            host_obj.on_recover(self._note_host_recovered)
            host_obj.on_fail(self._note_host_down)
        if host_obj.alive:
            self._host_alive_since[host] = now
        self._cordoned_until[host] = now + self.cordon_probation
        self.actions.record(
            "fleet", "cordon", member=host,
            detail=f"{self._host_failures[host]} member failures")

    def _note_host_recovered(self, host: PhysicalHost) -> None:
        self._host_alive_since[host.name] = self.engine.now

    def _note_host_down(self, host: PhysicalHost) -> None:
        self._host_alive_since.pop(host.name, None)

    def _sweep_cordons(self, now: float) -> None:
        for host in sorted(self._cordoned_until):
            if now < self._cordoned_until[host]:
                continue
            alive_since = self._host_alive_since.get(host)
            if alive_since is None or alive_since >= now:
                # down, or came back at this very instant: probation
                # extends to the next sweep either way, regardless of
                # how the tie between sweep and recovery was broken
                continue
            self.cloud.uncordon_host(host)
            del self._cordoned_until[host]
            self._host_failures[host] = 0
            self.actions.record("fleet", "uncordon", member=host,
                                detail="probation served")
