"""Jepsen-style consistency checking for client operation histories.

A :class:`HistoryRecorder` logs every client-visible operation as an
invoke / ack / fail pair with simulated timestamps; :func:`check_history`
then verifies the two guarantees the NameNode HA design promises:

* **No lost acknowledged writes** -- a path whose last acknowledged
  mutation was a write must exist in the final state (and vice versa for
  deletes).
* **No stale reads after acknowledgement** -- once a write has been
  acknowledged, a read that *starts* later may not report the path as
  missing, and an acknowledged read may not return a value older than the
  latest acknowledged write that completed before the read began.

Failed operations are genuinely ambiguous (they may or may not have taken
effect -- linearizability permits either outcome), so the checker treats
them as concurrency: any key touched by a failed mutation overlapping a
read is exempt from the staleness rules for that window.

This module is pure bookkeeping over recorded timestamps: it imports
nothing from the simulation layers, so histories can be checked offline
or inside benchmarks without layering concerns.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable

#: error names a read raises when a path is absent (used to detect
#: "read saw nothing" as opposed to infrastructure failures)
NOT_FOUND_ERRORS = frozenset({"FileNotFoundInHdfs"})


@dataclass
class Operation:
    """One client-visible operation, from invocation to completion."""

    index: int
    client: str
    kind: str                  # write | read | delete
    key: str
    invoked: float
    completed: float | None = None
    outcome: str = "open"      # open | ok | fail
    value: int | None = None
    error: str | None = None

    @property
    def acked(self) -> bool:
        return self.outcome == "ok"

    @property
    def failed(self) -> bool:
        return self.outcome == "fail"


class HistoryRecorder:
    """Collects the operation history of one run.

    *clock* supplies simulated time (pass ``lambda: engine.now``).  Attach
    the same recorder to every client whose operations should be checked
    together.
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.ops: list[Operation] = []

    def invoke(self, client: str, kind: str, key: str,
               *, value: int | None = None) -> Operation:
        op = Operation(index=len(self.ops), client=client, kind=kind,
                       key=key, invoked=self._clock(), value=value)
        self.ops.append(op)
        return op

    def ack(self, op: Operation, *, value: int | None = None) -> None:
        op.completed = self._clock()
        op.outcome = "ok"
        if value is not None:
            op.value = value

    def fail(self, op: Operation, error: str) -> None:
        op.completed = self._clock()
        op.outcome = "fail"
        op.error = error

    def acked_writes(self) -> list[Operation]:
        return [op for op in self.ops if op.kind == "write" and op.acked]

    def signature(self) -> str:
        """Deterministic digest of the full history (for DET02-style checks)."""
        digest = hashlib.sha256()
        for op in self.ops:
            digest.update(
                f"{op.index}|{op.client}|{op.kind}|{op.key}|{op.invoked!r}|"
                f"{op.completed!r}|{op.outcome}|{op.value!r}|{op.error!r}\n"
                .encode())
        return digest.hexdigest()


@dataclass(frozen=True)
class Violation:
    """One consistency anomaly found by :func:`check_history`."""

    rule: str                  # lost-acked-write | stale-read | value-mismatch
    key: str
    detail: str
    at: float


@dataclass
class HistoryReport:
    """The checker's verdict over one recorded history."""

    ops: int
    acked_writes: int
    acked_reads: int
    failed_ops: int
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, Any]:
        return {
            "ops": self.ops,
            "acked_writes": self.acked_writes,
            "acked_reads": self.acked_reads,
            "failed_ops": self.failed_ops,
            "ok": self.ok,
            "violations": [
                {"rule": v.rule, "key": v.key, "detail": v.detail, "at": v.at}
                for v in self.violations
            ],
        }


def _last_acked_mutation(ops: list[Operation], key: str,
                         before: float | None = None) -> Operation | None:
    """The acked write/delete on *key* with the latest completion time
    (ties broken by invocation order), optionally completed <= *before*."""
    best: Operation | None = None
    for op in ops:
        if op.key != key or not op.acked or op.kind not in ("write", "delete"):
            continue
        if before is not None and (op.completed is None or op.completed > before):
            continue
        if best is None or (op.completed, op.index) > (best.completed, best.index):
            best = op
    return best


def _ambiguous_overlap(ops: list[Operation], read: Operation) -> bool:
    """Whether a failed or concurrent mutation on the read's key makes any
    outcome of the read legal (linearizability treats an unacknowledged
    mutation as free to take effect at any point, or never)."""
    for op in ops:
        if op.key != read.key or op.kind not in ("write", "delete"):
            continue
        if op is read:
            continue
        end = op.completed
        if op.failed or op.outcome == "open":
            return True
        # acked mutation concurrent with the read window
        read_end = read.completed if read.completed is not None else read.invoked
        if end is not None and op.invoked <= read_end and end >= read.invoked:
            return True
    return False


def check_history(history: HistoryRecorder,
                  *, final_keys: "set[str] | None" = None) -> HistoryReport:
    """Check *history* for acked-write loss and stale reads.

    *final_keys* is the set of paths that exist at the end of the run
    (pass ``set(client.listdir("/"))`` or equivalent); omit it to skip
    the final-state rule and check only the read/write timeline.
    """
    ops = history.ops
    report = HistoryReport(
        ops=len(ops),
        acked_writes=sum(1 for o in ops if o.kind == "write" and o.acked),
        acked_reads=sum(1 for o in ops if o.kind == "read" and o.acked),
        failed_ops=sum(1 for o in ops if o.failed),
    )

    # Rule 1: lost acknowledged writes (vs the observed final state).
    if final_keys is not None:
        for key in sorted({o.key for o in ops}):
            last = _last_acked_mutation(ops, key)
            if last is None:
                continue
            ambiguous = any(
                o.key == key and o.kind in ("write", "delete")
                and (o.failed or o.outcome == "open")
                and (o.completed is None or last.completed is None
                     or o.completed >= last.completed)
                for o in ops)
            if ambiguous:
                continue  # a later unacked mutation may legally have landed
            if last.kind == "write" and key not in final_keys:
                report.violations.append(Violation(
                    "lost-acked-write", key,
                    f"write acked at t={last.completed} but {key} is absent "
                    "from the final state", last.completed or 0.0))
            elif last.kind == "delete" and key in final_keys:
                report.violations.append(Violation(
                    "lost-acked-write", key,
                    f"delete acked at t={last.completed} but {key} survives "
                    "in the final state", last.completed or 0.0))

    # Rules 2+3: every read against the acked timeline.
    for read in ops:
        if read.kind != "read" or read.outcome == "open":
            continue
        if _ambiguous_overlap(ops, read):
            continue
        expected = _last_acked_mutation(ops, read.key, before=read.invoked)
        if expected is None or expected.kind != "write":
            continue  # nothing provably present when the read began
        if read.failed:
            if read.error in NOT_FOUND_ERRORS:
                report.violations.append(Violation(
                    "stale-read", read.key,
                    f"read invoked at t={read.invoked} saw no file, but a "
                    f"write was acked at t={expected.completed}",
                    read.invoked))
            continue  # other failures (timeouts, partitions) are not staleness
        if (read.value is not None and expected.value is not None
                and read.value != expected.value):
            report.violations.append(Violation(
                "value-mismatch", read.key,
                f"read returned {read.value} but the latest acked write "
                f"(t={expected.completed}) wrote {expected.value}",
                read.invoked))
    return report
