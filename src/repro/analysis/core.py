"""The AST-walker framework behind ``python -m repro.analysis``.

The reproduction's headline numbers are only credible if the simulated
cluster stays deterministic and its layers stay honestly separated.
Those properties are *invariants of the source tree*, so they are
enforced the same way type errors are: statically, on every run of the
test suite and CI, by the checks in :mod:`repro.analysis.checks`.

This module owns the machinery the checks share:

* :class:`Finding` -- one rule violation (file, line, rule id, severity,
  message);
* :class:`ModuleInfo` -- a parsed source file plus the metadata every
  check needs (module name, owning ``repro`` subpackage, the set of
  lines guarded by ``if TYPE_CHECKING:``, per-line suppressions);
* :class:`Check` -- the base class: per-file checks override
  :meth:`Check.check_module`, whole-program checks (layering, import
  cycles, exception hierarchy) override :meth:`Check.check_program`;
* :func:`run_checks` -- collects findings over a module set and drops
  the ones suppressed with a ``# repro: allow[RULE]`` comment on the
  offending line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: bump when a rule is added/removed or its semantics change; benches
#: record this so every BENCH_JSON block names the invariant set it ran
#: under.  1.1.0: RACE01-03 yield-point hazard rules + SUP01
#: unused-suppression detection.
ANALYZER_VERSION = "1.1.0"

#: the framework's own rule id for ``# repro: allow[...]`` comments that
#: suppress nothing (like ruff's unused-noqa); never itself suppressible
UNUSED_ALLOW_RULE = "SUP01"

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source line."""

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


class ModuleInfo:
    """One parsed source file plus everything the checks ask about it."""

    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.tree = ast.parse(source, filename=relpath)
        self.module = _module_name(self.relpath)
        self.package = _subpackage(self.module)
        self.is_init = self.relpath.endswith("__init__.py")
        self._suppressed = _suppressions(source)
        self.type_checking_lines = _type_checking_lines(self.tree)

    @classmethod
    def from_file(cls, path: "Path | str") -> "ModuleInfo":
        p = Path(path)
        try:
            rel = p.resolve().relative_to(Path.cwd())
        except ValueError:
            rel = p
        return cls(str(rel), p.read_text(encoding="utf-8"))

    def allows(self, rule: str, line: int) -> bool:
        """True when *line* carries a ``# repro: allow[rule]`` comment."""
        return rule in self._suppressed.get(line, ())

    def suppressions(self) -> dict[int, frozenset[str]]:
        """Every ``# repro: allow[...]`` comment, keyed by line number."""
        return dict(self._suppressed)

    def in_type_checking(self, node: ast.AST) -> bool:
        """True when *node* sits inside an ``if TYPE_CHECKING:`` block."""
        return getattr(node, "lineno", 0) in self.type_checking_lines

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ModuleInfo {self.relpath} ({self.module or 'non-repro'})>"


class Check:
    """Base class for one rule.

    Subclasses set ``rule``/``description`` and override one (or both)
    of the hooks.  ``check_module`` runs once per file; ``check_program``
    runs once over the whole module set, for rules that need the global
    import graph or class hierarchy.
    """

    rule = "XXX00"
    description = ""
    severity = "error"

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        return ()

    def check_program(self, mods: Sequence[ModuleInfo]) -> Iterable[Finding]:
        return ()

    def finding(self, mod: ModuleInfo, node: "ast.AST | int",
                message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(mod.relpath, line, self.rule, message, self.severity)


def iter_source_files(paths: Sequence["Path | str"]) -> Iterator[Path]:
    """Every ``*.py`` under *paths* (files are taken as-is), sorted."""
    out: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        else:
            out.append(p)
    return iter(out)


def load_modules(paths: Sequence["Path | str"]) -> list[ModuleInfo]:
    """Parse every python file under *paths* into :class:`ModuleInfo`."""
    return [ModuleInfo.from_file(p) for p in iter_source_files(paths)]


def run_checks(modules: Sequence[ModuleInfo],
               checks: Sequence[Check],
               *, report_unused_allows: bool = False) -> list[Finding]:
    """All unsuppressed findings over *modules*, sorted by location.

    With *report_unused_allows*, every ``# repro: allow[RULE]`` comment
    that suppressed nothing is itself reported as a
    :data:`UNUSED_ALLOW_RULE` finding -- but only for rules the active
    check set could have produced, so a filtered run never calls a
    suppression for an unselected rule stale.
    """
    by_path = {m.relpath: m for m in modules}
    findings: list[Finding] = []
    for check in checks:
        for mod in modules:
            findings.extend(check.check_module(mod))
        findings.extend(check.check_program(modules))
    kept = []
    used: set[tuple[str, int, str]] = set()
    for f in findings:
        mod = by_path.get(f.path)
        if mod is not None and mod.allows(f.rule, f.line):
            used.add((f.path, f.line, f.rule))
            continue
        kept.append(f)
    if report_unused_allows:
        active = {check.rule for check in checks}
        for mod in modules:
            for line, rules in sorted(mod.suppressions().items()):
                for rule in sorted(rules):
                    if rule not in active:
                        continue
                    if (mod.relpath, line, rule) in used:
                        continue
                    kept.append(Finding(
                        mod.relpath, line, UNUSED_ALLOW_RULE,
                        f"unused suppression: no {rule} finding on this "
                        f"line; delete the allow[{rule}] comment",
                        severity="warning"))
    return sorted(set(kept))


# -- metadata helpers ---------------------------------------------------------


def _module_name(relpath: str) -> str | None:
    """Dotted module name for paths inside a ``repro`` package tree."""
    parts = Path(relpath).with_suffix("").parts
    if "repro" not in parts:
        return None
    parts = parts[parts.index("repro"):]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _subpackage(module: str | None) -> str | None:
    """The top-level ``repro`` subpackage a module belongs to.

    ``repro.hdfs.placement`` -> ``hdfs``; top-level modules such as
    ``repro.stack`` map to their own name so the layering table can
    address them individually.
    """
    if module is None or not module.startswith("repro"):
        return None
    segs = module.split(".")
    return segs[1] if len(segs) > 1 else None


def _suppressions(source: str) -> dict[int, frozenset[str]]:
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _ALLOW_RE.search(line)
        if m:
            rules = frozenset(r.strip() for r in m.group(1).split(",") if r.strip())
            out[lineno] = rules
    return out


def _type_checking_lines(tree: ast.Module) -> frozenset[int]:
    """Line numbers covered by ``if TYPE_CHECKING:`` bodies."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = test.id if isinstance(test, ast.Name) else (
            test.attr if isinstance(test, ast.Attribute) else None)
        if name != "TYPE_CHECKING":
            continue
        for sub in node.body:
            end = getattr(sub, "end_lineno", sub.lineno)
            lines.update(range(sub.lineno, end + 1))
    return frozenset(lines)
