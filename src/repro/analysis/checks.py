"""The concrete invariant checks.

Rule ids are stable and documented in the README ("Invariants & static
analysis"); suppress one occurrence with a trailing
``# repro: allow[RULE]`` comment.

Determinism
    DET01  no wall-clock sources (``time``/``datetime``) outside the
           allowlist -- simulated code takes time from ``engine.now``
    DET02  no ``random`` stdlib / raw ``numpy.random`` globals -- all
           randomness routes through :mod:`repro.common.rng`

Architecture
    ARCH01 the inter-package import graph must respect the layering
           table in :mod:`repro.analysis.layering`
    ARCH02 no ``from X import *``; no module-level import cycles

Errors
    ERR01  raised repro-defined exceptions derive from the
           :mod:`repro.common.errors` hierarchy; no bare generic
           builtins (``ValueError``, ``RuntimeError``, ...)

Observability
    OBS01  metric names and label keys are static string literals
           (bounded cardinality) and ``.labels()`` takes explicit
           keyword arguments only
    OBS02  spans open/close in one place: ``tracer.span(...)`` only as
           a ``with`` context, ``tracer.trace(...)`` for generators;
           no manual ``start_span``/``end_span`` outside ``repro.obs``

API
    API01  public functions/methods in ``repro.*`` carry full type
           annotations (parameters and return)

Concurrency (defined in :mod:`repro.analysis.races`)
    RACE01 check-then-act: a guard on shared mutable state must be
           re-validated after an intervening ``yield``
    RACE02 no mutating a shared container while iterating it across a
           ``yield``; iterate a snapshot
    RACE03 no reading a cached ``engine.now`` / resource snapshot after
           a later ``yield`` (elapsed-time subtraction is exempt)

Suppressions
    SUP01  every ``# repro: allow[RULE]`` comment must suppress at
           least one finding (reported by the framework itself, like
           ruff's unused-noqa; not suppressible)
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Sequence

from .core import Check, Finding, ModuleInfo
from .layering import ALLOWED_IMPORTS
from .races import RACE_CHECKS

# -- shared import resolution -------------------------------------------------


def _resolve_relative(mod: ModuleInfo, node: ast.ImportFrom) -> str | None:
    """Absolute dotted target of a relative ``from ... import``."""
    if mod.module is None:
        return None
    pkg_parts = mod.module.split(".")
    if not mod.is_init:
        pkg_parts = pkg_parts[:-1]
    cut = len(pkg_parts) - (node.level - 1)
    if cut < 0:
        return None
    anchor = pkg_parts[:cut]
    if node.module:
        anchor = anchor + node.module.split(".")
    return ".".join(anchor) if anchor else None


def _iter_import_nodes(
    tree: ast.Module, *, module_level_only: bool,
) -> Iterator["ast.Import | ast.ImportFrom"]:
    """Import statements, optionally skipping function-local ones.

    Function-local imports run lazily, so they are the accepted escape
    hatch for breaking import-time cycles -- the cycle check must not
    descend into function bodies.
    """
    if not module_level_only:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield node
        return
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def iter_repro_imports(
    mod: ModuleInfo, *, include_type_checking: bool = False,
    module_level_only: bool = False,
) -> Iterator[tuple[ast.stmt, str]]:
    """Yield ``(node, dotted_target)`` for every repro-internal import.

    ``from pkg import name`` yields both ``pkg`` and ``pkg.name`` so
    callers can match whichever resolves to a real module.
    """
    for node in _iter_import_nodes(mod.tree,
                                   module_level_only=module_level_only):
        if not include_type_checking and mod.in_type_checking(node):
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield node, alias.name
            continue
        base = node.module if node.level == 0 else _resolve_relative(mod, node)
        if base is None or not (base == "repro" or base.startswith("repro.")):
            continue
        yield node, base
        for alias in node.names:
            if alias.name != "*":
                yield node, f"{base}.{alias.name}"


def _dotted(node: ast.expr) -> str | None:
    """Flatten ``a.b.c`` attribute chains to a dotted string."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _symbol_table(mod: ModuleInfo) -> dict[str, str]:
    """Best-effort map of local names to fully qualified dotted names."""
    table: dict[str, str] = {}
    for node in mod.tree.body:
        if isinstance(node, ast.ClassDef) and mod.module:
            table[node.name] = f"{mod.module}.{node.name}"
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            base = (node.module if node.level == 0
                    else _resolve_relative(mod, node))
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{base}.{alias.name}"
    return table


def _is_allowlisted(mod: ModuleInfo, allow: Sequence[str]) -> bool:
    return any(entry in mod.relpath for entry in allow)


# -- DET: determinism ---------------------------------------------------------

_WALL_CLOCK_MODULES = ("time", "datetime")
_WALL_CLOCK_CALLS = frozenset({
    "time", "monotonic", "perf_counter", "process_time", "time_ns",
    "monotonic_ns", "perf_counter_ns", "now", "utcnow", "today", "sleep",
})


class WallClockCheck(Check):
    """DET01: simulated code must take time from the engine clock."""

    rule = "DET01"
    description = ("no wall-clock sources (time/datetime) outside "
                   "sim/core.py, common/rng.py and benchmarks/")
    allowlist = ("repro/sim/core.py", "repro/common/rng.py",
                 "repro/bench/harness.py", "benchmarks/")

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        if _is_allowlisted(mod, self.allowlist):
            return
        for node in ast.walk(mod.tree):
            if mod.in_type_checking(node):
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _WALL_CLOCK_MODULES:
                        yield self.finding(
                            mod, node,
                            f"import of wall-clock module {root!r}; simulated "
                            f"code must read time from the engine clock "
                            f"(engine.now)")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                root = (node.module or "").split(".")[0]
                if root in _WALL_CLOCK_MODULES:
                    yield self.finding(
                        mod, node,
                        f"import from wall-clock module {root!r}; simulated "
                        f"code must read time from the engine clock "
                        f"(engine.now)")
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if (len(parts) >= 2 and parts[0] in _WALL_CLOCK_MODULES
                        and parts[-1] in _WALL_CLOCK_CALLS):
                    yield self.finding(
                        mod, node,
                        f"wall-clock call {dotted}(); use the simulation "
                        f"clock instead")


class UnseededRandomCheck(Check):
    """DET02: all randomness routes through repro.common.rng."""

    rule = "DET02"
    description = ("no stdlib random / raw numpy.random globals -- use "
                   "repro.common.rng.RngStream")
    allowlist = ("repro/common/rng.py", "benchmarks/")

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        if _is_allowlisted(mod, self.allowlist):
            return
        for node in ast.walk(mod.tree):
            if mod.in_type_checking(node):
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name == "numpy.random":
                        yield self.finding(
                            mod, node,
                            f"import of {alias.name!r}; derive a seeded "
                            f"stream from repro.common.rng instead")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module in ("random", "numpy.random"):
                    yield self.finding(
                        mod, node,
                        f"import from {node.module!r}; derive a seeded "
                        f"stream from repro.common.rng instead")
                elif node.module == "numpy" and any(
                        a.name == "random" for a in node.names):
                    yield self.finding(
                        mod, node,
                        "import of numpy.random; derive a seeded stream "
                        "from repro.common.rng instead")
            elif isinstance(node, ast.Attribute) and node.attr == "random":
                if isinstance(node.value, ast.Name) \
                        and node.value.id in ("np", "numpy"):
                    yield self.finding(
                        mod, node,
                        "raw numpy.random access; unseeded globals break "
                        "bit-reproducible runs -- use repro.common.rng")


# -- ARCH: layering and import hygiene ---------------------------------------


class LayeringCheck(Check):
    """ARCH01: the import graph must respect the layering DAG."""

    rule = "ARCH01"
    description = "inter-package imports must follow analysis.layering"

    def check_program(self, mods: Sequence[ModuleInfo]) -> Iterable[Finding]:
        for mod in mods:
            pkg = mod.package
            if pkg is None:
                continue
            allowed = ALLOWED_IMPORTS.get(pkg)
            seen: set[tuple[int, str]] = set()
            for node, target in iter_repro_imports(mod):
                segs = target.split(".")
                if len(segs) < 2:
                    continue
                tgt_pkg = segs[1]
                if tgt_pkg == pkg or tgt_pkg not in ALLOWED_IMPORTS:
                    continue
                if (node.lineno, tgt_pkg) in seen:
                    continue
                seen.add((node.lineno, tgt_pkg))
                if allowed is None:
                    yield self.finding(
                        mod, node,
                        f"package {pkg!r} is not in the layering table "
                        f"(analysis/layering.py); add it before importing "
                        f"repro.{tgt_pkg}")
                elif tgt_pkg not in allowed:
                    yield self.finding(
                        mod, node,
                        f"layering violation: {pkg!r} may not import "
                        f"repro.{tgt_pkg} (allowed: "
                        f"{', '.join(sorted(allowed)) or 'nothing'})")


class ImportHygieneCheck(Check):
    """ARCH02: no star imports, no module-level import cycles."""

    rule = "ARCH02"
    description = "no `from X import *`; no circular imports"

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ImportFrom) \
                    and any(a.name == "*" for a in node.names):
                yield self.finding(
                    mod, node,
                    "star import hides the dependency surface; import "
                    "names explicitly")

    def check_program(self, mods: Sequence[ModuleInfo]) -> Iterable[Finding]:
        index = {m.module: m for m in mods if m.module}
        graph: dict[str, set[str]] = {name: set() for name in index}
        for mod in mods:
            if mod.module is None:
                continue
            for _node, target in iter_repro_imports(mod,
                                                    module_level_only=True):
                if target in index and target != mod.module:
                    graph[mod.module].add(target)
        for cycle in _cycles(graph):
            first = index[cycle[0]]
            yield self.finding(
                first, 1,
                "circular import: " + " -> ".join(cycle + [cycle[0]]))


def _cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Strongly connected components with more than one node, sorted."""
    idx: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        work = [(v, iter(sorted(graph[v])))]
        idx[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in idx:
                    idx[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], idx[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == idx[node]:
                comp: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                if len(comp) > 1:
                    sccs.append(sorted(comp))

    for v in sorted(graph):
        if v not in idx:
            strongconnect(v)
    return sorted(sccs)


# -- ERR: exception hierarchy -------------------------------------------------

_ERRORS_MODULE = "repro.common.errors"
_BANNED_BUILTIN_RAISES = frozenset({
    "Exception", "BaseException", "ValueError", "TypeError", "RuntimeError",
    "KeyError", "IndexError", "AttributeError", "OSError", "IOError",
})


class ExceptionHierarchyCheck(Check):
    """ERR01: raised repro exceptions derive from repro.common.errors."""

    rule = "ERR01"
    description = ("raise classes from the repro.common.errors hierarchy, "
                   "not ad-hoc or generic builtin exceptions")

    def check_program(self, mods: Sequence[ModuleInfo]) -> Iterable[Finding]:
        classes: dict[str, list[str]] = {}
        for mod in mods:
            if mod.module is None:
                continue
            table = _symbol_table(mod)
            for node in mod.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = []
                for base in node.bases:
                    dotted = _dotted(base)
                    if dotted is None:
                        continue
                    head, _, rest = dotted.partition(".")
                    resolved = table.get(head, head)
                    bases.append(f"{resolved}.{rest}" if rest else resolved)
                classes[f"{mod.module}.{node.name}"] = bases

        def in_hierarchy(qualname: str, seen: frozenset[str]) -> bool:
            if qualname.startswith(_ERRORS_MODULE + "."):
                return True
            if qualname in seen:
                return False
            return any(
                in_hierarchy(base, seen | {qualname})
                for base in classes.get(qualname, ()))

        for mod in mods:
            if mod.module is None:
                continue
            table = _symbol_table(mod)
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                target = node.exc.func \
                    if isinstance(node.exc, ast.Call) else node.exc
                dotted = _dotted(target)
                if dotted is None:
                    continue
                head, _, rest = dotted.partition(".")
                resolved = table.get(head, head)
                qualname = f"{resolved}.{rest}" if rest else resolved
                if qualname in _BANNED_BUILTIN_RAISES:
                    yield self.finding(
                        mod, node,
                        f"raise of generic builtin {qualname}; use a class "
                        f"from repro.common.errors")
                elif qualname in classes \
                        and not in_hierarchy(qualname, frozenset()):
                    yield self.finding(
                        mod, node,
                        f"{qualname} is raised but does not derive from "
                        f"the repro.common.errors hierarchy")


# -- OBS: observability hygiene ----------------------------------------------

_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})


class MetricLabelCheck(Check):
    """OBS01: metric names/label keys are static; cardinality is bounded."""

    rule = "OBS01"
    description = ("metric names and label keys must be static string "
                   "literals; .labels() takes explicit keywords only")

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            if attr in _METRIC_FACTORIES:
                yield from self._check_factory(mod, node)
            elif attr == "labels":
                yield from self._check_labels_call(mod, node)

    def _check_factory(self, mod: ModuleInfo,
                       node: ast.Call) -> Iterable[Finding]:
        name_arg = node.args[0] if node.args else next(
            (kw.value for kw in node.keywords if kw.arg == "name"), None)
        if name_arg is not None and not _is_str_literal(name_arg):
            yield self.finding(
                mod, node,
                "metric name must be a static string literal (dynamic "
                "names create unbounded families)")
        labels_arg = node.args[2] if len(node.args) > 2 else next(
            (kw.value for kw in node.keywords if kw.arg == "labels"), None)
        if labels_arg is None:
            return
        if not isinstance(labels_arg, (ast.Tuple, ast.List)) or not all(
                _is_str_literal(el) for el in labels_arg.elts):
            yield self.finding(
                mod, node,
                "metric label keys must be a tuple of static string "
                "literals (bounded cardinality)")

    def _check_labels_call(self, mod: ModuleInfo,
                           node: ast.Call) -> Iterable[Finding]:
        if node.args:
            yield self.finding(
                mod, node,
                ".labels() takes label keys as explicit keywords, not "
                "positionally")
        for kw in node.keywords:
            if kw.arg is None:
                yield self.finding(
                    mod, node,
                    ".labels(**dynamic) hides the label keys; spell them "
                    "as static keywords")


class SpanDisciplineCheck(Check):
    """OBS02: spans are closed where they are opened."""

    rule = "OBS02"
    description = ("tracer.span(...) only as a `with` context; "
                   "start_span/end_span stay inside repro.obs")
    allowlist = ("repro/obs/",)

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        with_contexts: set[int] = set()
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.With):
                for item in node.items:
                    with_contexts.add(id(item.context_expr))
        allowed = _is_allowlisted(mod, self.allowlist)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            if attr in ("start_span", "end_span") and not allowed:
                yield self.finding(
                    mod, node,
                    f"manual {attr}() outside repro.obs risks an unclosed "
                    f"span; use tracer.span(...) as a context manager or "
                    f"tracer.trace(...) for generators")
            elif attr == "span" and id(node) not in with_contexts:
                yield self.finding(
                    mod, node,
                    "tracer.span(...) must be entered with a `with` "
                    "statement so the span always closes")


# -- API: annotations ---------------------------------------------------------


class PublicAnnotationCheck(Check):
    """API01: public repro functions carry full type annotations."""

    rule = "API01"
    description = ("public functions/methods in repro.* annotate every "
                   "parameter and the return type")

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        if mod.module is None:
            return
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_def(mod, node, in_class=False)
            elif isinstance(node, ast.ClassDef) \
                    and not node.name.startswith("_"):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield from self._check_def(mod, sub, in_class=True)

    def _check_def(self, mod: ModuleInfo, node: ast.stmt,
                   in_class: bool) -> Iterable[Finding]:
        if node.name.startswith("_") and node.name != "__init__":
            return
        args = node.args
        params = args.posonlyargs + args.args + args.kwonlyargs
        if in_class and params and params[0].arg in ("self", "cls"):
            params = params[1:]
        missing = [a.arg for a in params if a.annotation is None]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if node.returns is None:
            missing.append("return")
        if missing:
            yield self.finding(
                mod, node,
                f"public {'method' if in_class else 'function'} "
                f"{node.name}() is missing annotations for: "
                f"{', '.join(missing)}")


def _is_str_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


#: every active check, in reporting order
ALL_CHECKS: tuple[Check, ...] = (
    WallClockCheck(),
    UnseededRandomCheck(),
    LayeringCheck(),
    ImportHygieneCheck(),
    ExceptionHierarchyCheck(),
    MetricLabelCheck(),
    SpanDisciplineCheck(),
    PublicAnnotationCheck(),
) + RACE_CHECKS
