"""Minimal SARIF 2.1.0 serialisation of analyzer findings.

SARIF (Static Analysis Results Interchange Format) is the lingua franca
code-scanning UIs ingest -- GitHub code scanning, VS Code SARIF viewers,
and most CI annotators.  This emits the smallest valid document those
consumers accept: one run, one driver, one rule descriptor per distinct
rule, one result per finding.  No optional blocks, no extensions.
"""

from __future__ import annotations

from typing import Sequence

from .core import ANALYZER_VERSION, Check, Finding

#: SARIF severity levels for the analyzer's severities
_LEVELS = {"error": "error", "warning": "warning"}

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def to_sarif(findings: Sequence[Finding],
             checks: Sequence[Check]) -> dict[str, object]:
    """A SARIF 2.1.0 document covering *findings* from *checks*."""
    descriptors = [
        {
            "id": check.rule,
            "shortDescription": {"text": check.description},
            "defaultConfiguration": {
                "level": _LEVELS.get(check.severity, "error"),
            },
        }
        for check in checks
    ]
    known = {check.rule for check in checks}
    # findings can carry framework rules (SUP01) with no Check object;
    # synthesise a bare descriptor so every result resolves
    for rule in sorted({f.rule for f in findings} - known):
        descriptors.append({
            "id": rule,
            "shortDescription": {"text": "framework-reported finding"},
            "defaultConfiguration": {"level": "warning"},
        })
    index = {d["id"]: i for i, d in enumerate(descriptors)}
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": index[f.rule],
            "level": _LEVELS.get(f.severity, "error"),
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": f.line},
                },
            }],
        }
        for f in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.analysis",
                    "version": ANALYZER_VERSION,
                    "rules": descriptors,
                },
            },
            "results": results,
        }],
    }
