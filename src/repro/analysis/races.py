"""Static yield-point hazard rules (RACE01-03).

A ``yield`` inside a simulation process is a scheduling point: any other
process may run before the generator resumes, at the *same* simulated
timestamp.  Code that latches shared state on one side of a yield and
consumes it on the other is therefore exactly as racy as unlocked
shared-memory code between threads -- these rules flag the three
patterns that caused real divergence under the schedule fuzzer:

    RACE01  check-then-act: a guard tested on shared mutable state whose
            guarded body yields and then keeps acting without
            re-validating the guard after resuming
    RACE02  mutating a shared container inside a loop that iterates the
            same container across a yield
    RACE03  caching ``engine.now`` or a resource snapshot in a local and
            reading the stale copy after a later yield (the elapsed-time
            idiom ``engine.now - t0`` is exempt)

The rules are heuristic (attribute-name based) and complement the
dynamic pair: the happens-before sanitizer proves an access pattern is
order-dependent at runtime, the schedule fuzzer proves the divergence is
observable, and these rules catch the shape at review time before either
ever runs.  Suppress a deliberate occurrence with ``# repro:
allow[RACE01]`` (and friends) on the offending line.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .core import Check, Finding, ModuleInfo

#: attribute names that read shared mutable simulation state (resource
#: and container snapshots, liveness flags, breaker/admission state)
GUARD_ATTRS = frozenset({
    "level", "count", "queue_length", "queued", "utilisation",
    "alive", "state", "items",
})

#: snapshot sources RACE03 tracks across yields
SNAPSHOT_ATTRS = frozenset({
    "now", "level", "count", "queue_length", "queued", "utilisation",
})

#: method names that mutate a container in place
MUTATORS = frozenset({
    "append", "appendleft", "add", "discard", "remove", "pop",
    "popleft", "clear", "extend", "insert", "update", "setdefault",
})


def _dotted(node: ast.expr) -> "str | None":
    """Flatten ``a.b.c`` attribute chains to a dotted string."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk *func*'s body without descending into nested functions."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(func: ast.AST) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in _own_nodes(func))


def iter_generator_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Every (sync) generator function definition in *tree*."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and _is_generator(node):
            yield node


def _shared_reads(node: ast.expr) -> list[str]:
    """Dotted chains in *node* that read shared-state attributes."""
    out = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in GUARD_ATTRS:
            chain = _dotted(sub)
            if chain is not None:
                out.append(chain)
    return out


def _yields_in(stmts: "list[ast.stmt]") -> list[ast.AST]:
    found: list[ast.AST] = []
    for stmt in stmts:
        for node in _own_nodes_of_stmts([stmt]):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                found.append(node)
    return found


def _own_nodes_of_stmts(stmts: "list[ast.stmt]") -> Iterator[ast.AST]:
    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class CheckThenActCheck(Check):
    """RACE01: guard on shared state consumed on the far side of a yield."""

    rule = "RACE01"
    description = ("a guard tested on shared mutable state must be "
                   "re-validated after an intervening yield before acting")

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        if mod.module is None:
            return
        for func in iter_generator_functions(mod.tree):
            yield from self._check_function(mod, func)

    def _check_function(self, mod: ModuleInfo,
                        func: ast.FunctionDef) -> Iterable[Finding]:
        for node in _own_nodes(func):
            if not isinstance(node, (ast.If, ast.While)):
                continue
            reads = _shared_reads(node.test)
            if not reads:
                continue
            yields = _yields_in(node.body)
            if not yields:
                continue
            last_yield_line = max(getattr(y, "lineno", 0) for y in yields)
            acts_after = [
                s for s in node.body
                if getattr(s, "lineno", 0) > last_yield_line
            ]
            if not acts_after:
                continue
            if self._revalidated(acts_after, set(reads)):
                continue
            yield self.finding(
                mod, node,
                f"guard on shared state ({', '.join(sorted(set(reads)))}) "
                f"still acts after the yield at line {last_yield_line}; "
                f"re-validate the condition after resuming")

    @staticmethod
    def _revalidated(stmts: "list[ast.stmt]", reads: set[str]) -> bool:
        """Do the trailing statements re-test any of the guarded chains?"""
        for node in _own_nodes_of_stmts(stmts):
            if isinstance(node, (ast.If, ast.While)) \
                    and set(_shared_reads(node.test)) & reads:
                return True
        return False


class IterateWhileMutatingCheck(Check):
    """RACE02: container mutated while iterated across a yield."""

    rule = "RACE02"
    description = ("do not mutate a shared container inside a loop that "
                   "iterates it across a yield; snapshot it first")

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        if mod.module is None:
            return
        for func in iter_generator_functions(mod.tree):
            for node in _own_nodes(func):
                if not isinstance(node, ast.For):
                    continue
                target = _dotted(node.iter)
                if target is None:
                    continue
                if not _yields_in(node.body):
                    continue
                mutation = self._first_mutation(node.body, target)
                if mutation is not None:
                    yield self.finding(
                        mod, node,
                        f"iterates {target} across a yield while line "
                        f"{mutation} mutates it; iterate over a snapshot "
                        f"(list({target})) instead")

    @staticmethod
    def _first_mutation(stmts: "list[ast.stmt]",
                        target: str) -> "int | None":
        for node in _own_nodes_of_stmts(stmts):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUTATORS \
                    and _dotted(node.func.value) == target:
                return node.lineno
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for t in targets:
                    if isinstance(t, ast.Subscript) \
                            and _dotted(t.value) == target:
                        return node.lineno
            if isinstance(node, ast.Delete):
                for t in node.targets:
                    if isinstance(t, ast.Subscript) \
                            and _dotted(t.value) == target:
                        return node.lineno
        return None


class StaleSnapshotCheck(Check):
    """RACE03: a cached clock/resource snapshot read after a later yield."""

    rule = "RACE03"
    description = ("engine.now / resource snapshots cached before a yield "
                   "are stale afterwards; re-read them (elapsed-time "
                   "subtraction is exempt)")

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        if mod.module is None:
            return
        for func in iter_generator_functions(mod.tree):
            yield from self._check_function(mod, func)

    def _check_function(self, mod: ModuleInfo,
                        func: ast.FunctionDef) -> Iterable[Finding]:
        snapshots: dict[str, list[tuple[int, str]]] = {}
        for node in _own_nodes(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Attribute) \
                    and node.value.attr in SNAPSHOT_ATTRS:
                chain = _dotted(node.value)
                if chain is not None:
                    snapshots.setdefault(node.targets[0].id, []).append(
                        (node.lineno, chain))
        if not snapshots:
            return
        yield_lines = sorted(
            n.lineno for n in _own_nodes(func)
            if isinstance(n, (ast.Yield, ast.YieldFrom)))
        exempt = self._exempt_loads(func)
        for node in _own_nodes(func):
            if not (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in snapshots):
                continue
            # a load is judged against the latest snapshot taken before it
            # (a re-read after the yield starts a fresh window)
            before = [(ln, ch) for ln, ch in snapshots[node.id]
                      if ln < node.lineno]
            if not before:
                continue
            taken_line, chain = max(before)
            crossed = [y for y in yield_lines if taken_line < y < node.lineno]
            if not crossed:
                continue
            if id(node) in exempt:
                continue
            yield self.finding(
                mod, node,
                f"{node.id} caches {chain} from line {taken_line} but is "
                f"read after the yield at line {crossed[-1]}; the snapshot "
                f"is stale -- re-read {chain}")

    @staticmethod
    def _exempt_loads(func: ast.AST) -> set[int]:
        """Loads used as the right operand of a subtraction (elapsed time)."""
        out: set[int] = set()
        for node in _own_nodes(func):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub) \
                    and isinstance(node.right, ast.Name):
                out.add(id(node.right))
        return out


#: the yield-point hazard rules, in reporting order
RACE_CHECKS: tuple[Check, ...] = (
    CheckThenActCheck(),
    IterateWhileMutatingCheck(),
    StaleSnapshotCheck(),
)
