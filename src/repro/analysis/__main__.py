"""CLI entry point: ``python -m repro.analysis [paths] [options]``.

Exit status: 0 when the tree is clean, 1 when any unsuppressed finding
remains, 2 on usage errors -- so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from . import ALL_CHECKS, ANALYZER_VERSION, analyze_paths, rule_ids


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant checker for the repro tree "
                    f"(analyzer {ANALYZER_VERSION}, "
                    f"{len(ALL_CHECKS)} rules)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the active rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for check in ALL_CHECKS:
            print(f"{check.rule}  {check.description}")
        return 0

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = set(rules) - set(rule_ids())
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    try:
        findings = analyze_paths(args.paths, rules=rules)
    except (OSError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps({
            "analyzer_version": ANALYZER_VERSION,
            "rules": rule_ids() if rules is None else rules,
            "count": len(findings),
            "findings": [f.to_dict() for f in findings],
        }, indent=2, sort_keys=True))
    else:
        for f in findings:
            print(f.format())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun} "
              f"({len(ALL_CHECKS if rules is None else rules)} rules, "
              f"analyzer {ANALYZER_VERSION})")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
