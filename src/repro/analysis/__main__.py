"""CLI entry point: ``python -m repro.analysis [paths] [options]``.

Exit status: 0 when the tree is clean, 1 when any unsuppressed finding
remains, 2 on usage errors -- so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from . import ALL_CHECKS, ANALYZER_VERSION, analyze_paths, rule_ids
from .core import UNUSED_ALLOW_RULE
from .sarif import to_sarif

EXIT_CODES_HELP = """\
exit status:
  0   the tree is clean (no unsuppressed findings)
  1   at least one unsuppressed finding was reported
  2   usage error (unknown rule, unreadable path, syntax error)
"""


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant checker for the repro tree "
                    f"(analyzer {ANALYZER_VERSION}, "
                    f"{len(ALL_CHECKS)} rules)",
        epilog=EXIT_CODES_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the active rules and exit")
    parser.add_argument("--fix", action="store_true",
                        help="print the cleanup recipe for unused "
                             "# repro: allow[...] comments (SUP01) and "
                             "exit 1 when any exist")
    args = parser.parse_args(argv)

    if args.list_rules:
        for check in ALL_CHECKS:
            print(f"{check.rule}  {check.description}")
        print(f"{UNUSED_ALLOW_RULE}  unused # repro: allow[...] comment "
              f"(framework-reported; not suppressible)")
        return 0

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = set(rules) - set(rule_ids())
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    try:
        findings = analyze_paths(args.paths, rules=rules,
                                 report_unused_allows=True)
    except (OSError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.fix:
        unused = [f for f in findings if f.rule == UNUSED_ALLOW_RULE]
        for f in unused:
            print(f"{f.path}:{f.line}: delete the stale allow comment "
                  f"({f.message.split(';')[0]})")
        noun = "comment" if len(unused) == 1 else "comments"
        print(f"{len(unused)} stale suppression {noun}")
        return 1 if unused else 0

    active = len(ALL_CHECKS if rules is None else rules)
    if args.format == "json":
        print(json.dumps({
            "analyzer_version": ANALYZER_VERSION,
            "rules": rule_ids() if rules is None else rules,
            "count": len(findings),
            "findings": [f.to_dict() for f in findings],
        }, indent=2, sort_keys=True))
    elif args.format == "sarif":
        checks = ALL_CHECKS if rules is None else tuple(
            c for c in ALL_CHECKS if c.rule in set(rules))
        print(json.dumps(to_sarif(findings, checks), indent=2,
                         sort_keys=True))
    else:
        for f in findings:
            print(f.format())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun} ({active} rules, "
              f"analyzer {ANALYZER_VERSION})")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
