"""Static analysis of the repro source tree.

An AST-based invariant checker for determinism, layering and
observability hygiene.  Run it as a CLI::

    python -m repro.analysis src            # text report, exit 1 on findings
    python -m repro.analysis src --format json

or programmatically::

    from repro.analysis import analyze_paths
    findings = analyze_paths(["src"])

The rules (DET01/DET02, ARCH01/ARCH02, ERR01, OBS01/OBS02, API01,
RACE01-03) are documented in :mod:`repro.analysis.checks`; the
yield-point hazard rules live in :mod:`repro.analysis.races`, the
layering DAG in :mod:`repro.analysis.layering`.  The framework itself
reports SUP01 for ``# repro: allow[...]`` comments that suppress
nothing, and ``--format sarif`` emits SARIF 2.1.0 for code-scanning
UIs.  A whole-program pass also runs inside
the tier-1 test suite (``tests/analysis/test_codebase_invariants.py``)
so a violating commit fails fast.
"""

from __future__ import annotations

from typing import Sequence

from .checks import ALL_CHECKS
from .core import (
    ANALYZER_VERSION,
    UNUSED_ALLOW_RULE,
    Check,
    Finding,
    ModuleInfo,
    load_modules,
    run_checks,
)
from .history import (
    NOT_FOUND_ERRORS,
    HistoryRecorder,
    HistoryReport,
    Operation,
    Violation,
    check_history,
)
from .layering import ALLOWED_IMPORTS
from .races import RACE_CHECKS
from .sarif import to_sarif

__all__ = [
    "ALL_CHECKS",
    "ALLOWED_IMPORTS",
    "ANALYZER_VERSION",
    "Check",
    "Finding",
    "HistoryRecorder",
    "HistoryReport",
    "ModuleInfo",
    "NOT_FOUND_ERRORS",
    "Operation",
    "RACE_CHECKS",
    "UNUSED_ALLOW_RULE",
    "Violation",
    "analyze_paths",
    "check_history",
    "load_modules",
    "rule_ids",
    "run_checks",
    "to_sarif",
]


def rule_ids() -> list[str]:
    """The active rule ids, in reporting order."""
    return [check.rule for check in ALL_CHECKS]


def analyze_paths(paths: Sequence[str],
                  rules: "Sequence[str] | None" = None,
                  *, report_unused_allows: bool = False) -> list[Finding]:
    """Run the (optionally filtered) check suite over *paths*."""
    checks = ALL_CHECKS if rules is None else tuple(
        c for c in ALL_CHECKS if c.rule in set(rules))
    return run_checks(load_modules(paths), checks,
                      report_unused_allows=report_unused_allows)
