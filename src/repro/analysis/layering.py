"""The layering DAG: the single source of truth for ARCH01.

Each key is a top-level ``repro`` subpackage (or top-level module); the
value is the set of subpackages it may import from.  The table encodes
the stack of the paper, bottom-up::

    common                          pure utilities, errors, rng, units
    sim, obs                        event kernel; metrics + tracing
    resilience                      deadlines, breakers, rate limits, admission
    hardware                        hosts, disks, network, cluster
    virt                            hypervisor, images, dirty-page model
    drivers                         ONE's im/tm/vmm driver shims
    hdfs                            namenode / datanodes / placement / HA
                                    pair over the quorum journal (``ha``)
    one                             OpenNebula core, scheduler, FT, CLI
    mapreduce                       jobtracker / tasktrackers over HDFS
    fusehdfs, video, search         the PaaS/SaaS middle tier
    web                             portal, auth, feed, mini-DB, server
    chaos                           fault injection over the whole stack
    reconcile                       self-healing control plane over all layers
    stack, bench                    top-level assembly and workloads

``analysis`` (this package) sits outside the runtime stack and may only
reach ``common`` -- that covers both the static checkers and the runtime
consistency checker (``history``), which sees the system purely through
recorded operations.  Imports guarded by ``if TYPE_CHECKING:`` are ignored
-- they never execute, so they cannot create runtime layering cycles.

Adding an edge here is an architectural decision: keep the graph a DAG
(ARCH02 independently rejects module-level cycles) and keep lower
layers ignorant of higher ones.
"""

from __future__ import annotations

ALLOWED_IMPORTS: dict[str, frozenset[str]] = {
    "common": frozenset(),
    "sim": frozenset({"common"}),
    "obs": frozenset({"common"}),
    "analysis": frozenset({"common"}),
    "resilience": frozenset({"common", "sim", "obs"}),
    "hardware": frozenset({"common", "sim", "obs"}),
    "virt": frozenset({"common", "sim", "obs", "hardware"}),
    "drivers": frozenset({"common", "sim", "obs", "hardware", "virt"}),
    "hdfs": frozenset({"common", "sim", "obs", "resilience", "hardware"}),
    "one": frozenset({
        "common", "sim", "obs", "resilience", "hardware", "virt", "drivers",
        "hdfs",
    }),
    "mapreduce": frozenset({
        "common", "sim", "obs", "resilience", "hardware", "hdfs",
    }),
    "fusehdfs": frozenset({"common", "sim", "obs", "hardware", "hdfs"}),
    "video": frozenset({"common", "sim", "obs", "hardware", "hdfs"}),
    "search": frozenset({
        "common", "sim", "obs", "hardware", "hdfs", "mapreduce",
    }),
    "web": frozenset({
        "common", "sim", "obs", "resilience", "hardware", "virt", "hdfs",
        "fusehdfs", "video", "search",
    }),
    "chaos": frozenset({
        "common", "sim", "obs", "resilience", "hardware", "virt", "drivers",
        "hdfs", "one", "mapreduce", "web",
    }),
    # the control plane observes and acts on every managed layer, but the
    # layers (and chaos) never import it back -- the loop closes at runtime
    # through adapters, not through the import graph
    "reconcile": frozenset({
        "common", "sim", "obs", "resilience", "hardware", "virt", "drivers",
        "hdfs", "one", "mapreduce", "fusehdfs", "video", "search", "web",
    }),
    "stack": frozenset({
        "common", "sim", "obs", "resilience", "hardware", "virt", "drivers",
        "hdfs", "one", "mapreduce", "fusehdfs", "video", "search", "web",
        "chaos", "reconcile",
    }),
    # bench may import analysis: the harness stamps every published result
    # with the analyzer version/rule-count the tree passed (and nothing in
    # the runtime stack imports bench back)
    "bench": frozenset({
        "common", "sim", "obs", "resilience", "hardware", "virt", "drivers",
        "hdfs", "one", "mapreduce", "fusehdfs", "video", "search", "web",
        "chaos", "reconcile", "stack", "analysis",
    }),
}


def allowed_for(package: str) -> frozenset[str] | None:
    """The allowed import set for *package*, or None when unknown."""
    return ALLOWED_IMPORTS.get(package)
