"""Deadlines: time budgets threaded through call chains.

A :class:`Deadline` is minted once at the edge of the system (the portal
stamps one onto every request) and handed *down* the call chain -- HDFS
writes, transcode fan-outs, retries -- so every layer can answer "is it
still worth doing this?" against the same budget.  Budgets burn
*simulated* seconds (the clock is ``engine.now``, per DET01), so a run is
bit-reproducible.

The two idioms::

    deadline = Deadline.after(engine, 5.0)      # 5 s budget from now
    ...
    deadline.check("hdfs write")                # raise if already spent
    wait = min(backoff, deadline.remaining())   # never sleep past it
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..common.errors import ConfigError, DeadlineExceeded

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..sim import Engine


class Deadline:
    """An absolute expiry on the simulation clock."""

    __slots__ = ("clock", "expires_at", "label")

    def __init__(self, clock: Callable[[], float], expires_at: float,
                 *, label: str = "request") -> None:
        self.clock = clock
        self.expires_at = float(expires_at)
        self.label = label

    @classmethod
    def after(cls, engine: "Engine", budget: float,
              *, label: str = "request") -> "Deadline":
        """A deadline *budget* simulated seconds from now."""
        if budget <= 0:
            raise ConfigError(f"deadline budget must be > 0, got {budget}")
        return cls(lambda: engine.now, engine.now + budget, label=label)

    def remaining(self) -> float:
        """Seconds of budget left (never negative)."""
        return max(0.0, self.expires_at - self.clock())

    @property
    def expired(self) -> bool:
        return self.clock() >= self.expires_at

    def check(self, doing: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            what = f" while {doing}" if doing else ""
            raise DeadlineExceeded(
                f"{self.label}: deadline exceeded{what} "
                f"(expired at t={self.expires_at:.3f})")

    def child(self, budget: float, *, label: str | None = None) -> "Deadline":
        """A sub-deadline: *budget* from now, but never past the parent."""
        if budget <= 0:
            raise ConfigError(f"deadline budget must be > 0, got {budget}")
        return Deadline(
            self.clock, min(self.expires_at, self.clock() + budget),
            label=label or self.label)

    def __repr__(self) -> str:
        return (f"Deadline({self.label!r}, expires_at={self.expires_at:.3f}, "
                f"remaining={self.remaining():.3f})")
