"""Admission control: bounded priority queues with cheapest-first shedding.

The controller fronts a service with ``capacity`` concurrent slots and a
*bounded* wait queue.  Work is classed by priority -- the portal's order
is ``playback > search > upload > transcode`` -- and when the queue is
full, the **cheapest** (lowest-priority) queued work is shed to make room
for more valuable arrivals.  Shedding is a synchronous refusal
(:class:`~repro.common.errors.AdmissionShedError` delivered through the
waiter's event), so under saturation the system degrades into a bounded,
observable regime instead of growing an unbounded backlog.

Usage from a process::

    ticket = admission.enter("search")
    try:
        yield ticket                  # admitted (maybe after queueing)
    except AdmissionShedError:
        ...return 429...
    try:
        ...do the work...
    finally:
        admission.leave("search")
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..common.errors import AdmissionShedError, ConfigError
from ..sim import sanitizer as _sanitizer

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..obs import MetricsRegistry
    from ..sim import Engine, Event

#: the portal's priority order, most important first
DEFAULT_PRIORITIES: tuple[str, ...] = ("playback", "search", "upload",
                                       "transcode")


class AdmissionController:
    """Bounded concurrency + bounded priority wait queue + shedding."""

    def __init__(
        self,
        engine: "Engine",
        *,
        capacity: int,
        queue_capacity: int,
        priorities: tuple[str, ...] = DEFAULT_PRIORITIES,
        name: str = "admission",
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if capacity < 1:
            raise ConfigError("admission capacity must be >= 1")
        if queue_capacity < 0:
            raise ConfigError("queue capacity must be >= 0")
        if not priorities:
            raise ConfigError("need at least one priority class")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self.queue_capacity = queue_capacity
        self.priorities = tuple(priorities)
        self._rank = {kind: i for i, kind in enumerate(self.priorities)}
        self.active = 0
        self._queues: dict[str, deque[Event]] = {
            kind: deque() for kind in self.priorities}
        self.shed_counts: dict[str, int] = {k: 0 for k in self.priorities}

        self._m_admitted = self._m_shed = self._m_active = self._m_queued = None
        if metrics is not None:
            self._m_admitted = metrics.counter(
                "admission_admitted_total", "work admitted past the controller",
                labels=("kind",))
            self._m_shed = metrics.counter(
                "admission_shed_total",
                "work shed by the admission controller", labels=("kind",))
            self._m_active = metrics.gauge(
                "admission_active", "work currently holding a slot")
            self._m_queued = metrics.gauge(
                "admission_queued", "work waiting for a slot", labels=("kind",))

    # -- introspection -------------------------------------------------------

    def rank(self, kind: str) -> int:
        """Priority rank of *kind* (0 = most important)."""
        try:
            return self._rank[kind]
        except KeyError:
            raise ConfigError(
                f"unknown admission class {kind!r}; "
                f"choose from {self.priorities}") from None

    @property
    def queued(self) -> int:
        if _sanitizer.ACTIVE is not None:
            _sanitizer.ACTIVE.access(self, "queues", "r")
        return sum(len(q) for q in self._queues.values())

    @property
    def utilisation(self) -> float:
        """Fraction of concurrency slots in use (autoscaler input)."""
        return self.active / self.capacity

    # -- the front door ------------------------------------------------------

    def enter(self, kind: str) -> "Event":
        """A ticket event: succeeds when a slot is granted, fails with
        :class:`AdmissionShedError` when this work (or no queue space)
        is shed.  Yield it before doing the work; pair with :meth:`leave`."""
        self.rank(kind)  # validate
        if _sanitizer.ACTIVE is not None:
            _sanitizer.ACTIVE.access(self, "queues", "w")
        ticket = self.engine.event()
        if self.active < self.capacity:
            self._grant(kind, ticket)
            return ticket
        if self.queued < self.queue_capacity:
            self._queues[kind].append(ticket)
            self._sync_gauges()
            return ticket
        victim_kind = self._cheapest_queued_below(self.rank(kind))
        if victim_kind is None:
            # incoming is itself the cheapest work on offer: shed it
            self._shed(kind, ticket)
            return ticket
        # shed the newest arrival of the cheapest queued class, take its spot
        self._shed(victim_kind, self._queues[victim_kind].pop())
        self._queues[kind].append(ticket)
        self._sync_gauges()
        return ticket

    def leave(self, kind: str) -> None:
        """Release a slot granted by :meth:`enter`; promotes queued work."""
        self.rank(kind)  # validate
        if _sanitizer.ACTIVE is not None:
            _sanitizer.ACTIVE.access(self, "queues", "w")
        if self.active <= 0:
            raise ConfigError(f"{self.name}: leave() without a matching enter()")
        self.active -= 1
        if self._m_active is not None:
            self._m_active.set(self.active)
        for queued_kind in self.priorities:     # highest priority first
            queue = self._queues[queued_kind]
            if queue:
                self._grant(queued_kind, queue.popleft())
                break
        self._sync_gauges()

    # -- internals -----------------------------------------------------------

    def _grant(self, kind: str, ticket: "Event") -> None:
        self.active += 1
        ticket.succeed()
        if self._m_admitted is not None:
            self._m_admitted.labels(kind=kind).inc()
            self._m_active.set(self.active)

    def _shed(self, kind: str, ticket: "Event") -> None:
        self.shed_counts[kind] += 1
        if self._m_shed is not None:
            self._m_shed.labels(kind=kind).inc()
        ticket.fail(AdmissionShedError(
            f"{self.name}: {kind} shed (capacity {self.capacity}, "
            f"queue {self.queue_capacity} full)"))

    def _cheapest_queued_below(self, rank: int) -> str | None:
        """The lowest-priority class with queued work cheaper than *rank*."""
        for kind in reversed(self.priorities):
            if self._rank[kind] <= rank:
                return None
            if self._queues[kind]:
                return kind
        return None

    def _sync_gauges(self) -> None:
        if self._m_queued is not None:
            for kind, queue in self._queues.items():
                self._m_queued.labels(kind=kind).set(len(queue))

    def __repr__(self) -> str:
        return (f"AdmissionController({self.name!r}, active={self.active}/"
                f"{self.capacity}, queued={self.queued}/{self.queue_capacity})")
