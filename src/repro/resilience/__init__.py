"""Overload control primitives shared by every layer.

The retry-storm / metastable-failure literature says saturation, not
failure, is what kills distributed systems: unbounded queues plus naive
retries turn a brief hot spot into a sustained outage.  This package
makes saturation a first-class, graceful, observable regime:

* :class:`Deadline` -- a time budget minted at the edge and threaded
  through the call chain, so work stops when it is no longer wanted;
* :class:`CircuitBreaker` -- per-dependency ejection with seeded probe
  scheduling (closed / open / half-open);
* :class:`TokenBucket` -- non-blocking rate limiting with an honest
  ``Retry-After``;
* :class:`AdmissionController` -- bounded priority queues with
  cheapest-first shedding (``playback > search > upload > transcode``).

Everything reports through :mod:`repro.obs` and burns only simulated
time, so overload runs are bit-reproducible from the cluster seed.
"""

from .admission import DEFAULT_PRIORITIES, AdmissionController
from .breaker import CircuitBreaker
from .deadline import Deadline
from .ratelimit import TokenBucket

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "DEFAULT_PRIORITIES",
    "Deadline",
    "TokenBucket",
]
