"""Overload control primitives shared by every layer.

The retry-storm / metastable-failure literature says saturation, not
failure, is what kills distributed systems: unbounded queues plus naive
retries turn a brief hot spot into a sustained outage.  This package
makes saturation a first-class, graceful, observable regime:

* :class:`Deadline` -- a time budget minted at the edge and threaded
  through the call chain, so work stops when it is no longer wanted;
* :class:`CircuitBreaker` -- per-dependency ejection with seeded probe
  scheduling (closed / open / half-open);
* :class:`TokenBucket` -- non-blocking rate limiting with an honest
  ``Retry-After``;
* :class:`AdmissionController` -- bounded priority queues with
  cheapest-first shedding (``playback > search > upload > transcode``).

Gray failures get their own continuous machinery in
:mod:`repro.resilience.detector`:

* :class:`PhiAccrualDetector` / :class:`FailureDetectorBank` -- adaptive
  suspicion levels over heartbeat inter-arrival histories, replacing
  fixed timeouts with a per-decision phi threshold;
* :class:`LatencyTracker` -- EWMA tail estimate that hedged requests
  trigger on;
* :class:`HedgeBudget` -- token budget so hedging never amplifies an
  overload;
* :class:`AdaptiveDeadline` -- deadlines that follow the observed
  latency instead of a fixed constant.

Everything reports through :mod:`repro.obs` and burns only simulated
time, so overload runs are bit-reproducible from the cluster seed.
"""

from .admission import DEFAULT_PRIORITIES, AdmissionController
from .breaker import CircuitBreaker
from .deadline import Deadline
from .detector import (
    PHI_MAX,
    AdaptiveDeadline,
    FailureDetectorBank,
    HedgeBudget,
    LatencyTracker,
    PhiAccrualDetector,
    ProbeGate,
)
from .ratelimit import TokenBucket

__all__ = [
    "AdaptiveDeadline",
    "AdmissionController",
    "CircuitBreaker",
    "DEFAULT_PRIORITIES",
    "Deadline",
    "FailureDetectorBank",
    "HedgeBudget",
    "LatencyTracker",
    "PHI_MAX",
    "PhiAccrualDetector",
    "ProbeGate",
    "TokenBucket",
]
