"""Gray-failure detection: suspicion instead of alive/dead verdicts.

Fail-stop faults are easy -- a host that crashes stops heart-beating and
a fixed timeout catches it.  The failure mode that dominates real video
clusters is *fail-slow*: a DataNode with a degrading disk, a replica
behind a saturated NIC, a transcode host in thermal throttle.  Such a
node keeps answering, just late, and a binary threshold either never
fires or flaps.  This module provides the continuous machinery the rest
of the stack builds tail tolerance on:

* :class:`PhiAccrualDetector` -- Hayashibara's phi-accrual failure
  detector: the suspicion level ``phi`` is ``-log10`` of the probability
  that a heartbeat this late would arrive at all, given the observed
  inter-arrival history.  ``phi = 1`` means "1 in 10 heartbeats is this
  late", ``phi = 8`` means "1 in 10^8".  Consumers pick a threshold per
  decision instead of one timeout for all of them.
* :class:`FailureDetectorBank` -- a labelled family of detectors (one per
  DataNode, per backend, per host) surfacing every suspicion level as an
  ``obs`` gauge.
* :class:`LatencyTracker` -- EWMA mean + EWMA absolute deviation of a
  latency stream; ``threshold()`` estimates the tail (p95-ish) that
  hedged requests fire at and adaptive deadlines budget from.
* :class:`HedgeBudget` -- a token budget capping hedged requests to a
  fraction of primaries, so hedging can never amplify an overload.
* :class:`AdaptiveDeadline` -- mints :class:`~repro.resilience.Deadline`
  budgets from a tracker instead of a fixed constant, clamped to a floor
  and a cap.

Everything burns simulated time through injected clocks (DET01) and
holds no RNG at all, so gray-failure runs stay bit-reproducible.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Callable

from ..common.errors import ConfigError
from .deadline import Deadline

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..obs import MetricsRegistry
    from ..sim import Engine

#: suspicion reported for a target that never heart-beat at all
PHI_MAX = 1000.0

#: ln(10), for converting a log-probability to a base-10 phi
_LN10 = math.log(10.0)


class PhiAccrualDetector:
    """Adaptive failure detector over one heartbeat stream.

    Keeps the last *window* inter-arrival gaps; :meth:`phi` scores how
    implausibly late the next heartbeat currently is against a normal
    fit of that history (mean + std, with *min_std* flooring out the
    degenerate zero-variance case of perfectly periodic simulated
    beats).  Until enough gaps accumulate the detector falls back to
    *bootstrap_interval* as the assumed mean, so a freshly registered
    target is neither blindly trusted nor instantly condemned.
    """

    __slots__ = ("clock", "window", "min_std", "bootstrap_interval",
                 "min_samples", "max_gap_factor", "last_beat", "gaps")

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        window: int = 64,
        min_std: float = 0.05,
        bootstrap_interval: float = 1.0,
        min_samples: int = 3,
        max_gap_factor: float = 16.0,
    ) -> None:
        if window < 2:
            raise ConfigError(f"detector window must be >= 2, got {window}")
        if min_std <= 0:
            raise ConfigError(f"min_std must be > 0, got {min_std}")
        if bootstrap_interval <= 0:
            raise ConfigError("bootstrap_interval must be > 0")
        if min_samples < 1:
            raise ConfigError("min_samples must be >= 1")
        if max_gap_factor <= 1.0:
            raise ConfigError("max_gap_factor must be > 1")
        self.max_gap_factor = max_gap_factor
        self.clock = clock
        self.window = window
        self.min_std = min_std
        self.bootstrap_interval = bootstrap_interval
        self.min_samples = min_samples
        self.last_beat: float | None = None
        self.gaps: deque[float] = deque(maxlen=window)

    def heartbeat(self) -> None:
        """Record one arrival at the current clock reading.

        A gap beyond ``max_gap_factor`` expected intervals means the
        target was down, not slow -- the window is reset rather than
        poisoned with one giant outlier that would make every later
        silence look normal.
        """
        now = self.clock()
        if self.last_beat is not None:
            gap = max(0.0, now - self.last_beat)
            ceiling = self.max_gap_factor * max(self.mean_interval(),
                                                self.bootstrap_interval)
            if gap > ceiling:
                self.gaps.clear()
            else:
                self.gaps.append(gap)
        self.last_beat = now

    def mean_interval(self) -> float:
        """Current estimate of the heartbeat period."""
        if len(self.gaps) < self.min_samples:
            return self.bootstrap_interval
        return sum(self.gaps) / len(self.gaps)

    def _std(self, mean: float) -> float:
        if len(self.gaps) < self.min_samples:
            return max(self.min_std, mean / 4.0)
        var = sum((g - mean) ** 2 for g in self.gaps) / len(self.gaps)
        return max(self.min_std, math.sqrt(var))

    def phi(self) -> float:
        """Suspicion right now: ``-log10 P(heartbeat later than this)``.

        0 while a beat just landed, rising continuously the longer the
        stream stays silent; :data:`PHI_MAX` for a target never heard
        from at all.
        """
        if self.last_beat is None:
            return PHI_MAX
        elapsed = self.clock() - self.last_beat
        mean = self.mean_interval()
        std = self._std(mean)
        # one-sided normal tail: P(gap > elapsed) = erfc(z / sqrt(2)) / 2
        z = (elapsed - mean) / std
        if z <= 0:
            return 0.0
        tail = 0.5 * math.erfc(z / math.sqrt(2.0))
        if tail <= 0.0:
            return PHI_MAX
        return min(PHI_MAX, -math.log(tail) / _LN10)


class FailureDetectorBank:
    """A labelled family of phi-accrual detectors with obs gauges.

    One bank per monitored population (DataNodes, web backends, hosts);
    ``heartbeat(name)`` feeds a member's stream, ``phi(name)`` reads its
    suspicion, and every read refreshes the ``detector_phi`` gauge so
    dashboards see the same continuous signal the control loops act on.
    """

    def __init__(
        self,
        name: str,
        clock: Callable[[], float],
        *,
        window: int = 64,
        min_std: float = 0.05,
        bootstrap_interval: float = 1.0,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if not name:
            raise ConfigError("bank name must be non-empty")
        self.name = name
        self.clock = clock
        self.window = window
        self.min_std = min_std
        self.bootstrap_interval = bootstrap_interval
        self._detectors: dict[str, PhiAccrualDetector] = {}
        self._m_phi = None
        if metrics is not None:
            self._m_phi = metrics.gauge(
                "detector_phi",
                "phi-accrual suspicion level per monitored target",
                labels=("bank", "target"))

    def _detector(self, target: str) -> PhiAccrualDetector:
        found = self._detectors.get(target)
        if found is None:
            found = PhiAccrualDetector(
                self.clock, window=self.window, min_std=self.min_std,
                bootstrap_interval=self.bootstrap_interval)
            self._detectors[target] = found
        return found

    def heartbeat(self, target: str) -> None:
        self._detector(target).heartbeat()

    def forget(self, target: str) -> None:
        """Drop a target that left the pool (decommission, removal)."""
        self._detectors.pop(target, None)
        if self._m_phi is not None:
            self._m_phi.labels(bank=self.name, target=target).set(0.0)

    def targets(self) -> list[str]:
        return sorted(self._detectors)

    def phi(self, target: str) -> float:
        """Suspicion for *target*; :data:`PHI_MAX` when never seen."""
        det = self._detectors.get(target)
        value = PHI_MAX if det is None else det.phi()
        if self._m_phi is not None:
            self._m_phi.labels(bank=self.name, target=target).set(value)
        return value

    def suspect(self, target: str, threshold: float) -> bool:
        return self.phi(target) >= threshold

    def suspicion_snapshot(self) -> dict[str, float]:
        """Every known target's phi, for reports and quarantine sweeps."""
        return {t: self.phi(t) for t in self.targets()}


class LatencyTracker:
    """EWMA latency estimator: mean + absolute deviation -> tail estimate.

    The classic TCP RTT filter (Jacobson/Karels): ``observe`` folds each
    sample into an exponentially weighted mean and mean-absolute
    deviation; :meth:`threshold` returns ``mean + tail_factor * dev``,
    which with the default factor of 4 sits near the p95..p99 band for
    the latency shapes the simulator produces.  That is the trigger
    point for hedged requests and the basis for adaptive deadlines.
    """

    __slots__ = ("alpha", "tail_factor", "mean", "dev", "samples")

    def __init__(self, *, alpha: float = 0.2, tail_factor: float = 4.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        if tail_factor <= 0:
            raise ConfigError(f"tail_factor must be > 0, got {tail_factor}")
        self.alpha = alpha
        self.tail_factor = tail_factor
        self.mean = 0.0
        self.dev = 0.0
        self.samples = 0

    def observe(self, latency: float) -> None:
        if latency < 0:
            raise ConfigError(f"negative latency {latency}")
        if self.samples == 0:
            self.mean = latency
            self.dev = latency / 2.0
        else:
            err = latency - self.mean
            self.mean += self.alpha * err
            self.dev += self.alpha * (abs(err) - self.dev)
        self.samples += 1

    @property
    def primed(self) -> bool:
        """Enough history to trust the estimate (hedging stays off before)."""
        return self.samples >= 3

    def threshold(self) -> float:
        """The tail latency estimate hedges fire at (0 until primed)."""
        if not self.primed:
            return 0.0
        return self.mean + self.tail_factor * self.dev


class ProbeGate:
    """Karn-gated probe filter: slow probes count as *missed* heartbeats.

    A gray node often keeps answering probes -- just late.  A constant
    per-probe delay shifts arrival *phase* without stretching the
    inter-arrival *gaps* a phi-accrual detector watches, so slowness
    alone would stay invisible.  The gate closes that hole: each probe's
    round-trip feeds a :class:`LatencyTracker`, and a probe slower than
    the adaptive cut is suppressed entirely -- the detector sees silence
    and suspicion accrues.  Per Karn's rule the outlier is *not* folded
    into the estimate, so a fail-slow episode cannot stretch the
    baseline until the gate re-admits the node.

    The cut is ``max(threshold(), spike_factor * mean)``: the second
    term keeps a jitter-free history (``dev -> 0``) from turning the
    gate into a hair trigger.
    """

    __slots__ = ("tracker", "spike_factor", "missed", "admitted")

    def __init__(self, *, alpha: float = 0.2, tail_factor: float = 8.0,
                 spike_factor: float = 3.0) -> None:
        if spike_factor <= 1.0:
            raise ConfigError(
                f"spike_factor must be > 1, got {spike_factor}")
        self.tracker = LatencyTracker(alpha=alpha, tail_factor=tail_factor)
        self.spike_factor = spike_factor
        self.missed = 0
        self.admitted = 0

    def admit(self, rtt: float) -> bool:
        """Is this probe on time?  False means treat the beat as missed."""
        if self.tracker.primed:
            cut = max(self.tracker.threshold(),
                      self.spike_factor * self.tracker.mean)
            if rtt > cut:
                self.missed += 1
                return False
        self.tracker.observe(rtt)
        self.admitted += 1
        return True


class HedgeBudget:
    """Token budget keeping hedges a bounded fraction of primaries.

    Every primary request earns *ratio* tokens (capped at *burst*); one
    hedge spends a whole token.  Under calm traffic tokens accumulate so
    a latency spike can be hedged immediately; under sustained overload
    at most ``ratio`` of requests grow a second copy -- hedging degrades
    to plain requests instead of doubling an already saturated load.
    Pure counters, no clock, fully deterministic.
    """

    __slots__ = ("ratio", "burst", "tokens", "spent", "denied", "earned")

    def __init__(self, *, ratio: float = 0.1, burst: float = 8.0) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ConfigError(f"hedge ratio must be in (0, 1], got {ratio}")
        if burst < 1.0:
            raise ConfigError(f"hedge burst must be >= 1, got {burst}")
        self.ratio = ratio
        self.burst = burst
        self.tokens = burst
        self.spent = 0
        self.denied = 0
        self.earned = 0

    def record_primary(self) -> None:
        """One primary request completed: earn a fractional token."""
        self.tokens = min(self.burst, self.tokens + self.ratio)
        self.earned += 1

    def try_spend(self) -> bool:
        """Claim one hedge token; False (and counted) when exhausted."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False

    def refund(self) -> None:
        """Return a claimed token that went unused (no alternate replica)."""
        self.tokens = min(self.burst, self.tokens + 1.0)
        self.spent = max(0, self.spent - 1)


class AdaptiveDeadline:
    """Mint :class:`Deadline` budgets that follow the observed latency.

    The budget is ``multiplier * tracker.threshold()`` clamped to
    ``[floor, cap]`` -- generous while the system runs calm, tightening
    as the tail estimate tightens, and never colder than *floor* so a
    single outlier cannot starve legitimate work.  Until the tracker is
    primed the *cap* is used (fail open: no history, no strictness).
    """

    __slots__ = ("tracker", "multiplier", "floor", "cap")

    def __init__(self, tracker: LatencyTracker, *, multiplier: float = 3.0,
                 floor: float = 0.05, cap: float = 60.0) -> None:
        if multiplier <= 0:
            raise ConfigError(f"multiplier must be > 0, got {multiplier}")
        if not 0 < floor <= cap:
            raise ConfigError(f"need 0 < floor <= cap, got {floor}/{cap}")
        self.tracker = tracker
        self.multiplier = multiplier
        self.floor = floor
        self.cap = cap

    def budget(self) -> float:
        """The current time budget in simulated seconds."""
        if not self.tracker.primed:
            return self.cap
        want = self.multiplier * self.tracker.threshold()
        return min(self.cap, max(self.floor, want))

    def deadline(self, engine: "Engine", *, label: str = "request") -> Deadline:
        """A fresh deadline for one request at the current budget."""
        return Deadline.after(engine, self.budget(), label=label)

    def observe(self, latency: float) -> None:
        """Feed one completed-request latency back into the estimate."""
        self.tracker.observe(latency)
