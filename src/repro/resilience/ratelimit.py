"""Token-bucket rate limiting.

The bucket holds up to ``capacity`` tokens and refills continuously at
``rate`` tokens per simulated second; a request costs one (or more)
tokens.  Refill is computed lazily from the clock, so the bucket adds no
events of its own to the schedule and stays exact under any interleaving.

``try_acquire`` never blocks: overload control *refuses* cheap and early
(HTTP 429 + ``Retry-After``) rather than queueing, which is the whole
point -- unbounded queues are how brief saturation becomes a sustained
outage.  :meth:`retry_after` gives the honest wait to advertise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..common.errors import ConfigError, RateLimitError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..obs import MetricsRegistry


class TokenBucket:
    """A continuously refilling token bucket on the simulation clock."""

    def __init__(
        self,
        name: str,
        clock: Callable[[], float],
        *,
        rate: float,
        capacity: float,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if rate <= 0:
            raise ConfigError(f"token rate must be > 0, got {rate}")
        if capacity <= 0:
            raise ConfigError(f"bucket capacity must be > 0, got {capacity}")
        self.name = name
        self.clock = clock
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.tokens = float(capacity)          # starts full (burst allowance)
        self.refused = 0
        self._last_refill = clock()
        self._m_refused = None
        if metrics is not None:
            self._m_refused = metrics.counter(
                "ratelimit_refusals_total",
                "requests refused by a token bucket", labels=("bucket",))

    def _refill(self) -> None:
        now = self.clock()
        if now > self._last_refill:
            self.tokens = min(self.capacity,
                              self.tokens + (now - self._last_refill) * self.rate)
            self._last_refill = now

    def available(self) -> float:
        """Tokens on hand right now (after lazy refill)."""
        self._refill()
        return self.tokens

    def try_acquire(self, cost: float = 1.0) -> bool:
        """Take *cost* tokens if the bucket holds them; never waits."""
        if cost <= 0:
            raise ConfigError(f"token cost must be > 0, got {cost}")
        self._refill()
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        self.refused += 1
        if self._m_refused is not None:
            self._m_refused.labels(bucket=self.name).inc()
        return False

    def retry_after(self, cost: float = 1.0) -> float:
        """Seconds until *cost* tokens will be on hand (0 if already there)."""
        self._refill()
        deficit = cost - self.tokens
        return max(0.0, deficit / self.rate)

    def acquire_or_raise(self, cost: float = 1.0, doing: str = "") -> None:
        """:meth:`try_acquire` that raises :class:`RateLimitError` on refusal."""
        if not self.try_acquire(cost):
            what = f" for {doing}" if doing else ""
            raise RateLimitError(
                f"bucket {self.name!r} empty{what}",
                retry_after=self.retry_after(cost))

    def __repr__(self) -> str:
        return (f"TokenBucket({self.name!r}, rate={self.rate}, "
                f"capacity={self.capacity}, tokens={self.tokens:.2f})")
